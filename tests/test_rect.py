"""Rect: metrics, predicates, edges, and property-based invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Direction, Rect

coords = st.integers(min_value=-10_000, max_value=10_000)


def rect_strategy(layer="poly"):
    return st.builds(
        lambda x1, y1, w, h: Rect(x1, y1, x1 + w, y1 + h, layer),
        coords,
        coords,
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5_000),
    )


def test_normalises_swapped_corners():
    rect = Rect(10, 20, 0, 5, "poly")
    assert rect.as_tuple() == (0, 5, 10, 20)


def test_metrics():
    rect = Rect(0, 0, 10, 4, "poly")
    assert rect.width == 10
    assert rect.height == 4
    assert rect.area == 40
    assert rect.short_side() == 4
    assert rect.center == (5, 2)
    assert not rect.is_empty


def test_zero_area_is_empty():
    assert Rect(5, 5, 5, 9, "poly").is_empty
    assert Rect(5, 5, 9, 5, "poly").is_empty


def test_intersection_and_contains():
    a = Rect(0, 0, 10, 10, "poly")
    b = Rect(5, 5, 15, 15, "poly")
    overlap = a.intersection(b)
    assert overlap.as_tuple() == (5, 5, 10, 10)
    assert a.contains(Rect(2, 2, 8, 8, "poly"))
    assert not a.contains(b)
    assert a.contains_point(10, 10)
    assert not a.contains_point(11, 10)


def test_edge_touching_does_not_intersect():
    a = Rect(0, 0, 10, 10, "poly")
    b = Rect(10, 0, 20, 10, "poly")
    assert not a.intersects(b)
    assert a.touches_or_intersects(b)
    assert a.intersection(b) is None


def test_distance_is_chebyshev_like():
    a = Rect(0, 0, 10, 10, "poly")
    assert a.distance(Rect(15, 0, 20, 10, "poly")) == 5
    assert a.distance(Rect(0, 13, 10, 20, "poly")) == 3
    assert a.distance(Rect(14, 16, 20, 20, "poly")) == 6  # diagonal: max gap
    assert a.distance(Rect(5, 5, 20, 20, "poly")) == 0


def test_edge_coords_and_set():
    rect = Rect(1, 2, 3, 4, "poly")
    assert rect.edge_coord(Direction.WEST) == 1
    assert rect.edge_coord(Direction.SOUTH) == 2
    assert rect.edge_coord(Direction.EAST) == 3
    assert rect.edge_coord(Direction.NORTH) == 4
    rect.set_edge_coord(Direction.NORTH, 10)
    assert rect.y2 == 10


def test_variable_edges():
    rect = Rect(0, 0, 5, 5, "poly")
    assert not rect.edge_variable(Direction.NORTH)
    rect.set_variable(Direction.NORTH)
    assert rect.edge_variable(Direction.NORTH)
    assert not rect.edge_variable(Direction.SOUTH)
    rect.set_variable()
    assert all(rect.edge_variable(d) for d in Direction)
    rect.set_fixed()
    assert not any(rect.edge_variable(d) for d in Direction)


def test_translate_moves_edge_bounds():
    rect = Rect(0, 0, 10, 10, "poly")
    rect.edge(Direction.EAST).min_coord = 6
    rect.translate(100, 50)
    assert rect.as_tuple() == (100, 50, 110, 60)
    assert rect.edge(Direction.EAST).min_coord == 106


def test_copy_is_deep():
    rect = Rect(0, 0, 10, 10, "poly", net="a")
    rect.set_variable(Direction.EAST)
    clone = rect.copy()
    clone.translate(5, 5)
    clone.edge(Direction.EAST).variable = False
    assert rect.as_tuple() == (0, 0, 10, 10)
    assert rect.edge_variable(Direction.EAST)
    assert clone.net == "a"


def test_merged_is_bounding_box():
    a = Rect(0, 0, 5, 5, "m1", net="x")
    b = Rect(10, 10, 20, 12, "m1")
    assert a.merged(b).as_tuple() == (0, 0, 20, 12)
    assert a.merged(b).net == "x"


@given(rect_strategy(), rect_strategy())
def test_intersection_is_symmetric_and_contained(a, b):
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert (ab is None) == (ba is None)
    if ab is not None:
        assert ab.as_tuple() == ba.as_tuple()
        assert a.contains(ab) and b.contains(ab)
        assert ab.area <= min(a.area, b.area)


@given(rect_strategy(), st.integers(min_value=-50, max_value=500))
def test_grown_area_monotonic(rect, margin):
    grown = rect.grown(abs(margin))
    assert grown.contains(rect)
    assert grown.area >= rect.area


@given(rect_strategy(), coords, coords)
def test_translation_preserves_shape(rect, dx, dy):
    moved = rect.translated(dx, dy)
    assert moved.width == rect.width
    assert moved.height == rect.height
    assert moved.area == rect.area

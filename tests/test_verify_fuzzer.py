"""The PLDL fuzzer, plus regression cases for the bugs it surfaced."""

import random

import pytest

from repro.verify import fuzz, generate_program, run_fuzz_case
from repro.verify.fuzzer import _run_interpreter, _run_translated, _geometry


def test_generated_programs_are_seeded(tech):
    assert generate_program(random.Random("x")) == generate_program(random.Random("x"))
    a, _ = generate_program(random.Random(1))
    b, _ = generate_program(random.Random(2))
    assert a != b


def test_generated_program_has_main_entity(tech):
    source, entry = generate_program(random.Random(5))
    assert entry == "Main"
    assert f"ENT {entry}()" in source


def test_fuzz_case_is_deterministic(tech):
    first = run_fuzz_case(11, seed=0, tech=tech)
    second = run_fuzz_case(11, seed=0, tech=tech)
    assert (first.status, first.detail) == (second.status, second.detail)


def test_fuzz_smoke_no_failures(tech):
    results = fuzz(cases=40, seed=0, tech=tech)
    assert len(results) == 40
    failing = [r for r in results if r.failed]
    assert failing == [], "\n".join(f"case {r.case}: {r.detail}" for r in failing)
    # The generator must exercise both healthy runs and graceful rejections.
    statuses = {r.status for r in results}
    assert "ok" in statuses and "graceful" in statuses


def _both_paths(source, tech):
    return (
        _geometry(_run_interpreter(source, "Main", tech)),
        _geometry(_run_translated(source, "Main", tech)),
    )


def test_alt_rollback_regression(tech):
    """Fuzzer-found bug (seed 0 family): translated ALT kept branch-local
    variable writes after a failing branch, while the interpreter rolls the
    whole frame back.  The fallback branch then built differently-sized
    geometry on the two paths."""
    source = (
        "ENT Main()\n"
        "  x = 1\n"
        "  ALT\n"
        "    x = 2\n"
        '    ERROR("reject")\n'
        "  ELSEALT\n"
        '    INBOX("poly", x + 1, x + 1, "n")\n'
        "  ENDALT\n"
        "END\n"
    )
    interp, translated = _both_paths(source, tech)
    assert interp == translated
    # The surviving branch must have seen the rolled-back x = 1.
    rect = next(row for row in interp if row[0] == "poly")
    assert rect[3] - rect[1] == 2 * tech.dbu_per_micron


def test_alt_rollback_nested_regression(tech):
    source = (
        "ENT Main()\n"
        "  a = 1\n"
        "  ALT\n"
        "    a = 5\n"
        "    ALT\n"
        "      a = 7\n"
        '      ERROR("inner")\n'
        "    ELSEALT\n"
        '      ERROR("inner fallback too")\n'
        "    ENDALT\n"
        "  ELSEALT\n"
        '    INBOX("metal1", a + 1, 2, "n")\n'
        "  ENDALT\n"
        "END\n"
    )
    interp, translated = _both_paths(source, tech)
    assert interp == translated
    rect = next(row for row in interp if row[0] == "metal1")
    assert rect[3] - rect[1] == 2 * tech.dbu_per_micron


def test_alt_rolls_back_unbound_names(tech):
    """A variable first assigned inside a failing branch must be unbound
    again in the interpreter; the translation maps that to None.  Either
    way, later branches must not observe the dead write."""
    source = (
        "ENT Main()\n"
        "  ALT\n"
        "    fresh = 9\n"
        '    ERROR("reject")\n'
        "  ELSEALT\n"
        '    INBOX("poly", 2, 2, "n")\n'
        "  ENDALT\n"
        "END\n"
    )
    interp, translated = _both_paths(source, tech)
    assert interp == translated

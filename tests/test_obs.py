"""The observability layer: tracer, sinks, logging, CLI wiring, determinism.

The tracer must be correct when enabled (nesting, exception safety, counter
arithmetic), free when disabled (shared null span, no sink traffic), and
inert with respect to results: tracing a build must never change the layout
it produces.
"""

import json
import logging

import pytest

from repro import obs
from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    StatsSink,
    Tracer,
    activate,
    configure_logging,
    get_logger,
    get_tracer,
    set_tracer,
    traced,
    validate_chrome_trace,
)


class RecordingSink(obs.Sink):
    """Collects everything, for assertions."""

    def __init__(self):
        self.spans = []
        self.counts = []
        self.gauges = []
        self.events = []
        self.closed = 0

    def on_span(self, record):
        self.spans.append(record)

    def on_count(self, name, n, ts_ns):
        self.counts.append((name, n))

    def on_gauge(self, name, value, ts_ns):
        self.gauges.append((name, value))

    def on_event(self, name, ts_ns, attrs):
        self.events.append((name, attrs))

    def close(self):
        self.closed += 1


@pytest.fixture
def tracer():
    sink = RecordingSink()
    tracer = Tracer(enabled=True, sinks=[sink])
    return tracer, sink


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
def test_span_nesting_depths(tracer):
    tracer, sink = tracer
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    # Sinks see spans innermost-first (completion order).
    names = [record.name for record in sink.spans]
    assert names == ["inner", "middle", "outer"]
    depths = {record.name: record.depth for record in sink.spans}
    assert depths == {"outer": 0, "middle": 1, "inner": 2}


def test_span_timing_and_containment(tracer):
    tracer, sink = tracer
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = sink.spans
    assert inner.duration_ns >= 0
    assert outer.duration_ns >= inner.duration_ns
    assert outer.start_ns <= inner.start_ns
    assert (inner.start_ns + inner.duration_ns
            <= outer.start_ns + outer.duration_ns)


def test_span_exception_safety(tracer):
    tracer, sink = tracer
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("boom"):
                raise ValueError("no")
    # Both spans closed despite the raise, error marked, stack empty again.
    assert [r.name for r in sink.spans] == ["boom", "outer"]
    assert sink.spans[0].attrs["error"] == "ValueError"
    assert sink.spans[1].attrs["error"] == "ValueError"
    assert tracer._stack() == []
    with tracer.span("after"):
        pass
    assert sink.spans[-1].depth == 0


def test_span_attrs_and_set(tracer):
    tracer, sink = tracer
    with tracer.span("s", a=1) as span:
        span.set(b=2)
    assert sink.spans[0].attrs == {"a": 1, "b": 2}


def test_traced_decorator(tracer):
    tracer, sink = tracer

    @traced("my.func", kind="test")
    def work(x):
        return x * 2

    assert work(3) == 6  # disabled process tracer: no span, result intact
    assert sink.spans == []
    with activate(tracer):
        assert work(5) == 10
    assert [r.name for r in sink.spans] == ["my.func"]
    assert sink.spans[0].attrs == {"kind": "test"}


# ---------------------------------------------------------------------------
# counters / gauges / events
# ---------------------------------------------------------------------------
def test_counter_correctness(tracer):
    tracer, sink = tracer
    stats = tracer.add_sink(StatsSink())
    tracer.count("hits")
    tracer.count("hits", 4)
    tracer.count("hits", 0)  # no-op: never reaches the sinks
    tracer.count("other", 2)
    assert stats.counter("hits") == 5
    assert stats.counter("other") == 2
    assert stats.counter("missing") == 0
    assert stats.counter_calls == {"hits": 2, "other": 1}
    assert [c for c in sink.counts if c[0] == "hits"] == [("hits", 1), ("hits", 4)]


def test_gauges_and_events(tracer):
    tracer, sink = tracer
    stats = tracer.add_sink(StatsSink())
    tracer.gauge("depth", 3)
    tracer.gauge("depth", 7)
    tracer.event("milestone", phase="end")
    assert stats.gauges["depth"] == 7  # last write wins
    assert sink.events == [("milestone", {"phase": "end"})]


# ---------------------------------------------------------------------------
# disabled tracer
# ---------------------------------------------------------------------------
def test_disabled_tracer_is_noop():
    sink = RecordingSink()
    tracer = Tracer(enabled=False, sinks=[sink])
    span_a = tracer.span("a", x=1)
    span_b = tracer.span("b")
    assert span_a is span_b  # shared null object, no allocation per call
    with span_a as span:
        span.set(y=2)
        tracer.count("n")
        tracer.gauge("g", 1.0)
        tracer.event("e")
    assert sink.spans == sink.counts == sink.gauges == sink.events == []


def test_process_tracer_disabled_by_default_and_restored():
    assert get_tracer().enabled is False
    live = Tracer(enabled=True)
    with activate(live):
        assert get_tracer() is live
    assert get_tracer().enabled is False
    previous = set_tracer(live)
    try:
        assert get_tracer() is live
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------
def test_stats_sink_table(tracer):
    tracer, _ = tracer
    stats = tracer.add_sink(StatsSink())
    with tracer.span("compact.step"):
        pass
    tracer.count("steps", 3)
    table = stats.format_table()
    assert "compact.step" in table
    assert "steps" in table
    assert stats.spans["compact.step"].calls == 1
    assert stats.total_s("compact.step") >= 0.0
    assert StatsSink().format_table() == "(no spans, counters or gauges recorded)"


def test_jsonl_sink(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = Tracer(enabled=True)
    tracer.add_sink(JsonlSink(path))
    with tracer.span("s", k="v"):
        tracer.count("c", 2)
    tracer.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    types = {line["type"] for line in lines}
    assert types == {"span", "count"}
    span = next(line for line in lines if line["type"] == "span")
    assert span["name"] == "s" and span["attrs"] == {"k": "v"}


def test_chrome_trace_sink_valid(tmp_path):
    path = tmp_path / "trace.json"
    tracer = Tracer(enabled=True)
    tracer.add_sink(ChromeTraceSink(path))
    with tracer.span("compact.step", obj="t1"):
        with tracer.span("compact.inner"):
            pass
    tracer.count("compact.steps")
    tracer.event("mark")
    tracer.close()
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    phases = {event["ph"] for event in data["traceEvents"]}
    assert {"X", "C", "i"} <= phases
    x_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in x_events} == {"compact.step", "compact.inner"}
    assert all(e["cat"] == "compact" for e in x_events)


@pytest.fixture
def obs_log_records():
    """Records emitted on the repro.obs logger (propagation-independent:
    the CLI's configure_logging turns propagation off for the suite)."""
    records = []
    handler = logging.Handler(level=logging.WARNING)
    handler.emit = records.append
    logger = logging.getLogger("repro.obs")
    logger.addHandler(handler)
    yield records
    logger.removeHandler(handler)


def test_chrome_trace_sink_balanced_run_stays_quiet(tmp_path, obs_log_records):
    path = tmp_path / "trace.json"
    tracer = Tracer(enabled=True)
    sink = tracer.add_sink(ChromeTraceSink(path))
    with tracer.span("compact.step"):
        pass
    tracer.close()
    assert sink.unbalanced_spans == 0
    assert obs_log_records == []


def test_chrome_trace_sink_warns_on_unfinished_spans(tmp_path, obs_log_records):
    """A span still open at close leaves the trace incomplete — say so."""
    path = tmp_path / "trace.json"
    tracer = Tracer(enabled=True)
    sink = tracer.add_sink(ChromeTraceSink(path))
    with tracer.span("compact.outer"):
        tracer.span("compact.leaked").__enter__()  # never exits
    tracer.close()
    assert sink.unbalanced_spans == 1
    messages = [r.getMessage() for r in obs_log_records]
    assert any("imbalance of 1" in m for m in messages)
    # The trace is still written and valid — just missing the leaked span.
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
    assert names == {"compact.outer"}


def test_validate_chrome_trace_rejects_garbage():
    assert validate_chrome_trace({"no": "events"})
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})  # missing keys
    assert validate_chrome_trace({"traceEvents": [
        {"ph": "Z", "name": "x", "ts": 0, "pid": 1, "tid": 1}
    ]})
    assert validate_chrome_trace([]) == []  # bare-array form is legal


def test_validate_chrome_trace_checks_stack_frames():
    sample = {"name": "s", "ph": "P", "ts": 0, "pid": 1, "tid": 1, "sf": "1"}
    good = {"traceEvents": [sample],
            "stackFrames": {"1": {"name": "f", "parent": "2"},
                            "2": {"name": "root"}}}
    assert validate_chrome_trace(good) == []
    # a frame without a name, a dangling parent, a dangling sample ref
    assert validate_chrome_trace({"traceEvents": [],
                                  "stackFrames": {"1": {}}})
    assert validate_chrome_trace({"traceEvents": [],
                                  "stackFrames": {"1": {"name": "f",
                                                        "parent": "9"}}})
    assert validate_chrome_trace({"traceEvents": [sample], "stackFrames": {}})


def _run_gauges_and_events(tracer):
    """The canonical gauge/event workload the end-to-end tests replay."""
    with tracer.span("opt.trial"):
        tracer.gauge("opt.best_score", 17.5)
        tracer.gauge("opt.best_score", 12.25)  # last write wins
        tracer.event("opt.improved", order="BACDE")


def test_gauges_and_events_through_jsonl_sink(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = Tracer(enabled=True, sinks=[JsonlSink(path)])
    _run_gauges_and_events(tracer)
    tracer.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    gauges = [line for line in lines if line["type"] == "gauge"]
    assert [g["value"] for g in gauges] == [17.5, 12.25]
    assert all(g["name"] == "opt.best_score" for g in gauges)
    assert all(g["ts_ns"] >= 0 for g in gauges)
    event = next(line for line in lines if line["type"] == "event")
    assert event["name"] == "opt.improved"
    assert event["attrs"] == {"order": "BACDE"}


def test_gauges_and_events_through_chrome_sink(tmp_path):
    path = tmp_path / "trace.json"
    tracer = Tracer(enabled=True, sinks=[ChromeTraceSink(path)])
    _run_gauges_and_events(tracer)
    tracer.close()
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    counters = [e for e in data["traceEvents"]
                if e["ph"] == "C" and e["name"] == "opt.best_score"]
    assert [c["args"]["value"] for c in counters] == [17.5, 12.25]
    instant = next(e for e in data["traceEvents"] if e["ph"] == "i")
    assert instant["name"] == "opt.improved"
    assert instant["args"] == {"order": "BACDE"}
    # gauge timestamps land inside the enclosing span on the timeline
    trial = next(e for e in data["traceEvents"] if e["ph"] == "X")
    assert all(trial["ts"] <= c["ts"] <= trial["ts"] + trial["dur"]
               for c in counters)


def test_gauges_and_events_survive_a_truncated_trace(tmp_path,
                                                     obs_log_records):
    """Gauges/events recorded before a leaked span must still be written:
    the unbalanced-span warning documents the hole, it does not void the
    rest of the trace."""
    path = tmp_path / "trace.json"
    tracer = Tracer(enabled=True)
    sink = tracer.add_sink(ChromeTraceSink(path))
    _run_gauges_and_events(tracer)
    tracer.span("opt.leaked").__enter__()  # never exits
    tracer.close()
    assert sink.unbalanced_spans == 1
    assert any("imbalance of 1" in r.getMessage() for r in obs_log_records)
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    phases = [e["ph"] for e in data["traceEvents"]]
    assert phases.count("C") == 2 and phases.count("i") == 1


def test_chrome_sink_interns_sampled_stack_frames(tmp_path):
    sink = ChromeTraceSink(tmp_path / "trace.json")
    sink.add_sample(1000, ("root", "mid", "leaf"))
    sink.add_sample(2000, ("root", "mid", "leaf"))
    sink.add_sample(3000, ("root", "other"))
    payload = sink.to_json()
    assert validate_chrome_trace(payload) == []
    # shared prefixes intern to shared frames: root, mid, leaf, other
    assert len(payload["stackFrames"]) == 4
    samples = [e for e in payload["traceEvents"] if e["ph"] == "P"]
    assert len(samples) == 3
    assert samples[0]["sf"] == samples[1]["sf"] != samples[2]["sf"]
    leaf = payload["stackFrames"][samples[0]["sf"]]
    assert leaf["name"] == "leaf"


def test_stats_sink_sort_and_top(tracer):
    tracer, _ = tracer
    stats = tracer.add_sink(StatsSink())
    for name, calls in (("c.slow", 1), ("a.mid", 2), ("b.fast", 3)):
        for _ in range(calls):
            with tracer.span(name):
                pass
    for name, value in (("n.big", 100), ("n.small", 1), ("n.mid", 10)):
        tracer.count(name, value)

    by_name = stats.format_table()
    rows = [line.split()[0] for line in by_name.splitlines()[1:4]]
    assert rows == ["a.mid", "b.fast", "c.slow"]

    by_calls = stats.format_table(sort="calls")
    rows = [line.split()[0] for line in by_calls.splitlines()[1:4]]
    assert rows == ["b.fast", "a.mid", "c.slow"]

    for sort in ("total", "mean", "max"):
        assert stats.format_table(sort=sort)  # valid, timing-dependent order

    topped = stats.format_table(sort="calls", top=1)
    assert "b.fast" in topped
    assert "a.mid" not in topped
    assert "2 more spans" in topped
    assert "n.big" in topped  # counters sort by value when sort != name
    assert "n.small" not in topped
    assert "2 more counters" in topped

    with pytest.raises(ValueError):
        stats.format_table(sort="bogus")


def test_cli_stats_sort_and_top_flags(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.tech"
    status = main(["stats", "--sort", "total", "--top", "3",
                   "tech", "dump", "generic_bicmos_1u", "-o", str(out)])
    assert status == 0
    captured = capsys.readouterr().out
    assert "span" in captured


# ---------------------------------------------------------------------------
# logging
# ---------------------------------------------------------------------------
def test_get_logger_hierarchy():
    assert get_logger("compact").name == "repro.compact"
    assert get_logger("repro.compact").name == "repro.compact"
    assert get_logger().name == "repro"


def test_configure_logging_levels_and_idempotence():
    root = configure_logging(0)
    assert root.level == logging.INFO
    handlers = list(root.handlers)
    configure_logging(1)
    assert root.level == logging.DEBUG
    assert root.handlers == handlers  # reconfigured, not stacked
    configure_logging(-1)
    assert root.level == logging.WARNING


# ---------------------------------------------------------------------------
# end to end: instrumented pipeline under a live tracer
# ---------------------------------------------------------------------------
def test_traced_build_covers_layers(tmp_path):
    from repro.core import Environment
    from repro.drc import run_drc
    from repro.library.dsl_sources import TRANSISTOR_SOURCE
    from repro.tech import generic_bicmos_1u

    tech = generic_bicmos_1u()
    tracer = Tracer(enabled=True)
    stats = tracer.add_sink(StatsSink())
    chrome = tracer.add_sink(ChromeTraceSink())
    with activate(tracer):
        env = Environment(tech=tech)
        env.load(TRANSISTOR_SOURCE)
        transistor = env.build("Transistor", W=4.0, L=1.0)
        run_drc(transistor)
    assert stats.counter("interp.entity_calls") >= 1
    assert stats.counter("compact.steps") >= 3
    assert stats.counter("drc.rules_checked") >= 6
    assert "interp.entity" in stats.spans
    assert "compact.step" in stats.spans
    assert "drc.run" in stats.spans
    assert validate_chrome_trace(chrome.to_json()) == []


def test_tracing_does_not_change_results():
    """Determinism: tracing on vs off must give byte-identical layouts."""
    from repro.amplifier import build_amplifier
    from repro.io import dumps_cif
    from repro.tech import generic_bicmos_1u

    tech = generic_bicmos_1u()
    plain = dumps_cif(build_amplifier(tech))
    tracer = Tracer(enabled=True)
    tracer.add_sink(StatsSink())
    with activate(tracer):
        traced_run = dumps_cif(build_amplifier(tech))
    assert plain == traced_run


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
def test_cli_trace_flag(tmp_path, capsys):
    from repro.cli import main
    from repro.library import CONTACT_ROW_SOURCE

    source = tmp_path / "row.pldl"
    source.write_text(
        CONTACT_ROW_SOURCE + 'gatecon = ContactRow(layer = "poly", W = 1)\n',
        encoding="utf-8",
    )
    trace_path = tmp_path / "trace.json"
    status = main([
        "--trace", str(trace_path),
        "build", str(source), "ContactRow",
        "-p", "layer=poly", "-p", "W=1", "-p", "L=10",
    ])
    assert status == 0
    data = json.loads(trace_path.read_text())
    assert validate_chrome_trace(data) == []
    assert any(e["name"].startswith("interp.") for e in data["traceEvents"])
    # The tracer is uninstalled after the command.
    assert get_tracer().enabled is False


def test_cli_stats_command(tmp_path, capsys):
    from repro.cli import main
    from repro.library import CONTACT_ROW_SOURCE

    source = tmp_path / "row.pldl"
    source.write_text(
        CONTACT_ROW_SOURCE + 'gatecon = ContactRow(layer = "poly", W = 1)\n',
        encoding="utf-8",
    )
    status = main([
        "stats", "build", str(source), "ContactRow",
        "-p", "layer=poly", "-p", "W=1", "-p", "L=10",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "span" in out and "counter" in out
    assert "interp.entity" in out


def test_cli_stats_requires_command():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["stats"])
    with pytest.raises(SystemExit):
        main(["stats", "stats", "tech", "list"])


def test_cli_quiet_suppresses_diagnostics(tmp_path, capsys):
    from repro.cli import main

    out_file = tmp_path / "t.tech"
    assert main(["-q", "tech", "dump", "generic_bicmos_1u",
                 "-o", str(out_file)]) == 0
    assert "wrote" not in capsys.readouterr().out
    assert main(["tech", "dump", "generic_bicmos_1u",
                 "-o", str(out_file)]) == 0
    assert "wrote" in capsys.readouterr().out

"""The run ledger and `repro perf`: storage, baselines, regression checks.

The ledger must append to both stores (JSONL is the durable log, SQLite the
query index), never fail the command it records, stay opt-out-able, and the
`perf check` noise policy must fail on a real (2x) slowdown while passing
identical and merely-jittery reruns.
"""

import json

import pytest

from repro.cli import main
from repro.obs import regress
from repro.obs.ledger import (
    BaselineStat,
    Ledger,
    RunRecord,
    flatten_metrics,
    ledger_enabled,
    peak_rss_kb,
    resolve_ledger_dir,
    snapshot_metrics,
)
from repro.obs.sinks import StatsSink
from repro.obs.tracer import Tracer


@pytest.fixture
def ledger(tmp_path):
    with Ledger(tmp_path / "ledger") as led:
        yield led


def _bench_record(metrics, command="bench:BENCH_X", **kwargs):
    return RunRecord(command, kind="bench", metrics=metrics, **kwargs)


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------
def test_append_writes_jsonl_and_sqlite(ledger):
    record = ledger.append(RunRecord(
        "amplifier", argv=["amplifier", "-o", "out"], tech="generic_bicmos_1u",
        git_sha="abc123", status=0, wall_s=1.5, cpu_s=1.4, peak_rss_kb=5000,
        metrics={"compact.steps": 12.0},
    ))
    assert record.rowid == 1
    lines = ledger.jsonl_path.read_text().splitlines()
    assert len(lines) == 1
    payload = json.loads(lines[0])
    assert payload["command"] == "amplifier"
    assert payload["metrics"] == {"compact.steps": 12.0}
    fetched = ledger.get(1)
    assert fetched.command == "amplifier"
    assert fetched.tech == "generic_bicmos_1u"
    assert fetched.all_metrics()["wall_s"] == 1.5
    assert fetched.all_metrics()["compact.steps"] == 12.0


def test_runs_filtering_and_last(ledger):
    for index in range(3):
        ledger.append(RunRecord("build", wall_s=float(index)))
    ledger.append(RunRecord("drc", wall_s=9.0))
    assert [r.command for r in ledger.runs(limit=2)] == ["drc", "build"]
    assert len(ledger.runs(command="build")) == 3
    assert ledger.last().command == "drc"
    assert ledger.last(command="build").wall_s == 2.0
    assert ledger.last(command="build", offset=2).wall_s == 0.0
    assert ledger.last(command="missing") is None
    assert ledger.commands() == ["drc", "build"]


def test_empty_ledger_reads(tmp_path):
    led = Ledger(tmp_path / "nowhere")
    assert led.runs() == []
    assert led.get(1) is None
    assert led.last() is None
    assert led.baseline("x") == {}
    assert not (tmp_path / "nowhere").exists()  # reads never create the store


def test_try_append_degrades_to_warning(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the directory should be")
    led = Ledger(target / "ledger")
    # Handler attached directly: the CLI's configure_logging may have turned
    # propagation off for the repro hierarchy earlier in the session.
    import logging

    records = []
    handler = logging.Handler(level=logging.WARNING)
    handler.emit = records.append
    logger = logging.getLogger("repro.obs")
    logger.addHandler(handler)
    try:
        assert led.try_append(RunRecord("amplifier")) is None
    finally:
        logger.removeHandler(handler)
    assert any("could not record run" in r.getMessage() for r in records)


def test_ledger_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    assert ledger_enabled()
    assert not ledger_enabled(opt_out=True)
    monkeypatch.setenv("REPRO_LEDGER", "0")
    assert not ledger_enabled()
    monkeypatch.setenv("REPRO_LEDGER", "off")
    assert not ledger_enabled()
    monkeypatch.setenv("REPRO_LEDGER", "1")
    assert ledger_enabled()


def test_resolve_ledger_dir_precedence(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    assert resolve_ledger_dir().name == "ledger"
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
    assert resolve_ledger_dir() == tmp_path / "env"
    assert resolve_ledger_dir(tmp_path / "flag") == tmp_path / "flag"


# ---------------------------------------------------------------------------
# metric helpers
# ---------------------------------------------------------------------------
def test_flatten_metrics():
    flat = flatten_metrics({
        "amplifier": {"indexed": {"compact_s": 0.5, "pairs_scanned": 1200}},
        "smoke": True,            # booleans dropped
        "name": "row",            # strings dropped
        "sizes": {"12": {"speedup": 2.0}},
        "orders": [1, 2, 3],      # lists dropped
    })
    assert flat == {
        "amplifier.indexed.compact_s": 0.5,
        "amplifier.indexed.pairs_scanned": 1200.0,
        "sizes.12.speedup": 2.0,
    }


def test_snapshot_metrics_from_stats_sink():
    tracer = Tracer(enabled=True)
    stats = tracer.add_sink(StatsSink())
    with tracer.span("compact.step"):
        pass
    tracer.count("compact.pairs_scanned", 7)
    tracer.gauge("opt.best", 42.0)
    metrics = snapshot_metrics(stats)
    assert metrics["compact.pairs_scanned"] == 7.0
    assert metrics["opt.best"] == 42.0
    assert metrics["span.compact.step.calls"] == 1.0
    assert metrics["span.compact.step.total_s"] >= 0.0


def test_peak_rss_is_positive():
    assert peak_rss_kb() > 0


# ---------------------------------------------------------------------------
# baselines and run references
# ---------------------------------------------------------------------------
def test_save_and_load_baseline(ledger):
    for value in (1.0, 1.1, 0.9):
        ledger.append(_bench_record({"compact_s": value, "pairs": 100.0}))
    stats = ledger.save_baseline("release", k=3)
    assert set(stats) == {"bench:BENCH_X"}
    loaded = ledger.baseline("release")["bench:BENCH_X"]
    assert loaded["compact_s"].median == 1.0
    assert loaded["compact_s"].mad == pytest.approx(0.1)
    assert loaded["compact_s"].samples == 3
    assert loaded["pairs"].mad == 0.0
    assert ledger.baseline_names() == ["release"]
    with pytest.raises(ValueError):
        ledger.save_baseline("empty", command="missing")


def test_resolve_run_references(ledger):
    ledger.append(RunRecord("build", wall_s=1.0))
    ledger.append(RunRecord("amplifier", wall_s=2.0))
    ledger.append(RunRecord("build", wall_s=3.0))
    assert regress.resolve_run(ledger, "last").wall_s == 3.0
    assert regress.resolve_run(ledger, "last~1").wall_s == 2.0
    assert regress.resolve_run(ledger, "last:amplifier").wall_s == 2.0
    assert regress.resolve_run(ledger, "last:build~1").wall_s == 1.0
    assert regress.resolve_run(ledger, "2").command == "amplifier"
    with pytest.raises(SystemExit):
        regress.resolve_run(ledger, "99")
    with pytest.raises(SystemExit):
        regress.resolve_run(ledger, "nonsense")


# ---------------------------------------------------------------------------
# the noise policy
# ---------------------------------------------------------------------------
def test_noise_classification_and_bands():
    assert regress.is_noisy("wall_s")
    assert regress.is_noisy("est_disabled_overhead_pct")
    assert regress.is_noisy("peak_rss_kb")
    assert not regress.is_noisy("compact.pairs_scanned")
    noisy = BaselineStat(median=10.0, mad=1.0, samples=5)
    assert regress.allowed_band("compact_s", noisy, rel=0.25, mads=3.0,
                                floor=0.0) == pytest.approx(3.0)  # 3·MAD wins
    assert regress.allowed_band("compact_s", noisy, rel=0.5, mads=0.0,
                                floor=0.0) == pytest.approx(5.0)  # rel wins
    exact = BaselineStat(median=1000.0, mad=50.0, samples=5)
    assert regress.allowed_band("pairs_scanned", exact, rel=0.25, mads=3.0,
                                floor=0.0) == 0.0
    assert regress.allowed_band("pairs_scanned", exact, rel=0.25, mads=3.0,
                                floor=2.0) == 2.0


def _write_baseline_dir(tmp_path, compact_s=1.0, pairs=1000):
    results = tmp_path / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_X.json").write_text(json.dumps({
        "amplifier": {"compact_s": compact_s, "pairs_scanned": pairs},
    }))
    return results


def test_perf_check_passes_on_unmodified_run(ledger, tmp_path):
    results = _write_baseline_dir(tmp_path)
    for jitter in (1.00, 1.05, 0.97):  # timer noise well inside the band
        ledger.append(_bench_record({
            "amplifier.compact_s": jitter,
            "amplifier.pairs_scanned": 1000.0,
        }))
    status, report = regress.perf_check(
        ledger, str(results), patterns=("*compact_s", "*pairs_scanned")
    )
    assert status == 0, report
    assert "REGRESSED" not in report
    assert "1 command" not in report  # sanity: report lists metrics
    assert "0 regression(s)" in report


def test_perf_check_fails_on_2x_slowdown(ledger, tmp_path):
    results = _write_baseline_dir(tmp_path)
    for _ in range(3):  # the injected regression: every metric doubled
        ledger.append(_bench_record({
            "amplifier.compact_s": 2.0,
            "amplifier.pairs_scanned": 2000.0,
        }))
    status, report = regress.perf_check(
        ledger, str(results), patterns=("*compact_s", "*pairs_scanned")
    )
    assert status == 1
    assert report.count("REGRESSED") == 2


def test_perf_check_counter_is_exact_but_floor_allows_slack(ledger, tmp_path):
    results = _write_baseline_dir(tmp_path)
    ledger.append(_bench_record({"amplifier.pairs_scanned": 1001.0}))
    status, _ = regress.perf_check(
        ledger, str(results), patterns=("*pairs_scanned",)
    )
    assert status == 1  # deterministic counter: +1 is a real regression
    status, _ = regress.perf_check(
        ledger, str(results), patterns=("*pairs_scanned",), floor=5.0
    )
    assert status == 0


def test_perf_check_median_of_k_rides_over_one_outlier(ledger, tmp_path):
    results = _write_baseline_dir(tmp_path)
    for value in (1.0, 9.0, 1.02):  # one GC-pause-style outlier
        ledger.append(_bench_record({"amplifier.compact_s": value}))
    status, report = regress.perf_check(
        ledger, str(results), k=3, patterns=("*compact_s",)
    )
    assert status == 0, report


def test_perf_check_against_named_baseline(ledger):
    for value in (1.0, 1.1, 0.9):
        ledger.append(_bench_record({"compact_s": value}))
    ledger.save_baseline("good", k=3)
    ledger.append(_bench_record({"compact_s": 5.0}))
    status, report = regress.perf_check(
        ledger, "good", k=1, patterns=("compact_s",)
    )
    assert status == 1
    assert "REGRESSED" in report


def test_perf_check_errors_when_nothing_compares(ledger, tmp_path):
    status, report = regress.perf_check(ledger, "no-such-baseline")
    assert status == 2 and "unknown" in report
    results = _write_baseline_dir(tmp_path)
    status, report = regress.perf_check(ledger, str(results))
    assert status == 2  # baseline exists but the ledger has no fresh runs


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
@pytest.fixture
def live_ledger_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    return tmp_path / "ledger"


def test_cli_records_every_command(live_ledger_env, tmp_path, capsys):
    out = tmp_path / "t.tech"
    assert main(["tech", "dump", "generic_bicmos_1u", "-o", str(out)]) == 0
    with Ledger(live_ledger_env) as ledger:
        record = ledger.last()
        assert record.command == "tech"
        assert record.wall_s > 0.0
        assert record.cpu_s > 0.0
        assert record.peak_rss_kb > 0
        assert record.status == 0


def test_cli_no_ledger_flag_and_env_opt_out(live_ledger_env, tmp_path,
                                            monkeypatch, capsys):
    out = tmp_path / "t.tech"
    assert main(["--no-ledger", "tech", "dump", "generic_bicmos_1u",
                 "-o", str(out)]) == 0
    assert not live_ledger_env.exists()
    monkeypatch.setenv("REPRO_LEDGER", "0")
    assert main(["tech", "dump", "generic_bicmos_1u", "-o", str(out)]) == 0
    assert not live_ledger_env.exists()


def test_cli_ledger_captures_tracer_metrics(live_ledger_env, tmp_path, capsys):
    from repro.library import CONTACT_ROW_SOURCE

    source = tmp_path / "row.pldl"
    source.write_text(
        CONTACT_ROW_SOURCE + 'gatecon = ContactRow(layer = "poly", W = 1)\n',
        encoding="utf-8",
    )
    assert main(["build", str(source), "ContactRow",
                 "-p", "layer=poly", "-p", "W=1", "-p", "L=10"]) == 0
    with Ledger(live_ledger_env) as ledger:
        metrics = ledger.last().all_metrics()
    assert metrics["interp.entity_calls"] >= 1
    assert metrics["span.interp.entity.calls"] >= 1


def test_cli_perf_commands_do_not_grow_the_ledger(live_ledger_env, tmp_path,
                                                  capsys):
    out = tmp_path / "t.tech"
    assert main(["tech", "dump", "generic_bicmos_1u", "-o", str(out)]) == 0
    assert main(["perf", "log"]) == 0
    assert main(["perf", "show", "last"]) == 0
    with Ledger(live_ledger_env) as ledger:
        assert len(ledger.runs()) == 1
    output = capsys.readouterr().out
    assert "tech" in output and "metrics" in output


def test_cli_perf_check_exit_codes(tmp_path, capsys):
    ledger_dir = tmp_path / "ledger"
    results = _write_baseline_dir(tmp_path)
    with Ledger(ledger_dir) as ledger:
        ledger.append(_bench_record({
            "amplifier.compact_s": 1.02,
            "amplifier.pairs_scanned": 1000.0,
        }))
    assert main(["perf", "check", "--ledger", str(ledger_dir),
                 "--baseline", str(results),
                 "--metric", "*compact_s", "--metric", "*pairs_scanned"]) == 0
    with Ledger(ledger_dir) as ledger:
        for _ in range(3):
            ledger.append(_bench_record({
                "amplifier.compact_s": 2.04,
                "amplifier.pairs_scanned": 1000.0,
            }))
    assert main(["perf", "check", "--ledger", str(ledger_dir),
                 "--baseline", str(results),
                 "--metric", "*compact_s", "--metric", "*pairs_scanned"]) == 1
    assert main(["perf", "check", "--ledger", str(ledger_dir),
                 "--baseline", str(tmp_path / "missing")]) == 2
    assert "REGRESSED" in capsys.readouterr().out


def test_cli_perf_diff_and_baseline(tmp_path, capsys):
    ledger_dir = tmp_path / "ledger"
    with Ledger(ledger_dir) as ledger:
        ledger.append(_bench_record({"compact_s": 1.0}))
        ledger.append(_bench_record({"compact_s": 1.5}))
    assert main(["perf", "baseline", "rel1", "--ledger", str(ledger_dir)]) == 0
    assert main(["perf", "diff", "rel1", "last",
                 "--ledger", str(ledger_dir)]) == 0
    output = capsys.readouterr().out
    assert "baseline rel1" in output
    assert "compact_s" in output


def test_perf_log_empty_ledger_message(tmp_path, capsys):
    assert main(["perf", "log", "--ledger", str(tmp_path / "none")]) == 0
    assert "no matching runs" in capsys.readouterr().out

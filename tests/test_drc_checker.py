"""DRC checks: width, spacing, enclosure, extension, area."""

import pytest

from repro.db import LayoutObject
from repro.drc import (
    Violation,
    check_areas,
    check_enclosures,
    check_extensions,
    check_spacing,
    check_widths,
    format_report,
    run_drc,
)
from repro.geometry import Rect
from repro.primitives import inbox, tworects


def obj_with(tech, *rects):
    obj = LayoutObject("o", tech)
    for rect in rects:
        obj.add_rect(rect)
    return obj


# ---------------------------------------------------------------------------
# width
# ---------------------------------------------------------------------------
def test_width_violation(tech):
    obj = obj_with(tech, Rect(0, 0, 500, 5000, "poly"))
    violations = check_widths(obj)
    assert len(violations) == 1
    assert violations[0].kind == "width"


def test_width_ok(tech):
    obj = obj_with(tech, Rect(0, 0, 1000, 5000, "poly"))
    assert check_widths(obj) == []


def test_cut_must_be_exact(tech):
    ok = obj_with(tech, Rect(0, 0, 1000, 1000, "contact"))
    assert check_widths(ok) == []
    wrong = obj_with(tech, Rect(0, 0, 1200, 1000, "contact"))
    assert len(check_widths(wrong)) == 1
    oversized = obj_with(tech, Rect(0, 0, 2000, 2000, "contact"))
    assert len(check_widths(oversized)) == 1


# ---------------------------------------------------------------------------
# spacing
# ---------------------------------------------------------------------------
def test_spacing_violation_same_layer(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(2500, 0, 4500, 2000, "metal1", "b"),
    )
    violations = check_spacing(obj)
    assert len(violations) == 1
    assert "gap 500" in violations[0].message


def test_spacing_ok_at_rule(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(3500, 0, 5500, 2000, "metal1", "b"),
    )
    assert check_spacing(obj) == []


def test_spacing_diagonal(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(2900, 2900, 4900, 4900, "metal1", "b"),  # max gap 900
    )
    assert len(check_spacing(obj)) == 1


def test_spacing_same_net_exempt(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(2500, 0, 4500, 2000, "metal1", "a"),
    )
    assert check_spacing(obj) == []


def test_spacing_merged_component_is_one_shape(tech):
    """Abutted same-layer rects are one polygon: no internal spacing."""
    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "pdiff", "s"),
        Rect(2000, 0, 4000, 2000, "pdiff"),      # touches: same component
        Rect(4000, 0, 6000, 2000, "pdiff", "d"),  # touches too
    )
    assert check_spacing(obj) == []


def test_touching_foreign_nets_is_a_short(tech):
    from repro.drc.checker import check_shorts

    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(2000, 0, 4000, 2000, "metal1", "b"),  # abutting different nets
    )
    violations = check_shorts(obj)
    assert len(violations) == 1
    assert violations[0].kind == "short"


def test_shared_diffusion_is_not_a_short(tech):
    from repro.drc.checker import check_shorts

    obj = obj_with(
        tech,
        Rect(0, 0, 2000, 2000, "pdiff", "s"),
        Rect(2000, 0, 4000, 2000, "pdiff", "d"),  # S/D share active area
    )
    assert check_shorts(obj) == []


def test_cross_layer_spacing_gate_exempt(tech):
    """A gate crossing its own diffusion is not a poly-to-active violation."""
    obj = LayoutObject("o", tech)
    tworects(obj, "poly", "pdiff", 10000, 1000)
    assert check_spacing(obj) == []


def test_cross_layer_spacing_field_poly_flagged(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 1000, 10000, "poly"),
        Rect(1300, 0, 5000, 10000, "pdiff"),  # 300 < 800 rule
    )
    assert len(check_spacing(obj)) == 1


# ---------------------------------------------------------------------------
# enclosure
# ---------------------------------------------------------------------------
def test_enclosure_ok_through_inbox(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=2600, length=2600)
    inbox(obj, "metal1")
    from repro.primitives import array

    array(obj, "contact")
    assert check_enclosures(obj) == []


def test_enclosure_missing_top_conductor(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 2600, 2600, "poly"),
        Rect(800, 800, 1800, 1800, "contact"),
    )
    violations = check_enclosures(obj)
    assert len(violations) == 1
    assert "top" in violations[0].message


def test_enclosure_insufficient_margin(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 2600, 2600, "poly"),
        Rect(0, 0, 2600, 2600, "metal1"),
        Rect(100, 800, 1100, 1800, "contact"),  # 100 < 800 poly enclosure
    )
    violations = check_enclosures(obj)
    assert any("bottom" in v.message for v in violations)


def test_enclosure_satisfied_by_merged_shape(tech):
    """Enclosure may be provided by a union of rects, not a single one."""
    obj = obj_with(
        tech,
        Rect(0, 0, 1500, 2600, "poly"),
        Rect(1500, 0, 2600, 2600, "poly"),  # two poly halves
        Rect(0, 0, 2600, 2600, "metal1"),
        Rect(800, 800, 1800, 1800, "contact"),
    )
    assert check_enclosures(obj) == []


# ---------------------------------------------------------------------------
# extension
# ---------------------------------------------------------------------------
def test_extension_ok_for_tworects(tech):
    obj = LayoutObject("o", tech)
    tworects(obj, "poly", "pdiff", 10000, 1000)
    assert check_extensions(obj) == []


def test_extension_missing_endcap(tech):
    obj = obj_with(
        tech,
        Rect(0, -5500, 1000, 5500, "poly"),   # only 500 endcap
        Rect(-2500, -5000, 3500, 5000, "pdiff"),
    )
    violations = check_extensions(obj)
    assert any("endcap" in v.message for v in violations)


def test_extension_missing_sd(tech):
    obj = obj_with(
        tech,
        Rect(0, -6000, 1000, 6000, "poly"),
        Rect(-1000, -5000, 2000, 5000, "pdiff"),  # only 1000 SD extension
    )
    violations = check_extensions(obj)
    assert any("source/drain" in v.message for v in violations)


def test_partial_gate_flagged(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 1000, 3000, "poly"),       # ends inside the diffusion
        Rect(-2500, -5000, 3500, 5000, "pdiff"),
    )
    violations = check_extensions(obj)
    assert any("partial" in v.message for v in violations)


# ---------------------------------------------------------------------------
# area
# ---------------------------------------------------------------------------
def test_area_violation(tech):
    obj = obj_with(tech, Rect(0, 0, 1500, 1500, "metal1"))  # 2.25 < 4 µm²
    violations = check_areas(obj)
    assert len(violations) == 1


def test_area_satisfied_by_merged_shape(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 1500, 1500, "metal1"),
        Rect(1500, 0, 3000, 1500, "metal1"),  # together 4.5 µm²
    )
    assert check_areas(obj) == []


# ---------------------------------------------------------------------------
# run_drc / report
# ---------------------------------------------------------------------------
def test_run_drc_aggregates(tech):
    obj = obj_with(
        tech,
        Rect(0, 0, 500, 5000, "poly"),
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(2500, 0, 4500, 2000, "metal1", "b"),
    )
    violations = run_drc(obj, include_latchup=False)
    kinds = {v.kind for v in violations}
    assert "width" in kinds and "spacing" in kinds


def test_format_report(tech):
    assert "clean" in format_report([])
    report = format_report(
        [Violation("width", "too thin", (0, 0)), Violation("spacing", "close", (1, 1))]
    )
    assert "2 violation(s)" in report
    assert "[width]" in report and "[spacing]" in report

"""Primitive shape functions: INBOX, ARRAY, TWORECTS, AROUND, RING, adaptor."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.primitives import angle_adaptor, around, array, inbox, ring, tworects
from repro.tech import RuleError


# ---------------------------------------------------------------------------
# INBOX
# ---------------------------------------------------------------------------
def test_inbox_base_rect_is_centred(tech):
    obj = LayoutObject("o", tech)
    rect = inbox(obj, "poly", w=2000, length=10000)
    assert rect.as_tuple() == (-5000, -1000, 5000, 1000)


def test_inbox_base_defaults_to_min_width(tech):
    obj = LayoutObject("o", tech)
    rect = inbox(obj, "poly")
    assert rect.width == tech.min_width("poly")
    assert rect.height == tech.min_width("poly")


def test_inbox_rejects_nonpositive(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        inbox(obj, "poly", w=0, length=100)


def test_inbox_rejects_unknown_layer(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        inbox(obj, "nope")


def test_inbox_inner_fills_region(tech):
    obj = LayoutObject("o", tech)
    outer = inbox(obj, "poly", w=4000, length=10000)
    inner = inbox(obj, "metal1")
    # No enclosure rule poly→metal1: the metal fills the poly exactly.
    assert inner.as_tuple() == outer.as_tuple()


def test_inbox_inner_respects_enclosure(tech):
    obj = LayoutObject("o", tech)
    outer = inbox(obj, "nwell", w=20000, length=20000)
    inner = inbox(obj, "pdiff")  # nwell encloses pdiff by 2.5 µm
    assert inner.x1 == outer.x1 + 2500
    assert inner.y2 == outer.y2 - 2500


def test_inbox_expands_outers_when_too_small(tech):
    """Sec. 2.2: 'all outer rectangles are expanded'."""
    obj = LayoutObject("o", tech)
    outer = inbox(obj, "nwell", w=4000, length=4000)
    inner = inbox(obj, "pdiff")  # needs 2.0 min width + 2×2.5 enclosure
    assert inner.width >= tech.min_width("pdiff")
    assert outer.width >= 2000 + 2 * 2500
    assert outer.contains(inner.grown(2500 - 1))


def test_inbox_explicit_size_is_centred_in_region(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=4000, length=10000)
    inner = inbox(obj, "metal1", w=2000, length=4000)
    assert inner.center == (0, 0)
    assert inner.width == 4000 and inner.height == 2000


def test_inbox_variable_flag(tech):
    obj = LayoutObject("o", tech)
    rect = inbox(obj, "poly", w=2000, length=2000, variable=True)
    assert all(rect.edge_variable(d) for d in Direction)


# ---------------------------------------------------------------------------
# ARRAY
# ---------------------------------------------------------------------------
def test_array_requires_cut_layer(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=3000, length=3000)
    with pytest.raises(RuleError):
        array(obj, "metal1")


def test_array_requires_geometry(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        array(obj, "contact")


def test_array_fills_structure(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=2600, length=10000)
    inbox(obj, "metal1")
    cuts = array(obj, "contact")
    assert len(cuts) == 4
    for cut in cuts:
        assert cut.width == tech.cut_size("contact")


def test_array_expands_for_first_cut(tech):
    """'the outer geometries are expanded so that at least one rectangle
    can be generated' (Sec. 2.2)."""
    obj = LayoutObject("o", tech)
    base = inbox(obj, "poly", w=1000, length=1000)
    inbox(obj, "metal1")
    cuts = array(obj, "contact")
    assert len(cuts) == 1
    assert base.width >= tech.cut_size("contact") + 2 * tech.enclosure("poly", "contact")
    assert base.height >= tech.cut_size("contact") + 2 * tech.enclosure("poly", "contact")


def test_array_net_assignment(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=2600, length=2600, net="g")
    inbox(obj, "metal1", net="g")
    cuts = array(obj, "contact", net="g")
    assert all(c.net == "g" for c in cuts)


# ---------------------------------------------------------------------------
# TWORECTS
# ---------------------------------------------------------------------------
def test_tworects_geometry(tech):
    obj = LayoutObject("o", tech)
    gate, body = tworects(obj, "poly", "pdiff", 10000, 1000, "g", None)
    assert gate.width == 1000
    assert gate.height == 10000 + 2 * tech.extension("poly", "pdiff")
    assert body.height == 10000
    assert body.width == 1000 + 2 * tech.extension("pdiff", "poly")
    assert gate.net == "g"
    # Centred on the origin.
    assert gate.center == (0, 0)
    assert body.center == (0, 0)


def test_tworects_requires_positive_dims(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        tworects(obj, "poly", "pdiff", 0, 1000)


def test_tworects_requires_extend_rules(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        tworects(obj, "poly", "metal1", 1000, 1000)


# ---------------------------------------------------------------------------
# AROUND
# ---------------------------------------------------------------------------
def test_around_uses_enclosure_rule(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "pdiff", w=4000, length=4000)
    well = around(obj, "nwell")
    assert well.as_tuple() == (-2000 - 2500, -2000 - 2500, 2000 + 2500, 2000 + 2500)


def test_around_explicit_margin(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=2000, length=2000)
    cover = around(obj, "metal2", margin=700)
    assert cover.as_tuple() == (-1700, -1700, 1700, 1700)


def test_around_empty_structure_fails(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        around(obj, "nwell")


# ---------------------------------------------------------------------------
# RING
# ---------------------------------------------------------------------------
def test_ring_closes_around_structure(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "pdiff", w=4000, length=4000)
    sides = ring(obj, "subcontact", net="sub")
    assert len(sides) == 4
    # The four rects form a closed loop: every side touches two others.
    for side in sides:
        touching = sum(
            1
            for other in sides
            if other is not side and side.touches_or_intersects(other)
        )
        assert touching == 2
    # Ring keeps the rule gap from the structure.
    inner = Rect(-2000, -2000, 2000, 2000, "pdiff")
    gap = tech.min_space("subcontact", "pdiff")
    for side in sides:
        assert side.distance(inner) >= gap


def test_ring_default_width(tech):
    obj = LayoutObject("o", tech)
    inbox(obj, "poly", w=4000, length=4000)
    south = ring(obj, "subcontact")[0]
    assert south.height == tech.min_width("subcontact")


# ---------------------------------------------------------------------------
# angle adaptor
# ---------------------------------------------------------------------------
def test_adaptor_same_layer_is_one_patch(tech):
    obj = LayoutObject("o", tech)
    rects = angle_adaptor(obj, "metal1", "metal1", 0, 0, 2000, 3000)
    assert len(rects) == 1
    assert rects[0].width == 3000 and rects[0].height == 2000


def test_adaptor_layer_change_adds_cut(tech):
    obj = LayoutObject("o", tech)
    rects = angle_adaptor(obj, "metal1", "metal2", 0, 0)
    layers = {r.layer for r in rects}
    assert layers == {"metal1", "metal2", "via"}
    cut = next(r for r in rects if r.layer == "via")
    for plate in rects:
        if plate.layer == "via":
            continue
        enc = tech.enclosure_or_zero(plate.layer, "via")
        assert plate.contains(cut.grown(enc))


def test_adaptor_unconnectable_layers_fail(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        angle_adaptor(obj, "poly", "metal2", 0, 0)

"""Baselines: coordinate-level generation [11] and graph compaction [17,18]."""

import inspect

import pytest

from repro.baselines import (
    GraphCompactor,
    coordinate_contact_row,
    coordinate_diff_pair,
    source_line_count,
)
from repro.compact import Compactor
from repro.db import LayoutObject
from repro.drc import run_drc
from repro.geometry import Direction
from repro.library import CONTACT_ROW_SOURCE, DIFF_PAIR_SOURCE, contact_row


# ---------------------------------------------------------------------------
# coordinate-level generator
# ---------------------------------------------------------------------------
def test_coordinate_contact_row_is_drc_clean(tech):
    row = coordinate_contact_row(tech, "poly", 1.0, 10.0)
    assert run_drc(row, include_latchup=False) == []
    assert row.rects_on("contact")


def test_coordinate_contact_row_matches_generator_contact_count(tech):
    coord = coordinate_contact_row(tech, "poly", 1.0, 10.0)
    procedural = contact_row(tech, "poly", w=1.0, length=10.0)
    assert len(coord.rects_on("contact")) == len(procedural.rects_on("contact"))


def test_coordinate_diff_pair_is_drc_clean(tech):
    pair = coordinate_diff_pair(tech, 10.0, 1.0)
    assert run_drc(pair, include_latchup=False) == []
    gates = [r for r in pair.rects_on("poly") if r.height > r.width]
    assert len(gates) == 2


def test_code_length_claim(tech):
    """Sec. 2.5: the coordinate method needs 'a multiple' of the PLDL code."""
    from repro.baselines import coordinate_generator

    pldl_lines = len(
        [l for l in DIFF_PAIR_SOURCE.splitlines() if l.strip() and not l.strip().startswith("//")]
    ) + len(
        [l for l in CONTACT_ROW_SOURCE.splitlines() if l.strip()]
    )
    coordinate_lines = source_line_count(
        coordinate_generator.coordinate_diff_pair
    ) + source_line_count(coordinate_generator.coordinate_contact_row)
    assert coordinate_lines > 2 * pldl_lines


# ---------------------------------------------------------------------------
# graph compactor
# ---------------------------------------------------------------------------
def make_objects(tech, count):
    objects = []
    for index in range(count):
        obj = contact_row(tech, "pdiff", w=6.0, net=f"n{index}", name=f"r{index}")
        obj.translate(index * 20000, 0)
        objects.append(obj)
    return objects


def test_graph_compactor_requires_objects(tech):
    with pytest.raises(ValueError):
        GraphCompactor(tech).compact([])


def test_graph_compactor_matches_successive_result(tech):
    """Same separation rules → same packed width as the successive method."""
    objects = make_objects(tech, 5)
    graph = GraphCompactor(tech).compact(
        [o.copy() for o in objects], Direction.WEST
    )
    successive = LayoutObject("s", tech)
    compactor = Compactor(variable_edges=False)
    for obj in objects:
        compactor.compact(successive, obj.copy(), Direction.WEST)
    assert graph.width == successive.width


def test_graph_compactor_respects_spacing(tech):
    objects = make_objects(tech, 4)
    packed = GraphCompactor(tech).compact(objects, Direction.WEST)
    assert run_drc(packed, include_latchup=False) == []


def test_graph_stats_grow_quadratically(tech):
    compactor = GraphCompactor(tech)
    compactor.compact(make_objects(tech, 3), Direction.WEST)
    small = compactor.last_stats.pair_checks
    compactor.compact(make_objects(tech, 6), Direction.WEST)
    large = compactor.last_stats.pair_checks
    # Doubling the object count should far more than double the pair
    # checks — the full edge graph is quadratic in total rect count.
    assert large > 3 * small

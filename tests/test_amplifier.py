"""The broad-band BiCMOS amplifier (Sec. 3) — blocks and assembly."""

import pytest

from repro.amplifier import (
    BLOCK_BUILDERS,
    FLOORPLAN,
    GLOBAL_NETS,
    build_amplifier,
    measure_amplifier,
)
from repro.db import net_is_connected
from repro.drc import run_drc


@pytest.fixture(scope="module")
def amplifier():
    from repro.tech import generic_bicmos_1u

    return build_amplifier(generic_bicmos_1u())


@pytest.mark.parametrize("name", sorted(BLOCK_BUILDERS))
def test_each_block_is_drc_clean(tech, name):
    block = BLOCK_BUILDERS[name](tech)
    assert run_drc(block, include_latchup=False) == []
    assert not block.is_empty()


def test_block_choices_match_partitioning(tech):
    """Sec. 3's knowledge-based partitioning decisions are in the layout."""
    # Block B: three gates, diode in the middle (moderate matching).
    block_b = BLOCK_BUILDERS["B"](tech)
    gates_b = [r for r in block_b.rects_on("poly") if r.height > r.width]
    assert len(gates_b) == 3
    # Block C: cross-coupled ABBA fingers (high matching).
    block_c = BLOCK_BUILDERS["C"](tech)
    gates_c = sorted(
        (r for r in block_c.rects_on("poly") if r.height > r.width),
        key=lambda r: r.x1,
    )
    assert [g.net for g in gates_c] == ["vbias1"] * 4
    # Block E: dummies present (best matching).
    block_e = BLOCK_BUILDERS["E"](tech)
    dummies = [
        r for r in block_e.rects_on("poly")
        if r.net == "itail" and r.height > r.width * 2
    ]
    assert len(dummies) == 16
    # Block F: bipolar layers present.
    block_f = BLOCK_BUILDERS["F"](tech)
    assert block_f.rects_on("emitter") and block_f.rects_on("buried")


def test_amplifier_is_drc_clean_including_latchup(amplifier):
    assert run_drc(amplifier, include_latchup=True) == []


def test_global_nets_connected(amplifier, tech):
    """The scripted 'manual global routing' joins every inter-block net."""
    for net in GLOBAL_NETS:
        assert net_is_connected(amplifier.rects, tech, net), net


def test_floorplan_covers_all_blocks():
    assert set(FLOORPLAN) == set(BLOCK_BUILDERS)


def test_measurement_report(amplifier):
    report = measure_amplifier(amplifier)
    assert report.drc_violations == 0
    assert report.area_um2 == pytest.approx(report.width_um * report.height_um)
    # Same order of magnitude as the paper's 592 × 481 µm² (our substitute
    # technology and device sizes differ; see EXPERIMENTS.md).
    assert 10_000 < report.area_um2 < 1_000_000
    # Parasitics reported for the internal nodes.
    assert "n1" in report.net_capacitance_af
    assert report.net_capacitance_af["n1"] > 0


def test_internal_node_parasitics_are_matched(amplifier):
    """The signal-path pair nodes see closely matched capacitance."""
    report = measure_amplifier(amplifier)
    c1 = report.net_capacitance_af["n1"]
    c2 = report.net_capacitance_af["n2"]
    assert abs(c1 - c2) / max(c1, c2) < 0.25


def test_build_without_routing_or_ring(tech):
    bare = build_amplifier(tech, with_routing=False, with_ring=False)
    assert not net_is_connected(bare.rects, tech, "ibias")
    assert bare.rects_on("subcontact") == []


def test_supply_nets_routed(amplifier, tech):
    """The supplies participate in the global routing (vss and vdd)."""
    assert "vss" in GLOBAL_NETS and "vdd" in GLOBAL_NETS
    for net in ("vss", "vdd"):
        assert net_is_connected(amplifier.rects, tech, net), net


def test_collector_sinker_junction(tech):
    """The npn's buried collector connects through the declared overlap."""
    from repro.amplifier import block_f
    from repro.db.nets import extract_connectivity

    block = block_f(tech)
    components = extract_connectivity(block.rects, tech)
    vdd_comps = [c for c in components if any(r.net == "vdd" for r in c)]
    assert len(vdd_comps) == 1
    layers = {r.layer for r in vdd_comps[0]}
    assert "buried" in layers and "metal1" in layers

"""Simulated-annealing order search."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.opt import AnnealSchedule, AnnealingOrderOptimizer, OrderOptimizer, Step


def make_steps(tech, count):
    steps = []
    for index in range(count):
        obj = LayoutObject(f"s{index}", tech)
        size = 2000 + 700 * index
        direction = Direction.WEST if index % 2 == 0 else Direction.SOUTH
        obj.add_rect(Rect(0, 0, size, 2500, "metal1", f"n{index}"))
        steps.append(Step(obj, direction))
    return steps


def test_schedule_validation():
    with pytest.raises(ValueError):
        AnnealSchedule(cooling=1.5)
    with pytest.raises(ValueError):
        AnnealSchedule(moves_per_temperature=0)


def test_requires_steps(tech):
    with pytest.raises(ValueError):
        AnnealingOrderOptimizer().optimize("m", tech, [])


def test_single_step_trivial(tech):
    steps = make_steps(tech, 1)
    result = AnnealingOrderOptimizer().optimize("m", tech, steps)
    assert result.best_order == (0,)


def test_deterministic_with_seed(tech):
    steps = make_steps(tech, 5)
    a = AnnealingOrderOptimizer(seed=7).optimize("m", tech, steps)
    b = AnnealingOrderOptimizer(seed=7).optimize("m", tech, steps)
    assert a.best_order == b.best_order
    assert a.best_score == b.best_score


def test_matches_exhaustive_on_small_instance(tech):
    steps = make_steps(tech, 4)
    exhaustive = OrderOptimizer().optimize("m", tech, steps)
    annealed = AnnealingOrderOptimizer().optimize("m", tech, steps)
    # Annealing finds the global optimum on this tiny instance.
    assert annealed.best_score == pytest.approx(exhaustive.best_score, rel=0.02)


def test_improves_on_identity_order(tech):
    steps = make_steps(tech, 6)
    optimizer = AnnealingOrderOptimizer()
    identity_score = optimizer._evaluate(
        "m", tech, steps, tuple(range(len(steps)))
    )
    result = optimizer.optimize("m", tech, steps)
    assert result.best_score <= identity_score


def test_evaluation_cache_counts(tech):
    steps = make_steps(tech, 5)
    result = AnnealingOrderOptimizer().optimize("m", tech, steps)
    # Revisited orders come from the cache, so evaluations stay bounded by
    # the number of distinct orders tried.
    assert result.evaluated == len(result.scores)
    assert result.best_score == min(result.scores.values())

"""Edge cases and failure paths across subsystems."""

import struct

import pytest

from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.lang import EvalError, Interpreter
from repro.tech import RuleError


# ---------------------------------------------------------------------------
# interpreter guards
# ---------------------------------------------------------------------------
def test_recursive_entity_is_guarded(tech):
    interp = Interpreter(tech)
    with pytest.raises(EvalError) as exc:
        interp.run("ENT Loop()\n  x = Loop()\nEND\ny = Loop()\n")
    assert "depth" in str(exc.value)


def test_mutually_recursive_entities_guarded(tech):
    interp = Interpreter(tech)
    source = (
        "ENT A()\n  x = B()\nEND\n"
        "ENT B()\n  x = A()\nEND\n"
        "y = A()\n"
    )
    with pytest.raises(EvalError):
        interp.run(source)


def test_deep_but_finite_nesting_allowed(tech):
    interp = Interpreter(tech)
    lines = ["ENT E0()", '  INBOX("poly", 2, 2)', "END"]
    for level in range(1, 20):
        lines += [f"ENT E{level}()", f"  x = E{level - 1}()",
                  "  compact(x, WEST)", "END"]
    lines.append("top = E19()")
    result = interp.run("\n".join(lines) + "\n")
    assert not result["top"].is_empty()


def test_builtin_too_many_positionals(tech):
    interp = Interpreter(tech)
    with pytest.raises(EvalError):
        interp.run('ENT E()\n  ARRAY("contact", "x", "y")\nEND\ne = E()\n')


def test_builtin_duplicate_argument(tech):
    interp = Interpreter(tech)
    with pytest.raises(EvalError):
        interp.run('ENT E()\n  INBOX("poly", 2, W = 3)\nEND\ne = E()\n')


def test_numeric_builtin_errors(tech):
    interp = Interpreter(tech)
    with pytest.raises(EvalError):
        interp.run("x = MOD(1)\n")
    with pytest.raises(EvalError):
        interp.run("x = MOD(1, 0)\n")
    with pytest.raises(EvalError):
        interp.run("x = MIN()\n")


# ---------------------------------------------------------------------------
# compactor stress
# ---------------------------------------------------------------------------
def test_shrink_round_cap_terminates(tech):
    """Many stacked variable blockers cannot loop the compactor forever."""
    from repro.compact import MAX_SHRINK_ROUNDS, Compactor

    main = LayoutObject("m", tech)
    for index in range(10):
        blocker = Rect(
            index * 4000, 0, index * 4000 + 2000, 8000 + index * 500,
            "metal1", f"b{index}",
        )
        blocker.set_variable()
        main.add_rect(blocker)
    mover = LayoutObject("c", tech)
    mover.add_rect(Rect(0, 50000, 40000, 52000, "metal1", "mover"))
    result = Compactor().compact(main, mover, Direction.SOUTH)
    assert result.shrunk_edges <= MAX_SHRINK_ROUNDS * 10


def test_compacting_empty_object(tech):
    from repro.compact import Compactor

    main = LayoutObject("m", tech)
    main.add_rect(Rect(0, 0, 1000, 1000, "metal1"))
    empty = LayoutObject("e", tech)
    result = Compactor().compact(main, empty, Direction.SOUTH)
    assert result.travel == 0
    assert len(main.nonempty_rects) == 1


# ---------------------------------------------------------------------------
# GDS robustness
# ---------------------------------------------------------------------------
def test_gds_corrupt_record_rejected(tech, tmp_path):
    from repro.io import read_gds

    path = tmp_path / "bad.gds"
    path.write_bytes(struct.pack(">HH", 2, 0x0002))  # length < 4
    with pytest.raises(ValueError):
        read_gds(path, tech)


def test_gds_unknown_layer_rejected(tech, tmp_path):
    from repro.io import read_gds, write_gds
    from repro.tech import generic_cmos_05u

    obj = LayoutObject("X", tech)
    obj.add_rect(Rect(0, 0, 1000, 1000, "buried"))  # gds 20, only in bicmos
    path = tmp_path / "x.gds"
    write_gds(obj, path)
    with pytest.raises(ValueError):
        read_gds(path, generic_cmos_05u())


def test_gds_element_outside_structure(tech, tmp_path):
    from repro.io.gds import _record, read_gds

    out = bytearray()
    out += _record(0x0002, struct.pack(">h", 600))
    out += _record(0x0800)  # BOUNDARY with no BGNSTR/STRNAME
    out += _record(0x0D02, struct.pack(">h", 10))
    out += _record(0x1003, struct.pack(">8i", 0, 0, 1, 0, 1, 1, 0, 1))
    out += _record(0x1100)
    path = tmp_path / "loose.gds"
    path.write_bytes(bytes(out))
    with pytest.raises(ValueError):
        read_gds(path, tech)


# ---------------------------------------------------------------------------
# primitives on hostile inputs
# ---------------------------------------------------------------------------
def test_array_on_marker_layer_fails(tech):
    from repro.primitives import array, inbox

    obj = LayoutObject("o", tech)
    inbox(obj, "nwell", w=10000, length=10000)
    with pytest.raises(RuleError):
        array(obj, "nwell")


def test_ring_around_empty_fails(tech):
    from repro.primitives import ring

    with pytest.raises(RuleError):
        ring(LayoutObject("o", tech), "subcontact")


def test_wire_requires_positive_extent(tech):
    from repro.route import wire

    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        wire(obj, "metal1", (5, 5), (5, 5))


# ---------------------------------------------------------------------------
# technology hot paths
# ---------------------------------------------------------------------------
def test_overlap_connection_requires_layers(tech):
    with pytest.raises(RuleError):
        tech.add_overlap_connection("buried", "nonexistent")


def test_overlap_connection_roundtrip(tech):
    from repro.tech import dumps_tech, loads_tech

    text = dumps_tech(tech)
    assert "OVERLAP emitter buried" in text
    restored = loads_tech(text)
    assert restored.overlap_connected("emitter", "buried")
    assert restored.overlap_connected("buried", "emitter")
    assert not restored.overlap_connected("poly", "buried")

"""Shared fixtures for the test suite."""

import pytest

from repro.compact import Compactor
from repro.tech import generic_bicmos_1u, generic_cmos_05u


@pytest.fixture
def tech():
    """The paper-substitute 1 µm BiCMOS technology."""
    return generic_bicmos_1u()


@pytest.fixture
def tech05():
    """The scaled 0.5 µm CMOS technology (technology-independence tests)."""
    return generic_cmos_05u()


@pytest.fixture
def compactor():
    """A default successive compactor (all paper features on)."""
    return Compactor()

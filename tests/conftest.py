"""Shared fixtures for the test suite."""

import pytest

from repro.compact import Compactor
from repro.tech import generic_bicmos_1u, generic_cmos_05u


@pytest.fixture(autouse=True)
def _no_ledger(monkeypatch):
    """Keep the suite hermetic: never write to the user's real run ledger.

    Ledger tests opt back in by re-setting REPRO_LEDGER and pointing
    REPRO_LEDGER_DIR at a tmp_path.
    """
    monkeypatch.setenv("REPRO_LEDGER", "0")
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)


@pytest.fixture
def tech():
    """The paper-substitute 1 µm BiCMOS technology."""
    return generic_bicmos_1u()


@pytest.fixture
def tech05():
    """The scaled 0.5 µm CMOS technology (technology-independence tests)."""
    return generic_cmos_05u()


@pytest.fixture
def compactor():
    """A default successive compactor (all paper features on)."""
    return Compactor()

"""Stacked transistors and the pair-mismatch rating term."""

import pytest

from repro.db import LayoutObject, estimate_net_capacitance
from repro.drc import run_drc
from repro.geometry import Rect
from repro.library import mos_transistor, stacked_transistor
from repro.opt import Rating


# ---------------------------------------------------------------------------
# stacked transistor
# ---------------------------------------------------------------------------
def test_stacked_is_drc_clean(tech):
    stack = stacked_transistor(tech, 10.0, 1.0, gates=3)
    assert run_drc(stack, include_latchup=False) == []


def test_stacked_has_no_internal_contacts(tech):
    """The point of stacking: internal nodes stay uncontacted diffusion."""
    stack = stacked_transistor(tech, 10.0, 1.0, gates=3)
    contact_nets = {c.net for c in stack.rects_on("contact")}
    assert contact_nets == {"s", "d", "g1", "g2", "g3"}
    gates = sorted(
        (r for r in stack.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    assert len(gates) == 3
    # No contact lies between the first and last gate.
    inner = [
        c for c in stack.rects_on("contact")
        if gates[0].x2 < c.x1 and c.x2 < gates[-1].x1 and c.net in ("s", "d")
    ]
    assert inner == []


def test_stacked_is_denser_than_contacted_devices(tech):
    stack = stacked_transistor(tech, 10.0, 1.0, gates=3)
    single = mos_transistor(tech, 10.0, 1.0)
    assert stack.width < 3 * single.width


def test_stacked_gate_pitch_is_rule_minimum(tech):
    stack = stacked_transistor(tech, 10.0, 1.0, gates=2)
    gates = sorted(
        (r for r in stack.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    # Pitch limited by the gate-row metals (1500 apart) rather than the bare
    # poly rule; still far tighter than a contacted column would allow.
    assert gates[1].x1 - gates[0].x2 <= 3000


def test_stacked_validation(tech):
    with pytest.raises(ValueError):
        stacked_transistor(tech, 10.0, 1.0, gates=0)
    with pytest.raises(ValueError):
        stacked_transistor(tech, 10.0, 1.0, gates=2, gate_nets=["only_one"])


def test_stacked_custom_gate_nets(tech):
    stack = stacked_transistor(
        tech, 10.0, 1.0, gates=2, gate_nets=["vin", "vcasc"]
    )
    assert {r.net for r in stack.rects_on("poly")} == {"vin", "vcasc"}


# ---------------------------------------------------------------------------
# pair-mismatch rating
# ---------------------------------------------------------------------------
def matched_obj(tech, extra_on_b=0):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 5000, 5000, "metal1", "a"))
    obj.add_rect(Rect(10000, 0, 15000, 5000 + extra_on_b, "metal1", "b"))
    return obj


def test_pair_mismatch_zero_for_identical(tech):
    obj = matched_obj(tech)
    assert Rating.pair_mismatch(obj, "a", "b") == pytest.approx(0.0)


def test_pair_mismatch_grows_with_imbalance(tech):
    small = Rating.pair_mismatch(matched_obj(tech, 1000), "a", "b")
    large = Rating.pair_mismatch(matched_obj(tech, 5000), "a", "b")
    assert 0 < small < large <= 1.0


def test_pair_mismatch_empty_nets(tech):
    obj = LayoutObject("o", tech)
    assert Rating.pair_mismatch(obj, "x", "y") == 0.0


def test_rating_with_pair_term_prefers_matched_layout(tech):
    rating = Rating(area_weight=0.0, pair_mismatch_weights={("a", "b"): 100.0})
    matched = matched_obj(tech)
    skewed = matched_obj(tech, 5000)
    assert rating.evaluate(matched) < rating.evaluate(skewed)


def test_module_e_rates_as_matched(tech):
    from repro.library import centroid_cross_coupled_pair

    module = centroid_cross_coupled_pair(tech)
    mismatch_out = Rating.pair_mismatch(module, "outA", "outB")
    mismatch_gate = Rating.pair_mismatch(module, "gA", "gB")
    assert mismatch_out < 0.05
    assert mismatch_gate < 0.05
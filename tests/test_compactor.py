"""The successive compactor: abutment, special features, variable edges."""

import pytest

from repro.compact import Compactor
from repro.db import LayoutObject, net_is_connected
from repro.geometry import Direction, Rect
from repro.library import contact_row


def simple_obj(tech, name, rect):
    obj = LayoutObject(name, tech)
    obj.add_rect(rect)
    return obj


def test_first_object_is_copied_in_place(tech, compactor):
    main = LayoutObject("m", tech)
    child = simple_obj(tech, "c", Rect(5, 7, 15, 17, "metal1"))
    result = compactor.compact(main, child, Direction.SOUTH)
    assert result.travel == 0
    assert main.bbox().as_tuple() == (5, 7, 15, 17)


def test_rule_spacing_abutment(tech, compactor):
    main = simple_obj(tech, "m", Rect(0, 0, 10000, 2000, "metal1", "a"))
    target = LayoutObject("t", tech)
    compactor.compact(target, main, Direction.SOUTH)
    mover = simple_obj(tech, "c", Rect(0, 50000, 10000, 52000, "metal1", "b"))
    result = compactor.compact(target, mover, Direction.SOUTH)
    rects = sorted(target.nonempty_rects, key=lambda r: r.y1)
    assert rects[1].y1 - rects[0].y2 == tech.min_space("metal1", "metal1")
    assert result.travel == 50000 - 2000 - 1500


def test_mixed_technologies_rejected(tech, tech05, compactor):
    main = LayoutObject("m", tech)
    child = LayoutObject("c", tech05)
    with pytest.raises(ValueError):
        compactor.compact(main, child, Direction.SOUTH)


def test_object_can_be_pushed_back(tech, compactor):
    """An object starting inside the structure moves backward to legality."""
    target = LayoutObject("t", tech)
    compactor.compact(
        target, simple_obj(tech, "m", Rect(0, 0, 10000, 2000, "metal1", "a")),
        Direction.SOUTH,
    )
    overlapping = simple_obj(tech, "c", Rect(0, 1000, 10000, 3000, "metal1", "b"))
    result = compactor.compact(target, overlapping, Direction.SOUTH)
    assert result.travel < 0
    rects = sorted(target.nonempty_rects, key=lambda r: r.y1)
    assert rects[1].y1 - rects[0].y2 == 1500


def test_all_four_directions(tech, compactor):
    for direction in Direction:
        target = LayoutObject("t", tech)
        compactor.compact(
            target, simple_obj(tech, "m", Rect(-1000, -1000, 1000, 1000, "metal1", "a")),
            direction,
        )
        mover = simple_obj(
            tech, "c",
            Rect(-1000, -1000, 1000, 1000, "metal1", "b").translate(
                -direction.dx * 30000, -direction.dy * 30000
            ),
        )
        compactor.compact(target, mover, direction)
        rects = target.nonempty_rects
        assert rects[0].distance(rects[1]) == 1500


def test_ignored_layer_overlaps(tech, compactor):
    target = LayoutObject("t", tech)
    compactor.compact(
        target, simple_obj(tech, "m", Rect(0, 0, 10000, 5000, "pdiff", "a")),
        Direction.SOUTH,
    )
    mover = simple_obj(tech, "c", Rect(0, 50000, 10000, 55000, "pdiff", "b"))
    compactor.compact(target, mover, Direction.SOUTH, ignore_layers=("pdiff",))
    # Nothing constrained the motion: fallback abuts the bounding boxes.
    rects = sorted(target.nonempty_rects, key=lambda r: r.y1)
    assert rects[1].y1 == rects[0].y2


def test_same_net_pair_does_not_block(tech, compactor):
    target = LayoutObject("t", tech)
    compactor.compact(
        target, simple_obj(tech, "m", Rect(0, 0, 10000, 2000, "metal1", "sig")),
        Direction.SOUTH,
    )
    mover = simple_obj(tech, "c", Rect(0, 9000, 10000, 11000, "metal1", "sig"))
    compactor.compact(target, mover, Direction.SOUTH)
    rects = sorted(target.nonempty_rects, key=lambda r: r.y1)
    # Same potential: allowed to abut flush (fallback), not 1500 apart.
    assert rects[1].y1 - rects[0].y2 == 0


def test_no_overlap_property_blocks_stacking(tech, compactor):
    target = LayoutObject("t", tech)
    sensitive = Rect(0, 0, 10000, 2000, "metal1", "vulnerable", no_overlap=True)
    compactor.compact(target, simple_obj(tech, "m", sensitive), Direction.SOUTH)
    # poly has no spacing rule vs metal1: normally it would overlap freely.
    mover = simple_obj(tech, "c", Rect(0, 30000, 10000, 32000, "poly", "agg"))
    compactor.compact(target, mover, Direction.SOUTH)
    rects = sorted(target.nonempty_rects, key=lambda r: r.y1)
    assert rects[1].y1 >= rects[0].y2  # stopped at touch, no overlap


def test_auto_connect_stretches_same_net(tech, compactor):
    """Fig. 5a: same-potential geometry is connected automatically."""
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    base.add_rect(Rect(0, 0, 2000, 10000, "metal1", "sig"))      # column
    base.add_rect(Rect(10000, 0, 12000, 11500, "metal1", "gate"))  # taller blocker
    compactor.compact(target, base, Direction.SOUTH)
    strap = simple_obj(tech, "c", Rect(0, 50000, 12000, 52000, "metal1", "sig"))
    result = compactor.compact(target, strap, Direction.SOUTH)
    # The strap stops 1500 above the blocker; the same-net column is then
    # stretched up to meet it.
    assert result.connected == 1
    assert net_is_connected(target.rects, tech, "sig")


def test_auto_connect_blocked_by_foreign_net(tech, compactor):
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    base.add_rect(Rect(0, 0, 2000, 10000, "metal1", "sig"))
    # A foreign wire lies right across the would-be bridge.
    base.add_rect(Rect(-1000, 11000, 3000, 12500, "metal1", "enemy"))
    base.add_rect(Rect(10000, 0, 12000, 16000, "metal1", "gate"))
    compactor.compact(target, base, Direction.SOUTH)
    strap = simple_obj(tech, "c", Rect(0, 50000, 12000, 52000, "metal1", "sig"))
    result = compactor.compact(target, strap, Direction.SOUTH)
    assert result.connected == 0
    assert not net_is_connected(target.rects, tech, "sig")


def test_auto_connect_disabled(tech):
    compactor = Compactor(auto_connect=False)
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    base.add_rect(Rect(0, 0, 2000, 10000, "metal1", "sig"))
    base.add_rect(Rect(10000, 0, 12000, 11500, "metal1", "gate"))
    compactor.compact(target, base, Direction.SOUTH)
    strap = simple_obj(tech, "c", Rect(0, 50000, 12000, 52000, "metal1", "sig"))
    result = compactor.compact(target, strap, Direction.SOUTH)
    assert result.connected == 0


def test_variable_edge_facing_shrink(tech):
    """Fig. 5b: the binding facing edge is shrunk until no longer relevant."""
    compactor = Compactor()
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    blocker = Rect(0, 0, 10000, 8000, "metal1", "a")
    blocker.set_variable(Direction.NORTH)
    backstop = Rect(20000, 0, 22000, 5000, "metal1", "c")
    base.add_rect(blocker)
    base.add_rect(backstop)
    compactor.compact(target, base, Direction.SOUTH)
    mover = simple_obj(tech, "c", Rect(0, 50000, 22000, 52000, "metal1", "b"))
    result = compactor.compact(target, mover, Direction.SOUTH)
    assert result.shrunk_edges >= 1
    placed = [r for r in target.nonempty_rects if r.net == "b"][0]
    # The mover lands against the backstop; the variable blocker shrank.
    assert placed.y1 == 5000 + 1500
    shrunk = [r for r in target.nonempty_rects if r.net == "a"][0]
    assert shrunk.y2 == placed.y1 - 1500


def test_variable_edges_disabled(tech):
    compactor = Compactor(variable_edges=False)
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    blocker = Rect(0, 0, 10000, 8000, "metal1", "a")
    blocker.set_variable(Direction.NORTH)
    base.add_rect(blocker)
    compactor.compact(target, base, Direction.SOUTH)
    mover = simple_obj(tech, "c", Rect(0, 50000, 10000, 52000, "metal1", "b"))
    result = compactor.compact(target, mover, Direction.SOUTH)
    assert result.shrunk_edges == 0
    placed = [r for r in target.nonempty_rects if r.net == "b"][0]
    assert placed.y1 == 8000 + 1500  # blocker kept its full height


def test_variable_edge_corner_shrink(tech):
    """A corner-only conflict is resolved by moving a perpendicular edge."""
    compactor = Compactor()
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    # Blocker east of the mover's path, corner-conflicting only.
    corner = Rect(10500, 0, 20000, 8000, "metal1", "a")
    corner.set_variable()
    backstop = Rect(0, 0, 10000, 3000, "metal1", "c")
    base.add_rect(corner)
    base.add_rect(backstop)
    compactor.compact(target, base, Direction.SOUTH)
    # Mover's span ends at x=10000; corner starts at 10500: gap 500 < 1500.
    mover = simple_obj(tech, "c", Rect(0, 50000, 10000, 52000, "metal1", "b"))
    result = compactor.compact(target, mover, Direction.SOUTH)
    placed = [r for r in target.nonempty_rects if r.net == "b"][0]
    shrunk = [r for r in target.nonempty_rects if r.net == "a"][0]
    # The corner blocker's west edge moved east to open the gap.
    assert shrunk.x1 >= 10000 + 1500
    assert placed.y1 == 3000 + 1500  # and the mover reached the backstop
    assert result.shrunk_edges >= 1


def test_shrink_stops_at_limits(tech):
    """A variable edge bounded by min_coord cannot shrink past it."""
    compactor = Compactor()
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    blocker = Rect(0, 0, 10000, 8000, "metal1", "a")
    blocker.set_variable(Direction.NORTH)
    blocker.edge(Direction.NORTH).min_coord = 7000
    base.add_rect(blocker)
    compactor.compact(target, base, Direction.SOUTH)
    mover = simple_obj(tech, "c", Rect(0, 50000, 10000, 52000, "metal1", "b"))
    compactor.compact(target, mover, Direction.SOUTH)
    shrunk = [r for r in target.nonempty_rects if r.net == "a"][0]
    assert shrunk.y2 == 7000
    placed = [r for r in target.nonempty_rects if r.net == "b"][0]
    assert placed.y1 == 7000 + 1500


def test_contact_row_array_recalculated_during_compaction(tech, compactor):
    """End-to-end Fig. 5b: row metal shrinks and its array is recalculated."""
    target = LayoutObject("t", tech)
    wide = contact_row(tech, "pdiff", w=8.0, length=12.0, net="a", name="wide")
    compactor.compact(target, wide, Direction.SOUTH)
    cuts_before = len(target.rects_on("contact"))
    # A hostile metal plate that corner-conflicts with the row's metal.
    mover = LayoutObject("m", tech)
    mover.add_rect(Rect(-20000, 50000, -7000, 58000, "metal1", "b"))
    compactor.compact(target, mover, Direction.EAST)
    assert len(target.rects_on("contact")) <= cuts_before


def test_compaction_result_reports_merged_rects(tech, compactor):
    target = LayoutObject("t", tech)
    child = simple_obj(tech, "c", Rect(0, 0, 10, 10, "metal1"))
    result = compactor.compact(target, child, Direction.SOUTH)
    assert len(result.merged_rects) == 1
    assert result.merged_rects[0] in target.rects

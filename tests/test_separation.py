"""Separation engine: required spacing, pair travel, frontier pruning."""

import pytest

from repro.compact import frontier_filter, gather_constraints, pair_travel, required_spacing
from repro.geometry import Direction, Rect


def test_ignored_layers_unconstrained(tech):
    a = Rect(0, 0, 10, 10, "pdiff", "x")
    b = Rect(0, 20, 10, 30, "pdiff", "y")
    assert required_spacing(tech, a, b, frozenset({"pdiff"})) is None
    assert required_spacing(tech, a, b, frozenset()) == 2500


def test_same_potential_skipped(tech):
    """'edges on the same potential are not considered during compaction'."""
    a = Rect(0, 0, 10, 10, "metal1", "sig")
    b = Rect(0, 20, 10, 30, "metal1", "sig")
    assert required_spacing(tech, a, b, frozenset()) is None
    # Different nets on the same layer keep the rule.
    b.net = "other"
    assert required_spacing(tech, a, b, frozenset()) == 1500
    # Unknown nets keep the rule too (no licence to merge).
    b.net = None
    assert required_spacing(tech, a, b, frozenset()) == 1500


def test_same_potential_needs_connectable_layers(tech):
    poly = Rect(0, 0, 10, 10, "poly", "sig")
    pdiff = Rect(0, 20, 10, 30, "pdiff", "sig")
    # poly and pdiff are not connectable: the spacing rule stays active.
    assert required_spacing(tech, poly, pdiff, frozenset()) == 800
    contact = Rect(0, 0, 10, 10, "contact", "sig")
    # The contact-to-gate rule applies regardless of potential: a same-net
    # contact still may not approach a poly edge closer than the rule.
    assert required_spacing(tech, contact, poly.copy(), frozenset()) == 800
    # Layers joined by a via (metal1/metal2) on the same net may merge.
    m1 = Rect(0, 0, 10, 10, "metal1", "sig")
    m2 = Rect(0, 20, 10, 30, "metal2", "sig")
    assert required_spacing(tech, m1, m2, frozenset()) is None


def test_no_overlap_property(tech):
    a = Rect(0, 0, 10, 10, "metal1", "a", no_overlap=True)
    b = Rect(0, 0, 10, 10, "poly", "b")
    # metal1/poly have no spacing rule, but no_overlap forbids overlap.
    assert required_spacing(tech, a, b, frozenset()) == 0
    a.no_overlap = False
    assert required_spacing(tech, a, b, frozenset()) is None


def test_no_overlap_ignores_nonconducting(tech):
    a = Rect(0, 0, 10, 10, "metal1", "a", no_overlap=True)
    well = Rect(0, 0, 10, 10, "nwell", "b")
    assert required_spacing(tech, a, well, frozenset()) is None


def test_empty_rects_unconstrained(tech):
    a = Rect(0, 0, 0, 10, "metal1", "a")
    b = Rect(0, 0, 10, 10, "metal1", "b")
    assert required_spacing(tech, a, b, frozenset()) is None


def test_pair_travel_direct_facing():
    moving = Rect(0, 100, 10, 110, "m1")
    fixed = Rect(0, 0, 10, 10, "m1")
    # Moving south toward the fixed rect with spacing 5: may travel until
    # its bottom is 5 above the fixed top: 100 - 10 - 5 = 85.
    assert pair_travel(moving, fixed, Direction.SOUTH, 5) == 85
    # Northward the fixed rect is behind: travel is negative (push-back).
    assert pair_travel(moving, fixed, Direction.NORTH, 5) is None or True


def test_pair_travel_corner_margin():
    moving = Rect(0, 100, 10, 110, "m1")
    beside = Rect(12, 0, 20, 10, "m1")  # x gap 2
    # Spacing 5 > x-gap 2: the corner constraint is active.
    assert pair_travel(moving, beside, Direction.SOUTH, 5) == 85
    # Spacing 1 < x-gap 2: no constraint.
    assert pair_travel(moving, beside, Direction.SOUTH, 1) is None


def test_pair_travel_negative_when_overlapping():
    moving = Rect(0, 0, 10, 10, "m1")
    fixed = Rect(0, 5, 10, 15, "m1")
    travel = pair_travel(moving, fixed, Direction.SOUTH, 3)
    assert travel < 0  # must move backward to restore the spacing


def test_gather_constraints(tech):
    moving = [Rect(0, 100, 1000, 2000, "metal1", "a")]
    fixed = [
        Rect(0, 0, 1000, 50, "metal1", "b"),
        Rect(5000, 0, 6000, 50, "metal1", "b"),  # out of the way
    ]
    constraints = gather_constraints(tech, moving, fixed, Direction.SOUTH)
    assert len(constraints) == 1
    assert constraints[0].spacing == 1500
    assert constraints[0].max_travel == 100 - 50 - 1500


def test_frontier_filter_drops_shadowed(tech):
    near = Rect(0, 100, 100, 200, "metal1", "n")
    far = Rect(10, 0, 90, 50, "metal1", "n")  # fully covered span, farther
    other_net = Rect(20, 0, 80, 60, "metal1", "m")
    # The arriving object carries net 'n': the near rect might be skipped by
    # the same-potential rule, so it may only shadow its own net.
    survivors = frontier_filter(
        [near, far, other_net], Direction.SOUTH, frozenset({"n"})
    )
    assert near in survivors
    assert far not in survivors
    assert other_net in survivors


def test_frontier_filter_cross_net_shadowing_when_safe(tech):
    """A rect whose net the arrival does not carry shadows every net."""
    near = Rect(0, 100, 100, 200, "metal1", "n")
    far = Rect(10, 0, 90, 50, "metal1", "m")
    survivors = frontier_filter([near, far], Direction.SOUTH, frozenset({"m"}))
    assert survivors == [near]


def test_frontier_filter_union_coverage():
    """Two nearer rects jointly covering a span shadow the rect behind."""
    left = Rect(0, 100, 60, 200, "metal1", None)
    right = Rect(50, 100, 120, 200, "metal1", None)
    behind = Rect(10, 0, 110, 50, "metal1", None)
    survivors = frontier_filter([left, right, behind], Direction.SOUTH)
    assert behind not in survivors
    assert left in survivors and right in survivors


def test_frontier_filter_no_overlap_not_shadowed_by_plain():
    near = Rect(0, 100, 100, 200, "metal1", "a")
    guarded = Rect(10, 0, 90, 50, "metal1", "b", no_overlap=True)
    survivors = frontier_filter([near, guarded], Direction.SOUTH)
    assert guarded in survivors  # plain rects cannot dominate no_overlap
    armored_near = Rect(0, 100, 100, 200, "metal1", "a", no_overlap=True)
    survivors = frontier_filter([armored_near, guarded], Direction.SOUTH)
    assert guarded not in survivors


def test_frontier_filter_keeps_partial_spans(tech):
    near = Rect(0, 100, 50, 200, "metal1", "n")
    wide_far = Rect(0, 0, 100, 50, "metal1", "n")
    survivors = frontier_filter(
        [near, wide_far], Direction.SOUTH, frozenset({"n"})
    )
    assert len(survivors) == 2  # far rect sticks out sideways: kept


def test_frontier_filter_identical_rects_keep_one():
    a = Rect(0, 0, 10, 10, "metal1", "n")
    b = Rect(0, 0, 10, 10, "metal1", "n")
    survivors = frontier_filter([a, b], Direction.SOUTH, frozenset({"n"}))
    assert len(survivors) == 1


def test_frontier_filter_never_changes_result(tech, compactor):
    """Pruned and unpruned compaction must land identically."""
    from repro.compact import Compactor
    from repro.db import LayoutObject
    from repro.library import contact_row

    def build(use_frontier):
        c = Compactor(use_frontier=use_frontier)
        main = LayoutObject("m", tech)
        for i in range(4):
            row = contact_row(tech, "pdiff", w=6.0, net=f"n{i}", name=f"r{i}")
            c.compact(main, row, Direction.WEST)
        return main.bbox().as_tuple()

    assert build(True) == build(False)

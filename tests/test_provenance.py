"""Layout provenance: recording, lineage through compaction, explainability.

The provenance recorder must be inert when disabled (no records, byte
identical output), and when enabled must give every rect a usable origin
story: the PLDL/builder entity stack, the creating builtin, the compaction
step, and merge/rebuild lineage back to pre-compaction ancestors
(Fig. 5a/5b).  On top sit the DRC explainer and the HTML run report.
"""

import pytest

from repro.compact import Compactor
from repro.db import LayoutObject
from repro.drc import run_drc
from repro.geometry import Direction, Rect
from repro.io import dumps_cif, dumps_gds
from repro.lang import Interpreter, Runtime, translate
from repro.library import contact_row, diff_pair
from repro.obs import ProvenanceRecorder, get_recorder, recording
from repro.obs.report import explain_violations, render_report, write_report

CONTACT_ROW = """
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
END
"""


@pytest.fixture
def recorder():
    rec = ProvenanceRecorder(enabled=True)
    with recording(rec):
        yield rec


# ---------------------------------------------------------------------------
# recording basics
# ---------------------------------------------------------------------------
def test_disabled_recorder_stamps_nothing(tech):
    assert not get_recorder().enabled  # process default stays off
    obj = LayoutObject("o", tech)
    rect = obj.add_rect(Rect(0, 0, 1000, 1000, "metal1"))
    assert rect.prov is None


def test_interpreter_records_entity_stack_and_builtin(tech, recorder):
    interp = Interpreter(tech)
    interp.load(CONTACT_ROW)
    row = interp.call("ContactRow", layer="poly", W=1.0, L=10.0)
    for rect in row.nonempty_rects:
        assert rect.prov is not None
        assert rect.prov.entity_stack == ("ContactRow",)
        assert rect.prov.builtin in ("INBOX", "ARRAY")
    # Parameter bindings ride along in the frame.
    name, params = row.nonempty_rects[0].prov.entities[0]
    assert name == "ContactRow"
    assert dict(params)["W"] == 1.0
    cuts = row.rects_on("contact")
    assert cuts and all(r.prov.builtin == "ARRAY" for r in cuts)


def test_translated_runtime_records_entity_stack(tech, recorder):
    namespace = {}
    exec(compile(translate(CONTACT_ROW), "<generated>", "exec"), namespace)
    row = namespace["ContactRow"](Runtime(tech), layer="poly", W=1.0, L=10.0)
    for rect in row.nonempty_rects:
        assert rect.prov is not None
        assert rect.prov.entity_stack == ("ContactRow",)
    # The frame must be popped again after the generated entity returns.
    assert recorder.current().entities == ()


def test_python_builder_decorator_records_stack(tech, recorder):
    pair = diff_pair(tech, w=10.0, length=1.0)
    for rect in pair.nonempty_rects:
        assert rect.prov is not None
        assert rect.prov.entity_stack[0] == "DiffPair"


# ---------------------------------------------------------------------------
# lineage through compaction (Fig. 5a / 5b)
# ---------------------------------------------------------------------------
def test_array_rebuild_links_new_cuts_to_ancestor(tech, recorder):
    """Fig. 5b: cuts added by a rebuild carry "rebuild" lineage."""
    row = contact_row(tech, "pdiff", w=4.0, length=6.0, net="a")
    link = next(l for l in row.links if hasattr(l, "cut_layer"))
    creation = link.prov
    assert creation is not None and creation.entity_stack[0] == "ContactRow"
    before = len([r for r in link.rects if not r.is_empty])
    # Stretch the outers as an auto-connection would; the array grows.
    for outer, _ in link.outers:
        outer.x2 += 20000
    row.rebuild_links()
    grown = [r for r in link.rects if not r.is_empty]
    assert len(grown) > before
    for rect in grown[before:]:
        assert rect.prov is not None
        assert ("rebuild", creation) in rect.prov.lineage
        assert rect.prov.entity_stack == creation.entity_stack


def test_compacted_contact_row_keeps_ancestry(tech, compactor, recorder):
    """End-to-end Fig. 5b: post-compaction cuts still name their entity."""
    target = LayoutObject("t", tech)
    wide = contact_row(tech, "pdiff", w=8.0, length=12.0, net="a", name="wide")
    compactor.compact(target, wide, Direction.SOUTH)
    mover = LayoutObject("m", tech)
    mover.add_rect(Rect(-20000, 50000, -7000, 58000, "metal1", "b"))
    compactor.compact(target, mover, Direction.EAST)
    cuts = target.rects_on("contact")
    assert cuts
    for rect in cuts:
        assert rect.prov is not None
        assert rect.prov.entity_stack[0] == "ContactRow"


def test_auto_connect_records_merge_lineage(tech, compactor, recorder):
    """Fig. 5a: the stretched resident links to the arriving rect's record."""
    target = LayoutObject("t", tech)
    base = LayoutObject("base", tech)
    with recorder.entity("Base"):
        base.add_rect(Rect(0, 0, 2000, 10000, "metal1", "sig"))
        base.add_rect(Rect(10000, 0, 12000, 11500, "metal1", "gate"))
    compactor.compact(target, base, Direction.SOUTH)
    strap = LayoutObject("c", tech)
    with recorder.entity("Strap"):
        strap.add_rect(Rect(0, 50000, 12000, 52000, "metal1", "sig"))
    result = compactor.compact(target, strap, Direction.SOUTH)
    assert result.connected == 1
    stretched = [
        r for r in target.nonempty_rects
        if r.prov is not None and r.prov.lineage
    ]
    assert len(stretched) == 1
    kind, ancestor = stretched[0].prov.lineage[0]
    assert kind == "auto_connect"
    assert ancestor.entity_stack == ("Strap",)
    assert stretched[0].prov.entity_stack == ("Base",)


def test_compaction_assigns_step_indices(tech, compactor, recorder):
    target = LayoutObject("t", tech)
    first = LayoutObject("a", tech)
    first.add_rect(Rect(0, 0, 2000, 2000, "metal1", "x"))
    second = LayoutObject("b", tech)
    second.add_rect(Rect(0, 50000, 2000, 52000, "metal1", "y"))
    compactor.compact(target, first, Direction.SOUTH)
    compactor.compact(target, second, Direction.SOUTH)
    steps = sorted(r.prov.step for r in target.nonempty_rects)
    assert steps == [1, 2]


# ---------------------------------------------------------------------------
# zero-cost contract: output is byte identical with recording on or off
# ---------------------------------------------------------------------------
def test_output_identical_with_and_without_provenance(tech):
    plain = diff_pair(tech, w=10.0, length=1.0)
    with recording(ProvenanceRecorder(enabled=True)):
        recorded = diff_pair(tech, w=10.0, length=1.0)
    assert recorded.nonempty_rects[0].prov is not None
    assert dumps_cif([plain]) == dumps_cif([recorded])
    assert dumps_gds([plain]) == dumps_gds([recorded])


# ---------------------------------------------------------------------------
# explanations and the HTML report
# ---------------------------------------------------------------------------
def test_explain_spacing_violation(tech, recorder):
    obj = LayoutObject("bad", tech)
    with recorder.entity("Left"):
        obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "a"))
    with recorder.entity("Right"):
        obj.add_rect(Rect(2500, 0, 4500, 2000, "metal1", "b"))
    violations = [v for v in run_drc(obj) if v.kind == "spacing"]
    assert violations
    explanation = explain_violations(obj, violations)[0]
    assert explanation.rule_text.startswith("SPACE metal1 metal1")
    chains = [chain for _, chain in explanation.provenances]
    assert any("Left" in chain for chain in chains)
    assert any("Right" in chain for chain in chains)
    assert "further apart" in explanation.suggestion
    text = explanation.format()
    assert "rule:" in text and "fix:" in text


def test_explanations_without_recording_fall_back(tech):
    obj = LayoutObject("bad", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "a"))
    obj.add_rect(Rect(2500, 0, 4500, 2000, "metal1", "b"))
    explanations = explain_violations(obj)
    assert explanations
    assert all(
        chain == "(no provenance recorded)"
        for e in explanations
        for _, chain in e.provenances
    )


def test_render_report_is_self_contained(tech, tmp_path):
    recorder = ProvenanceRecorder(enabled=True, capture_stages=True)
    compactor = Compactor()
    with recording(recorder):
        target = LayoutObject("demo", tech)
        compactor.compact(
            target, contact_row(tech, "pdiff", w=4.0, net="a", name="a"),
            Direction.SOUTH,
        )
        compactor.compact(
            target, contact_row(tech, "poly", w=2.0, length=8.0, net="b",
                                name="b"),
            Direction.SOUTH,
        )
        recorder.add_trial(engine="tree", order=(0, 1), score=1.0, best=True)
    html = render_report(target, recorder=recorder)
    assert "<svg" in html and "</html>" in html
    assert "Compaction stages" in html and "step 1" in html
    assert "Optimizer trials" in html
    assert "provenance coverage" in html
    out = write_report(target, tmp_path / "r.html", recorder=recorder)
    assert out.read_text(encoding="utf-8") == render_report(
        target, recorder=recorder
    )


def test_report_highlights_violations(tech):
    obj = LayoutObject("bad", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "a"))
    obj.add_rect(Rect(2500, 0, 4500, 2000, "metal1", "b"))
    html = render_report(obj)
    assert "stroke-dasharray" in html  # violation overlay drawn
    assert "[spacing]" in html or "spacing" in html


# ---------------------------------------------------------------------------
# the amplifier resolves completely
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def recorded_amplifier():
    from repro.amplifier import build_amplifier
    from repro.tech import generic_bicmos_1u

    recorder = ProvenanceRecorder(enabled=True)
    with recording(recorder):
        amp = build_amplifier(generic_bicmos_1u())
    return amp, recorder


def test_amplifier_every_rect_resolves(recorded_amplifier):
    amp, _ = recorded_amplifier
    missing = [
        rect for rect in amp.nonempty_rects
        if rect.prov is None or not rect.prov.entities
    ]
    assert missing == []
    stacks = {rect.prov.entity_stack[0] for rect in amp.nonempty_rects}
    assert "BiCMOSAmplifier" in stacks


def test_amplifier_report_renders(recorded_amplifier):
    amp, recorder = recorded_amplifier
    html = render_report(amp, recorder=recorder, violations=[])
    assert "<svg" in html
    assert "Violations" in html
    assert "BiCMOSAmplifier" in html  # provenance tooltips reach the SVG

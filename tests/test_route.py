"""Routing routines: wires, via stacks, river routing, symmetric pairs."""

import pytest

from repro.db import LayoutObject, net_is_connected
from repro.drc import run_drc
from repro.geometry import Rect
from repro.route import (
    count_crossings,
    mirror_point,
    path,
    river_route,
    route_symmetric_pair,
    symmetric_via_pair,
    verify_mirror_symmetry,
    via_stack,
    wire,
)
from repro.tech import RuleError


# ---------------------------------------------------------------------------
# wire / path / via
# ---------------------------------------------------------------------------
def test_wire_horizontal_and_vertical(tech):
    obj = LayoutObject("o", tech)
    h = wire(obj, "metal1", (0, 0), (10000, 0), net="n")
    assert h.width == 10000
    assert h.height == tech.min_width("metal1")
    v = wire(obj, "metal1", (0, 0), (0, 8000), width=2000)
    assert v.width == 2000 and v.height == 8000


def test_wire_rejects_diagonal_and_zero(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        wire(obj, "metal1", (0, 0), (5, 5))
    with pytest.raises(RuleError):
        wire(obj, "metal1", (3, 3), (3, 3))


def test_path_draws_corners(tech):
    obj = LayoutObject("o", tech)
    rects = path(obj, "metal1", [(0, 0), (10000, 0), (10000, 8000)], net="n")
    assert len(obj.rects_on("metal1")) >= 3  # two segments + corner patch
    assert net_is_connected(obj.rects, tech, "n")


def test_path_needs_two_points(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        path(obj, "metal1", [(0, 0)])


def test_via_stack_is_drc_clean_and_connects(tech):
    obj = LayoutObject("o", tech)
    via_stack(obj, 0, 0, "metal1", "metal2", net="n")
    assert run_drc(obj, include_latchup=False) == []
    assert net_is_connected(obj.rects, tech, "n")


def test_via_stack_needs_connectable_layers(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        via_stack(obj, 0, 0, "poly", "metal2")


# ---------------------------------------------------------------------------
# river routing
# ---------------------------------------------------------------------------
def test_river_route_connects_planar_pins(tech):
    obj = LayoutObject("o", tech)
    sources = [(0, 0), (20000, 0), (40000, 0)]
    targets = [(10000, 60000), (30000, 60000), (50000, 60000)]
    nets = ["a", "b", "c"]
    routes = river_route(obj, "metal1", sources, targets, nets)
    assert len(routes) == 3
    for net in nets:
        assert net_is_connected(obj.rects, tech, net)
    # Planar: no two different-net wires touch.
    violations = [
        v for v in run_drc(obj, include_latchup=False) if v.kind == "spacing"
    ]
    assert violations == []


def test_river_route_straight_when_aligned(tech):
    obj = LayoutObject("o", tech)
    routes = river_route(obj, "metal1", [(0, 0)], [(0, 50000)], ["n"])
    assert len(routes[0]) == 1  # a single straight segment


def test_river_route_validations(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        river_route(obj, "metal1", [(0, 0)], [(0, 1), (5, 5)])
    with pytest.raises(RuleError):
        river_route(obj, "metal1", [(0, 0), (10, 0)], [(0, 9), (10, 9)], ["a"])
    with pytest.raises(RuleError):  # unordered pins break planarity
        river_route(
            obj, "metal1", [(20000, 0), (0, 0)], [(0, 90000), (20000, 90000)]
        )
    with pytest.raises(RuleError):  # channel too small
        river_route(
            obj, "metal1",
            [(0, 0), (20000, 0)], [(10000, 4000), (30000, 4000)],
        )


def test_river_route_empty_is_noop(tech):
    obj = LayoutObject("o", tech)
    assert river_route(obj, "metal1", [], []) == []


# ---------------------------------------------------------------------------
# symmetric routing
# ---------------------------------------------------------------------------
def test_mirror_point():
    assert mirror_point((3, 7), 10) == (17, 7)
    assert mirror_point((10, 0), 10) == (10, 0)


def test_route_symmetric_pair_is_exact_mirror(tech):
    obj = LayoutObject("o", tech)
    points = [(0, 0), (0, 10000), (8000, 10000)]
    route_symmetric_pair(obj, "metal1", 20000, points, "left", "right")
    findings = verify_mirror_symmetry(obj, 20000, [("left", "right")])
    assert findings == []


def test_symmetric_via_pair_identical_crossings(tech):
    obj = LayoutObject("o", tech)
    symmetric_via_pair(obj, 10000, (0, 0), "metal1", "metal2", "l", "r")
    symmetric_via_pair(obj, 10000, (2000, 9000), "metal1", "metal2", "l", "r")
    assert count_crossings(obj, "l", ["via"]) == 2
    assert count_crossings(obj, "r", ["via"]) == 2
    assert verify_mirror_symmetry(obj, 10000, [("l", "r")]) == []


def test_verify_mirror_symmetry_detects_asymmetry(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 1000, 1000, "metal1", "l"))
    obj.add_rect(Rect(19000, 0, 20000, 1500, "metal1", "r"))  # taller!
    findings = verify_mirror_symmetry(obj, 10000, [("l", "r")])
    assert len(findings) == 1
    assert "not mirror images" in findings[0]

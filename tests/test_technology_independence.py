"""Technology independence: the same module source on different processes.

The paper's core pitch: "the technology independent creation of
parameterizable analog layouts" — module source contains no rule values, so
running it against a different technology file must produce a legal layout
scaled to that technology's rules.
"""

import pytest

from repro.drc import run_drc
from repro.lang import Interpreter
from repro.library import (
    CONTACT_ROW_SOURCE,
    DIFF_PAIR_SOURCE,
    centroid_cross_coupled_pair,
    contact_row,
    cross_coupled_pair,
    diff_pair,
    mos_transistor,
    simple_current_mirror,
    symmetric_current_mirror,
)


def test_contact_row_source_on_both_techs(tech, tech05):
    for technology in (tech, tech05):
        interp = Interpreter(technology)
        interp.load(CONTACT_ROW_SOURCE)
        row = interp.call("ContactRow", layer="poly", W=1.0, L=10.0)
        assert run_drc(row, include_latchup=False) == [], technology.name


def test_contact_row_scales_with_rules(tech, tech05):
    coarse = contact_row(tech, "poly", w=1.0, length=10.0)
    fine = contact_row(tech05, "poly", w=1.0, length=10.0)
    # Smaller rules → more contacts fit in the same 10 µm row.
    assert len(fine.rects_on("contact")) > len(coarse.rects_on("contact"))


def test_diff_pair_source_on_both_techs(tech, tech05):
    for technology in (tech, tech05):
        interp = Interpreter(technology)
        interp.load(DIFF_PAIR_SOURCE)
        pair = interp.call("DiffPair", W=8.0, L=1.0)
        assert run_drc(pair, include_latchup=False) == [], technology.name


def test_diff_pair_is_denser_in_finer_technology(tech, tech05):
    coarse = diff_pair(tech, 8.0, 1.0)
    fine = diff_pair(tech05, 8.0, 1.0)
    assert fine.area() < coarse.area()


@pytest.mark.parametrize(
    "builder",
    [
        lambda t: mos_transistor(t, 8.0, 1.0),
        lambda t: simple_current_mirror(t, 8.0, 1.0),
        lambda t: symmetric_current_mirror(t, 8.0, 1.0),
        lambda t: cross_coupled_pair(t, 8.0, 1.0),
    ],
)
def test_python_generators_on_half_micron(tech05, builder):
    module = builder(tech05)
    assert run_drc(module, include_latchup=False) == []


def test_module_e_on_half_micron(tech05):
    """Even the flagship module ports to the scaled technology unchanged."""
    module = centroid_cross_coupled_pair(tech05)
    assert run_drc(module, include_latchup=False) == []


def test_rule_error_when_technology_lacks_layer(tech):
    from repro.tech import Layer, LayerKind, RuleError, Technology

    bare = Technology("bare")
    bare.add_layer(Layer("poly", 1, LayerKind.POLY))
    interp = Interpreter(bare)
    interp.load(CONTACT_ROW_SOURCE)
    with pytest.raises(RuleError):
        interp.call("ContactRow", layer="metal1")

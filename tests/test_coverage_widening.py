"""Coverage widening: option combinations and less-travelled paths."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Direction, Rect, Transform
from repro.tech import RuleError


# ---------------------------------------------------------------------------
# transforms: the full orientation group
# ---------------------------------------------------------------------------
def test_all_eight_orientations_distinct():
    from repro.geometry import ORIENTATIONS

    probe = Rect(1, 2, 5, 3, "poly")  # asymmetric probe
    images = set()
    for rotation, mirror in ORIENTATIONS:
        image = Transform(rotation=rotation, mirror_x=mirror).apply_rect(probe)
        images.add(image.as_tuple())
    assert len(images) == 8


def test_rotation_composes_to_identity():
    quarter = Transform(rotation=1)
    rect = Rect(1, 2, 5, 3, "poly")
    image = rect
    for _ in range(4):
        image = quarter.apply_rect(image)
    assert image.as_tuple() == rect.as_tuple()


# ---------------------------------------------------------------------------
# library option combinations
# ---------------------------------------------------------------------------
def test_mos_without_gate_contact(tech):
    from repro.drc import run_drc
    from repro.library import mos_transistor

    mos = mos_transistor(tech, 8.0, 1.0, gate_contact=False)
    assert run_drc(mos, include_latchup=False) == []
    assert all(c.net != "g" for c in mos.rects_on("contact"))


def test_patterned_row_single_finger(tech):
    from repro.drc import run_drc
    from repro.library import DeviceNets, patterned_row

    row = patterned_row(tech, 8.0, 1.0, "A", {"A": DeviceNets("g", "d")})
    assert run_drc(row, include_latchup=False) == []


def test_all_dummy_row(tech):
    from repro.drc import run_drc
    from repro.library import patterned_row

    row = patterned_row(tech, 8.0, 1.0, "DDD", {})
    assert run_drc(row, include_latchup=False) == []
    assert {r.net for r in row.rects_on("poly")} == {"vss"}


def test_centroid_pair_without_wiring(tech):
    from repro.drc import run_drc
    from repro.library import centroid_cross_coupled_pair

    bare = centroid_cross_coupled_pair(tech, wiring=False)
    assert run_drc(bare, include_latchup=False) == []
    assert bare.rects_on("metal2") == []


def test_contact_row_on_every_contactable_layer(tech):
    from repro.drc import run_drc
    from repro.library import contact_row

    for layer in ("poly", "pdiff", "ndiff", "subcontact", "base", "emitter"):
        row = contact_row(tech, layer, w=3.0, length=6.0, net="n")
        assert run_drc(row, include_latchup=False) == [], layer
        assert row.rects_on("contact"), layer


# ---------------------------------------------------------------------------
# baselines on more shapes
# ---------------------------------------------------------------------------
def test_coordinate_row_parameter_sweep(tech):
    from repro.baselines import coordinate_contact_row
    from repro.drc import run_drc

    for w, l in [(None, None), (2.0, None), (None, 8.0), (3.0, 12.0)]:
        row = coordinate_contact_row(tech, "pdiff", w, l, net="x")
        assert run_drc(row, include_latchup=False) == [], (w, l)


def test_graph_compactor_south(tech):
    from repro.baselines import GraphCompactor
    from repro.drc import run_drc
    from repro.library import contact_row

    objects = []
    for index in range(3):
        obj = contact_row(tech, "poly", w=2.0, length=8.0, net=f"n{index}",
                          name=f"r{index}")
        obj.translate(0, -index * 30000)
        objects.append(obj)
    packed = GraphCompactor(tech).compact(objects, Direction.SOUTH)
    assert run_drc(packed, include_latchup=False) == []


# ---------------------------------------------------------------------------
# environment / session small paths
# ---------------------------------------------------------------------------
def test_environment_with_explicit_technology(tech05):
    from repro import Environment

    env = Environment(tech=tech05)
    assert env.tech.name == "generic_cmos_05u"


def test_environment_compactor_flags():
    from repro import Environment

    env = Environment(variable_edges=False, auto_connect=False)
    assert not env.compactor.variable_edges
    assert not env.compactor.auto_connect


def test_svg_scale_changes_size(tech):
    from repro.io import render_svg
    from repro.library import contact_row

    row = contact_row(tech, "poly", w=1.0, length=10.0)
    small = render_svg(row, scale=0.01)
    large = render_svg(row, scale=0.1)
    assert len(large) >= len(small)  # same rect count, bigger canvas numbers
    import re

    def width_of(svg):
        return float(re.search(r'width="(\d+)"', svg).group(1))

    assert width_of(large) > width_of(small)


def test_rating_full_combination(tech):
    from repro.opt import Rating

    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "a"))
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal2", "b"))
    rating = Rating(
        area_weight=1.0,
        capacitance_weights={"a": 0.001},
        coupling_weight=0.5,
        pair_mismatch_weights={("a", "b"): 10.0},
    )
    score = rating.evaluate(obj)
    assert score > Rating(area_weight=1.0).evaluate(obj)


# ---------------------------------------------------------------------------
# route corners with layer change
# ---------------------------------------------------------------------------
def test_l_route_with_layer_change(tech):
    from repro.db import net_is_connected
    from repro.drc import run_drc
    from repro.primitives import angle_adaptor
    from repro.route import wire

    obj = LayoutObject("o", tech)
    wire(obj, "metal1", (0, 0), (10000, 0), width=2800, net="n")
    wire(obj, "metal2", (10000, 0), (10000, 9000), width=2800, net="n")
    angle_adaptor(obj, "metal1", "metal2", 10000, 0, 2800, 2800, net="n")
    assert net_is_connected(obj.rects, tech, "n")
    assert run_drc(obj, include_latchup=False) == []

"""CIF output: layer naming, round-trip, errors."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Rect
from repro.io import dumps_cif, loads_cif, read_cif, write_cif
from repro.io.cif import cif_layer_names
from repro.library import contact_row, diff_pair


def test_layer_names_unique_and_legal(tech):
    names = cif_layer_names(tech)
    assert len(set(names.values())) == len(names)
    for cif_name in names.values():
        assert cif_name.isalnum()
        assert len(cif_name) <= 4


def test_roundtrip_contact_row(tech):
    row = contact_row(tech, "poly", w=1.0, length=10.0, name="ROW")
    back = loads_cif(dumps_cif(row), tech)
    assert len(back) == 1
    assert back[0].name == "ROW"
    assert sorted(r.as_tuple() for r in back[0].nonempty_rects) == sorted(
        r.as_tuple() for r in row.nonempty_rects
    )
    assert sorted(r.layer for r in back[0].nonempty_rects) == sorted(
        r.layer for r in row.nonempty_rects
    )


def test_roundtrip_module_with_odd_coordinates(tech):
    pair = diff_pair(tech, 10.0, 1.0)
    pair.translate(333, 777)  # odd offsets stress the doubled-center math
    back = loads_cif(dumps_cif(pair), tech)[0]
    assert sorted(r.as_tuple() for r in back.nonempty_rects) == sorted(
        r.as_tuple() for r in pair.nonempty_rects
    )


def test_multiple_structures(tech):
    a = LayoutObject("A", tech)
    a.add_rect(Rect(0, 0, 1000, 1000, "poly"))
    b = LayoutObject("B", tech)
    b.add_rect(Rect(0, 0, 2000, 2000, "metal1"))
    back = loads_cif(dumps_cif([a, b]), tech)
    assert [o.name for o in back] == ["A", "B"]


def test_write_and_read_file(tech, tmp_path):
    row = contact_row(tech, "poly", w=1.0, length=10.0)
    path = tmp_path / "row.cif"
    write_cif(row, path)
    text = path.read_text()
    assert text.startswith("(") and text.rstrip().endswith("E")
    assert len(read_cif(path, tech)) == 1


def test_empty_write_rejected(tmp_path):
    with pytest.raises(ValueError):
        dumps_cif([])


def test_unknown_layer_rejected(tech):
    with pytest.raises(ValueError):
        loads_cif("DS 1 100 1000;\nL ZZZZ;\nB 2 2 0 0;\nDF;\nE", tech)


def test_stray_box_rejected(tech):
    with pytest.raises(ValueError):
        loads_cif("DS 1 100 1000;\nB 2 2 0 0;\nDF;\nE", tech)

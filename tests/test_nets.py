"""Connectivity extraction and parasitic estimation."""

import pytest

from repro.db import (
    DisjointSet,
    capacitance_report,
    estimate_net_capacitance,
    extract_connectivity,
    net_is_connected,
)
from repro.geometry import Rect


def test_disjoint_set():
    dsu = DisjointSet(5)
    dsu.union(0, 1)
    dsu.union(3, 4)
    assert dsu.find(0) == dsu.find(1)
    assert dsu.find(3) == dsu.find(4)
    assert dsu.find(0) != dsu.find(3)
    dsu.union(1, 4)
    assert dsu.find(0) == dsu.find(3)


def test_disjoint_set_unions_by_size():
    dsu = DisjointSet(4)
    dsu.union(0, 1)
    dsu.union(0, 2)
    # The singleton joins the bigger tree: the representative stays put.
    root = dsu.find(0)
    dsu.union(3, 0)
    assert dsu.find(3) == root


def test_disjoint_set_grow():
    dsu = DisjointSet(2)
    assert dsu.grow() == 2
    assert dsu.grow(3) == 3
    # Fresh indices are singletons and merge like the originals.
    assert dsu.find(5) == 5
    dsu.union(0, 5)
    assert dsu.find(5) == dsu.find(0)


def test_net_is_connected_on_nonconducting_layer(tech):
    # Two labelled rects where the first sits on a non-conducting layer:
    # no component can hold them all, so the net is split by definition.
    rects = [
        Rect(0, 0, 3000, 3000, "nwell", "w"),
        Rect(0, 0, 3000, 3000, "metal1", "w"),
    ]
    assert not net_is_connected(rects, tech, "w")


def test_same_layer_touching_connects(tech):
    rects = [
        Rect(0, 0, 10, 10, "metal1", "a"),
        Rect(10, 0, 20, 10, "metal1", "a"),
        Rect(100, 0, 110, 10, "metal1", "a"),
    ]
    components = extract_connectivity(rects, tech)
    assert len(components) == 2
    assert not net_is_connected(rects, tech, "a")


def test_cut_connects_layers(tech):
    rects = [
        Rect(0, 0, 3000, 3000, "poly", "g"),
        Rect(0, 0, 3000, 3000, "metal1", "g"),
        Rect(1000, 1000, 2000, 2000, "contact", "g"),
    ]
    components = extract_connectivity(rects, tech)
    assert len(components) == 1
    assert net_is_connected(rects, tech, "g")


def test_stacked_without_cut_stays_separate(tech):
    rects = [
        Rect(0, 0, 3000, 3000, "poly", "g"),
        Rect(0, 0, 3000, 3000, "metal1", "g"),
    ]
    assert len(extract_connectivity(rects, tech)) == 2
    assert not net_is_connected(rects, tech, "g")


def test_nonconducting_layers_excluded(tech):
    rects = [
        Rect(0, 0, 3000, 3000, "nwell", "w"),
        Rect(0, 0, 3000, 3000, "metal1", "w"),
    ]
    components = extract_connectivity(rects, tech)
    assert len(components) == 1  # only the metal counts
    assert all(r.layer == "metal1" for r in components[0])


def test_single_rect_net_is_trivially_connected(tech):
    rects = [Rect(0, 0, 10, 10, "metal1", "x")]
    assert net_is_connected(rects, tech, "x")
    assert net_is_connected(rects, tech, "absent")


def test_capacitance_scales_with_area_and_perimeter(tech):
    small = [Rect(0, 0, 1000, 1000, "metal1", "n")]
    large = [Rect(0, 0, 2000, 2000, "metal1", "n")]
    c_small = estimate_net_capacitance(small, tech, "n")
    c_large = estimate_net_capacitance(large, tech, "n")
    assert 0 < c_small < c_large
    # Area term quadruples, perimeter term doubles: between 2x and 4x.
    assert 2 * c_small < c_large < 4 * c_small


def test_capacitance_only_counts_requested_net(tech):
    rects = [
        Rect(0, 0, 1000, 1000, "metal1", "n"),
        Rect(0, 0, 5000, 5000, "metal1", "other"),
    ]
    alone = estimate_net_capacitance(rects[:1], tech, "n")
    both = estimate_net_capacitance(rects, tech, "n")
    assert alone == both


def test_capacitance_report_sorted(tech):
    rects = [
        Rect(0, 0, 1000, 1000, "metal1", "b"),
        Rect(0, 0, 1000, 1000, "poly", "a"),
    ]
    report = capacitance_report(rects, tech)
    assert list(report) == ["a", "b"]
    assert all(value > 0 for value in report.values())

"""Region algebra: the Fig. 1 subtraction kernel, union area, coverage."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Rect,
    covered_by,
    merge_touching,
    overlap_classification,
    subtract,
    subtract_many,
    union_area,
)

coords = st.integers(min_value=-2_000, max_value=2_000)
sizes = st.integers(min_value=1, max_value=1_000)


def rects(layer="locos"):
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h, layer), coords, coords, sizes, sizes
    )


def test_subtract_disjoint_returns_copy():
    solid = Rect(0, 0, 10, 10, "locos")
    out = subtract(solid, Rect(20, 20, 30, 30, "locos"))
    assert len(out) == 1
    assert out[0].as_tuple() == solid.as_tuple()
    assert out[0] is not solid


def test_subtract_full_cover_returns_nothing():
    solid = Rect(0, 0, 10, 10, "locos")
    assert subtract(solid, Rect(-5, -5, 15, 15, "locos")) == []


def test_subtract_interior_hole_gives_four_pieces():
    solid = Rect(0, 0, 10, 10, "locos")
    pieces = subtract(solid, Rect(3, 3, 7, 7, "locos"))
    assert len(pieces) == 4
    assert sum(p.area for p in pieces) == 100 - 16


def _case_cutter(solid, h_case, v_case):
    """Build a cutter realising one of the 16 overlap cases of Fig. 1."""
    x1, y1, x2, y2 = solid.as_tuple()
    thirds_x = (x2 - x1) // 3
    thirds_y = (y2 - y1) // 3
    h_spans = {
        0: (x1 - 10, x2 + 10),
        1: (x1 - 10, x1 + thirds_x),
        2: (x2 - thirds_x, x2 + 10),
        3: (x1 + thirds_x, x2 - thirds_x),
    }
    v_spans = {
        0: (y1 - 10, y2 + 10),
        1: (y1 - 10, y1 + thirds_y),
        2: (y2 - thirds_y, y2 + 10),
        3: (y1 + thirds_y, y2 - thirds_y),
    }
    hx1, hx2 = h_spans[h_case]
    vy1, vy2 = v_spans[v_case]
    return Rect(hx1, vy1, hx2, vy2, "locos")


@pytest.mark.parametrize(
    "h_case,v_case", list(itertools.product(range(4), repeat=2))
)
def test_all_sixteen_overlap_cases(h_case, v_case):
    """Fig. 1: every horizontal × vertical overlap combination is exact."""
    solid = Rect(0, 0, 90, 90, "locos")
    cutter = _case_cutter(solid, h_case, v_case)
    assert overlap_classification(solid, cutter) == (h_case, v_case)
    pieces = subtract(solid, cutter)
    overlap = solid.intersection(cutter)
    assert overlap is not None
    # Exactness: piece areas sum to solid minus overlap and pieces are
    # disjoint from the cutter and from each other.
    assert sum(p.area for p in pieces) == solid.area - overlap.area
    for piece in pieces:
        assert not piece.intersects(cutter)
    for a, b in itertools.combinations(pieces, 2):
        assert not a.intersects(b)


def test_overlap_classification_requires_overlap():
    with pytest.raises(ValueError):
        overlap_classification(
            Rect(0, 0, 10, 10, "locos"), Rect(20, 20, 30, 30, "locos")
        )


def test_subtract_many_terminates_when_covered():
    solids = [Rect(0, 0, 10, 10, "locos"), Rect(20, 0, 30, 10, "locos")]
    covers = [Rect(-1, -1, 31, 11, "locos")]
    assert subtract_many(solids, covers) == []
    assert covered_by(solids, covers)


def test_covered_by_multiple_partial_covers():
    solid = [Rect(0, 0, 100, 10, "locos")]
    halves = [Rect(-1, -1, 55, 11, "locos"), Rect(50, -1, 101, 11, "locos")]
    assert covered_by(solid, halves)
    assert not covered_by(solid, halves[:1])


def test_union_area_basic():
    assert union_area([]) == 0
    assert union_area([Rect(0, 0, 10, 10, "m1")]) == 100
    assert union_area([Rect(0, 0, 10, 10, "m1"), Rect(5, 0, 15, 10, "m1")]) == 150
    # identical rects count once
    assert union_area([Rect(0, 0, 10, 10, "m1")] * 3) == 100


def test_merge_touching_merges_aligned_same_net():
    rects = [
        Rect(0, 0, 10, 5, "m1", net="a"),
        Rect(10, 0, 20, 5, "m1", net="a"),
        Rect(0, 20, 10, 25, "m1", net="a"),
    ]
    merged = merge_touching(rects)
    assert len(merged) == 2
    assert any(r.as_tuple() == (0, 0, 20, 5) for r in merged)


def test_merge_touching_keeps_different_nets_apart():
    rects = [
        Rect(0, 0, 10, 5, "m1", net="a"),
        Rect(10, 0, 20, 5, "m1", net="b"),
    ]
    assert len(merge_touching(rects)) == 2


@given(rects(), rects())
def test_subtract_conservation_property(solid, cutter):
    """Area conservation: |solid| = |solid ∖ cutter| + |solid ∩ cutter|."""
    pieces = subtract(solid, cutter)
    overlap = solid.intersection(cutter)
    overlap_area = overlap.area if overlap else 0
    assert sum(p.area for p in pieces) + overlap_area == solid.area


@given(st.lists(rects(), min_size=0, max_size=6))
def test_union_area_bounds_property(items):
    total = union_area(items)
    assert 0 <= total <= sum(r.area for r in items)
    if items:
        assert total >= max(r.area for r in items)


@given(st.lists(rects(), min_size=1, max_size=5), rects())
def test_covered_by_iff_no_remainder(solids, cover):
    remainder = subtract_many(solids, [cover])
    assert covered_by(solids, [cover]) == (not remainder)

"""Property tests: the incremental FrontierIndex equals from-scratch state.

The index's whole contract is invisibility — every query must reproduce,
element for element and in order, what the from-scratch scans
(:func:`frontier_filter`, the ``(net, layer)`` bucket rebuild, the naive
bridge-blocking sweep) would compute on the owner's current rect list.
These tests drive randomized merge/stretch/shrink/translate sequences
through the :class:`LayoutObject` mutation API with queries interleaved
(so warm caches must be invalidated correctly, not just rebuilt lazily)
and compare against the naive recomputation after every step.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compact import Compactor, frontier_filter
from repro.db import LayoutObject
from repro.geometry import Direction, Rect, bounding_box
from repro.tech import generic_bicmos_1u

TECH = generic_bicmos_1u()

LAYERS = ["metal1", "metal2", "poly", "ndiff"]

rects = st.builds(
    lambda x, y, w, h, layer, net, no_overlap: Rect(
        x, y, x + w, y + h, layer, net, no_overlap=no_overlap
    ),
    st.integers(min_value=-40_000, max_value=40_000),
    st.integers(min_value=-40_000, max_value=40_000),
    st.integers(min_value=1_500, max_value=15_000),
    st.integers(min_value=1_500, max_value=15_000),
    st.sampled_from(LAYERS),
    st.sampled_from(["a", "b", None]),
    st.booleans(),
)

directions = st.sampled_from(list(Direction))

# One mutation step, applied through the LayoutObject API.  Rect/amount
# selectors are drawn as raw integers and wrapped modulo the live state at
# application time, so every drawn program is applicable to any structure.
operations = st.one_of(
    st.tuples(st.just("add"), rects),
    st.tuples(st.just("merge"), st.lists(rects, min_size=1, max_size=3)),
    st.tuples(
        st.just("shrink"),
        st.integers(min_value=0, max_value=255),
        directions,
        st.integers(min_value=100, max_value=8_000),
    ),
    st.tuples(
        st.just("stretch"),
        st.integers(min_value=0, max_value=255),
        directions,
        st.integers(min_value=100, max_value=8_000),
    ),
    st.tuples(
        st.just("translate"),
        st.integers(min_value=-5_000, max_value=5_000),
        st.integers(min_value=-5_000, max_value=5_000),
    ),
    st.tuples(st.just("query"), directions, st.sampled_from(["a", "b", None])),
)


def _arrival_nets(net):
    return frozenset() if net is None else frozenset({net})


def _apply(obj, index, op):
    kind = op[0]
    if kind == "add":
        obj.add_rect(op[1].copy())
    elif kind == "merge":
        other = LayoutObject("arrival", TECH)
        for rect in op[1]:
            other.add_rect(rect.copy())
        obj.merge(other)
    elif kind in ("shrink", "stretch"):
        _, selector, direction, amount = op
        live = obj.nonempty_rects
        if not live:
            return
        rect = live[selector % len(live)]
        sign = 1 if direction.is_positive else -1
        coord = rect.edge_coord(direction)
        if kind == "shrink":
            rect.set_variable()
            obj.move_edge(rect, direction, coord - sign * amount)
        else:
            obj.move_stretch(rect, direction, coord + sign * amount)
    elif kind == "translate":
        obj.translate(op[1], op[2])
    else:  # "query": warm the caches mid-sequence
        index.sync()
        index.frontier_groups(op[1], _arrival_nets(op[2]))


def _check_equals_scratch(obj, index):
    index.sync()
    fresh = obj.nonempty_rects
    assert index.nonempty == len(fresh)

    # Emptiness and the exact bbox are served from the index (both through
    # the index API and through the LayoutObject methods that prefer it).
    assert index.is_empty() == (not fresh)
    assert obj.is_empty() == (not fresh)
    expected_box = bounding_box(fresh)
    for served in (index.bbox(), obj.bbox()):
        if expected_box is None:
            assert served is None
        else:
            assert served is not None
            assert (served.x1, served.y1, served.x2, served.y2, served.layer) \
                == (expected_box.x1, expected_box.y1, expected_box.x2,
                    expected_box.y2, expected_box.layer)

    for direction in Direction:
        for nets in (frozenset(), frozenset({"a"}), frozenset({"a", "b"})):
            groups = index.frontier_groups(direction, nets)
            flat = [rect for _, rects_ in groups for rect in rects_]
            expected = frontier_filter(fresh, direction, nets)
            assert [id(r) for r in flat] == [id(r) for r in expected]

    buckets: dict = {}
    for rect in fresh:
        if rect.net is not None:
            buckets.setdefault((rect.net, rect.layer), []).append(rect)
    for net in ("a", "b"):
        for layer in LAYERS:
            expected = buckets.get((net, layer), [])
            served = [
                r for r in index.residents(net, layer) if not r.is_empty
            ]
            assert [id(r) for r in served] == [id(r) for r in expected]


@settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(
    st.lists(rects, min_size=1, max_size=4),
    st.lists(operations, min_size=1, max_size=8),
)
def test_incremental_index_equals_from_scratch(initial, ops):
    """After any mutation sequence the index matches naive recomputation."""
    obj = LayoutObject("main", TECH)
    for rect in initial:
        obj.add_rect(rect)
    index = obj.frontier_index()
    for op in ops:
        _apply(obj, index, op)
        _check_equals_scratch(obj, index)


@settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(
    st.lists(rects, min_size=1, max_size=4),
    st.lists(operations, min_size=0, max_size=6),
)
def test_snapshot_carries_an_exact_index(initial, ops):
    """A snapshot's ported index answers like a fresh one on the clone."""
    obj = LayoutObject("main", TECH)
    for rect in initial:
        obj.add_rect(rect)
    index = obj.frontier_index()
    for op in ops:
        _apply(obj, index, op)
    index.sync()
    index.frontier_groups(Direction.WEST, frozenset({"a"}))  # warm a cache

    clone = obj.snapshot()
    assert clone._index is not None
    assert all(r is not s for r, s in zip(clone.rects, obj.rects))
    _check_equals_scratch(clone, clone._index)
    # ... and the original is untouched by cloning.
    _check_equals_scratch(obj, index)


@settings(
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(
    st.lists(rects, min_size=1, max_size=5),
    st.lists(rects, min_size=1, max_size=3),
    directions,
)
def test_bridge_blocked_matches_naive_scan(fixed, bridges, direction):
    """Indexed bridge blocking equals the unindexed rule-by-rule sweep."""
    main = LayoutObject("main", TECH)
    for rect in fixed:
        main.add_rect(rect)
    index = main.frontier_index()
    compactor = Compactor(use_index=False)
    for bridge in bridges:
        if bridge.net is None or bridge.is_empty:
            continue
        expected = compactor._bridge_blocked(main, bridge, bridge.net)
        assert index.bridge_blocked(bridge, bridge.net) == expected


@settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(st.lists(rects, min_size=2, max_size=6), directions)
def test_indexed_compactor_matches_unindexed(rect_list, direction):
    """Full-featured compaction is byte-identical with the index on or off."""
    def pack(use_index):
        main = LayoutObject("main", TECH)
        compactor = Compactor(use_index=use_index)
        for i, rect in enumerate(rect_list):
            mover = LayoutObject(f"m{i}", TECH)
            clone = rect.copy()
            clone.set_variable()
            mover.add_rect(clone)
            compactor.compact(main, mover, direction)
        return [
            (r.x1, r.y1, r.x2, r.y2, r.layer, r.net, r.no_overlap)
            for r in main.rects
        ]

    assert pack(True) == pack(False)

"""LayoutObject: merge/copy semantics, metrics, variable-edge machinery."""

import pytest

from repro.db import ArrayLink, InsideLink, LayoutObject
from repro.geometry import Direction, Rect
from repro.tech import RuleError


def row_object(tech, name="row"):
    """A contact-row-like object with an InsideLink and an ArrayLink."""
    obj = LayoutObject(name, tech)
    poly = obj.add_rect(Rect(0, 0, 10000, 2600, "poly", "g"))
    metal = obj.add_rect(Rect(0, 0, 10000, 2600, "metal1", "g"))
    obj.add_link(InsideLink(metal, [(poly, 0)]))
    link = ArrayLink("contact", 1000, 1200, [(poly, 800), (metal, 500)], "g")
    link.rebuild()
    for rect in link.rects:
        obj.rects.append(rect)
    obj.add_link(link)
    return obj


def test_add_rect_validates_layer(tech):
    obj = LayoutObject("o", tech)
    with pytest.raises(RuleError):
        obj.add_rect(Rect(0, 0, 1, 1, "bogus"))


def test_metrics(tech):
    obj = LayoutObject("o", tech)
    assert obj.is_empty()
    assert obj.bbox() is None
    assert obj.area() == 0
    obj.add_rect(Rect(0, 0, 10, 10, "poly"))
    obj.add_rect(Rect(20, 0, 30, 10, "poly"))
    assert obj.bbox().as_tuple() == (0, 0, 30, 10)
    assert obj.area() == 300
    assert obj.drawn_area() == 200
    assert obj.width == 30 and obj.height == 10


def test_queries(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10, 10, "poly", "a"))
    obj.add_rect(Rect(0, 0, 10, 10, "metal1", "b"))
    obj.add_rect(Rect(0, 0, 0, 10, "metal1"))  # empty
    assert obj.layers() == {"poly", "metal1"}
    assert obj.nets() == {"a", "b"}
    assert len(obj.rects_on("metal1")) == 1
    assert len(obj.rects_on_net("a")) == 1
    assert len(obj.nonempty_rects) == 2


def test_merge_copies_rects_and_links(tech):
    source = row_object(tech)
    target = LayoutObject("t", tech)
    added = target.merge(source)
    assert len(added) == len(source.rects)
    # Mutating the copy must not affect the source.
    added[0].translate(5, 5)
    assert source.rects[0].as_tuple() != added[0].as_tuple()
    assert len(target.links) == len(source.links)
    # Links in the target reference the target's rects, not the source's.
    for link in target.links:
        for rect in link.involved_rects():
            assert any(rect is r for r in target.rects)


def test_copy_statement_semantics(tech):
    """`trans2 = trans1` must produce a fully independent object."""
    original = row_object(tech)
    clone = original.copy("clone")
    clone.translate(1000, 0)
    assert original.bbox().as_tuple() != clone.bbox().as_tuple()
    assert clone.name == "clone"


def test_translate_and_normalize(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(100, 200, 300, 400, "poly"))
    obj.add_label("pin", 150, 250, "metal1")
    obj.translate(-100, -200)
    assert obj.bbox().as_tuple() == (0, 0, 200, 200)
    assert (obj.labels[0].x, obj.labels[0].y) == (50, 50)
    obj.translate(37, 19)
    obj.normalize()
    assert obj.bbox().as_tuple() == (0, 0, 200, 200)


def test_mirror_keeps_links_alive(tech):
    obj = row_object(tech)
    cuts_before = len([r for r in obj.rects_on("contact")])
    obj.mirror_y(axis_x=0)
    obj.rebuild_links()
    assert len([r for r in obj.rects_on("contact")]) == cuts_before
    assert obj.bbox().x2 <= 0


def test_set_net_and_rename(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10, 10, "poly", "a"))
    obj.add_rect(Rect(0, 0, 10, 10, "metal1", "b"))
    obj.set_net("x", layer="poly")
    assert obj.rects_on("poly")[0].net == "x"
    assert obj.rects_on("metal1")[0].net == "b"
    obj.rename_nets({"x": "b", "b": "x"})  # simultaneous swap
    assert obj.rects_on("poly")[0].net == "b"
    assert obj.rects_on("metal1")[0].net == "x"


def test_shrink_limit_respects_min_width(tech):
    obj = LayoutObject("o", tech)
    rect = obj.add_rect(Rect(0, 0, 10000, 2000, "metal1"))
    # metal1 min width 1500: the east edge may come in to x = 1500.
    assert obj.shrink_limit(rect, Direction.EAST) == 1500
    assert obj.shrink_limit(rect, Direction.WEST) == 8500


def test_shrink_limit_respects_explicit_bounds(tech):
    obj = LayoutObject("o", tech)
    rect = obj.add_rect(Rect(0, 0, 10000, 2000, "metal1"))
    rect.edge(Direction.EAST).min_coord = 7000
    assert obj.shrink_limit(rect, Direction.EAST) == 7000


def test_shrink_limit_protects_array_cut(tech):
    obj = row_object(tech)
    poly = obj.rects_on("poly")[0]
    # Shrinking the poly east edge must keep room for one contact:
    # far side (west) region edge + cut + margin.
    limit = obj.shrink_limit(poly, Direction.EAST)
    assert limit == 800 + 1000 + 800


def test_move_edge_clamps_and_rebuilds(tech):
    obj = row_object(tech)
    poly = obj.rects_on("poly")[0]
    cuts_before = len(obj.rects_on("contact"))
    achieved = obj.move_edge(poly, Direction.EAST, 0)  # ask for impossible
    assert achieved == obj.shrink_limit(poly, Direction.EAST)
    assert len(obj.rects_on("contact")) == 1
    assert len(obj.rects_on("contact")) < cuts_before
    # metal follows the poly inward (InsideLink).
    metal = obj.rects_on("metal1")[0]
    assert metal.x2 <= poly.x2


def test_move_edge_never_moves_outward(tech):
    obj = LayoutObject("o", tech)
    rect = obj.add_rect(Rect(0, 0, 10000, 2000, "metal1"))
    achieved = obj.move_edge(rect, Direction.EAST, 20000)
    assert achieved == 10000  # clamped to the current coordinate


def test_move_stretch_releases_enclosure(tech):
    obj = row_object(tech)
    metal = obj.rects_on("metal1")[0]
    obj.move_stretch(metal, Direction.NORTH, 5000)
    assert metal.y2 == 5000
    obj.rebuild_links()  # must NOT clamp the released edge back
    assert metal.y2 == 5000


def test_move_stretch_ignores_inward_requests(tech):
    obj = row_object(tech)
    metal = obj.rects_on("metal1")[0]
    obj.move_stretch(metal, Direction.NORTH, 100)  # inward: refused
    assert metal.y2 == 2600


def test_labels_copy_with_object(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10, 10, "poly"))
    obj.add_label("out", 5, 5, "metal1")
    clone = obj.copy()
    assert clone.labels[0].text == "out"
    clone.labels[0].text = "changed"
    assert obj.labels[0].text == "out"

"""PLDL → Python translation: emitted code must match interpretation."""

import pytest

from repro.io import dumps_object
from repro.lang import EvalError, Interpreter, Runtime, translate
from repro.library import DIFF_PAIR_SOURCE

CONTACT_ROW = """
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
END
"""


def run_translated(tech, source, entity, **kwargs):
    code = translate(source)
    namespace = {}
    exec(compile(code, "<generated>", "exec"), namespace)
    runtime = Runtime(tech)
    if "main" in namespace:
        namespace["main"](runtime)
    return namespace[entity](runtime, **kwargs)


def test_translated_module_is_importable_python(tech):
    code = translate(CONTACT_ROW)
    compiled = compile(code, "<generated>", "exec")  # must be valid Python
    assert "def ContactRow(rt, layer, W=None, L=None):" in code


def test_contact_row_matches_interpreter(tech):
    interpreted = Interpreter(tech)
    interpreted.load(CONTACT_ROW)
    via_interp = interpreted.call("ContactRow", layer="poly", W=1.0, L=10.0)
    via_python = run_translated(tech, CONTACT_ROW, "ContactRow", layer="poly", W=1.0, L=10.0)
    assert dumps_object(via_interp).replace(via_interp.name, "X") == dumps_object(
        via_python
    ).replace(via_python.name, "X")


def test_diff_pair_matches_interpreter(tech):
    """The paper's Fig. 7 module translates and matches exactly."""
    interpreted = Interpreter(tech)
    interpreted.load(DIFF_PAIR_SOURCE)
    via_interp = interpreted.call("DiffPair", W=10.0, L=1.0)
    via_python = run_translated(tech, DIFF_PAIR_SOURCE, "DiffPair", W=10.0, L=1.0)
    assert via_interp.bbox().as_tuple() == via_python.bbox().as_tuple()
    assert len(via_interp.nonempty_rects) == len(via_python.nonempty_rects)


def test_control_flow_translation(tech):
    source = """
ENT Stairs(<N>)
  FOR i = 0 TO N - 1
    IF i / 2 == 1
      WIRE("metal1", i * 10, 0, i * 10 + 5, 0)
    ELSE
      WIRE("metal2", i * 10, 0, i * 10 + 5, 0)
    ENDIF
  ENDFOR
END
"""
    built = run_translated(tech, source, "Stairs", N=4.0)
    interp = Interpreter(tech)
    interp.load(source)
    reference = interp.call("Stairs", N=4.0)
    assert len(built.rects_on("metal1")) == len(reference.rects_on("metal1"))
    assert len(built.rects_on("metal2")) == len(reference.rects_on("metal2"))


def test_alt_translation_with_rollback(tech):
    source = """
ENT V()
  x = 1
  ALT
    x = 5
    INBOX("poly", x, x)
    ERROR("no")
  ELSEALT
    INBOX("metal1", 5, 5)
  ENDALT
END
"""
    built = run_translated(tech, source, "V")
    assert built.rects_on("poly") == []
    assert len(built.rects_on("metal1")) == 1
    reference = Interpreter(tech)
    reference.load(source)
    ref = reference.call("V")
    assert dumps_object(built).replace(built.name, "X") == dumps_object(ref).replace(
        ref.name, "X"
    )


def test_variable_builtin_translation(tech):
    source = """
ENT V()
  INBOX("poly", 4, 4)
  VARIABLE("poly")
END
"""
    built = run_translated(tech, source, "V")
    from repro.geometry import Direction

    assert built.rects_on("poly")[0].edge_variable(Direction.NORTH)


def test_top_level_main_generated(tech):
    code = translate(CONTACT_ROW + 'r = ContactRow(layer = "poly")\n')
    assert "def main(rt):" in code
    namespace = {}
    exec(compile(code, "<generated>", "exec"), namespace)
    namespace["main"](Runtime(tech))  # runs without error


def test_geometry_outside_entity_rejected(tech):
    with pytest.raises(EvalError):
        translate('INBOX("poly")\n')

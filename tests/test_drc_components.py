"""Pin the `_Components` merged-shape semantics the DRC checks rely on.

The checker treats same-layer rects that touch or overlap as one merged
polygon.  These tests lock the exact membership rules (edge-touching and
corner-touching merge, a 1-dbu gap does not), the per-component net sets,
and the cross-layer ``touches_component`` exemption the spacing check
uses — directly against the reference ``_Components``, and then assert
the sweep-fed :class:`repro.drc.index.DrcIndex` produces the identical
partition and answers.  Behaviour is locked by these tests, not by the
index rewrite itself.
"""

from repro.db import LayoutObject
from repro.drc.checker import _Components
from repro.drc.index import DrcIndex
from repro.geometry import Rect


def _obj(tech, *rects):
    obj = LayoutObject("o", tech)
    for rect in rects:
        obj.add_rect(rect)
    return obj


def _partition(component_of, n):
    """Canonical partition: groups of indices, ordered by first member."""
    groups = {}
    for index in range(n):
        groups.setdefault(component_of(index), []).append(index)
    return list(groups.values())


def _both_partitions(tech, *rects):
    """The reference and the indexed partition — asserted equal."""
    comps = _Components(list(rects))
    index = DrcIndex(_obj(tech, *rects))
    index.sync()
    ref = _partition(comps.component, len(rects))
    swept = _partition(index.component, len(rects))
    assert ref == swept
    return comps, index, ref


# ----------------------------------------------------------------------
# membership
# ----------------------------------------------------------------------
def test_edge_touching_rects_merge(tech):
    a = Rect(0, 0, 2000, 2000, "metal1")
    b = Rect(2000, 0, 4000, 2000, "metal1")  # shares the x=2000 edge
    _, _, partition = _both_partitions(tech, a, b)
    assert partition == [[0, 1]]


def test_corner_touching_rects_merge(tech):
    """A single shared corner point joins the component (closed interval)."""
    a = Rect(0, 0, 2000, 2000, "metal1")
    b = Rect(2000, 2000, 4000, 4000, "metal1")  # touches only at (2000, 2000)
    _, _, partition = _both_partitions(tech, a, b)
    assert partition == [[0, 1]]


def test_one_dbu_gap_stays_separate(tech):
    a = Rect(0, 0, 2000, 2000, "metal1")
    b = Rect(2001, 0, 4001, 2000, "metal1")  # 1-dbu gap
    _, _, partition = _both_partitions(tech, a, b)
    assert partition == [[0], [1]]


def test_overlapping_rects_merge(tech):
    a = Rect(0, 0, 2000, 2000, "metal1")
    b = Rect(1000, 1000, 3000, 3000, "metal1")
    _, _, partition = _both_partitions(tech, a, b)
    assert partition == [[0, 1]]


def test_components_are_per_layer(tech):
    """Coincident rects on different layers never share a component."""
    a = Rect(0, 0, 2000, 2000, "metal1")
    b = Rect(0, 0, 2000, 2000, "metal2")
    _, _, partition = _both_partitions(tech, a, b)
    assert partition == [[0], [1]]


def test_transitive_chain_is_one_component(tech):
    chain = [
        Rect(i * 2000, 0, (i + 1) * 2000, 2000, "metal1") for i in range(5)
    ]
    _, _, partition = _both_partitions(tech, *chain)
    assert partition == [[0, 1, 2, 3, 4]]


def test_nets_do_not_affect_membership(tech):
    """Merging is purely geometric: different nets still form one shape
    (the shorts check reports that, the component does not split)."""
    a = Rect(0, 0, 2000, 2000, "metal1", "a")
    b = Rect(2000, 0, 4000, 2000, "metal1", "b")
    _, _, partition = _both_partitions(tech, a, b)
    assert partition == [[0, 1]]


# ----------------------------------------------------------------------
# component_nets
# ----------------------------------------------------------------------
def test_component_nets_collects_all_labels(tech):
    rects = (
        Rect(0, 0, 2000, 2000, "metal1", "a"),
        Rect(2000, 0, 4000, 2000, "metal1"),
        Rect(4000, 0, 6000, 2000, "metal1", "b"),
        Rect(9000, 0, 11000, 2000, "metal1", "c"),
    )
    comps, index, partition = _both_partitions(tech, *rects)
    assert partition == [[0, 1, 2], [3]]
    assert comps.component_nets(comps.component(0)) == {"a", None, "b"}
    assert comps.component_nets(comps.component(3)) == {"c"}
    assert index.component_nets(index.component(0)) == {"a", None, "b"}
    assert index.component_nets(index.component(3)) == {"c"}


def test_members_preserve_source_order(tech):
    rects = (
        Rect(4000, 0, 6000, 2000, "metal1"),
        Rect(0, 0, 2000, 2000, "metal1"),
        Rect(2000, 0, 4000, 2000, "metal1"),
    )
    comps, index, _ = _both_partitions(tech, *rects)
    assert [id(m) for m in comps.members(comps.component(0))] == [
        id(r) for r in rects
    ]
    assert [id(m) for m in index.members(index.component(0))] == [
        id(r) for r in rects
    ]


# ----------------------------------------------------------------------
# cross-layer touches_component (the gate-attachment spacing exemption)
# ----------------------------------------------------------------------
def test_touches_component_cross_layer(tech):
    """A gate touching one diffusion component is exempt from the
    poly/pdiff spacing rule against it — but not against a second,
    untouched component."""
    gate = Rect(0, -6000, 1000, 6000, "poly")
    body_left = Rect(-2500, -5000, 500, 5000, "pdiff")
    body_right = Rect(500, -5000, 3500, 5000, "pdiff")
    far = Rect(1500, 8000, 4500, 10000, "pdiff")  # separate component
    rects = (gate, body_left, body_right, far)
    comps, index, partition = _both_partitions(tech, *rects)
    assert partition == [[0], [1, 2], [3]]

    body_comp = comps.component(1)
    far_comp = comps.component(3)
    assert comps.touches_component(gate, body_comp)
    assert not comps.touches_component(gate, far_comp)

    # The index answers the same queries by rect position, for every layer
    # pair carrying a positive SPACE rule (poly/pdiff does).
    assert index.touches_component(0, index.component(1))
    assert not index.touches_component(0, index.component(3))


def test_touches_component_includes_edge_contact(tech):
    """Edge abutment (closed interval) counts as touching the component."""
    gate = Rect(0, 0, 1000, 5000, "poly")
    body = Rect(1000, 0, 4000, 5000, "pdiff")  # abuts the gate edge
    rects = (gate, body)
    comps, index, _ = _both_partitions(tech, *rects)
    assert comps.touches_component(gate, comps.component(1))
    assert index.touches_component(0, index.component(1))

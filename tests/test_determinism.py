"""Determinism: generators must be exactly reproducible.

A layout generator that produces different geometry on different runs is
useless for tape-out review; these tests pin byte-identical output for the
main generators and the IO formats.
"""

import pytest

from repro.io import dumps_cif, dumps_object
from repro.lang import Interpreter
from repro.library import (
    DIFF_PAIR_SOURCE,
    centroid_cross_coupled_pair,
    contact_row,
    cross_coupled_pair,
    mos_capacitor,
    poly_resistor,
    symmetric_current_mirror,
)


def normalized_dump(obj):
    return dumps_object(obj).replace(obj.name, "X")


@pytest.mark.parametrize(
    "builder",
    [
        lambda t: contact_row(t, "poly", w=1.0, length=10.0, net="g"),
        lambda t: symmetric_current_mirror(t, 8.0, 1.0),
        lambda t: cross_coupled_pair(t, 10.0, 1.0),
        lambda t: poly_resistor(t, segments=4),
        lambda t: mos_capacitor(t, 15.0, 15.0),
        lambda t: centroid_cross_coupled_pair(t),
    ],
    ids=["row", "mirror", "crosscoupled", "resistor", "cap", "moduleE"],
)
def test_builders_are_deterministic(tech, builder):
    first = normalized_dump(builder(tech))
    second = normalized_dump(builder(tech))
    assert first == second


def test_interpreter_is_deterministic(tech):
    def run():
        interp = Interpreter(tech)
        interp.load(DIFF_PAIR_SOURCE)
        return normalized_dump(interp.call("DiffPair", W=10.0, L=1.0))

    assert run() == run()


def test_amplifier_is_deterministic(tech):
    from repro.amplifier import build_amplifier

    first = normalized_dump(build_amplifier(tech))
    second = normalized_dump(build_amplifier(tech))
    assert first == second


def test_gds_bytes_are_deterministic(tech, tmp_path):
    from repro.io import write_gds

    row = contact_row(tech, "poly", w=1.0, length=10.0, name="ROW")
    a, b = tmp_path / "a.gds", tmp_path / "b.gds"
    write_gds(row, a)
    write_gds(row, b)
    assert a.read_bytes() == b.read_bytes()


def test_cif_text_is_deterministic(tech):
    row = contact_row(tech, "poly", w=1.0, length=10.0, name="ROW")
    assert dumps_cif(row) == dumps_cif(row)


def test_order_optimizer_is_deterministic(tech):
    from repro.geometry import Direction
    from repro.opt import OrderOptimizer, Step

    def steps():
        return [
            Step(contact_row(tech, "pdiff", w=4.0 + i, net=f"n{i}", name=f"s{i}"),
                 Direction.WEST)
            for i in range(4)
        ]

    a = OrderOptimizer().optimize("m", tech, steps())
    b = OrderOptimizer().optimize("m", tech, steps())
    assert a.best_order == b.best_order
    assert a.best_score == b.best_score

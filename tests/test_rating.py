"""The rating function: area, sensitive-net capacitance, coupling."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Rect
from repro.opt import Rating


def test_area_term(tech):
    rating = Rating(area_weight=1.0)
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1"))
    assert rating.evaluate(obj) == pytest.approx(100.0)  # 10×10 µm


def test_area_weight_scales(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1"))
    assert Rating(area_weight=2.0).evaluate(obj) == pytest.approx(
        2 * Rating(area_weight=1.0).evaluate(obj)
    )


def test_sensitive_net_term(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "quiet"))
    base = Rating(area_weight=1.0).evaluate(obj)
    unweighted = Rating(area_weight=1.0, capacitance_weights={"other": 1.0})
    assert unweighted.evaluate(obj) == pytest.approx(base)
    weighted = Rating(area_weight=1.0, capacitance_weights={"quiet": 1.0})
    assert weighted.evaluate(obj) > base


def test_coupling_counts_cross_net_overlap(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "a"))
    obj.add_rect(Rect(5000, 0, 15000, 10000, "metal2", "b"))
    assert Rating.coupling_area(obj) == 5000 * 10000
    rated = Rating(area_weight=0.0, coupling_weight=1.0).evaluate(obj)
    assert rated == pytest.approx(50.0)  # 50 µm² overlap


def test_coupling_ignores_same_net(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "a"))
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal2", "a"))  # same net
    assert Rating.coupling_area(obj) == 0


def test_coupling_ignores_same_layer(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "a"))
    obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "b"))  # same layer
    assert Rating.coupling_area(obj) == 0


def test_lower_is_better_semantics(tech):
    """A denser layout must rate strictly better (smaller)."""
    dense = LayoutObject("d", tech)
    dense.add_rect(Rect(0, 0, 10000, 10000, "metal1"))
    sparse = LayoutObject("s", tech)
    sparse.add_rect(Rect(0, 0, 10000, 10000, "metal1"))
    sparse.add_rect(Rect(40000, 0, 41000, 1000, "metal1"))
    rating = Rating()
    assert rating.evaluate(dense) < rating.evaluate(sparse)

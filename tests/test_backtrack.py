"""Backtracking over topology variants (Secs. 2.1, 2.4)."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Rect
from repro.opt import BacktrackError, Rating, select_variant
from repro.tech import RuleError


def make_builder(tech, width, height, fail=False):
    def build():
        if fail:
            raise RuleError("design rule cannot be fulfilled")
        obj = LayoutObject("v", tech)
        obj.add_rect(Rect(0, 0, width, height, "metal1"))
        return obj

    return build


def test_requires_variants():
    with pytest.raises(ValueError):
        select_variant([])


def test_best_variant_wins_by_rating(tech):
    result = select_variant(
        [
            make_builder(tech, 10000, 10000),
            make_builder(tech, 5000, 5000),
            make_builder(tech, 8000, 8000),
        ]
    )
    assert result.best_index == 1
    assert result.best.width == 5000
    assert len(result.trials) == 3
    assert all(error is None for _, _, error in result.trials)


def test_failed_variants_are_skipped(tech):
    result = select_variant(
        [
            make_builder(tech, 10000, 10000, fail=True),
            make_builder(tech, 7000, 7000),
        ]
    )
    assert result.best_index == 1
    index, score, error = result.trials[0]
    assert index == 0 and score is None and "fulfilled" in error


def test_all_variants_failing_raises(tech):
    with pytest.raises(BacktrackError):
        select_variant(
            [make_builder(tech, 1, 1, fail=True), make_builder(tech, 1, 1, fail=True)]
        )


def test_first_feasible_mode_stops_early(tech):
    calls = []

    def tracked(width, fail=False):
        inner = make_builder(tech, width, width, fail)

        def build():
            calls.append(width)
            return inner()

        return build

    result = select_variant(
        [tracked(9000, fail=True), tracked(8000), tracked(1000)],
        first_feasible=True,
    )
    assert result.best_index == 1  # 1000-variant never built
    assert calls == [9000, 8000]


def test_custom_rating_drives_selection(tech):
    # Prefer the variant with less capacitance on a marked net even though
    # its area is larger.
    def small_noisy():
        obj = LayoutObject("v", tech)
        obj.add_rect(Rect(0, 0, 5000, 5000, "metal1", "sensitive"))
        return obj

    def big_quiet():
        obj = LayoutObject("v", tech)
        obj.add_rect(Rect(0, 0, 8000, 8000, "poly"))
        return obj

    rating = Rating(area_weight=0.001, capacitance_weights={"sensitive": 10.0})
    result = select_variant([small_noisy, big_quiet], rating=rating)
    assert result.best_index == 1

"""Golden-cell regression: content hashes over library × technology."""

import json

from repro.library import GOLDEN_CELLS
from repro.verify import (
    GOLDEN_PATH,
    cell_fingerprint,
    compute_fingerprints,
    load_golden,
    update_golden,
    verify_golden,
)


def test_committed_golden_file_matches_current_code():
    """The heart of the regression: rebuild every cell, compare hashes."""
    assert GOLDEN_PATH.exists()
    assert verify_golden() == []


def test_fingerprint_is_deterministic(tech):
    cell = GOLDEN_CELLS[0]
    assert cell_fingerprint(cell, tech) == cell_fingerprint(cell, tech)


def test_fingerprints_cover_all_supported_cells(tech, tech05):
    prints = compute_fingerprints()
    assert set(prints) == {"generic_bicmos_1u", "generic_cmos_05u"}
    for tech_obj, name in ((tech, "generic_bicmos_1u"), (tech05, "generic_cmos_05u")):
        expected = {c.name for c in GOLDEN_CELLS if c.supported(tech_obj)}
        assert set(prints[name]) == expected
    # The bipolar cells exist only where the bipolar layers do.
    assert "npn_transistor" in prints["generic_bicmos_1u"]
    assert "npn_transistor" not in prints["generic_cmos_05u"]


def test_verify_golden_detects_changes(tmp_path):
    path = tmp_path / "golden.json"
    techs = ["generic_cmos_05u"]  # one technology keeps the test quick
    update_golden(path=path, tech_names=techs)
    assert verify_golden(path=path, tech_names=techs) == []

    data = load_golden(path)
    tech_name = sorted(data)[0]
    cell_name = sorted(data[tech_name])[0]
    data[tech_name][cell_name] = "0" * 64
    removed = sorted(data[tech_name])[1]
    del data[tech_name][removed]
    data[tech_name]["no_such_cell"] = "f" * 64
    path.write_text(json.dumps(data))

    mismatches = verify_golden(path=path, tech_names=techs)
    kinds = {(m.cell, m.kind) for m in mismatches}
    assert (cell_name, "changed") in kinds
    assert (removed, "missing") in kinds
    assert ("no_such_cell", "stale") in kinds

"""PLDL interpreter: the paper's sources, control flow, backtracking."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Direction
from repro.lang import EvalError, Interpreter
from repro.tech import RuleError

CONTACT_ROW = """
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
END
"""


def interp(tech):
    return Interpreter(tech)


def test_contact_row_paper_example(tech):
    """Fig. 2: `gatecon = ContactRow(layer = "poly", W = 1)`."""
    i = interp(tech)
    result = i.run(CONTACT_ROW + 'gatecon = ContactRow(layer = "poly", W = 1)\n')
    row = result["gatecon"]
    assert isinstance(row, LayoutObject)
    assert row.rects_on("poly") and row.rects_on("metal1") and row.rects_on("contact")


def test_optional_parameters_default(tech):
    """Fig. 3: W and L omitted → minimum row with one contact."""
    i = interp(tech)
    i.load(CONTACT_ROW)
    minimal = i.call("ContactRow", layer="poly")
    assert len(minimal.rects_on("contact")) == 1
    longer = i.call("ContactRow", layer="poly", L=10.0)
    assert len(longer.rects_on("contact")) > 1


def test_missing_required_parameter(tech):
    i = interp(tech)
    i.load(CONTACT_ROW)
    with pytest.raises(EvalError):
        i.call("ContactRow")


def test_unknown_parameter(tech):
    i = interp(tech)
    i.load(CONTACT_ROW)
    with pytest.raises(EvalError):
        i.call("ContactRow", layer="poly", bogus=1)


def test_unknown_entity(tech):
    with pytest.raises(EvalError):
        interp(tech).call("Nothing")


def test_geometry_outside_entity_fails(tech):
    with pytest.raises(EvalError):
        interp(tech).run('INBOX("poly")\n')


def test_unknown_name_and_function(tech):
    with pytest.raises(EvalError):
        interp(tech).run("x = missing\n")
    with pytest.raises(EvalError):
        interp(tech).run("x = missing(1)\n")


def test_direction_names_resolve(tech):
    result = interp(tech).run("d = SOUTH\n")
    assert result["d"] is Direction.SOUTH


def test_arithmetic_and_comparisons(tech):
    result = interp(tech).run(
        "a = 1 + 2 * 3\n"
        "b = (1 + 2) * 3\n"
        "c = 7 / 2\n"
        "d = a > b\n"
        "e = NOT d\n"
        "f = a == 7 AND b == 9\n"
    )
    assert result["a"] == 7
    assert result["b"] == 9
    assert result["c"] == 3.5
    assert result["d"] is False
    assert result["e"] is True
    assert result["f"] is True


def test_division_by_zero(tech):
    with pytest.raises(EvalError):
        interp(tech).run("x = 1 / 0\n")


def test_if_else(tech):
    src = CONTACT_ROW + """
ENT Sized(<W>)
  IF W > 5
    INBOX("poly", W, 20)
  ELSE
    INBOX("poly", 3, 3)
  ENDIF
END
big = Sized(W = 10)
small = Sized(W = 1)
"""
    result = interp(tech).run(src)
    assert result["big"].width > result["small"].width


def test_for_loop(tech):
    src = """
ENT Ruler()
  FOR i = 0 TO 4
    WIRE("metal1", i * 10, 0, i * 10 + 4, 0)
  ENDFOR
END
r = Ruler()
"""
    result = interp(tech).run(src)
    assert len(result["r"].rects_on("metal1")) == 5


def test_for_loop_with_negative_step(tech):
    result = interp(tech).run(
        """
ENT Count()
  total = 0
  FOR i = 10 TO 2 STEP -4
    total = total + i
  ENDFOR
  WIRE("metal1", 0, 0, total, 0)
END
c = Count()
"""
    )
    # 10 + 6 + 2 = 18 µm wire
    assert result["c"].rects_on("metal1")[0].width == 18000


def test_for_zero_step_rejected(tech):
    with pytest.raises(EvalError):
        interp(tech).run("ENT E()\nFOR i = 0 TO 3 STEP 0\nENDFOR\nEND\nx = E()\n")


def test_alt_backtracks_on_rule_error(tech):
    """Sec. 2.1 backtracking: failed branch rolls back, next branch runs."""
    src = """
ENT Variant()
  ALT
    INBOX("poly", 2, 2)
    ERROR("this topology fails its rules")
  ELSEALT
    INBOX("metal1", 5, 5)
  ENDALT
END
v = Variant()
"""
    result = interp(tech).run(src)
    obj = result["v"]
    # The failed branch's geometry was rolled back.
    assert obj.rects_on("poly") == []
    assert len(obj.rects_on("metal1")) == 1


def test_alt_rolls_back_variables(tech):
    src = """
ENT Variant()
  x = 1
  ALT
    x = 99
    ERROR("fail")
  ELSEALT
    WIRE("metal1", 0, 0, x, 0)
  ENDALT
END
v = Variant()
"""
    result = interp(tech).run(src)
    assert result["v"].rects_on("metal1")[0].width == 1000  # x restored to 1


def test_alt_all_branches_fail(tech):
    src = """
ENT Bad()
  ALT
    ERROR("a")
  ELSEALT
    ERROR("b")
  ENDALT
END
v = Bad()
"""
    with pytest.raises(RuleError):
        interp(tech).run(src)


def test_copy_and_compact(tech):
    """The DiffPair idiom: COPY plus five compaction steps."""
    src = CONTACT_ROW + """
ENT Pair(<W>)
  row1 = ContactRow(layer = "pdiff", W = W)
  SETNET(row1, "a")
  row2 = COPY(row1)
  SETNET(row2, "b")
  compact(row1, WEST)
  compact(row2, WEST)
END
p = Pair(W = 6)
"""
    result = interp(tech).run(src)
    pair = result["p"]
    assert len(pair.rects_on("pdiff")) == 2
    rects = sorted(pair.rects_on("pdiff"), key=lambda r: r.x1)
    gap = rects[1].x1 - rects[0].x2
    assert gap == tech.min_space("pdiff", "pdiff")


def test_object_attributes(tech):
    src = CONTACT_ROW + """
row = ContactRow(layer = "poly", W = 2, L = 10)
w = row.width
h = row.height
a = row.area
"""
    result = interp(tech).run(src)
    assert result["w"] == pytest.approx(10.0)
    assert result["a"] == pytest.approx(result["w"] * result["h"])


def test_bad_attribute(tech):
    src = CONTACT_ROW + 'row = ContactRow(layer = "poly")\nx = row.bogus\n'
    with pytest.raises(EvalError):
        interp(tech).run(src)


def test_move_mirror_setnet(tech):
    src = CONTACT_ROW + """
row = ContactRow(layer = "poly", W = 2, L = 10)
MOVE(row, 100, 0)
MIRRORY(row, 0)
SETNET(row, "sig", "metal1")
"""
    result = interp(tech).run(src)
    row = result["row"]
    assert row.bbox().x2 < 0  # moved east then mirrored about x=0
    assert row.rects_on("metal1")[0].net == "sig"
    assert row.rects_on("poly")[0].net is None


def test_variable_and_fixed(tech):
    src = CONTACT_ROW + """
ENT Obj()
  INBOX("poly", 4, 4)
  VARIABLE("poly")
END
o = Obj()
FIXED(o, "poly")
"""
    result = interp(tech).run(src)
    rect = result["o"].rects_on("poly")[0]
    assert not any(rect.edge_variable(d) for d in Direction)


def test_rule_queries(tech):
    result = interp(tech).run('w = WIDTHRULE("poly")\ns = SPACERULE("poly", "poly")\n')
    assert result["w"] == pytest.approx(1.0)
    assert result["s"] == pytest.approx(1.2)
    with pytest.raises(RuleError):
        interp(tech).run('s = SPACERULE("poly", "metal2")\n')


def test_label_builtin(tech):
    src = """
ENT L()
  INBOX("poly", 4, 4)
  LABEL("out", 0, 0, "metal1")
END
o = L()
"""
    result = interp(tech).run(src)
    assert result["o"].labels[0].text == "out"


def test_trace_hook_fires(tech):
    lines = []
    i = Interpreter(tech, trace=lambda line, obj: lines.append(line))
    i.run(CONTACT_ROW + 'r = ContactRow(layer = "poly")\n')
    assert lines  # entity body statements plus the top-level assignment


def test_entity_instances_get_unique_names(tech):
    i = interp(tech)
    i.load(CONTACT_ROW)
    a = i.call("ContactRow", layer="poly")
    b = i.call("ContactRow", layer="poly")
    assert a.name != b.name

"""The contact row module: the paper's Fig. 2/3 behaviours."""

import pytest

from repro.drc import run_drc
from repro.geometry import Direction
from repro.lang import Interpreter
from repro.library import CONTACT_ROW_SOURCE, contact_row


def test_fig3_left_both_omitted(tech):
    """W and L omitted: the minimum structure holding one contact."""
    row = contact_row(tech, "poly")
    cuts = row.rects_on("contact")
    assert len(cuts) == 1
    need = tech.cut_size("contact") + 2 * tech.enclosure("poly", "contact")
    assert row.rects_on("poly")[0].width >= need
    assert row.rects_on("poly")[0].height >= need


def test_fig3_middle_length_omitted(tech):
    """W given, L omitted: minimal length, W-determined height."""
    row = contact_row(tech, "pdiff", w=8.0)
    assert row.rects_on("pdiff")[0].height == 8000
    # Vertical column of contacts.
    cuts = row.rects_on("contact")
    assert len(cuts) >= 2
    assert len({c.x1 for c in cuts}) == 1


def test_fig3_right_both_given(tech):
    """W and L given: maximal equidistant array."""
    row = contact_row(tech, "poly", w=1.0, length=10.0)
    cuts = row.rects_on("contact")
    assert len(cuts) == 4
    xs = sorted(c.x1 for c in cuts)
    gaps = [b - a for a, b in zip(xs, xs[1:])]
    assert max(gaps) - min(gaps) <= 2


def test_row_is_drc_clean(tech):
    row = contact_row(tech, "poly", w=2.0, length=12.0, net="g")
    assert run_drc(row, include_latchup=False) == []


def test_variable_metal_flag(tech):
    variable = contact_row(tech, "poly", variable_metal=True)
    fixed = contact_row(tech, "poly", variable_metal=False)
    v_metal = variable.rects_on("metal1")[0]
    f_metal = fixed.rects_on("metal1")[0]
    assert all(v_metal.edge_variable(d) for d in Direction)
    assert not any(f_metal.edge_variable(d) for d in Direction)


def test_metal_min_width_bounds_shrink(tech):
    row = contact_row(tech, "pdiff", w=10.0, metal_min_width=2.8)
    metal = row.rects_on("metal1")[0]
    limit = row.shrink_limit(metal, Direction.EAST)
    other = row.shrink_limit(metal, Direction.WEST)
    assert other - limit >= -2800  # cannot narrow below the landing
    assert metal.edge(Direction.EAST).min_coord is not None


def test_dsl_source_matches_builder(tech):
    """CONTACT_ROW_SOURCE builds the same row as the Python builder."""
    interp = Interpreter(tech)
    interp.load(CONTACT_ROW_SOURCE)
    via_dsl = interp.call("ContactRow", layer="poly", W=1.0, L=10.0)
    via_python = contact_row(tech, "poly", w=1.0, length=10.0)
    assert via_dsl.bbox().as_tuple() == via_python.bbox().as_tuple()
    assert len(via_dsl.rects_on("contact")) == len(via_python.rects_on("contact"))


def test_paper_source_is_three_calls(tech):
    """The paper's point: a complete generator in three primitive calls."""
    body_lines = [
        line.strip()
        for line in CONTACT_ROW_SOURCE.splitlines()
        if line.strip() and not line.strip().startswith(("ENT", "END"))
    ]
    assert len(body_lines) == 3

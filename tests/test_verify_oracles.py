"""The invariant oracles of ``repro.verify.oracles``."""

from repro.compact import Compactor
from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.library import contact_row
from repro.verify import (
    LayoutSnapshot,
    check_layout,
    oracle_bbox_bounded,
    oracle_connectivity,
    oracle_drc_clean,
    oracle_no_overlap,
)


def _two_rows(tech):
    a = contact_row(tech, "poly", w=2.0, net="a", name="row_a")
    b = contact_row(tech, "poly", w=2.0, net="b", name="row_b")
    b.translate(0, 40 * tech.dbu_per_micron)
    return a, b


# ---------------------------------------------------------------------------
# snapshot
# ---------------------------------------------------------------------------
def test_snapshot_captures_geometry_and_nets(tech):
    a, b = _two_rows(tech)
    snapshot = LayoutSnapshot.capture([a, b], tech)
    assert snapshot.bbox is not None
    assert len(snapshot.rects) == len(a.nonempty_rects) + len(b.nonempty_rects)
    # Both rows are internally connected, so both nets are recorded.
    assert snapshot.connected_nets == {"a", "b"}


def test_snapshot_ignores_disconnected_nets(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "split"))
    obj.add_rect(Rect(50000, 0, 52000, 2000, "metal1", "split"))
    snapshot = LayoutSnapshot.capture([obj], tech)
    assert "split" not in snapshot.connected_nets
    # A split net can never be "broken by compaction" later on.
    assert oracle_connectivity(snapshot, obj) == []


# ---------------------------------------------------------------------------
# individual oracles
# ---------------------------------------------------------------------------
def test_drc_oracle_flags_spacing_violation(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "a"))
    obj.add_rect(Rect(2100, 0, 4100, 2000, "metal1", "b"))  # below min space
    violations = oracle_drc_clean(obj, include_latchup=False)
    assert violations
    assert all(v.oracle == "drc" for v in violations)


def test_drc_oracle_passes_clean_cell(tech):
    obj = contact_row(tech, "poly", w=2.0, net="n")
    assert oracle_drc_clean(obj, include_latchup=False) == []


def test_connectivity_oracle_detects_split(tech):
    a, _ = _two_rows(tech)
    snapshot = LayoutSnapshot.capture([a], tech)
    broken = LayoutObject("broken", tech)
    for index, rect in enumerate(a.nonempty_rects):
        moved = rect.copy()
        # Scatter the rects so the net falls apart.
        moved.translate(index * 30 * tech.dbu_per_micron, 0)
        broken.add_rect(moved)
    violations = oracle_connectivity(snapshot, broken)
    assert [v.oracle for v in violations] == ["connectivity"]
    assert "'a'" in violations[0].message


def test_no_overlap_oracle(tech):
    obj = LayoutObject("o", tech)
    plate = obj.add_rect(Rect(0, 0, 10000, 10000, "metal1", "shield"))
    plate.no_overlap = True
    # Touching is allowed...
    obj.add_rect(Rect(10000, 0, 12000, 2000, "poly", "sig"))
    assert oracle_no_overlap(obj) == []
    # ...overlapping is not.
    obj.add_rect(Rect(8000, 0, 11000, 2000, "poly", "sig2"))
    violations = oracle_no_overlap(obj)
    assert violations and violations[0].oracle == "no_overlap"


def test_bbox_oracle_plain_containment(tech):
    a, b = _two_rows(tech)
    snapshot = LayoutSnapshot.capture([a, b], tech)
    inside = a.copy()
    assert oracle_bbox_bounded(snapshot, inside) == []
    grown = a.copy()
    grown.translate(-100 * tech.dbu_per_micron, 0)
    assert oracle_bbox_bounded(snapshot, grown)


def test_bbox_oracle_directional_semantics(tech):
    """With a direction, only against-direction and perpendicular growth count."""
    a, b = _two_rows(tech)  # b sits 40 µm north of a
    snapshot = LayoutSnapshot.capture([a, b], tech)

    merged = LayoutObject("m", tech)
    merged.merge(a.copy())
    slid = b.copy()
    # Slide b south past a entirely: the south (leading) edge passes the
    # pre-compaction bbox, which directional compaction legitimately allows.
    slid.translate(0, -60 * tech.dbu_per_micron)
    merged.merge(slid)
    assert oracle_bbox_bounded(snapshot, merged, Direction.SOUTH) == []
    # The same layout violates the direction-free containment check...
    assert oracle_bbox_bounded(snapshot, merged)
    # ...and a northward compaction could never have produced it: the south
    # trailing edge retreated.
    assert oracle_bbox_bounded(snapshot, merged, Direction.NORTH)


def test_bbox_oracle_axis_extent_must_not_grow(tech):
    a, b = _two_rows(tech)
    snapshot = LayoutSnapshot.capture([a, b], tech)
    merged = LayoutObject("m", tech)
    merged.merge(a.copy())
    spread = b.copy()
    spread.translate(0, 30 * tech.dbu_per_micron)  # further apart than before
    merged.merge(spread)
    violations = oracle_bbox_bounded(snapshot, merged, Direction.SOUTH)
    assert any("extent" in v.message for v in violations)


# ---------------------------------------------------------------------------
# driver: real compaction satisfies every oracle
# ---------------------------------------------------------------------------
def test_compacted_layout_passes_all_oracles(tech):
    a, b = _two_rows(tech)
    snapshot = LayoutSnapshot.capture([a, b], tech)
    main = LayoutObject("main", tech)
    compactor = Compactor(variable_edges=False, auto_connect=False)
    compactor.compact(main, a.copy(), Direction.SOUTH)
    compactor.compact(main, b.copy(), Direction.SOUTH)
    assert check_layout(
        snapshot, main, include_latchup=False, direction=Direction.SOUTH
    ) == []


def test_check_layout_aggregates_all_oracles(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "a"))
    obj.add_rect(Rect(2100, 0, 4100, 2000, "metal1", "b"))
    snapshot = LayoutSnapshot.capture([obj], tech)
    grown = obj.copy()
    grown.add_rect(Rect(-90000, 0, -88000, 2000, "metal1", "c"))
    names = {v.oracle for v in check_layout(snapshot, grown, include_latchup=False)}
    assert "drc" in names and "bbox" in names

"""Technology object: units, layers, rules, connectivity."""

import pytest

from repro.tech import Layer, LayerKind, RuleError, Technology


def make_tech():
    tech = Technology("t", dbu_per_micron=1000)
    tech.add_layer(Layer("poly", 10, LayerKind.POLY))
    tech.add_layer(Layer("metal1", 30, LayerKind.METAL))
    tech.add_layer(Layer("contact", 40, LayerKind.CUT))
    tech.add_layer(Layer("nwell", 1, LayerKind.WELL))
    return tech


def test_unit_conversion_roundtrip():
    tech = Technology("t", dbu_per_micron=1000)
    assert tech.um(1.5) == 1500
    assert tech.um(0.0005) == 0  # below grid resolution rounds
    assert tech.to_um(2500) == 2.5


def test_invalid_dbu_rejected():
    with pytest.raises(ValueError):
        Technology("t", dbu_per_micron=0)


def test_duplicate_layer_rejected():
    tech = make_tech()
    with pytest.raises(ValueError):
        tech.add_layer(Layer("poly", 11, LayerKind.POLY))


def test_unknown_layer_is_rule_error():
    tech = make_tech()
    with pytest.raises(RuleError):
        tech.layer("missing")
    assert not tech.has_layer("missing")
    assert tech.has_layer("poly")


def test_layers_of_kind():
    tech = make_tech()
    assert [l.name for l in tech.layers_of_kind(LayerKind.CUT)] == ["contact"]


def test_mandatory_rules_raise_when_missing():
    tech = make_tech()
    with pytest.raises(RuleError):
        tech.min_width("poly")
    with pytest.raises(RuleError):
        tech.enclosure("poly", "contact")
    with pytest.raises(RuleError):
        tech.extension("poly", "metal1")
    with pytest.raises(RuleError):
        tech.cut_size("contact")
    with pytest.raises(RuleError):
        tech.latchup_half_size("contact")


def test_optional_rules_default():
    tech = make_tech()
    assert tech.min_space("poly", "metal1") is None
    assert tech.enclosure_or_zero("poly", "contact") == 0
    cap = tech.capacitance("poly")
    assert cap.area == 0.0 and cap.perimeter == 0.0


def test_micron_rule_registration():
    tech = make_tech()
    tech.rule_width("poly", 1.0)
    tech.rule_space("poly", "poly", 1.2)
    tech.rule_enclose("poly", "contact", 0.8)
    tech.rule_extend("poly", "metal1", 0.5)
    tech.rule_cut_size("contact", 1.0)
    tech.rule_area("metal1", 4.0)
    tech.rule_latchup("contact", 50.0)
    assert tech.min_width("poly") == 1000
    assert tech.min_space("poly", "poly") == 1200
    assert tech.enclosure("poly", "contact") == 800
    assert tech.extension("poly", "metal1") == 500
    assert tech.cut_size("contact") == 1000
    assert tech.rules.area("metal1") == 4_000_000
    assert tech.latchup_half_size("contact") == 50_000


def test_space_rule_is_symmetric():
    tech = make_tech()
    tech.rule_space("poly", "metal1", 0.7)
    assert tech.min_space("metal1", "poly") == 700
    assert tech.min_space("poly", "metal1") == 700


def test_connectivity():
    tech = make_tech()
    tech.add_connection("contact", "poly", "metal1")
    assert tech.cut_between("poly", "metal1") == "contact"
    assert tech.cut_between("metal1", "poly") == "contact"
    assert tech.cut_between("poly", "nwell") is None
    assert tech.connectable("poly", "poly")
    assert tech.connectable("poly", "metal1")
    assert not tech.connectable("poly", "nwell")
    assert tech.connected_layers("contact") == [("poly", "metal1")]


def test_connection_requires_known_layers():
    tech = make_tech()
    with pytest.raises(RuleError):
        tech.add_connection("contact", "poly", "metal9")

"""The indexed connectivity extraction equals the brute-force reference.

:class:`repro.db.netindex.ConnectivityIndex` must be invisible: the same
partition, in the same order, as :func:`repro.db.nets.
extract_connectivity_brute` — for any rect soup, after any sequence of
appends, and for every per-net query built on top of it.  Hypothesis
drives random soups and append schedules through both paths; the explicit
cases pin the semantics the paper's extractor needs (unlabelled diffusion
is a device body, labelled diffusion merges same-net only, cuts join the
declared layer pairs, diffused junctions connect by overlap).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import extract_connectivity, extract_connectivity_brute
from repro.db.netindex import ConnectivityIndex
from repro.db.nets import net_is_connected
from repro.geometry import Rect
from repro.obs import StatsSink, Tracer, activate
from repro.tech import generic_bicmos_1u

TECH = generic_bicmos_1u()

#: Every interaction class: same-layer metal/poly, diffusion (same-net-only
#: merging + unlabelled exclusion), both cut layers with their plates, the
#: declared emitter/buried diffused junction, and a non-conducting layer.
LAYERS = [
    "metal1", "metal2", "poly", "ndiff", "pdiff",
    "contact", "via", "emitter", "buried", "nwell",
]

rects = st.builds(
    lambda x, y, w, h, layer, net: Rect(x, y, x + w, y + h, layer, net),
    st.integers(min_value=-15_000, max_value=15_000),
    st.integers(min_value=-15_000, max_value=15_000),
    st.integers(min_value=500, max_value=12_000),
    st.integers(min_value=500, max_value=12_000),
    st.sampled_from(LAYERS),
    st.sampled_from(["a", "b", "c", None]),
)


def _ids(components):
    return [[id(r) for r in component] for component in components]


def _nets(rect_list):
    return sorted({r.net for r in rect_list if r.net is not None}) + ["absent"]


# ----------------------------------------------------------------------
# Hypothesis: index vs brute force
# ----------------------------------------------------------------------
@settings(
    max_examples=120,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(st.lists(rects, min_size=0, max_size=24))
def test_index_equals_brute_on_random_soups(rect_list):
    """Identical partition, identical order, identical per-net answers."""
    index = ConnectivityIndex(rect_list, TECH)
    assert _ids(index.components()) == _ids(
        extract_connectivity_brute(rect_list, TECH)
    )
    for net in _nets(rect_list):
        assert index.net_is_connected(net) == net_is_connected(
            rect_list, TECH, net
        )


@settings(
    max_examples=80,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(
    st.lists(rects, min_size=0, max_size=12),
    st.lists(st.lists(rects, min_size=1, max_size=4), min_size=1, max_size=4),
)
def test_incremental_appends_equal_full_rebuild(initial, batches):
    """Appends folded in by bucket scans match re-extracting from scratch.

    Queries interleave with the appends so warm component caches must be
    invalidated, not just built lazily once at the end.
    """
    live = list(initial)
    index = ConnectivityIndex(live, TECH)
    index.components()  # warm the cache before the first append
    for batch in batches:
        live.extend(batch)
        assert _ids(index.components()) == _ids(
            extract_connectivity_brute(live, TECH)
        )
        for net in _nets(batch):
            assert index.net_is_connected(net) == net_is_connected(
                live, TECH, net
            )
    assert index.extractions == 1


# ----------------------------------------------------------------------
# pinned semantics (each asserted through index AND brute)
# ----------------------------------------------------------------------
def _both(rect_list):
    indexed = ConnectivityIndex(rect_list, TECH).components()
    brute = extract_connectivity_brute(rect_list, TECH)
    assert _ids(indexed) == _ids(brute)
    return indexed


def test_unlabelled_diffusion_is_excluded():
    """An unlabelled active region is a device body, not interconnect."""
    body = Rect(0, 0, 6000, 2000, "ndiff", None)
    source = Rect(0, 0, 2000, 2000, "ndiff", "s")
    drain = Rect(4000, 0, 6000, 2000, "ndiff", "d")
    components = _both([body, source, drain])
    # Both sides touch the body, yet stay electrically separate.
    assert len(components) == 2
    assert all(len(component) == 1 for component in components)


def test_diffusion_merges_same_net_only():
    touching = [
        Rect(0, 0, 2000, 2000, "ndiff", "s"),
        Rect(2000, 0, 4000, 2000, "ndiff", "d"),
        Rect(4000, 0, 6000, 2000, "ndiff", "d"),
    ]
    components = _both(touching)
    assert sorted(len(c) for c in components) == [1, 2]
    # The same geometry on metal merges regardless of net labels.
    metal = [r.copy() for r in touching]
    for rect in metal:
        rect.layer = "metal1"
    assert len(_both(metal)) == 1


def test_cut_joins_declared_layer_pairs():
    plates = [
        Rect(0, 0, 3000, 3000, "ndiff", "n"),
        Rect(0, 0, 3000, 3000, "metal1", "n"),
        Rect(0, 0, 3000, 3000, "metal2", "n"),
    ]
    cut = Rect(1000, 1000, 2000, 2000, "contact", "n")
    # contact joins ndiff to metal1; metal2 needs a via.
    assert len(_both(plates + [cut])) == 2
    via = Rect(1000, 1000, 2000, 2000, "via", "n")
    assert len(_both(plates + [cut, via])) == 1
    # Edge-touching a cut is not a connection: interiors must overlap.
    outside = Rect(3000, 0, 4000, 1000, "contact", "n")
    assert len(_both(plates[:2] + [outside])) == 3


def test_overlap_junction_connects_by_overlap():
    """emitter over buried is a declared diffused junction."""
    sinker = Rect(0, 0, 2000, 2000, "emitter", "c")
    collector = Rect(1000, 1000, 5000, 5000, "buried", "c")
    assert len(_both([sinker, collector])) == 1
    # Abutting without overlap does not connect across layers.
    abutting = Rect(2000, 0, 5000, 2000, "buried", "c")
    assert len(_both([sinker, abutting])) == 2


def test_net_on_nonconducting_layer_is_never_whole():
    rects = [
        Rect(0, 0, 3000, 3000, "nwell", "w"),
        Rect(0, 0, 3000, 3000, "metal1", "w"),
    ]
    index = ConnectivityIndex(rects, TECH)
    assert not index.net_is_connected("w")
    assert not net_is_connected(rects, TECH, "w")
    # A single labelled rect is trivially connected, wherever it sits.
    assert ConnectivityIndex(rects[:1], TECH).net_is_connected("w")


def test_wrapper_delegates_to_index(tech):
    rects = [
        Rect(0, 0, 10, 10, "metal1", "a"),
        Rect(10, 0, 20, 10, "metal1", "a"),
    ]
    assert _ids(extract_connectivity(rects, tech)) == _ids(
        extract_connectivity_brute(rects, tech)
    )


# ----------------------------------------------------------------------
# caching + counters
# ----------------------------------------------------------------------
def test_components_are_cached_until_appends():
    live = [Rect(0, 0, 10, 10, "metal1", "a")]
    index = ConnectivityIndex(live, TECH)
    first = index.components()
    assert index.components() is first  # served from cache
    assert index.connected_components_by_net() == {"a": [first[0]]}
    assert index.extractions == 1

    live.append(Rect(10, 0, 20, 10, "metal1", "a"))
    second = index.components()
    assert second is not first
    assert len(second) == 1 and len(second[0]) == 2
    assert index.extractions == 1  # appended, never re-extracted


def test_invalidate_forces_full_rebuild():
    live = [Rect(0, 0, 10, 10, "metal1", "a"), Rect(50, 0, 60, 10, "metal1", "a")]
    index = ConnectivityIndex(live, TECH)
    assert len(index.components()) == 2
    live[1].x1, live[1].x2 = 10, 20  # in-place mutation: index is stale
    index.invalidate()
    assert len(index.components()) == 1
    assert index.extractions == 2
    # Truncating the source list also rebuilds on the next query.
    del live[1]
    assert len(index.components()) == 1
    assert index.extractions == 3


def test_counters_report_fewer_pairs_than_brute():
    """On a dense grid the sweeps test far fewer pairs than all-pairs."""
    grid = [
        Rect(x * 300, y * 300, x * 300 + 200, y * 300 + 200, "metal1", "n")
        for x in range(12)
        for y in range(12)
    ]

    def counted(fn):
        tracer = Tracer(enabled=True)
        stats = StatsSink()
        tracer.add_sink(stats)
        with activate(tracer):
            result = fn()
        return result, stats

    brute_components, brute_stats = counted(
        lambda: extract_connectivity_brute(grid, TECH)
    )
    indexed, stats = counted(lambda: ConnectivityIndex(grid, TECH).components())
    assert _ids(indexed) == _ids(brute_components)
    assert stats.counter("nets.extractions") == 1
    assert stats.counter("nets.candidates") == stats.counter("nets.pairs_scanned")
    assert stats.counter("nets.pairs_scanned") * 10 <= brute_stats.counter(
        "nets.pairs_scanned"
    )


def test_cache_hits_are_counted():
    index = ConnectivityIndex([Rect(0, 0, 10, 10, "metal1", "a")], TECH)
    tracer = Tracer(enabled=True)
    stats = StatsSink()
    tracer.add_sink(stats)
    with activate(tracer):
        index.components()
        index.components()  # hit
        index.connected_components_by_net()  # hit (reads cached components)
        index.connected_components_by_net()  # hit
    assert stats.counter("nets.cache_hits") == 3


# ----------------------------------------------------------------------
# one extraction per routing pass
# ----------------------------------------------------------------------
def test_global_routing_extracts_once():
    """The router's per-net queries share one build + incremental appends."""
    from repro.amplifier import build_amplifier

    tracer = Tracer(enabled=True)
    stats = StatsSink()
    tracer.add_sink(stats)
    with activate(tracer):
        build_amplifier(generic_bicmos_1u())
    assert stats.counter("nets.extractions") == 1

"""The sweep-indexed DRC checker equals the brute-force reference.

:class:`repro.drc.index.DrcIndex` must be invisible: every indexed check
returns the *identical* violation list — kind, message, location, rect
identity, order — as its ``check_*_brute`` counterpart, for any rect soup
in any builtin technology, and after any in-place mutation or append once
the index is invalidated/resynced.  Hypothesis drives random soups through
all six check pairs; the golden-cell matrix pins the acceptance contract;
the counter tests pin the ≥10x pairs-scanned reduction and the
one-build-per-run behaviour.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import LayoutObject
from repro.drc import run_drc
from repro.drc.checker import CHECKS, CHECKS_BRUTE, check_widths, check_widths_brute
from repro.drc.index import DrcIndex
from repro.geometry import Rect
from repro.library import GOLDEN_CELLS
from repro.obs import StatsSink, Tracer, activate
from repro.tech import BUILTIN_TECHNOLOGIES

TECHS = {name: build() for name, build in BUILTIN_TECHNOLOGIES.items()}
TECH_NAMES = sorted(TECHS)
LAYERS = {name: [layer.name for layer in tech.layers] for name, tech in TECHS.items()}

#: Raw rect specs; the layer choice is an index so one strategy serves
#: every technology's layer table.
specs = st.tuples(
    st.integers(min_value=-12_000, max_value=12_000),
    st.integers(min_value=-12_000, max_value=12_000),
    st.integers(min_value=100, max_value=8_000),
    st.integers(min_value=100, max_value=8_000),
    st.integers(min_value=0, max_value=63),
    st.sampled_from(["a", "b", "c", None]),
)


def _soup(tech_name, spec_list):
    layers = LAYERS[tech_name]
    obj = LayoutObject("soup", TECHS[tech_name])
    for x, y, w, h, layer_choice, net in spec_list:
        obj.add_rect(Rect(x, y, x + w, y + h, layers[layer_choice % len(layers)], net))
    return obj


def _ids(obj, violations):
    """Violation fingerprints: layout rects by identity, synthesized rects
    (extension body boxes, latchup report rects) by value."""
    layout_ids = {id(r) for r in obj.rects}
    def rect_key(r):
        if id(r) in layout_ids:
            return id(r)
        return ("synthesized", r.x1, r.y1, r.x2, r.y2, r.layer, r.net)
    return [
        (v.kind, v.message, v.where, tuple(rect_key(r) for r in v.rects))
        for v in violations
    ]


def _assert_equivalent(obj, index=None):
    """Every indexed check matches its brute twin byte-for-byte."""
    if index is None:
        index = DrcIndex(obj)
    for (rule_class, indexed), (_, brute) in zip(CHECKS, CHECKS_BRUTE):
        assert _ids(obj, indexed(obj, index)) == _ids(obj, brute(obj)), rule_class
    return index


# ----------------------------------------------------------------------
# Hypothesis: indexed vs brute on random soups, every builtin technology
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tech_name", TECH_NAMES)
@settings(
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(st.lists(specs, min_size=0, max_size=18))
def test_indexed_equals_brute_on_random_soups(tech_name, spec_list):
    obj = _soup(tech_name, spec_list)
    index = _assert_equivalent(obj)
    assert index.builds == 1  # all six checks shared one build
    assert _ids(obj, run_drc(obj, include_latchup=False, use_index=True)) == _ids(
        obj, run_drc(obj, include_latchup=False, use_index=False)
    )


@pytest.mark.parametrize("tech_name", TECH_NAMES)
@settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
@given(
    st.lists(specs, min_size=1, max_size=10),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=-3_000, max_value=3_000),
            st.integers(min_value=-3_000, max_value=3_000),
        ),
        min_size=1,
        max_size=4,
    ),
    st.lists(specs, min_size=0, max_size=4),
)
def test_invalidate_after_mutation_equals_scratch(tech_name, spec_list, moves, appended):
    """A resynced index equals both a scratch index and the brute path.

    In-place coordinate mutation requires ``invalidate()``; appending rects
    is detected by ``sync()`` on its own.
    """
    obj = _soup(tech_name, spec_list)
    index = _assert_equivalent(obj)
    rects = obj.nonempty_rects
    for which, dx, dy in moves:
        rect = rects[which % len(rects)]
        rect.x1 += dx
        rect.x2 += dx
        rect.y1 += dy
        rect.y2 += dy
    index.invalidate()
    _assert_equivalent(obj, index)
    for x, y, w, h, layer_choice, net in appended:
        layers = LAYERS[tech_name]
        obj.add_rect(
            Rect(x, y, x + w, y + h, layers[layer_choice % len(layers)], net)
        )
    _assert_equivalent(obj, index)  # sync() sees the length change itself
    scratch = DrcIndex(obj)
    assert _ids(
        obj, [v for _, check in CHECKS for v in check(obj, index)]
    ) == _ids(obj, [v for _, check in CHECKS for v in check(obj, scratch)])


# ----------------------------------------------------------------------
# acceptance: the golden-cell matrix, all builtin technologies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tech_name", TECH_NAMES)
def test_golden_cells_byte_identical(tech_name):
    tech = TECHS[tech_name]
    checked = 0
    for spec in GOLDEN_CELLS:
        if not spec.supported(tech):
            continue
        obj = spec.build(tech)
        _assert_equivalent(obj)
        # The full run (latchup included) must agree as well; latchup
        # synthesizes its report rects each run, which _ids keys by value.
        assert _ids(obj, run_drc(obj, use_index=True)) == _ids(
            obj, run_drc(obj, use_index=False)
        )
        checked += 1
    assert checked > 0


# ----------------------------------------------------------------------
# the absorbed-thin-stub scan (quadratic fix) regression
# ----------------------------------------------------------------------
def _stub_forest(tech, stubs=120):
    """Many thin stubs hanging off one wide spine, spine listed last —
    the worst case for the old full-list scan per thin rect."""
    obj = LayoutObject("stubs", tech)
    rule = tech.rules.width("metal1")
    pitch = 4 * rule  # stubs well clear of each other
    for i in range(stubs):
        x = i * pitch
        obj.add_rect(Rect(x, 1000, x + rule // 3, 4000, "metal1", "n"))
    obj.add_rect(Rect(-rule, 0, stubs * pitch + rule, 2000, "metal1", "n"))
    return obj


def _counted(fn):
    tracer = Tracer(enabled=True)
    stats = StatsSink()
    tracer.add_sink(stats)
    with activate(tracer):
        result = fn()
    return result, stats


def test_absorbed_stub_scan_equals_brute(tech):
    obj = _stub_forest(tech)
    index = DrcIndex(obj)
    index.sync()  # build outside the counted region
    assert _ids(obj, check_widths(obj, index)) == _ids(obj, check_widths_brute(obj))
    assert check_widths(obj, index) == []  # every stub is absorbed


def test_absorbed_stub_scan_is_bucket_served(tech):
    """The indexed scan tests only same-layer touchers, not the whole
    rect list per thin stub."""
    obj = _stub_forest(tech)
    index = DrcIndex(obj)
    index.sync()
    _, indexed_stats = _counted(lambda: check_widths(obj, index))
    _, brute_stats = _counted(lambda: check_widths_brute(obj))
    indexed_pairs = indexed_stats.counter("drc.pairs_scanned")
    brute_pairs = brute_stats.counter("drc.pairs_scanned")
    assert indexed_pairs * 10 <= brute_pairs


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
def test_run_drc_builds_once_and_scans_fewer_pairs(tech):
    grid = LayoutObject("grid", tech)
    for x in range(10):
        for y in range(10):
            grid.add_rect(
                Rect(x * 4000, y * 4000, x * 4000 + 2000, y * 4000 + 2000, "metal1", "n")
            )
    indexed, indexed_stats = _counted(
        lambda: run_drc(grid, include_latchup=False, use_index=True)
    )
    brute, brute_stats = _counted(
        lambda: run_drc(grid, include_latchup=False, use_index=False)
    )
    assert _ids(grid, indexed) == _ids(grid, brute)
    assert indexed_stats.counter("drc.index_builds") == 1
    assert brute_stats.counter("drc.index_builds") == 0
    assert indexed_stats.counter("drc.pairs_scanned") * 10 <= brute_stats.counter(
        "drc.pairs_scanned"
    )


def test_candidates_counter_reports_emitted_pairs(tech):
    obj = LayoutObject("pair", tech)
    rule = tech.rules.space("metal1", "metal1")
    obj.add_rect(Rect(0, 0, 2000, 2000, "metal1", "a"))
    obj.add_rect(Rect(2000 + rule - 1, 0, 4000 + rule, 2000, "metal1", "b"))
    violations, stats = _counted(
        lambda: run_drc(obj, include_latchup=False, use_index=True)
    )
    assert [v.kind for v in violations] == ["spacing"]
    assert stats.counter("drc.candidates") == 1

"""The differential harness: successive vs. constraint-graph compaction."""

import random

from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.route import path
from repro.verify import random_object_set, run_differential, run_trial
from repro.verify.differential import _net_partition


def test_random_object_set_is_seeded(tech):
    a = random_object_set(tech, random.Random("s"), 4, Direction.WEST)
    b = random_object_set(tech, random.Random("s"), 4, Direction.WEST)
    assert [o.name for o in a] == [o.name for o in b]
    assert [sorted(r.as_tuple() for r in x.nonempty_rects) for x in a] == [
        sorted(r.as_tuple() for r in x.nonempty_rects) for x in b
    ]


def test_random_objects_spread_against_direction(tech):
    objects = random_object_set(tech, random.Random(7), 3, Direction.WEST)
    # Compacting westward, later objects must start further east.
    lefts = [o.bbox().x1 for o in objects]
    assert lefts == sorted(lefts)


def test_net_partition_merges_touching_nets(tech):
    obj = LayoutObject("o", tech)
    path(obj, "metal1", [(0, 0), (10000, 0)], net="a")
    path(obj, "metal1", [(10000, 0), (20000, 0)], net="b")
    path(obj, "metal1", [(0, 60000), (10000, 60000)], net="c")
    assert _net_partition(obj) == {("a", "b"), ("c",)}


def test_run_trial_is_deterministic(tech):
    first = run_trial(tech, trial=3, seed=0)
    second = run_trial(tech, trial=3, seed=0)
    assert first.seed == second.seed == "0:3"
    assert first.direction == second.direction
    assert first.objects == second.objects
    assert first.problems == second.problems


def test_differential_trials_pass(tech):
    reports = run_differential(tech, trials=12, seed=0)
    assert len(reports) == 12
    failing = [r for r in reports if not r.ok]
    assert failing == [], "\n".join(p for r in failing for p in r.problems)


def test_differential_trials_pass_cmos05(tech05):
    reports = run_differential(tech05, trials=8, seed=1)
    assert all(r.ok for r in reports)


def test_report_ok_reflects_problems(tech):
    report = run_trial(tech, trial=0, seed=0)
    assert report.ok
    report.problems.append("synthetic")
    assert not report.ok

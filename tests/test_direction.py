"""Direction and axis arithmetic."""

import pytest

from repro.geometry import Axis, Direction


def test_vectors():
    assert (Direction.NORTH.dx, Direction.NORTH.dy) == (0, 1)
    assert (Direction.SOUTH.dx, Direction.SOUTH.dy) == (0, -1)
    assert (Direction.EAST.dx, Direction.EAST.dy) == (1, 0)
    assert (Direction.WEST.dx, Direction.WEST.dy) == (-1, 0)


def test_opposites_are_involutive():
    for direction in Direction:
        assert direction.opposite.opposite is direction
        assert direction.opposite.dx == -direction.dx
        assert direction.opposite.dy == -direction.dy


def test_axis_classification():
    assert Direction.NORTH.axis is Axis.VERTICAL
    assert Direction.SOUTH.axis is Axis.VERTICAL
    assert Direction.EAST.axis is Axis.HORIZONTAL
    assert Direction.WEST.axis is Axis.HORIZONTAL
    assert Axis.VERTICAL.other is Axis.HORIZONTAL
    assert Axis.HORIZONTAL.other is Axis.VERTICAL


def test_positivity():
    assert Direction.NORTH.is_positive
    assert Direction.EAST.is_positive
    assert not Direction.SOUTH.is_positive
    assert not Direction.WEST.is_positive


def test_perpendiculars():
    for direction in Direction:
        neg, pos = direction.perpendiculars
        assert neg.axis is direction.axis.other
        assert pos.axis is direction.axis.other
        assert not neg.is_positive
        assert pos.is_positive


def test_from_name_accepts_any_case():
    assert Direction.from_name("south") is Direction.SOUTH
    assert Direction.from_name("NORTH") is Direction.NORTH
    assert Direction.from_name("West") is Direction.WEST


def test_from_name_rejects_unknown():
    with pytest.raises(ValueError):
        Direction.from_name("up")

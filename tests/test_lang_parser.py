"""PLDL parser: program structure, statements, expressions."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast_nodes as ast


def test_paper_contact_row_parses_verbatim():
    """Fig. 2 source (plus END) must parse as printed."""
    program = parse(
        """
gatecon = ContactRow(layer = "poly", W = 1)

ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
END
"""
    )
    assert len(program.statements) == 1
    assert len(program.entities) == 1
    entity = program.entity("ContactRow")
    assert [p.name for p in entity.params] == ["layer", "W", "L"]
    assert [p.optional for p in entity.params] == [False, True, True]
    assert len(entity.body) == 3


def test_entity_without_end_terminated_by_next_ent():
    program = parse(
        """
ENT A()
  INBOX("poly")
ENT B()
  INBOX("metal1")
"""
    )
    assert {e.name for e in program.entities} == {"A", "B"}
    assert len(program.entity("A").body) == 1


def test_assignment_vs_expression_statement():
    program = parse("x = f()\nf()\n")
    assert isinstance(program.statements[0], ast.Assign)
    assert isinstance(program.statements[1], ast.ExprStatement)


def test_if_else():
    program = parse(
        """
ENT E(<W>)
  IF W > 5
    INBOX("poly", W)
  ELSE
    INBOX("poly")
  ENDIF
END
"""
    )
    node = program.entity("E").body[0]
    assert isinstance(node, ast.If)
    assert isinstance(node.condition, ast.Binary)
    assert len(node.then_body) == 1
    assert len(node.else_body) == 1


def test_for_loop_with_step():
    program = parse(
        """
ENT E()
  FOR i = 0 TO 10 STEP 2
    INBOX("poly")
  ENDFOR
END
"""
    )
    loop = program.entity("E").body[0]
    assert isinstance(loop, ast.For)
    assert loop.var == "i"
    assert loop.step is not None


def test_alt_branches():
    program = parse(
        """
ENT E()
  ALT
    INBOX("poly")
  ELSEALT
    INBOX("metal1")
  ELSEALT
    INBOX("metal2")
  ENDALT
END
"""
    )
    alt = program.entity("E").body[0]
    assert isinstance(alt, ast.Alt)
    assert len(alt.branches) == 3


def test_expression_precedence():
    program = parse("x = 1 + 2 * 3\n")
    expr = program.statements[0].value
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_logic_precedence():
    program = parse("x = a OR b AND NOT c\n")
    expr = program.statements[0].value
    assert expr.op == "OR"
    assert expr.right.op == "AND"
    assert expr.right.right.op == "NOT"


def test_call_arguments():
    program = parse('f(1, "s", key = 2, other = x)\n')
    call = program.statements[0].value
    assert len(call.args) == 2
    assert [k for k, _ in call.kwargs] == ["key", "other"]


def test_positional_after_keyword_rejected():
    with pytest.raises(ParseError):
        parse("f(key = 1, 2)\n")


def test_duplicate_keyword_rejected():
    with pytest.raises(ParseError):
        parse("f(k = 1, k = 2)\n")


def test_attribute_access():
    program = parse("x = obj.width / 2\n")
    expr = program.statements[0].value
    assert expr.op == "/"
    assert isinstance(expr.left, ast.Attribute)
    assert expr.left.attr == "width"


@pytest.mark.parametrize(
    "bad",
    [
        "ENT ()\n",                    # missing name
        "ENT IF()\n",                  # reserved name
        "IF x\n  f()\n",               # missing ENDIF
        "FOR i = 1 TO\nENDFOR\n",      # missing bound
        "ALT\nENDIF\n",                # wrong terminator
        "x = )\n",
        "x = (1\n",
        "f(,)\n",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(ParseError):
        parse(bad)


def test_literals():
    program = parse("a = TRUE\nb = FALSE\nc = NIL\nd = -2.5\n")
    assert isinstance(program.statements[0].value, ast.Boolean)
    assert program.statements[0].value.value is True
    assert program.statements[1].value.value is False
    assert isinstance(program.statements[2].value, ast.Nil)
    minus = program.statements[3].value
    assert isinstance(minus, ast.Unary) and minus.op == "-"

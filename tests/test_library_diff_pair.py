"""The simple MOS differential pair (Figs. 6/7)."""

import pytest

from repro.drc import run_drc
from repro.lang import Interpreter
from repro.library import DIFF_PAIR_SOURCE, diff_pair


def test_dsl_diff_pair_structure(tech):
    """Fig. 6b: two transistors, three diffusion columns, two poly rows."""
    interp = Interpreter(tech)
    interp.load(DIFF_PAIR_SOURCE)
    pair = interp.call("DiffPair", W=10.0, L=1.0)

    gates = [r for r in pair.rects_on("poly") if r.height > r.width]
    assert len(gates) == 2
    rows = [r for r in pair.rects_on("poly") if r.width >= r.height]
    assert len(rows) == 2
    # Three diffusion contact columns: count distinct contact x-columns on
    # the diffusion level (below the gate rows).
    diff_cuts = [r for r in pair.rects_on("contact") if r.y2 <= max(g.y2 for g in gates)]
    columns = {c.x1 for c in diff_cuts}
    assert len(columns) == 3


def test_dsl_diff_pair_is_drc_clean(tech):
    interp = Interpreter(tech)
    interp.load(DIFF_PAIR_SOURCE)
    pair = interp.call("DiffPair", W=10.0, L=1.0)
    assert run_drc(pair, include_latchup=False) == []


def test_dsl_diff_pair_parameterizable(tech):
    interp = Interpreter(tech)
    interp.load(DIFF_PAIR_SOURCE)
    small = interp.call("DiffPair", W=6.0, L=1.0)
    big = interp.call("DiffPair", W=16.0, L=1.0)
    assert big.height > small.height
    long_l = interp.call("DiffPair", W=6.0, L=3.0)
    assert long_l.width > small.width


def test_python_diff_pair(tech):
    pair = diff_pair(tech, 10.0, 1.0)
    assert run_drc(pair, include_latchup=False) == []
    gates = [r for r in pair.rects_on("poly") if r.height > r.width]
    assert len(gates) == 2
    assert {r.net for r in gates} == {"g1", "g2"}
    # Shared tail column between the gates.
    tail_cuts = [r for r in pair.rects_on("contact") if r.net == "tail"]
    assert tail_cuts
    left, right = sorted(gates, key=lambda g: g.x1)
    for cut in tail_cuts:
        assert left.x2 < cut.x1 and cut.x2 < right.x1


def test_python_diff_pair_symmetric_gates(tech):
    pair = diff_pair(tech, 10.0, 1.0)
    gates = sorted(
        (r for r in pair.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    tail = [r for r in pair.rects_on("contact") if r.net == "tail"]
    cx = sum((c.x1 + c.x2) // 2 for c in tail) // len(tail)
    # Gates are equidistant from the tail centre.
    left_gap = cx - gates[0].x2
    right_gap = gates[1].x1 - cx
    assert abs(left_gap - right_gap) <= 200  # dbu; near-perfect symmetry


def test_paper_code_shortness(tech):
    """Sec. 2.5: 'a very short and easy to read code results'."""
    code_lines = [
        line for line in DIFF_PAIR_SOURCE.splitlines()
        if line.strip() and not line.strip().startswith("//")
    ]
    assert len(code_lines) <= 30

"""Rectilinear polygon decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect, decompose_rectilinear, outline_area, union_area


def test_rectangle_decomposes_to_itself():
    rects = decompose_rectilinear([(0, 0), (10, 0), (10, 5), (0, 5)], "poly")
    assert len(rects) == 1
    assert rects[0].as_tuple() == (0, 0, 10, 5)


def test_l_shape():
    outline = [(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)]
    rects = decompose_rectilinear(outline, "poly")
    assert union_area(rects) == outline_area(outline) == 12
    for a in rects:
        for b in rects:
            if a is not b:
                assert not a.intersects(b)


def test_t_shape():
    outline = [(0, 0), (6, 0), (6, 2), (4, 2), (4, 5), (2, 5), (2, 2), (0, 2)]
    rects = decompose_rectilinear(outline, "poly")
    assert union_area(rects) == outline_area(outline)


def test_u_shape_produces_split_slabs():
    outline = [
        (0, 0), (6, 0), (6, 4), (4, 4), (4, 2), (2, 2), (2, 4), (0, 4),
    ]
    rects = decompose_rectilinear(outline, "poly")
    assert union_area(rects) == outline_area(outline) == 20


def test_closed_outline_accepted():
    closed = [(0, 0), (4, 0), (4, 4), (0, 4), (0, 0)]
    assert len(decompose_rectilinear(closed, "poly")) == 1


def test_rejects_diagonal_edges():
    with pytest.raises(ValueError):
        decompose_rectilinear([(0, 0), (5, 5), (0, 5)], "poly")


def test_rejects_too_few_vertices():
    with pytest.raises(ValueError):
        decompose_rectilinear([(0, 0), (1, 0), (1, 1)], "poly")


def test_net_and_layer_propagate():
    rects = decompose_rectilinear([(0, 0), (2, 0), (2, 2), (0, 2)], "metal1", "sig")
    assert rects[0].layer == "metal1"
    assert rects[0].net == "sig"


@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=49),
    st.integers(min_value=1, max_value=49),
)
def test_staircase_area_property(w, h, sx, sy):
    """A two-step staircase decomposes with exact area for any step split."""
    sx = min(sx, w - 1) if w > 1 else 0
    sy = min(sy, h - 1) if h > 1 else 0
    if sx == 0 or sy == 0:
        outline = [(0, 0), (w, 0), (w, h), (0, h)]
    else:
        outline = [(0, 0), (w, 0), (w, sy), (sx, sy), (sx, h), (0, h)]
    rects = decompose_rectilinear(outline, "poly")
    assert union_area(rects) == outline_area(outline)

"""The Environment façade and the two-window DesignSession."""

import pytest

from repro import DesignSession, Environment
from repro.library import CONTACT_ROW_SOURCE
from repro.opt import Step
from repro.geometry import Direction


def test_environment_default_technology():
    env = Environment()
    assert env.tech.name == "generic_bicmos_1u"


def test_environment_rejects_unknown_technology():
    with pytest.raises(ValueError):
        Environment(tech="nonexistent")


def test_build_and_verify_flow():
    env = Environment()
    env.load(CONTACT_ROW_SOURCE)
    row = env.build("ContactRow", layer="poly", W=1.0, L=10.0)
    assert env.drc(row) == []
    assert env.area_um2(row) == pytest.approx(row.area() / 1e6)
    assert env.rate(row) > 0


def test_run_returns_globals():
    env = Environment()
    result = env.run(CONTACT_ROW_SOURCE + 'r = ContactRow(layer = "poly")\n')
    assert "r" in result


def test_parasitics_report():
    env = Environment()
    env.load(CONTACT_ROW_SOURCE)
    row = env.build("ContactRow", layer="poly", W=1.0, L=10.0)
    row.set_net("sig")
    report = env.parasitics(row)
    assert report["sig"] > 0


def test_translate_passthrough():
    env = Environment()
    code = env.translate(CONTACT_ROW_SOURCE)
    assert "def ContactRow" in code


def test_optimize_order_integration(tech):
    from repro.library import contact_row

    env = Environment()
    steps = [
        Step(contact_row(env.tech, "pdiff", w=4.0, net="a", name="a"), Direction.WEST),
        Step(contact_row(env.tech, "pdiff", w=8.0, net="b", name="b"), Direction.WEST),
    ]
    result = env.optimize_order("mod", steps)
    assert result.evaluated == 2


def test_outputs(tmp_path):
    env = Environment()
    env.load(CONTACT_ROW_SOURCE)
    row = env.build("ContactRow", layer="poly", W=1.0, L=10.0)
    env.write_gds(row, tmp_path / "row.gds")
    env.write_svg(row, tmp_path / "row.svg")
    assert (tmp_path / "row.gds").stat().st_size > 0
    assert (tmp_path / "row.svg").read_text().startswith("<svg")


def test_design_session_records_snapshots(tmp_path):
    session = DesignSession()
    session.run(CONTACT_ROW_SOURCE + 'r = ContactRow(layer = "poly", W = 1)\n')
    assert session.snapshots
    # Snapshots are per-statement and monotone in rect count per entity.
    counts = [s.rect_count for s in session.snapshots if s.entity.startswith("ContactRow")]
    assert counts == sorted(counts)
    page = tmp_path / "session.html"
    session.save_html(page)
    text = page.read_text()
    assert "source" in text and "graphical view" in text
    assert text.count("<svg") >= len(session.snapshots)


def test_design_session_custom_technology():
    session = DesignSession(tech="generic_cmos_05u")
    session.run(CONTACT_ROW_SOURCE + 'r = ContactRow(layer = "poly")\n')
    assert session.snapshots

"""The latch-up examination of Fig. 1."""

import pytest

from repro.db import LayoutObject
from repro.drc import (
    check_latchup,
    insert_protection_contacts,
    temporary_rectangles,
    uncovered_active_area,
)
from repro.geometry import Rect, overlap_classification, union_area


def test_temporary_rectangles_grow_by_rule(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "subcontact", "sub"))
    temps = temporary_rectangles(obj)
    half = tech.latchup_half_size("subcontact")
    assert temps[0].as_tuple() == (-half, -half, 2000 + half, 2000 + half)


def test_protected_active_area_passes(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    obj.add_rect(Rect(12000, 4000, 14000, 6000, "subcontact", "sub"))
    assert uncovered_active_area(obj) == []
    assert check_latchup(obj) == []


def test_unprotected_area_reported(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    violations = check_latchup(obj)
    assert len(violations) == 1
    assert violations[0].kind == "latchup"


def test_partially_protected_reports_remainder(tech):
    """Fig. 1 mechanism: only the overlapping part is cut."""
    half = tech.latchup_half_size("subcontact")
    obj = LayoutObject("o", tech)
    # Active area wider than one contact's protection.
    obj.add_rect(Rect(0, 0, 3 * half, 4000, "pdiff"))
    obj.add_rect(Rect(-1000, 1000, 0, 3000, "subcontact", "sub"))
    remainders = uncovered_active_area(obj)
    assert remainders
    # The remainder starts exactly where the temporary rectangle ends
    # (the contact's east edge at x=0 grown by the half size).
    assert min(r.x1 for r in remainders) == half


def test_multiple_contacts_cover_jointly(tech):
    half = tech.latchup_half_size("subcontact")
    width = half + half // 2  # wider than one contact protects alone
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, width, 4000, "pdiff"))
    obj.add_rect(Rect(0, -3000, 2000, -1000, "subcontact", "sub"))
    assert uncovered_active_area(obj)  # one contact is not enough
    obj.add_rect(Rect(width - 2000, -3000, width, -1000, "subcontact", "sub"))
    assert uncovered_active_area(obj) == []


def test_insert_protection_contacts_fixes_layout(tech):
    """'additional substrate contacts have to be inserted'."""
    half = tech.latchup_half_size("subcontact")
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 5 * half, 4000, "pdiff"))
    assert check_latchup(obj)
    added = insert_protection_contacts(obj)
    assert added
    assert check_latchup(obj) == []


# ---------------------------------------------------------------------------
# Fig. 1: all 16 overlap cases of temporary rectangle vs. active area
# ---------------------------------------------------------------------------
# Per axis: contact span whose temporary rectangle (grown by the half size
# ``h`` on each side) realises the Fig. 1 case against a solid of span
# [0, S], and the length of the resulting overlap.
_CASE_SPAN = {
    0: lambda S, h: (0, S),                          # covers the full span
    1: lambda S, h: (0, h),                          # covers the low end
    2: lambda S, h: (S - h, S),                      # covers the high end
    3: lambda S, h: (3 * h // 2, 5 * h // 2),        # interior
}
_CASE_OVERLAP = {
    0: lambda S, h: S,
    1: lambda S, h: 2 * h,
    2: lambda S, h: 2 * h,
    3: lambda S, h: 3 * h,
}
# Remainder pieces the subtraction leaves along one axis per case.
_CASE_PIECES = {0: 0, 1: 1, 2: 1, 3: 2}


@pytest.mark.parametrize(
    "hcase,vcase",
    [(h, v) for h in range(4) for v in range(4)],
    ids=[f"h{h}_v{v}" for h in range(4) for v in range(4)],
)
def test_fig1_overlap_case(tech, hcase, vcase):
    """One test per cell of the paper's 4×4 overlap table."""
    half = tech.latchup_half_size("subcontact")
    size = 4 * half
    obj = LayoutObject("o", tech)
    solid = obj.add_rect(Rect(0, 0, size, size, "pdiff"))
    x1, x2 = _CASE_SPAN[hcase](size, half)
    y1, y2 = _CASE_SPAN[vcase](size, half)
    # The contact is placed so its grown (temporary) rectangle spans
    # exactly [x1 - half, x2 + half] × [y1 - half, y2 + half].
    obj.add_rect(Rect(x1, y1, x2, y2, "subcontact", "sub"))

    temps = temporary_rectangles(obj)
    assert len(temps) == 1
    assert overlap_classification(solid, temps[0]) == (hcase, vcase)

    remainders = uncovered_active_area(obj)
    assert len(remainders) == _CASE_PIECES[hcase] + _CASE_PIECES[vcase]
    overlap = (
        _CASE_OVERLAP[hcase](size, half) * _CASE_OVERLAP[vcase](size, half)
    )
    assert union_area(remainders) == size * size - overlap
    # The latch-up check itself agrees: uncovered area means a violation.
    assert bool(check_latchup(obj)) == bool(remainders)


def test_technology_without_rule_skips(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    # Remove the rule: the check must quietly skip.
    obj.tech.rules._latchup.clear()
    assert check_latchup(obj) == []

"""The latch-up examination of Fig. 1."""

import pytest

from repro.db import LayoutObject
from repro.drc import (
    check_latchup,
    insert_protection_contacts,
    temporary_rectangles,
    uncovered_active_area,
)
from repro.geometry import Rect


def test_temporary_rectangles_grow_by_rule(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 2000, 2000, "subcontact", "sub"))
    temps = temporary_rectangles(obj)
    half = tech.latchup_half_size("subcontact")
    assert temps[0].as_tuple() == (-half, -half, 2000 + half, 2000 + half)


def test_protected_active_area_passes(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    obj.add_rect(Rect(12000, 4000, 14000, 6000, "subcontact", "sub"))
    assert uncovered_active_area(obj) == []
    assert check_latchup(obj) == []


def test_unprotected_area_reported(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    violations = check_latchup(obj)
    assert len(violations) == 1
    assert violations[0].kind == "latchup"


def test_partially_protected_reports_remainder(tech):
    """Fig. 1 mechanism: only the overlapping part is cut."""
    half = tech.latchup_half_size("subcontact")
    obj = LayoutObject("o", tech)
    # Active area wider than one contact's protection.
    obj.add_rect(Rect(0, 0, 3 * half, 4000, "pdiff"))
    obj.add_rect(Rect(-1000, 1000, 0, 3000, "subcontact", "sub"))
    remainders = uncovered_active_area(obj)
    assert remainders
    # The remainder starts exactly where the temporary rectangle ends
    # (the contact's east edge at x=0 grown by the half size).
    assert min(r.x1 for r in remainders) == half


def test_multiple_contacts_cover_jointly(tech):
    half = tech.latchup_half_size("subcontact")
    width = half + half // 2  # wider than one contact protects alone
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, width, 4000, "pdiff"))
    obj.add_rect(Rect(0, -3000, 2000, -1000, "subcontact", "sub"))
    assert uncovered_active_area(obj)  # one contact is not enough
    obj.add_rect(Rect(width - 2000, -3000, width, -1000, "subcontact", "sub"))
    assert uncovered_active_area(obj) == []


def test_insert_protection_contacts_fixes_layout(tech):
    """'additional substrate contacts have to be inserted'."""
    half = tech.latchup_half_size("subcontact")
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 5 * half, 4000, "pdiff"))
    assert check_latchup(obj)
    added = insert_protection_contacts(obj)
    assert added
    assert check_latchup(obj) == []


def test_technology_without_rule_skips(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    # Remove the rule: the check must quietly skip.
    obj.tech.rules._latchup.clear()
    assert check_latchup(obj) == []

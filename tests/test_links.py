"""Rebuild links: enclosure clamping and array recalculation (Fig. 5b)."""

import pytest

from repro.db import ArrayLink, InsideLink
from repro.geometry import Direction, Rect


def test_inside_link_clamps_inner():
    outer = Rect(0, 0, 100, 100, "poly")
    inner = Rect(-10, -10, 200, 50, "metal1")
    link = InsideLink(inner, [(outer, 5)])
    link.rebuild()
    assert inner.as_tuple() == (5, 5, 95, 50)


def test_inside_link_respects_released_edges():
    outer = Rect(0, 0, 100, 100, "poly")
    inner = Rect(10, 10, 90, 150, "metal1")
    link = InsideLink(inner, [(outer, 5)])
    link.release(Direction.NORTH)
    link.rebuild()
    assert inner.y2 == 150  # released edge stays stretched
    assert inner.y1 == 10


def test_inside_link_remap_preserves_release():
    outer = Rect(0, 0, 100, 100, "poly")
    inner = Rect(10, 10, 90, 90, "metal1")
    link = InsideLink(inner, [(outer, 5)])
    link.release(Direction.EAST)
    new_inner = inner.copy()
    remapped = link.remapped({id(inner): new_inner})
    assert remapped.inner is new_inner
    assert Direction.EAST in remapped.released


def test_array_link_counts():
    link = ArrayLink("contact", cut_size=10, cut_space=12, outers=[])
    assert link.count(9) == 0
    assert link.count(10) == 1
    assert link.count(31) == 1
    assert link.count(32) == 2
    assert link.count(10 + 3 * 22) == 4


def test_array_link_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ArrayLink("contact", cut_size=0, cut_space=5, outers=[])
    with pytest.raises(ValueError):
        ArrayLink("contact", cut_size=5, cut_space=-1, outers=[])


def test_array_link_places_equidistant_flush():
    outer = Rect(0, 0, 100, 20, "metal1")
    link = ArrayLink("contact", cut_size=10, cut_space=12, outers=[(outer, 5)])
    link.rebuild()
    cuts = [r for r in link.rects if not r.is_empty]
    # Region x: 5..95 (90 wide) → 4 cuts, ends flush at 5 and 85.
    assert len(cuts) == 4
    assert cuts[0].x1 == 5
    assert cuts[-1].x2 == 95
    gaps = [b.x1 - a.x2 for a, b in zip(cuts, cuts[1:])]
    assert all(gap >= 12 for gap in gaps)
    assert max(gaps) - min(gaps) <= 2  # equidistant up to rounding


def test_array_link_single_cut_is_centred():
    outer = Rect(0, 0, 24, 24, "metal1")
    link = ArrayLink("contact", cut_size=10, cut_space=12, outers=[(outer, 5)])
    link.rebuild()
    cuts = [r for r in link.rects if not r.is_empty]
    assert len(cuts) == 1
    assert cuts[0].as_tuple() == (7, 7, 17, 17)


def test_array_link_shrink_recalculates_and_reuses_rects():
    """Fig. 5b: 'the array of contact-rectangles was recalculated'."""
    outer = Rect(0, 0, 100, 20, "metal1")
    link = ArrayLink("contact", cut_size=10, cut_space=12, outers=[(outer, 5)])
    link.rebuild()
    before = [r for r in link.rects if not r.is_empty]
    assert len(before) == 4
    outer.x2 = 50  # shrink the metal
    link.rebuild()
    after = [r for r in link.rects if not r.is_empty]
    assert len(after) == 2
    # Rect objects are reused (identity stable for the database).
    assert link.rects[0] is before[0]
    # Surplus rects collapse to empty instead of disappearing.
    assert sum(1 for r in link.rects if r.is_empty) == 2


def test_array_link_infeasible_region_empties_all():
    outer = Rect(0, 0, 12, 12, "metal1")
    link = ArrayLink("contact", cut_size=10, cut_space=12, outers=[(outer, 5)])
    link.rebuild()
    assert all(r.is_empty for r in link.rects)
    assert link.region() is None or link.region().width < 10


def test_array_link_region_intersects_outers():
    a = Rect(0, 0, 100, 100, "poly")
    b = Rect(20, 20, 80, 80, "metal1")
    link = ArrayLink("contact", 10, 12, [(a, 8), (b, 5)])
    region = link.region()
    assert region.as_tuple() == (25, 25, 75, 75)

"""Sanity constraints the built-in technologies must satisfy.

The primitives rely on rule relationships (cuts must fit inside their
enclosing conductors, device layers need EXTEND rules, ...); these tests pin
those invariants so future rule edits cannot silently break generators.
"""

import pytest

from repro.tech import BUILTIN_TECHNOLOGIES, LayerKind, get_technology


@pytest.fixture(params=sorted(BUILTIN_TECHNOLOGIES))
def any_tech(request):
    return get_technology(request.param)


def test_get_technology_rejects_unknown():
    with pytest.raises(ValueError):
        get_technology("imaginary_tech")


def test_all_drawn_layers_have_width_rules(any_tech):
    for layer in any_tech.layers:
        if layer.kind is not LayerKind.MARKER:
            assert any_tech.rules.width(layer.name) is not None, layer.name


def test_cut_layers_fit_their_conductors(any_tech):
    for layer in any_tech.layers_of_kind(LayerKind.CUT):
        cut = any_tech.cut_size(layer.name)
        assert cut > 0
        pairs = any_tech.connected_layers(layer.name)
        assert pairs, f"cut layer {layer.name} connects nothing"
        for bottom, top in pairs:
            for side in (bottom, top):
                enc = any_tech.enclosure_or_zero(side, layer.name)
                # A minimal-width conductor of the enclosing layer must be
                # able to hold one cut.
                assert any_tech.min_width(side) <= cut + 2 * enc + 4000


def test_cut_layers_have_spacing(any_tech):
    for layer in any_tech.layers_of_kind(LayerKind.CUT):
        assert any_tech.min_space(layer.name, layer.name) is not None


def test_mos_device_rules_exist(any_tech):
    for diff in ("pdiff", "ndiff"):
        assert any_tech.extension("poly", diff) > 0
        assert any_tech.extension(diff, "poly") > 0
        assert any_tech.min_space("poly", diff) is not None
        # Contacts must keep clear of gates and of foreign diffusion.
        assert any_tech.min_space("poly", "contact") is not None
        assert any_tech.min_space("contact", diff) is not None


def test_conducting_layers_have_capacitance(any_tech):
    for name in ("poly", "pdiff", "metal1", "metal2"):
        cap = any_tech.capacitance(name)
        assert cap.area > 0
        assert cap.perimeter > 0


def test_latchup_rule_present(any_tech):
    assert any_tech.latchup_half_size("subcontact") > 0


def test_gate_row_connection_geometry(any_tech):
    """The transistor idiom requires the poly row to reach the endcap.

    The poly contact row stops at poly-to-diffusion spacing above the active
    area; for it to overlap the gate endcap the endcap extension must exceed
    that spacing.
    """
    for diff in ("pdiff", "ndiff"):
        endcap = any_tech.extension("poly", diff)
        keepout = any_tech.min_space("poly", diff)
        assert endcap > keepout


def test_metal_layers_conduct(any_tech):
    assert any_tech.layer("metal1").conducting
    assert any_tech.layer("metal2").conducting
    assert not any_tech.layer("nwell").conducting

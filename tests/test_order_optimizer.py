"""Compaction-order optimization (Sec. 2.4)."""

import pytest

from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.library import contact_row
from repro.opt import OrderOptimizer, Rating, Step


def make_steps(tech, sizes, direction=Direction.WEST):
    steps = []
    for index, (w, h) in enumerate(sizes):
        obj = LayoutObject(f"s{index}", tech)
        obj.add_rect(Rect(0, 0, w, h, "metal1", f"n{index}"))
        steps.append(Step(obj, direction))
    return steps


def test_requires_steps(tech):
    optimizer = OrderOptimizer()
    with pytest.raises(ValueError):
        optimizer.optimize("m", tech, [])


def test_parameter_validation():
    with pytest.raises(ValueError):
        OrderOptimizer(exhaustive_limit=0)
    with pytest.raises(ValueError):
        OrderOptimizer(beam_width=0)


def test_exhaustive_covers_all_permutations(tech):
    steps = make_steps(tech, [(2000, 2000), (3000, 3000), (4000, 4000)])
    result = OrderOptimizer().optimize("m", tech, steps)
    assert result.evaluated == 6
    assert len(result.scores) == 6
    assert result.best_score == min(result.scores.values())
    assert result.scores[result.best_order] == result.best_score


def test_order_changes_the_result(tech):
    """The paper's premise: the result depends on the compaction order."""
    steps = []
    tall = LayoutObject("tall", tech)
    tall.add_rect(Rect(0, 0, 2000, 20000, "metal1", "a"))
    wide = LayoutObject("wide", tech)
    wide.add_rect(Rect(0, -30000, 20000, -28000, "metal1", "b"))
    small = LayoutObject("small", tech)
    small.add_rect(Rect(0, 0, 2000, 2000, "metal1", "c"))
    steps = [
        Step(tall, Direction.WEST),
        Step(wide, Direction.SOUTH),
        Step(small, Direction.WEST),
    ]
    result = OrderOptimizer().optimize("m", tech, steps)
    scores = set(result.scores.values())
    assert len(scores) > 1  # at least two orders differ
    assert result.best_score == min(scores)


def test_trials_do_not_share_state(tech):
    """Each permutation compacts fresh copies — objects must be unmodified."""
    steps = make_steps(tech, [(2000, 2000), (3000, 3000)])
    before = [step.obj.bbox().as_tuple() for step in steps]
    OrderOptimizer().optimize("m", tech, steps)
    after = [step.obj.bbox().as_tuple() for step in steps]
    assert before == after


def test_run_order_reproduces_best(tech):
    steps = make_steps(tech, [(2000, 2000), (3000, 3000), (4000, 4000)])
    optimizer = OrderOptimizer()
    result = optimizer.optimize("m", tech, steps)
    rebuilt = optimizer.run_order("m", tech, steps, result.best_order)
    assert Rating().evaluate(rebuilt) == pytest.approx(result.best_score)


def test_beam_search_used_beyond_limit(tech):
    steps = make_steps(tech, [(2000 + 500 * i, 2000) for i in range(5)])
    optimizer = OrderOptimizer(exhaustive_limit=3, beam_width=2)
    result = optimizer.optimize("m", tech, steps)
    assert len(result.best_order) == 5
    assert sorted(result.best_order) == list(range(5))
    # Beam evaluates far fewer states than 5! = 120 full layouts.
    assert result.evaluated <= 2 * 5 * 5


def test_beam_matches_exhaustive_on_easy_case(tech):
    steps = make_steps(tech, [(2000, 2000)] * 3)
    exhaustive = OrderOptimizer().optimize("m", tech, steps)
    beam = OrderOptimizer(exhaustive_limit=1, beam_width=3).optimize("m", tech, steps)
    assert beam.best_score == pytest.approx(exhaustive.best_score)


def test_realistic_module_order_sweep(tech, compactor):
    """Order sweep over contact rows finds the dense arrangement."""
    steps = [
        Step(contact_row(tech, "pdiff", w=4.0, net="a", name="a"), Direction.WEST),
        Step(contact_row(tech, "pdiff", w=12.0, net="b", name="b"), Direction.WEST),
        Step(contact_row(tech, "pdiff", w=8.0, net="c", name="c"), Direction.SOUTH),
    ]
    result = OrderOptimizer().optimize("m", tech, steps)
    assert result.best_score <= max(result.scores.values())
    assert result.best.bbox() is not None


def test_electrical_constraints_change_best_order(tech):
    """Sec. 2.4: 'The optimization routine can also handle electrical
    constraints' — a coupling-weighted rating picks a different order."""
    from repro.geometry import Rect
    from repro.opt import Rating

    def build_steps():
        victim = LayoutObject("victim", tech)
        victim.add_rect(Rect(0, 0, 2000, 20000, "metal2", "sensitive"))
        aggressor = LayoutObject("agg", tech)
        aggressor.add_rect(Rect(0, 0, 20000, 20000, "metal1", "noisy"))
        spacer = LayoutObject("spacer", tech)
        spacer.add_rect(Rect(0, 0, 4000, 20000, "metal1", "quiet"))
        return [
            Step(victim, Direction.WEST),
            Step(aggressor, Direction.WEST),
            Step(spacer, Direction.WEST),
        ]

    area_only = OrderOptimizer(rating=Rating(area_weight=1.0))
    by_area = area_only.optimize("m", tech, build_steps())
    electrical = OrderOptimizer(
        rating=Rating(area_weight=1.0, coupling_weight=50.0)
    )
    by_coupling = electrical.optimize("m", tech, build_steps())

    # The area-optimal order stacks victim and aggressor (no metal1/metal2
    # rule lets them overlap); the electrical rating refuses that overlap.
    assert Rating.coupling_area(by_area.best) > 0
    assert Rating.coupling_area(by_coupling.best) == 0
    assert by_coupling.best_order != by_area.best_order

"""Property-based tests of the compaction invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compact import Compactor, gather_constraints
from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.tech import generic_bicmos_1u

TECH = generic_bicmos_1u()

metal_rects = st.builds(
    lambda x, y, w, h, net: Rect(x, y, x + w, y + h, "metal1", net),
    st.integers(min_value=-50_000, max_value=50_000),
    st.integers(min_value=-50_000, max_value=50_000),
    st.integers(min_value=1_500, max_value=20_000),
    st.integers(min_value=1_500, max_value=20_000),
    st.sampled_from(["a", "b", "c"]),
)

directions = st.sampled_from(list(Direction))


@st.composite
def structures(draw):
    rects = draw(st.lists(metal_rects, min_size=1, max_size=4))
    obj = LayoutObject("main", TECH)
    for rect in rects:
        obj.add_rect(rect)
    return obj


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(structures(), metal_rects, directions)
def test_compaction_satisfies_every_constraint(main, moving_rect, direction):
    """After compaction no pair constraint is violated (travel ≥ final)."""
    mover = LayoutObject("m", TECH)
    mover.add_rect(moving_rect)
    compactor = Compactor(variable_edges=False, auto_connect=False)
    compactor.compact(main, mover, direction)
    # Recompute constraints of the placed rect against the rest: all
    # remaining allowed travels must be >= 0 (nothing is violated).
    placed = main.nonempty_rects[-1]
    others = main.nonempty_rects[:-1]
    constraints = gather_constraints(TECH, [placed], others, direction)
    assert all(c.max_travel >= 0 for c in constraints)


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(structures(), metal_rects, directions)
def test_compaction_is_idempotent(main, moving_rect, direction):
    """Re-compacting an already-abutted object moves it nowhere."""
    mover = LayoutObject("m", TECH)
    mover.add_rect(moving_rect)
    compactor = Compactor(variable_edges=False, auto_connect=False)
    compactor.compact(main, mover, direction)
    again = LayoutObject("m2", TECH)
    again.add_rect(main.nonempty_rects[-1].copy())
    snapshot = [r.as_tuple() for r in main.nonempty_rects[:-1]]
    probe = LayoutObject("probe", TECH)
    for t in snapshot:
        probe.add_rect(Rect(*t, "metal1"))
    # The mover's own copy against the same structure: zero travel.
    result = compactor.compact(
        _structure_without_last(main), again, direction
    )
    assert result.travel == 0


def _structure_without_last(main):
    clone = LayoutObject("clone", TECH)
    for rect in main.nonempty_rects[:-1]:
        clone.add_rect(rect.copy())
    return clone


@settings(max_examples=40, deadline=None)
@given(structures(), metal_rects, directions)
def test_compaction_only_translates_along_axis(main, moving_rect, direction):
    """Compaction never moves the object perpendicular to its direction."""
    mover = LayoutObject("m", TECH)
    mover.add_rect(moving_rect)
    before = moving_rect.as_tuple()
    compactor = Compactor(variable_edges=False, auto_connect=False)
    compactor.compact(main, mover, direction)
    after = mover.nonempty_rects[0].as_tuple()
    if direction.axis.value == "x":
        assert (before[1], before[3]) == (after[1], after[3])
        assert before[2] - before[0] == after[2] - after[0]
    else:
        assert (before[0], before[2]) == (after[0], after[2])
        assert before[3] - before[1] == after[3] - after[1]


@settings(max_examples=40, deadline=None)
@given(structures(), metal_rects, directions)
def test_variable_edges_never_hurt_density(main, moving_rect, direction):
    """With variable edges enabled the final travel is at least as far."""
    def run(variable):
        local_main = LayoutObject("lm", TECH)
        for rect in main.nonempty_rects:
            clone = rect.copy()
            if variable:
                clone.set_variable()
            local_main.add_rect(clone)
        mover = LayoutObject("m", TECH)
        mover.add_rect(moving_rect.copy())
        compactor = Compactor(variable_edges=variable, auto_connect=False)
        return compactor.compact(local_main, mover, direction).travel

    assert run(True) >= run(False)


@settings(max_examples=40, deadline=None)
@given(st.lists(metal_rects, min_size=2, max_size=5))
def test_order_invariance_of_legality(rect_list):
    """Any compaction order yields a legal layout (no violated pairs)."""
    compactor = Compactor(variable_edges=False, auto_connect=False)
    main = LayoutObject("main", TECH)
    for index, rect in enumerate(rect_list):
        mover = LayoutObject(f"m{index}", TECH)
        mover.add_rect(rect.copy())
        compactor.compact(main, mover, Direction.WEST)
    rects = main.nonempty_rects
    rule = TECH.min_space("metal1", "metal1")
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            if a.net == b.net:
                continue
            assert a.distance(b) >= rule


mixed_rects = st.builds(
    lambda x, y, w, h, layer, net, no_overlap: Rect(
        x, y, x + w, y + h, layer, net, no_overlap=no_overlap
    ),
    st.integers(min_value=-40_000, max_value=40_000),
    st.integers(min_value=-40_000, max_value=40_000),
    st.integers(min_value=1_500, max_value=15_000),
    st.integers(min_value=1_500, max_value=15_000),
    st.sampled_from(["metal1", "metal2", "poly", "ndiff"]),
    st.sampled_from(["a", "b", None]),
    st.booleans(),
)


@st.composite
def mixed_structures(draw):
    rects = draw(st.lists(mixed_rects, min_size=1, max_size=5))
    obj = LayoutObject("main", TECH)
    for rect in rects:
        obj.add_rect(rect)
    return obj


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(mixed_structures(), mixed_rects, directions)
def test_frontier_filter_soundness(main, moving_rect, direction):
    """The frontier filter never changes the final travel.

    Dropping rects hidden behind the outer-edge frontier is a pure
    speed-up: the surviving constraints must already be the binding ones,
    whatever mix of layers, nets, and no_overlap flags is in play.
    """
    def run(use_frontier):
        local_main = LayoutObject("lm", TECH)
        for rect in main.nonempty_rects:
            local_main.add_rect(rect.copy())
        mover = LayoutObject("m", TECH)
        mover.add_rect(moving_rect.copy())
        compactor = Compactor(
            use_frontier=use_frontier, variable_edges=False, auto_connect=False
        )
        return compactor.compact(local_main, mover, direction).travel

    assert run(True) == run(False)


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(mixed_structures(), mixed_rects, directions)
def test_gather_constraints_fast_path_matches_naive_product(main, moving_rect, direction):
    """The per-layer fast path equals the all-pairs reference, in order."""
    from repro.compact.separation import pair_travel, required_spacing

    fixed = main.nonempty_rects
    fast = gather_constraints(TECH, [moving_rect], fixed, direction)

    naive = []
    for other in fixed:
        spacing = required_spacing(TECH, moving_rect, other, frozenset())
        if spacing is None:
            continue
        travel = pair_travel(moving_rect, other, direction, spacing)
        if travel is None:
            continue
        naive.append((id(other), spacing, travel))

    assert [(id(c.fixed), c.spacing, c.max_travel) for c in fast] == naive

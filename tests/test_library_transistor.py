"""MOS transistor and interdigitated-row modules."""

import pytest

from repro.compact import Compactor
from repro.db import net_is_connected
from repro.drc import run_drc
from repro.geometry import Direction
from repro.library import (
    DeviceNets,
    diode_transistor,
    interdigitated_transistor,
    mos_transistor,
    patterned_row,
    strap_net,
)


def test_mos_transistor_structure(tech):
    mos = mos_transistor(tech, 10.0, 1.0)
    assert run_drc(mos, include_latchup=False) == []
    # Gate poly connected to its contact row (overlap through the endcap).
    assert net_is_connected(mos.rects, tech, "g")
    # Drain east of the gate, source west.
    gate = next(r for r in mos.rects_on("poly") if r.height > r.width)
    drain_cuts = [r for r in mos.rects_on("contact") if r.net == "d"]
    source_cuts = [r for r in mos.rects_on("contact") if r.net == "s"]
    assert all(c.x1 > gate.x2 for c in drain_cuts)
    assert all(c.x2 < gate.x1 for c in source_cuts)
    # Contacts keep the rule distance from the gate.
    rule = tech.min_space("poly", "contact")
    assert min(c.x1 for c in drain_cuts) - gate.x2 == rule


def test_gate_side_selection(tech):
    north = mos_transistor(tech, 8.0, 1.0, gate_side="north")
    south = mos_transistor(tech, 8.0, 1.0, gate_side="south")
    # The contact row sits beyond the diffusion (|y| 4000) on the chosen side.
    row_n = max(north.rects_on("contact"), key=lambda r: r.y2)
    row_s = min(south.rects_on("contact"), key=lambda r: r.y1)
    assert row_n.net == "g" and row_n.y1 >= 4000
    assert row_s.net == "g" and row_s.y2 <= -4000


def test_optional_contacts(tech):
    bare = mos_transistor(
        tech, 8.0, 1.0,
        gate_contact=False, source_contact=False, drain_contact=False,
    )
    assert bare.rects_on("contact") == []
    assert len(bare.rects_on("poly")) == 1


def test_gate_side_validation(tech):
    with pytest.raises(ValueError):
        mos_transistor(tech, 8.0, 1.0, gate_side="east")


def test_diode_transistor_connects_gate_to_drain(tech):
    diode = diode_transistor(tech, 8.0, 1.0)
    assert run_drc(diode, include_latchup=False) == []
    assert net_is_connected(diode.rects, tech, "bias")


def test_interdigitated_shares_columns(tech):
    """N fingers need N+1 diffusion columns, not 2N."""
    four = interdigitated_transistor(tech, 10.0, 1.0, fingers=4)
    assert run_drc(four, include_latchup=False) == []
    two = interdigitated_transistor(tech, 10.0, 1.0, fingers=2)
    # Width grows sub-linearly per finger thanks to column sharing.
    per_finger_4 = four.width / 4
    per_finger_2 = two.width / 2
    assert per_finger_4 < per_finger_2


def test_interdigitated_validation(tech):
    with pytest.raises(ValueError):
        interdigitated_transistor(tech, 10.0, 1.0, fingers=0)


def test_patterned_row_validation(tech):
    with pytest.raises(ValueError):
        patterned_row(tech, 10.0, 1.0, "", {})
    with pytest.raises(ValueError):
        patterned_row(tech, 10.0, 1.0, "AX", {"A": DeviceNets("g", "d")})


def test_patterned_row_different_nets_keep_spacing(tech):
    row = patterned_row(
        tech, 10.0, 1.0, "AB",
        {"A": DeviceNets("gA", "dA"), "B": DeviceNets("gB", "dB")},
    )
    assert run_drc(row, include_latchup=False) == []
    # The two drain columns' diffusion regions stay apart.
    d_a = [r for r in row.rects_on("pdiff") if r.net == "dA"]
    d_b = [r for r in row.rects_on("pdiff") if r.net == "dB"]
    assert d_a and d_b


def test_fig5a_strap_autoconnects_sources(tech):
    """Fig. 5a end-to-end: strap + automatic connection of the outer rows."""
    row = patterned_row(
        tech, 10.0, 1.0, "AA", {"A": DeviceNets("g", "d")},
        source_net="s", gate_side="south",
    )
    assert not net_is_connected(row.rects, tech, "s")
    strap_net(row, "s", Direction.SOUTH)
    assert net_is_connected(row.rects, tech, "s")
    assert run_drc(row, include_latchup=False) == []


def test_fig5b_variable_edges_make_denser_layout(tech):
    """Fig. 5b claim: variable edges give 'a substantial reduction'."""
    def build(variable):
        compactor = Compactor(variable_edges=variable)
        row = patterned_row(
            tech, 10.0, 1.0, "AA", {"A": DeviceNets("g", "d")},
            source_net="s", gate_side="south", compactor=compactor,
        )
        strap_net(row, "s", Direction.SOUTH, compactor=compactor)
        return row.area()

    assert build(True) < build(False)

"""Passive modules: poly resistors and MOS capacitors, plus RC estimation."""

import pytest

from repro.db import (
    estimate_net_resistance,
    net_is_connected,
    rc_report,
)
from repro.db.nets import extract_connectivity
from repro.drc import run_drc
from repro.geometry import Rect
from repro.library.passives import (
    capacitor_value,
    mos_capacitor,
    poly_resistor,
    resistor_value,
)
from repro.tech import RuleError


# ---------------------------------------------------------------------------
# resistance estimation
# ---------------------------------------------------------------------------
def test_straight_wire_resistance(tech):
    # 20 µm × 2 µm poly = 10 squares × 25 Ω/□ = 250 Ω.
    rects = [Rect(0, 0, 20000, 2000, "poly", "r")]
    assert estimate_net_resistance(rects, tech, "r") == pytest.approx(250.0)


def test_resistance_ignores_other_nets_and_unruled_layers(tech):
    rects = [
        Rect(0, 0, 20000, 2000, "poly", "r"),
        Rect(0, 0, 20000, 2000, "poly", "other"),
        Rect(0, 0, 20000, 2000, "nwell", "r"),  # no SHEET rule
    ]
    assert estimate_net_resistance(rects, tech, "r") == pytest.approx(250.0)


def test_metal_is_nearly_free(tech):
    poly = [Rect(0, 0, 20000, 2000, "poly", "r")]
    metal = [Rect(0, 0, 20000, 2000, "metal1", "r")]
    assert estimate_net_resistance(metal, tech, "r") < 0.01 * estimate_net_resistance(
        poly, tech, "r"
    )


def test_rc_report(tech):
    rects = [Rect(0, 0, 20000, 2000, "poly", "r")]
    report = rc_report(rects, tech)
    resistance, capacitance, rc_ps = report["r"]
    assert resistance == pytest.approx(250.0)
    assert capacitance > 0
    assert rc_ps == pytest.approx(resistance * capacitance * 1e-6)


# ---------------------------------------------------------------------------
# poly resistor
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("segments", [1, 2, 3, 4, 7])
def test_resistor_is_drc_clean(tech, segments):
    resistor = poly_resistor(tech, segments=segments)
    assert run_drc(resistor, include_latchup=False) == []


def test_resistor_terminals_are_chained(tech):
    resistor = poly_resistor(tech, segments=4)
    components = extract_connectivity(resistor.rects, tech)
    with_a = [c for c in components if any(r.net == "ra" for r in c)]
    assert len(with_a) == 1
    assert any(r.net == "rb" for r in with_a[0])


def test_resistor_value_scales_with_squares(tech):
    # ~10 squares/segment; value should scale near-linearly with segments.
    two = resistor_value(poly_resistor(tech, segments=2), tech)
    four = resistor_value(poly_resistor(tech, segments=4), tech)
    assert 1.7 < four / two < 2.3


def test_resistor_value_scales_inverse_with_width(tech):
    narrow = resistor_value(poly_resistor(tech, width=2.0, segments=2), tech)
    wide = resistor_value(poly_resistor(tech, width=4.0, segments=2), tech)
    assert wide < narrow


def test_resistor_validation(tech):
    with pytest.raises(RuleError):
        poly_resistor(tech, segments=0)


def test_resistor_value_requires_body_net(tech):
    from repro.db import LayoutObject

    with pytest.raises(RuleError):
        resistor_value(LayoutObject("empty", tech), tech)


# ---------------------------------------------------------------------------
# MOS capacitor
# ---------------------------------------------------------------------------
def test_capacitor_is_drc_clean(tech):
    cap = mos_capacitor(tech, 20.0, 20.0)
    assert run_drc(cap, include_latchup=False) == []


def test_capacitor_plates_connected(tech):
    cap = mos_capacitor(tech, 20.0, 20.0)
    assert net_is_connected(cap.rects, tech, "ctop")
    # The two bottom-plate columns were strapped by the Fig. 5a
    # auto-connection during compaction.
    assert net_is_connected(cap.rects, tech, "cbot")


def test_capacitance_scales_with_area(tech):
    small = capacitor_value(mos_capacitor(tech, 10.0, 10.0), tech)
    large = capacitor_value(mos_capacitor(tech, 20.0, 20.0), tech)
    assert 2.5 < large / small < 4.5  # area term dominates over perimeter


def test_capacitor_on_half_micron(tech05):
    cap = mos_capacitor(tech05, 10.0, 10.0)
    assert run_drc(cap, include_latchup=False) == []

"""IntervalSet: the frontier sweep's union structure, vs a naive model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.compact.separation import IntervalSet

interval = st.tuples(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=1, max_value=200),
).map(lambda t: (t[0], t[0] + t[1]))


class NaiveSet:
    """Reference model: a boolean per integer coordinate."""

    def __init__(self):
        self.points = set()

    def add(self, lo, hi):
        self.points.update(range(lo, hi))

    def contains(self, lo, hi):
        return all(p in self.points for p in range(lo, hi))


def test_empty_contains_nothing():
    s = IntervalSet()
    assert not s.contains(0, 1)


def test_basic_merge():
    s = IntervalSet()
    s.add(0, 10)
    s.add(10, 20)  # adjacent: merges
    assert s.contains(0, 20)
    assert not s.contains(-1, 5)
    assert not s.contains(15, 21)


def test_gap_not_contained():
    s = IntervalSet()
    s.add(0, 10)
    s.add(20, 30)
    assert not s.contains(5, 25)
    assert s.contains(20, 30)


def test_zero_length_adds_ignored():
    s = IntervalSet()
    s.add(5, 5)
    assert not s.contains(5, 6)


def test_bridging_add_merges_many():
    s = IntervalSet()
    s.add(0, 10)
    s.add(20, 30)
    s.add(40, 50)
    s.add(5, 45)  # bridges all three
    assert s.contains(0, 50)


@given(st.lists(interval, min_size=0, max_size=20), interval)
def test_matches_naive_model(adds, query):
    fast = IntervalSet()
    naive = NaiveSet()
    for lo, hi in adds:
        fast.add(lo, hi)
        naive.add(lo, hi)
    lo, hi = query
    assert fast.contains(lo, hi) == naive.contains(lo, hi)


@given(st.lists(interval, min_size=1, max_size=20))
def test_added_intervals_always_contained(adds):
    fast = IntervalSet()
    for lo, hi in adds:
        fast.add(lo, hi)
    for lo, hi in adds:
        assert fast.contains(lo, hi)

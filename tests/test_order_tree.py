"""Shared-prefix tree order search: equivalence, pruning, parallel mode.

The tree engine must be a drop-in replacement for the replay-based
exhaustive sweep of Sec. 2.4: identical ``best_order`` and ``best_score``
(including lexicographic tie-breaking), with at most one compaction step per
distinct order prefix, whether pruning or process parallelism is on.
"""

import math

import pytest

from repro.compact import Compactor
from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.library import contact_row, diff_pair
from repro.opt import (
    AnnealingOrderOptimizer,
    OrderOptimizer,
    PrefixTree,
    Rating,
    Step,
    TreeOrderOptimizer,
    select_order_variants,
)

W, S, E, N = Direction.WEST, Direction.SOUTH, Direction.EAST, Direction.NORTH


def rect_steps(tech, shapes):
    steps = []
    for i, (w, h, direction) in enumerate(shapes):
        obj = LayoutObject(f"s{i}", tech)
        obj.add_rect(Rect(0, 0, w, h, "metal1", f"n{i}"))
        steps.append(Step(obj, direction))
    return steps


def heterogeneous_steps(tech):
    """Tall strips + wide bars: the order strongly changes the area."""
    return rect_steps(
        tech,
        [(2000, 18000, W), (16000, 2500, S), (3000, 9000, W), (4000, 4000, S)],
    )


def contact_row_steps(tech):
    """The Sec. 2.4 sweep module: three diffusion rows and a poly row."""
    return [
        Step(contact_row(tech, "pdiff", w=4.0, net="a", name="a"), W),
        Step(contact_row(tech, "pdiff", w=14.0, net="b", name="b"), S),
        Step(contact_row(tech, "pdiff", w=8.0, net="c", name="c"), W),
        Step(contact_row(tech, "poly", w=2.0, length=12.0, net="d", name="d"), S),
    ]


def amplifier_style_steps(tech):
    """Amplifier-flavoured blocks: a diff pair plus its supply rows."""
    return [
        Step(diff_pair(tech, 4.0, 1.0, name="pair"), W),
        Step(contact_row(tech, "pdiff", w=6.0, net="vss", name="tail"), S),
        Step(contact_row(tech, "metal1", w=8.0, net="out", name="rail"), S),
    ]


def assert_engines_agree(tech, steps, rating=None):
    """All four engines return the identical optimum on *steps*."""
    n = len(steps)
    exhaustive = OrderOptimizer(
        compactor=Compactor(), rating=rating, exhaustive_limit=n
    ).optimize("m", tech, steps)
    outcomes = {"exhaustive": exhaustive}
    for label, optimizer in (
        ("tree", TreeOrderOptimizer(compactor=Compactor(), rating=rating,
                                    prune=False)),
        ("pruned", TreeOrderOptimizer(compactor=Compactor(), rating=rating,
                                      prune=True)),
        ("parallel", TreeOrderOptimizer(compactor=Compactor(), rating=rating,
                                        prune=True, workers=2)),
    ):
        result = optimizer.optimize("m", tech, steps)
        assert result.best_order == exhaustive.best_order, label
        assert result.best_score == pytest.approx(exhaustive.best_score), label
        assert result.scores[result.best_order] == pytest.approx(
            result.best_score
        ), label
        assert result.best.bbox() == exhaustive.best.bbox(), label
        outcomes[label] = result
    return outcomes


# ----------------------------------------------------------------------
# equivalence with the replay-based exhaustive sweep
# ----------------------------------------------------------------------
def test_tree_matches_exhaustive_on_rect_module(tech):
    assert_engines_agree(tech, heterogeneous_steps(tech))


def test_tree_matches_exhaustive_on_contact_rows(tech):
    assert_engines_agree(tech, contact_row_steps(tech))


def test_tree_matches_exhaustive_on_amplifier_style_steps(tech):
    assert_engines_agree(tech, amplifier_style_steps(tech))


def test_tree_matches_exhaustive_with_electrical_rating(tech):
    rating = Rating(area_weight=1.0, capacitance_weights={"n0": 0.002},
                    coupling_weight=0.5)
    assert_engines_agree(tech, heterogeneous_steps(tech), rating=rating)


def test_unpruned_tree_scores_identical_to_exhaustive(tech):
    steps = heterogeneous_steps(tech)
    outcomes = assert_engines_agree(tech, steps)
    # The un-pruned tree visits every permutation: the full scores map must
    # match the replay sweep's, key for key and value for value.
    exhaustive, tree = outcomes["exhaustive"], outcomes["tree"]
    assert tree.scores.keys() == exhaustive.scores.keys()
    for order, score in exhaustive.scores.items():
        assert tree.scores[order] == pytest.approx(score)
    assert tree.evaluated == math.factorial(len(steps))


def test_tie_breaking_is_lexicographic(tech):
    # Four identical squares: every order scores the same, so all engines
    # must return the lexicographically smallest order — the replay
    # semantics ("first strictly better wins" keeps the first-seen order).
    steps = rect_steps(tech, [(5000, 5000, W)] * 4)
    outcomes = assert_engines_agree(tech, steps)
    assert outcomes["exhaustive"].best_order == (0, 1, 2, 3)


# ----------------------------------------------------------------------
# the tentpole invariant: one compact per distinct prefix
# ----------------------------------------------------------------------
def test_one_compact_per_distinct_prefix(tech):
    steps = heterogeneous_steps(tech)
    n = len(steps)
    compactor = Compactor()
    result = TreeOrderOptimizer(compactor=compactor, prune=False).optimize(
        "m", tech, steps
    )
    # Distinct non-empty prefixes of an n-step permutation space:
    # sum over k of n!/(n-k)!  (n=4 -> 4 + 12 + 24 + 24 = 64), versus
    # n!*n = 96 replayed steps for the baseline.
    prefixes = sum(
        math.factorial(n) // math.factorial(n - k) for k in range(1, n + 1)
    )
    assert compactor.calls == prefixes
    assert result.compact_calls == prefixes
    assert result.evaluated == math.factorial(n)


def test_pruned_search_accounting(tech):
    steps = heterogeneous_steps(tech)
    n = len(steps)
    result = TreeOrderOptimizer(compactor=Compactor(), prune=True).optimize(
        "m", tech, steps
    )
    # Every permutation is either evaluated or pruned, never both.
    assert result.evaluated + result.pruned == math.factorial(n)
    assert result.pruned > 0  # this module does prune
    assert len(result.scores) == result.evaluated
    assert all(len(order) == n for order in result.scores)
    assert result.best_order in result.scores


def test_negative_weight_disables_pruning_not_correctness(tech):
    # A negative weight rewards larger layouts, so the area bound is no
    # longer a lower bound; the rating reports itself unbounded and the
    # pruned engine must silently degrade to the full sweep.
    rating = Rating(area_weight=-1.0)
    assert not rating.bounded()
    obj = LayoutObject("m", tech)
    assert rating.lower_bound(obj) == float("-inf")
    steps = heterogeneous_steps(tech)
    exhaustive = OrderOptimizer(
        compactor=Compactor(), rating=rating, exhaustive_limit=4
    ).optimize("m", tech, steps)
    pruned = TreeOrderOptimizer(
        compactor=Compactor(), rating=rating, prune=True
    ).optimize("m", tech, steps)
    assert pruned.best_order == exhaustive.best_order
    assert pruned.best_score == pytest.approx(exhaustive.best_score)
    assert pruned.pruned == 0
    assert pruned.evaluated == math.factorial(len(steps))


# ----------------------------------------------------------------------
# beam scores contract
# ----------------------------------------------------------------------
def test_beam_records_every_terminal_order(tech):
    steps = heterogeneous_steps(tech)
    optimizer = OrderOptimizer(
        compactor=Compactor(), exhaustive_limit=1, beam_width=2
    )
    result = optimizer.optimize("m", tech, steps)
    # scores holds every evaluated *complete* order — the final-round
    # expansions of the surviving beam — and never a partial prefix.
    assert result.scores
    assert all(len(order) == len(steps) for order in result.scores)
    assert result.best_order in result.scores
    assert result.scores[result.best_order] == pytest.approx(result.best_score)


# ----------------------------------------------------------------------
# PrefixTree unit behaviour
# ----------------------------------------------------------------------
def test_prefix_tree_caches_and_counts(tech):
    steps = heterogeneous_steps(tech)
    tree = PrefixTree("m", tech, steps)
    first = tree.layout((0, 1))
    assert tree.compact_calls == 2  # (0,) then (0, 1)
    assert tree.layout((0, 1)) is first  # cached, no recompaction
    assert tree.compact_calls == 2
    tree.layout((0, 2))
    assert tree.compact_calls == 3  # shares the (0,) prefix


def test_prefix_tree_realize_is_independent(tech):
    steps = heterogeneous_steps(tech)
    tree = PrefixTree("m", tech, steps)
    copy = tree.realize((0, 1))
    internal = tree.layout((0, 1))
    assert copy is not internal
    moved = copy.rects[0]
    twin = internal.rects[0]
    moved.translate(12345, 6789)
    assert (twin.x1, twin.y1) != (moved.x1, moved.y1)


def test_prefix_tree_advance_donates_parent(tech):
    steps = heterogeneous_steps(tech)
    tree = PrefixTree("m", tech, steps)
    parent = tree.layout((0,))
    child = tree.advance((0,), 1)
    assert child is parent  # compacted in place, no snapshot
    assert tree.cached_prefixes() == 2  # root + (0, 1); (0,) was consumed
    assert tree.layout((0, 1)) is child


def test_prefix_tree_advance_bad_index_restores_parent(tech):
    steps = heterogeneous_steps(tech)
    tree = PrefixTree("m", tech, steps)
    tree.layout((0,))
    before = tree.compact_calls
    with pytest.raises(IndexError):
        tree.advance((0,), 99)
    assert tree.compact_calls == before
    assert tree.layout((0,)) is not None  # parent still resident


def test_prefix_tree_evict_and_prune_depth(tech):
    steps = heterogeneous_steps(tech)
    tree = PrefixTree("m", tech, steps)
    tree.layout((0, 1, 2))
    tree.layout((0, 2))
    assert tree.evict((0, 1)) == 2  # (0, 1) and (0, 1, 2)
    assert tree.cached_prefixes() == 3  # root, (0,), (0, 2)
    tree.layout((1, 0, 2))
    assert tree.prune_depth(1) > 0
    assert tree.cached_prefixes() == 3  # root, (0,), (1,) survive
    before = tree.compact_calls
    tree.layout((0, 1))  # recomputable after eviction, one new step
    assert tree.compact_calls == before + 1


# ----------------------------------------------------------------------
# tree-backed clients: variant selection and annealing
# ----------------------------------------------------------------------
def test_select_order_variants_shares_prefixes(tech):
    steps = heterogeneous_steps(tech)
    compactor = Compactor()
    result = select_order_variants(
        "m", tech, steps,
        orders=[(0, 1, 2, 3), (0, 1, 3, 2), (1, 0, 2, 3)],
        compactor=compactor,
    )
    assert result.best_index in (0, 1, 2)
    assert len(result.trials) == 3
    # Shared (0, 1) prefix: 4 + 2 + 4 = 10 steps instead of 12 replayed.
    assert compactor.calls == 10


def test_anneal_prefix_cache_matches_replay_evaluation(tech):
    steps = heterogeneous_steps(tech)
    classic = AnnealingOrderOptimizer(
        compactor=Compactor(), seed=7
    ).optimize("m", tech, steps)
    cached = AnnealingOrderOptimizer(
        compactor=Compactor(), seed=7, prefix_cache_depth=2
    ).optimize("m", tech, steps)
    assert cached.best_order == classic.best_order
    assert cached.best_score == pytest.approx(classic.best_score)
    assert cached.scores.keys() == classic.scores.keys()

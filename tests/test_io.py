"""IO: GDSII round-trip, SVG rendering, text dumps."""

import struct

import pytest

from repro.db import LayoutObject
from repro.geometry import Rect
from repro.io import (
    dumps_object,
    loads_object,
    read_gds,
    render_legend,
    render_svg,
    write_gds,
    write_svg,
)
from repro.io.gds import _decode_real, _gds_real
from repro.library import contact_row


# ---------------------------------------------------------------------------
# GDS
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "value", [0.0, 1.0, -1.0, 0.001, 1e-9, 123456.789, 2.0 ** 40]
)
def test_gds_real_roundtrip(value):
    assert _decode_real(_gds_real(value)) == pytest.approx(value, rel=1e-12)


def test_gds_roundtrip(tech, tmp_path):
    row = contact_row(tech, "poly", w=1.0, length=10.0, net="g", name="ROW")
    path = tmp_path / "row.gds"
    write_gds(row, path)
    restored = read_gds(path, tech)
    assert len(restored) == 1
    back = restored[0]
    assert back.name == "ROW"
    original = sorted(r.as_tuple() for r in row.nonempty_rects)
    roundtrip = sorted(r.as_tuple() for r in back.nonempty_rects)
    assert original == roundtrip
    layers = sorted(r.layer for r in back.nonempty_rects)
    assert layers == sorted(r.layer for r in row.nonempty_rects)


def test_gds_labels_roundtrip(tech, tmp_path):
    obj = LayoutObject("L", tech)
    obj.add_rect(Rect(0, 0, 1000, 1000, "metal1"))
    obj.add_label("out", 500, 500, "metal1")
    path = tmp_path / "l.gds"
    write_gds(obj, path)
    back = read_gds(path, tech)[0]
    assert back.labels[0].text == "out"
    assert (back.labels[0].x, back.labels[0].y) == (500, 500)


def test_gds_multiple_structures(tech, tmp_path):
    a = LayoutObject("A", tech)
    a.add_rect(Rect(0, 0, 1000, 1000, "poly"))
    b = LayoutObject("B", tech)
    b.add_rect(Rect(0, 0, 2000, 2000, "metal1"))
    path = tmp_path / "lib.gds"
    write_gds([a, b], path)
    names = [o.name for o in read_gds(path, tech)]
    assert names == ["A", "B"]


def test_gds_write_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_gds([], tmp_path / "x.gds")


def test_gds_header_is_valid_stream(tech, tmp_path):
    obj = LayoutObject("A", tech)
    obj.add_rect(Rect(0, 0, 1000, 1000, "poly"))
    path = tmp_path / "a.gds"
    write_gds(obj, path)
    data = path.read_bytes()
    length, rectype = struct.unpack_from(">HH", data, 0)
    assert rectype == 0x0002  # HEADER
    version = struct.unpack_from(">h", data, 4)[0]
    assert version == 600


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------
def test_render_svg_contains_patterns_and_rects(tech):
    row = contact_row(tech, "poly", w=1.0, length=10.0, name="ROW")
    svg = render_svg(row)
    assert svg.startswith("<svg")
    assert "pat-poly" in svg  # hatch pattern defined (Fig. 4)
    assert svg.count("<rect") >= len(row.nonempty_rects)


def test_render_svg_empty_object(tech):
    obj = LayoutObject("E", tech)
    svg = render_svg(obj)
    assert svg.startswith("<svg")


def test_render_svg_labels(tech):
    obj = LayoutObject("L", tech)
    obj.add_rect(Rect(0, 0, 1000, 1000, "metal1"))
    obj.add_label("vin", 0, 0, "metal1")
    assert "vin" in render_svg(obj)
    assert "vin" not in render_svg(obj, show_labels=False)


def test_render_legend_lists_all_layers(tech):
    legend = render_legend(tech)
    for layer in tech.layers:
        assert layer.name in legend


def test_write_svg(tech, tmp_path):
    row = contact_row(tech, "poly", w=1.0, length=10.0)
    path = tmp_path / "row.svg"
    write_svg(row, path)
    assert path.read_text().startswith("<svg")


# ---------------------------------------------------------------------------
# text dump
# ---------------------------------------------------------------------------
def test_textdump_roundtrip(tech):
    row = contact_row(tech, "poly", w=1.0, length=10.0, net="g", name="ROW")
    row.add_label("pin", 0, 0, "metal1")
    text = dumps_object(row)
    back = loads_object(text, tech)
    assert back.name == "ROW"
    assert sorted(r.as_tuple() for r in back.nonempty_rects) == sorted(
        r.as_tuple() for r in row.nonempty_rects
    )
    assert back.labels[0].text == "pin"
    # Deterministic: dumping again is stable.
    assert dumps_object(back) == text


def test_textdump_is_sorted_deterministically(tech):
    a = LayoutObject("X", tech)
    a.add_rect(Rect(5, 5, 10, 10, "poly"))
    a.add_rect(Rect(0, 0, 3, 3, "poly"))
    b = LayoutObject("X", tech)
    b.add_rect(Rect(0, 0, 3, 3, "poly"))
    b.add_rect(Rect(5, 5, 10, 10, "poly"))
    assert dumps_object(a) == dumps_object(b)


def test_textdump_errors(tech):
    with pytest.raises(ValueError):
        loads_object("RECT poly 0 0 1 1\n", tech)
    with pytest.raises(ValueError):
        loads_object("JUNK\n", tech)
    with pytest.raises(ValueError):
        loads_object("", tech)


def test_gds_reader_decomposes_rectilinear_polygons(tech, tmp_path):
    """Non-rectangular boundaries are sliced into rectangles on read."""
    import struct

    from repro.io.gds import _ascii, _gds_real, _record

    # Hand-build a GDS with one L-shaped boundary on the poly layer.
    out = bytearray()
    out += _record(0x0002, struct.pack(">h", 600))
    out += _record(0x0102, struct.pack(">12h", *((1996, 1, 1, 0, 0, 0) * 2)))
    out += _record(0x0206, _ascii("LIB"))
    out += _record(0x0305, _gds_real(1e-3) + _gds_real(1e-9))
    out += _record(0x0502, struct.pack(">12h", *((1996, 1, 1, 0, 0, 0) * 2)))
    out += _record(0x0606, _ascii("LSHAPE"))
    out += _record(0x0800)
    out += _record(0x0D02, struct.pack(">h", tech.layer("poly").gds_number))
    out += _record(0x0E02, struct.pack(">h", 0))
    outline = [0, 0, 4000, 0, 4000, 2000, 2000, 2000, 2000, 4000, 0, 4000, 0, 0]
    out += _record(0x1003, struct.pack(f">{len(outline)}i", *outline))
    out += _record(0x1100)
    out += _record(0x0700)
    out += _record(0x0400)
    path = tmp_path / "l.gds"
    path.write_bytes(bytes(out))

    from repro.geometry import union_area
    from repro.io import read_gds

    obj = read_gds(path, tech)[0]
    rects = obj.rects_on("poly")
    assert len(rects) >= 2
    assert union_area(rects) == 4000 * 2000 + 2000 * 2000

"""Cross-process observability: histograms, context propagation, merging.

Three layers of guarantees:

* :class:`LogHistogram` — the fixed bucket grid is deterministic, merging
  is exactly equal to single-process recording, and percentile estimates
  stay within the bucket-width error bound;
* :class:`TraceContext` / :class:`TracerSnapshot` — capture is free when
  tracing is off, the worker bootstrap records under a fresh tracer, and
  snapshots survive pickling (the process-pool transport);
* the parallel optimizer — with ``workers>=2`` a traced run returns
  byte-identical output to an untraced one, parent counters exactly equal
  the fold of the merged worker snapshots, and the merged Chrome trace is
  schema-valid with per-worker pid lanes and no dropped child spans.
"""

import json
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.geometry import Direction
from repro.io import dumps_cif
from repro.library import contact_row
from repro.obs import (
    ChromeTraceSink,
    LogHistogram,
    StatsSink,
    TraceContext,
    Tracer,
    TracerSnapshot,
    validate_chrome_trace,
)
from repro.obs.ledger import snapshot_metrics
from repro.opt import Step, TreeOrderOptimizer
from repro.tech import generic_bicmos_1u

TECH = generic_bicmos_1u()


# ---------------------------------------------------------------------------
# LogHistogram
# ---------------------------------------------------------------------------
def test_bucket_zero_and_negatives():
    assert LogHistogram.bucket_index(0) == 0
    assert LogHistogram.bucket_index(-5) == 0
    assert LogHistogram.bucket_bounds(0) == (0.0, 0.0)


@given(st.integers(min_value=1, max_value=2**62))
def test_bucket_bounds_contain_the_value(value):
    index = LogHistogram.bucket_index(value)
    lo, hi = LogHistogram.bucket_bounds(index)
    assert lo <= value < hi


@given(st.integers(min_value=1, max_value=2**62))
def test_bucket_relative_error_bound(value):
    """A bucket midpoint is within one sub-bucket width of any member."""
    lo, hi = LogHistogram.bucket_bounds(LogHistogram.bucket_index(value))
    mid = (lo + hi) / 2.0
    assert abs(mid - value) / value <= 1.0 / LogHistogram.SUBBUCKETS


@given(
    st.lists(st.integers(min_value=0, max_value=10**12), max_size=60),
    st.lists(st.integers(min_value=0, max_value=10**12), max_size=60),
)
def test_merge_equals_single_process_recording(left, right):
    a = LogHistogram()
    b = LogHistogram()
    combined = LogHistogram()
    for v in left:
        a.add(v)
        combined.add(v)
    for v in right:
        b.add(v)
        combined.add(v)
    merged = LogHistogram(a.to_dict()).merge(b)
    assert merged == combined
    assert merged.count == combined.count == len(left) + len(right)


def test_percentiles_on_a_known_distribution():
    hist = LogHistogram()
    for v in range(1, 101):  # 1..100, uniform
        hist.add(v)
    p50, p90, p99 = hist.percentiles((50, 90, 99))
    assert p50 == pytest.approx(50, rel=0.125)
    assert p90 == pytest.approx(90, rel=0.125)
    assert p99 == pytest.approx(99, rel=0.125)
    assert hist.percentile(100) >= hist.percentile(1)


def test_empty_histogram_percentile_is_zero():
    assert LogHistogram().percentile(99) == 0.0
    assert LogHistogram().percentiles() == (0.0, 0.0, 0.0)


def test_percentile_range_is_validated():
    hist = LogHistogram()
    hist.add(7)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_restores_from_bucket_dict():
    hist = LogHistogram()
    for v in (0, 3, 900, 900, 2**40):
        hist.add(v)
    clone = LogHistogram(hist.to_dict())
    assert clone == hist
    assert clone.count == hist.count


# ---------------------------------------------------------------------------
# span stats carry distributions
# ---------------------------------------------------------------------------
def test_span_stats_histogram_and_table_percentiles():
    from repro.obs.tracer import SpanRecord

    stats = StatsSink()
    for dur in (1_000_000, 2_000_000, 50_000_000):
        stats.on_span(SpanRecord("compact.step", 0, dur, 0, {}))
    span = stats.spans["compact.step"]
    assert span.hist.count == 3
    assert span.percentile_ns(99) >= span.percentile_ns(50) > 0
    header, row = stats.format_table().splitlines()[:2]
    for column in ("p50 ms", "p90 ms", "p99 ms"):
        assert column in header
    assert row.split()[0] == "compact.step" or "compact.step" in row


def test_snapshot_metrics_include_percentiles():
    from repro.obs.tracer import SpanRecord

    stats = StatsSink()
    stats.on_span(SpanRecord("opt.rate", 0, 4_000_000, 0, {}))
    metrics = snapshot_metrics(stats)
    assert metrics["span.opt.rate.calls"] == 1.0
    for key in ("span.opt.rate.p50_s", "span.opt.rate.p90_s",
                "span.opt.rate.p99_s"):
        assert metrics[key] > 0.0
        # seconds-suffixed => classified as noisy by perf-check
        assert key.endswith("_s")


# ---------------------------------------------------------------------------
# TraceContext / TracerSnapshot
# ---------------------------------------------------------------------------
def test_capture_returns_none_when_disabled():
    assert TraceContext.capture(Tracer(enabled=False)) is None


def test_capture_carries_trace_id_and_open_span():
    tracer = Tracer(enabled=True)
    with obs.activate(tracer):
        with tracer.span("opt.search"):
            context = TraceContext.capture()
    assert context is not None
    assert context.trace_id == tracer.trace_id
    assert context.parent_span == "opt.search"


def test_worker_scope_records_and_restores_the_tracer():
    tracer = Tracer(enabled=True)
    stats = tracer.add_sink(StatsSink())
    with obs.activate(tracer):
        with tracer.span("parent.fanout"):
            context = TraceContext.capture()
        before = obs.get_tracer()
        with context.worker() as scope:
            inner = obs.get_tracer()
            assert inner is scope.tracer
            assert inner is not before
            with inner.span("opt.rate"):
                pass
            inner.count("opt.trials", 2)
            inner.gauge("opt.best", 7.5)
            inner.event("opt.tick", step=1)
        assert obs.get_tracer() is before
    snapshot = scope.snapshot()
    assert snapshot.trace_id == tracer.trace_id
    assert snapshot.parent_span == "parent.fanout"
    assert snapshot.counters == {"opt.trials": 2}
    assert snapshot.gauges == {"opt.best": 7.5}
    assert [name for name, _, _ in snapshot.events] == ["opt.tick"]
    names = [span[0] for span in snapshot.spans]
    assert "opt.rate" in names and "obs.worker" in names
    root = next(s for s in snapshot.spans if s[0] == "obs.worker")
    assert root[4]["parent"] == "parent.fanout"
    assert root[4]["trace"] == tracer.trace_id
    # worker spans never reached the parent's sinks directly
    assert "opt.rate" not in stats.spans


def test_snapshot_histograms_match_span_durations():
    tracer = Tracer(enabled=True)
    with obs.activate(tracer):
        context = TraceContext.capture()
        with context.worker() as scope:
            worker = obs.get_tracer()
            for _ in range(5):
                with worker.span("compact.step"):
                    pass
    snapshot = scope.snapshot()
    hist = LogHistogram(snapshot.histograms["compact.step"])
    assert hist.count == 5
    expected = LogHistogram()
    for name, _start, dur, _depth, _attrs, _tid in snapshot.spans:
        if name == "compact.step":
            expected.add(dur)
    assert hist == expected


def test_context_and_snapshot_pickle_round_trip():
    tracer = Tracer(enabled=True)
    with obs.activate(tracer):
        context = TraceContext.capture()
        with pickle.loads(pickle.dumps(context)).worker() as scope:
            obs.get_tracer().count("opt.trials")
    snapshot = pickle.loads(pickle.dumps(scope.snapshot()))
    assert snapshot.trace_id == tracer.trace_id
    assert snapshot.counters == {"opt.trials": 1}


def test_merge_snapshot_folds_exactly_and_counts_itself():
    tracer = Tracer(enabled=True)
    stats = tracer.add_sink(StatsSink())
    with obs.activate(tracer):
        context = TraceContext.capture()
        snapshots = []
        for _ in range(3):
            with context.worker() as scope:
                worker = obs.get_tracer()
                with worker.span("opt.rate"):
                    pass
                worker.count("opt.trials", 4)
                worker.count("opt.trials", 1)
            snapshots.append(scope.snapshot())
        for snapshot in snapshots:
            tracer.merge_snapshot(snapshot)
    fold = TracerSnapshot.fold(snapshots)
    assert fold == {"opt.trials": 15}
    assert stats.counter("opt.trials") == 15
    # call counts merge from the snapshot tally, not one-per-counter
    assert stats.counter_calls["opt.trials"] == 6
    assert stats.counter("obs.snapshots_merged") == 3
    assert stats.counter("obs.spans_merged") == sum(
        len(s.spans) for s in snapshots
    )
    assert stats.spans["opt.rate"].calls == 3


def test_disabled_tracer_ignores_merge():
    tracer = Tracer(enabled=False, sinks=[StatsSink()])
    tracer.merge_snapshot(TracerSnapshot(counters={"x": 1}))
    assert tracer.sinks[0].counters == {}


def test_chrome_sink_gives_workers_their_own_lane():
    sink = ChromeTraceSink()
    snapshot = TracerSnapshot(
        pid=99999,
        offset_ns=1_000,
        duration_ns=5_000,
        spans=[("opt.subtree", 1_500, 2_000, 0, {"first": 0}, 7)],
        counters={"opt.trials": 2},
        events=[("opt.tick", 2_000, {})],
    )
    sink.on_snapshot(snapshot)
    trace = sink.to_json()
    assert validate_chrome_trace(trace) == []
    metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert len(metas) == 1 and metas[0]["pid"] == 99999
    sink.on_snapshot(snapshot)  # same pid: no second metadata record
    assert sum(1 for e in sink.to_json()["traceEvents"] if e["ph"] == "M") == 1
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans[0]["pid"] == 99999 and spans[0]["tid"] == 7
    assert sink.unbalanced_spans == 0


# ---------------------------------------------------------------------------
# the parallel optimizer end to end
# ---------------------------------------------------------------------------
def _contact_row_steps():
    return [
        Step(contact_row(TECH, "pdiff", w=4.0, net="a", name="a"),
             Direction.WEST),
        Step(contact_row(TECH, "pdiff", w=8.0, net="b", name="b"),
             Direction.SOUTH),
        Step(contact_row(TECH, "poly", w=2.0, length=12.0, net="c", name="c"),
             Direction.WEST),
    ]


@pytest.fixture(scope="module")
def traced_parallel_run():
    """One workers=2 search, untraced and traced, shared by the asserts."""
    untraced = TreeOrderOptimizer(workers=2)
    result_untraced = untraced.optimize("order_demo", TECH, _contact_row_steps())

    tracer = Tracer(enabled=True)
    stats = tracer.add_sink(StatsSink())
    chrome = tracer.add_sink(ChromeTraceSink())
    with obs.activate(tracer):
        traced = TreeOrderOptimizer(workers=2)
        result_traced = traced.optimize("order_demo", TECH, _contact_row_steps())
    tracer.close()
    return untraced, result_untraced, traced, result_traced, stats, chrome


def test_traced_and_untraced_parallel_output_identical(traced_parallel_run):
    untraced, result_untraced, _, result_traced, _, _ = traced_parallel_run
    assert untraced.last_snapshots == []
    assert result_traced.best_order == result_untraced.best_order
    assert result_traced.best_score == result_untraced.best_score
    assert dumps_cif([result_traced.best]) == dumps_cif([result_untraced.best])


def test_parent_counters_equal_snapshot_fold(traced_parallel_run):
    _, _, traced, result, stats, _ = traced_parallel_run
    snapshots = traced.last_snapshots
    assert len(snapshots) == 3  # one per first step, submission order
    fold = TracerSnapshot.fold(snapshots)
    assert stats.counter("opt.trials") == fold["opt.trials"] == result.evaluated
    # Search-side counters happen only inside workers, so the parent totals
    # must equal the fold exactly.  (compact.* counters also accrue in the
    # parent when it replays the winning order, so they are fold + local.)
    for name, total in fold.items():
        if name.startswith("opt."):
            assert stats.counter(name) == total, name
        else:
            assert stats.counter(name) >= total, name
    assert stats.counter("obs.snapshots_merged") == len(snapshots)
    assert stats.counter("obs.spans_merged") == sum(
        len(s.spans) for s in snapshots
    )


def test_merged_chrome_trace_has_worker_lanes_and_all_spans(
    traced_parallel_run,
):
    _, _, traced, _, _, chrome = traced_parallel_run
    snapshots = traced.last_snapshots
    trace = chrome.to_json()
    assert validate_chrome_trace(trace) == []
    assert chrome.unbalanced_spans == 0
    span_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    pids = {e["pid"] for e in span_events}
    # parent + at least one worker lane; usually parent + two workers (a
    # 2-worker pool may legally schedule all three subtrees on one pid)
    assert len(pids) >= 2
    worker_pids = {s.pid for s in snapshots}
    assert worker_pids <= pids and chrome._pid in pids
    # no dropped child spans: every snapshot span became an X event
    worker_span_count = sum(len(s.spans) for s in snapshots)
    merged = [e for e in span_events if e["pid"] in worker_pids]
    assert len(merged) == worker_span_count
    # every worker lane is announced to Perfetto
    named = {
        e["pid"] for e in trace["traceEvents"]
        if e["ph"] == "M" and e.get("name") == "process_name"
    }
    assert worker_pids <= named
    # the whole thing survives a JSON round trip (what the CLI writes)
    assert validate_chrome_trace(json.loads(json.dumps(trace))) == []


def test_worker_roots_are_parented_under_the_submitting_span(
    traced_parallel_run,
):
    _, _, traced, _, _, _ = traced_parallel_run
    for snapshot in traced.last_snapshots:
        assert snapshot.parent_span == "opt.search"
        root = next(s for s in snapshot.spans if s[0] == "obs.worker")
        assert root[4]["parent"] == "opt.search"


def test_stats_table_shows_percentiles_for_hot_spans(traced_parallel_run):
    _, _, _, _, stats, _ = traced_parallel_run
    table = stats.format_table()
    assert "p50 ms" in table and "p99 ms" in table
    for span in ("compact.step", "compact.solve", "opt.rate", "opt.subtree"):
        assert span in stats.spans, span
        assert stats.spans[span].hist.count == stats.spans[span].calls


# ---------------------------------------------------------------------------
# failed runs reach the ledger
# ---------------------------------------------------------------------------
def test_cli_records_errored_runs_with_exception_type(monkeypatch, tmp_path):
    from repro.cli import main
    from repro.obs.ledger import Ledger

    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    with pytest.raises(FileNotFoundError):
        main(["build", str(tmp_path / "missing.pldl"), "X"])
    with Ledger(tmp_path / "ledger") as ledger:
        record = ledger.last()
    assert record.command == "build"
    assert record.status == 1
    assert record.extra == {"error": "FileNotFoundError"}


def test_cli_records_system_exit_status(monkeypatch, tmp_path):
    from repro.cli import main
    from repro.obs.ledger import Ledger

    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    with pytest.raises(SystemExit):
        main(["render", str(tmp_path / "missing.cif"),
              "-o", str(tmp_path / "out.svg")])
    with Ledger(tmp_path / "ledger") as ledger:
        record = ledger.last()
    assert record.command == "render"
    assert record.status != 0
    assert record.extra["error"] == "SystemExit"

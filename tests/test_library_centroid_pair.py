"""Module E: every Fig. 10 claim, checked (the paper's flagship module)."""

import pytest

from repro.db import net_is_connected
from repro.drc import run_drc
from repro.library import HALF_PATTERN, centroid_cross_coupled_pair
from repro.route import count_crossings


@pytest.fixture(scope="module")
def module_e():
    from repro.tech import generic_bicmos_1u

    return centroid_cross_coupled_pair(generic_bicmos_1u())


def _gate_bars(module):
    return [r for r in module.rects_on("poly") if r.height > r.width * 2]


def test_drc_clean(module_e):
    assert run_drc(module_e, include_latchup=False) == []


def test_all_nets_connected(module_e, tech):
    for net in ("gA", "gB", "outA", "outB", "vss"):
        assert net_is_connected(module_e.rects, tech, net), net


def test_dummy_counts_match_paper(module_e):
    """'eight dummy transistors in the middle and four ... on the right and
    left side'."""
    bars = _gate_bars(module_e)
    assert len(bars) == 32  # 16 fingers per row × 2 rows
    dummies = [b for b in bars if b.net == "vss"]
    assert len(dummies) == 16
    xs = sorted({(b.x1 + b.x2) // 2 for b in bars})
    x_lo, x_hi = xs[0], xs[-1]
    span = x_hi - x_lo
    left = [b for b in dummies if (b.x1 + b.x2) // 2 < x_lo + span / 4]
    right = [b for b in dummies if (b.x1 + b.x2) // 2 > x_hi - span / 4]
    middle = [b for b in dummies if b not in left and b not in right]
    assert len(left) == 4
    assert len(right) == 4
    assert len(middle) == 8


def test_two_dimensional_common_centroid(module_e):
    """Device A and device B share both centroid coordinates."""
    bars = _gate_bars(module_e)

    def centroid(net):
        mine = [b for b in bars if b.net == net]
        n = len(mine)
        return (
            sum((b.x1 + b.x2) / 2 for b in mine) / n,
            sum((b.y1 + b.y2) / 2 for b in mine) / n,
        )

    ax, ay = centroid("gA")
    bx, by = centroid("gB")
    assert abs(ax - bx) < 200
    assert abs(ay - by) < 200


def test_devices_split_across_both_rows(module_e):
    bars = _gate_bars(module_e)
    mid = (min(b.y1 for b in bars) + max(b.y2 for b in bars)) / 2
    for net in ("gA", "gB"):
        mine = [b for b in bars if b.net == net]
        upper = [b for b in mine if (b.y1 + b.y2) / 2 > mid]
        assert len(upper) == len(mine) // 2  # half the fingers per row


def test_identical_crossings(module_e):
    """'every net has identical crossings'."""
    assert count_crossings(module_e, "gA", ["via"]) == count_crossings(
        module_e, "gB", ["via"]
    )
    assert count_crossings(module_e, "outA", ["via"]) == count_crossings(
        module_e, "outB", ["via"]
    )
    assert count_crossings(module_e, "gA", ["contact"]) == count_crossings(
        module_e, "gB", ["contact"]
    )
    assert count_crossings(module_e, "outA", ["contact"]) == count_crossings(
        module_e, "outB", ["contact"]
    )


def test_device_geometry_is_mirror_symmetric(module_e):
    """The finger geometry of A maps exactly onto B under the module's
    vertical mirror axis (wiring is matched, not point-mirrored — see the
    module docstring)."""
    bars = _gate_bars(module_e)
    axis2 = min(b.x1 for b in bars) + max(b.x2 for b in bars)
    a_set = {(axis2 - b.x2, b.y1, axis2 - b.x1, b.y2) for b in bars if b.net == "gA"}
    b_set = {(b.x1, b.y1, b.x2, b.y2) for b in bars if b.net == "gB"}
    assert a_set == b_set


def test_matched_wiring_lengths(module_e):
    """The A and B wiring trees are matched in total metal2 length.

    Exact equality is impossible for the drain trunks (the two nets bridge
    at different fractions of the column band so their bands never collide);
    the residual mismatch stays within a few percent.
    """
    def metal2_length(net):
        return sum(
            max(r.width, r.height)
            for r in module_e.rects_on("metal2")
            if r.net == net and max(r.width, r.height) > 4000
        )

    out_a, out_b = metal2_length("outA"), metal2_length("outB")
    assert abs(out_a - out_b) / max(out_a, out_b) < 0.05
    g_a, g_b = metal2_length("gA"), metal2_length("gB")
    assert abs(g_a - g_b) / max(g_a, g_b) < 0.05


def test_escape_ports_at_south_edge(module_e, tech):
    """All four pair nets present metal2 ports below the device area."""
    bars = _gate_bars(module_e)
    device_bottom = min(b.y1 for b in bars)
    for net in ("gA", "gB", "outA", "outB"):
        port_rects = [
            r for r in module_e.rects_on("metal2")
            if r.net == net and r.y1 < device_bottom
        ]
        assert port_rects, net


def test_source_line_budget(tech):
    """Paper: 'The source code for this complex module has a length of about
    180 lines' — our generator stays in that ballpark."""
    import inspect

    import repro.library.centroid_pair as module

    source_lines = [
        line
        for line in inspect.getsource(module).splitlines()
        if line.strip() and not line.strip().startswith(("#", '"""', "'''"))
    ]
    assert len(source_lines) < 450  # same order as the paper's ~180


def test_custom_pattern(tech):
    small = centroid_cross_coupled_pair(
        tech, half_pattern="DABD", wiring=False, name="SmallE"
    )
    bars = [r for r in small.rects_on("poly") if r.height > r.width * 2]
    assert len(bars) == 16  # 8 per row


def test_build_time_within_paper_scale(tech):
    """Paper: ~5 s for module E on 1996 hardware; we stay well under."""
    import time

    start = time.time()
    centroid_cross_coupled_pair(tech)
    assert time.time() - start < 5.0

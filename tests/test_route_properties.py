"""Property tests for the routing layer (seeded, deterministic).

Every routed net must be electrically connected and the routing DRC-clean;
symmetric pairs must be exact mirror images.  Randomised inputs come from
``random.Random`` with fixed seeds so failures reproduce.
"""

import random

import pytest

from repro.db import LayoutObject, net_is_connected
from repro.drc import run_drc
from repro.geometry import Rect
from repro.route import (
    count_crossings,
    path,
    river_route,
    route_symmetric_pair,
    symmetric_via_pair,
    verify_mirror_symmetry,
)
from repro.verify.differential import _net_partition


def _rect_pitch(tech, layer):
    return tech.min_width(layer) + tech.min_space(layer, layer)


# ---------------------------------------------------------------------------
# wire / path
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_random_paths_connected_and_clean(tech, seed):
    rng = random.Random(f"path:{seed}")
    obj = LayoutObject("o", tech)
    step = 8 * tech.dbu_per_micron
    x, y = 0, 0
    points = [(x, y)]
    horizontal = True
    for _ in range(rng.randint(1, 5)):
        if horizontal:
            x += rng.choice((-1, 1, 2)) * step
        else:
            y += rng.choice((-1, 1, 2)) * step
        horizontal = not horizontal
        points.append((x, y))
    path(obj, "metal1", points, net="n")
    assert net_is_connected(obj.rects, tech, "n")
    assert run_drc(obj, include_latchup=False) == []


# ---------------------------------------------------------------------------
# river routing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_random_river_routes_connected_and_clean(tech, seed):
    rng = random.Random(f"river:{seed}")
    count = rng.randint(2, 5)
    pitch = _rect_pitch(tech, "metal1")
    lane = 4 * pitch  # wide lanes keep independent wires at legal spacing

    def pin_row(y):
        xs = sorted(rng.sample(range(0, 12), count))
        return [(x * lane, y) for x in xs]

    sources = pin_row(0)
    gap = pitch * (count + 2)
    targets = pin_row(gap + rng.randint(0, 4) * pitch)
    nets = [f"n{i}" for i in range(count)]

    obj = LayoutObject("o", tech)
    routes = river_route(obj, "metal1", sources, targets, nets)
    assert len(routes) == count
    for net in nets:
        assert net_is_connected(obj.rects, tech, net), f"{net} not connected"
    # Planarity means no two nets ever merge.
    assert _net_partition(obj) == {(net,) for net in nets}
    assert run_drc(obj, include_latchup=False) == []


def test_river_track_discipline_regression(tech):
    """Found by the seeded property test (seed ``river:1``): with tracks
    assigned in plain pin order, a right-going wire's source-side vertical
    crossed every earlier wire's lower jog, shorting all five nets into one
    and violating spacing.  Right-going jogs must take high tracks first."""
    sources = [(0, 0), (24000, 0), (36000, 0), (48000, 0), (60000, 0)]
    targets = [
        (36000, 27000), (60000, 27000), (72000, 27000),
        (96000, 27000), (120000, 27000),
    ]
    nets = [f"n{i}" for i in range(5)]
    obj = LayoutObject("o", tech)
    river_route(obj, "metal1", sources, targets, nets)
    assert _net_partition(obj) == {(net,) for net in nets}
    assert run_drc(obj, include_latchup=False) == []


def test_river_route_endpoints_reached(tech):
    rng = random.Random("endpoints")
    pitch = _rect_pitch(tech, "metal1")
    sources = [(0, 0), (5 * pitch, 0), (11 * pitch, 0)]
    targets = [(2 * pitch, 9 * pitch), (7 * pitch, 9 * pitch), (14 * pitch, 9 * pitch)]
    obj = LayoutObject("o", tech)
    river_route(obj, "metal1", sources, targets, ["a", "b", "c"])
    for (sx, sy), (tx, ty), net in zip(sources, targets, ["a", "b", "c"]):
        on_net = [r for r in obj.nonempty_rects if r.net == net]
        assert any(r.contains_point(sx, sy) for r in on_net)
        assert any(r.contains_point(tx, ty) for r in on_net)


# ---------------------------------------------------------------------------
# symmetric pairs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_random_symmetric_pairs_mirror_exact(tech, seed):
    rng = random.Random(f"sym:{seed}")
    axis = 50 * tech.dbu_per_micron
    step = 6 * tech.dbu_per_micron
    obj = LayoutObject("o", tech)

    x, y = -step * rng.randint(2, 4), 0
    points = [(x, y)]
    horizontal = True
    for _ in range(rng.randint(1, 4)):
        if horizontal:
            x -= rng.choice((1, 2)) * step
        else:
            y += rng.choice((-1, 1, 2)) * step
        horizontal = not horizontal
        points.append((x, y))
    route_symmetric_pair(obj, "metal1", axis, points, "left", "right")
    via_at = points[-1]
    symmetric_via_pair(obj, axis, via_at, "metal1", "metal2", "left", "right")

    assert verify_mirror_symmetry(obj, axis, [("left", "right")]) == []
    cuts = [layer.name for layer in tech.layers if layer.kind.value == "cut"]
    assert count_crossings(obj, "left", cuts) == count_crossings(obj, "right", cuts)
    assert net_is_connected(obj.rects, tech, "left")
    assert net_is_connected(obj.rects, tech, "right")


def test_mirror_symmetry_detects_perturbation(tech):
    axis = 50 * tech.dbu_per_micron
    obj = LayoutObject("o", tech)
    route_symmetric_pair(
        obj, "metal1", axis, [(0, 0), (-20000, 0), (-20000, 10000)],
        "left", "right",
    )
    assert verify_mirror_symmetry(obj, axis, [("left", "right")]) == []
    # Nudge one rect of the right net: the checker must notice.
    victim = next(r for r in obj.nonempty_rects if r.net == "right")
    victim.translate(1000, 0)
    assert verify_mirror_symmetry(obj, axis, [("left", "right")])

"""Technology description file: parse, serialise, round-trip, errors."""

import pytest

from repro.tech import (
    TechFileError,
    dumps_tech,
    generic_bicmos_1u,
    generic_cmos_05u,
    loads_tech,
)

MINIMAL = """
# a comment
UNITS 1000
TECH demo
LAYER poly 10 poly hatch-right #cc0000
LAYER metal1 30 metal solid #0000cc
LAYER contact 40 cut cross-hatch #000000
CONNECT contact poly metal1
RULE WIDTH poly 1.0
RULE SPACE poly poly 1.2
RULE ENCLOSE metal1 contact 0.5
RULE EXTEND poly metal1 0.4
RULE CUTSIZE contact 1.0
RULE AREA metal1 4.0
RULE LATCHUP contact 25.0
RULE CAP poly 60 50
"""


def test_parse_minimal():
    tech = loads_tech(MINIMAL)
    assert tech.name == "demo"
    assert tech.dbu_per_micron == 1000
    assert tech.min_width("poly") == 1000
    assert tech.min_space("poly", "poly") == 1200
    assert tech.enclosure("metal1", "contact") == 500
    assert tech.extension("poly", "metal1") == 400
    assert tech.cut_size("contact") == 1000
    assert tech.rules.area("metal1") == 4_000_000
    assert tech.latchup_half_size("contact") == 25_000
    assert tech.cut_between("poly", "metal1") == "contact"
    cap = tech.capacitance("poly")
    assert cap.area == pytest.approx(60 / 1000 ** 2)
    assert cap.perimeter == pytest.approx(50 / 1000)


def test_layer_defaults():
    tech = loads_tech("TECH t\nLAYER poly 10 poly\n")
    layer = tech.layer("poly")
    assert layer.fill_pattern == "solid"
    assert layer.color == "#888888"


@pytest.mark.parametrize(
    "bad",
    [
        "LAYER poly 10 poly\n",  # before TECH
        "TECH t\nBOGUS x\n",
        "TECH t\nRULE NONSENSE poly 1\n",
        "TECH t\nLAYER poly ten poly\n",
        "",
    ],
)
def test_malformed_inputs_raise(bad):
    with pytest.raises(TechFileError):
        loads_tech(bad)


@pytest.mark.parametrize("factory", [generic_bicmos_1u, generic_cmos_05u])
def test_builtin_roundtrip(factory):
    """Serialise → parse reproduces every rule of the built-in technologies."""
    original = factory()
    restored = loads_tech(dumps_tech(original))
    assert restored.name == original.name
    assert restored.dbu_per_micron == original.dbu_per_micron
    assert {l.name for l in restored.layers} == {l.name for l in original.layers}
    assert sorted(original.rules.iter_rules(), key=str) == sorted(
        restored.rules.iter_rules(), key=str
    )
    for layer in original.layers:
        copy = restored.layer(layer.name)
        assert copy.gds_number == layer.gds_number
        assert copy.kind == layer.kind
        assert copy.fill_pattern == layer.fill_pattern


def test_dump_and_load_file(tmp_path):
    from repro.tech import dump_tech, load_tech

    path = tmp_path / "demo.tech"
    tech = loads_tech(MINIMAL)
    dump_tech(tech, path)
    again = load_tech(path)
    assert again.min_width("poly") == 1000

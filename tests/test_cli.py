"""Command-line interface."""

import pytest

from repro.cli import main
from repro.library import CONTACT_ROW_SOURCE, DIFF_PAIR_SOURCE


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "row.pldl"
    path.write_text(
        CONTACT_ROW_SOURCE + 'gatecon = ContactRow(layer = "poly", W = 1)\n',
        encoding="utf-8",
    )
    return path


def test_tech_list(capsys):
    assert main(["tech", "list"]) == 0
    out = capsys.readouterr().out
    assert "generic_bicmos_1u" in out
    assert "generic_cmos_05u" in out


def test_tech_dump_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "t.tech"
    assert main(["tech", "dump", "generic_bicmos_1u", "-o", str(out_file)]) == 0
    assert out_file.exists()
    # A dumped file is accepted anywhere a technology is expected.
    assert main(["tech", "dump", str(out_file)]) == 0
    assert "RULE WIDTH poly" in capsys.readouterr().out


def test_tech_unknown_exits():
    with pytest.raises(SystemExit):
        main(["tech", "dump", "bogus_tech"])


def test_build_with_outputs(source_file, tmp_path, capsys):
    gds = tmp_path / "row.gds"
    svg = tmp_path / "row.svg"
    dump = tmp_path / "row.txt"
    status = main([
        "build", str(source_file), "ContactRow",
        "-p", "layer=poly", "-p", "W=1", "-p", "L=10",
        "--gds", str(gds), "--svg", str(svg), "--dump", str(dump), "--drc",
    ])
    assert status == 0
    assert gds.exists() and svg.exists() and dump.exists()
    out = capsys.readouterr().out
    assert "ContactRow" in out and "DRC clean" in out


def test_build_bad_param(source_file):
    with pytest.raises(SystemExit):
        main(["build", str(source_file), "ContactRow", "-p", "oops"])


def test_run_reports_globals(source_file, capsys):
    assert main(["run", str(source_file)]) == 0
    out = capsys.readouterr().out
    assert "gatecon: layout" in out


def test_translate_to_stdout(source_file, capsys):
    assert main(["translate", str(source_file)]) == 0
    assert "def ContactRow" in capsys.readouterr().out


def test_drc_flow(source_file, tmp_path, capsys):
    gds = tmp_path / "row.gds"
    main([
        "build", str(source_file), "ContactRow",
        "-p", "layer=pdiff", "-p", "W=4", "--gds", str(gds),
    ])
    capsys.readouterr()
    # Ignore latch-up: a bare diffusion row has no substrate contacts.
    assert main(["drc", str(gds), "--no-latchup"]) == 0
    assert "DRC clean" in capsys.readouterr().out
    # With latch-up the unprotected diffusion fails → exit status 1.
    assert main(["drc", str(gds)]) == 1


def test_drc_missing_file():
    with pytest.raises(SystemExit):
        main(["drc", "no_such_file.gds"])


def test_render(source_file, tmp_path):
    dump = tmp_path / "row.txt"
    main([
        "build", str(source_file), "ContactRow",
        "-p", "layer=poly", "--dump", str(dump),
    ])
    svg = tmp_path / "row.svg"
    assert main(["render", str(dump), "-o", str(svg)]) == 0
    assert svg.read_text().startswith("<svg")


def test_session(tmp_path):
    source = tmp_path / "pair.pldl"
    source.write_text(DIFF_PAIR_SOURCE + "d = DiffPair(W = 8, L = 1)\n")
    page = tmp_path / "session.html"
    assert main(["session", str(source), "-o", str(page)]) == 0
    assert "graphical view" in page.read_text()


def test_build_cif_output(source_file, tmp_path):
    cif = tmp_path / "row.cif"
    assert main([
        "build", str(source_file), "ContactRow",
        "-p", "layer=poly", "-p", "W=1", "--cif", str(cif),
    ]) == 0
    assert cif.read_text().rstrip().endswith("E")


def test_rc_report(tmp_path, capsys):
    from repro.io import dumps_object
    from repro.library import poly_resistor
    from repro.tech import generic_bicmos_1u

    tech = generic_bicmos_1u()
    resistor = poly_resistor(tech, segments=3)
    dump = tmp_path / "res.txt"
    dump.write_text(dumps_object(resistor))
    assert main(["rc", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "R (ohm)" in out
    assert "body" in out  # the resistor body net appears with its R


def test_rc_no_nets(tmp_path, capsys):
    from repro.db import LayoutObject
    from repro.geometry import Rect
    from repro.io import dumps_object
    from repro.tech import generic_bicmos_1u

    obj = LayoutObject("X", generic_bicmos_1u())
    obj.add_rect(Rect(0, 0, 1000, 1000, "poly"))
    dump = tmp_path / "x.txt"
    dump.write_text(dumps_object(obj))
    assert main(["rc", str(dump)]) == 0
    assert "no labelled nets" in capsys.readouterr().out


def test_explain_clean_cell(capsys):
    assert main(["explain", "guarded_transistor"]) == 0
    assert "DRC clean" in capsys.readouterr().out


def test_explain_latchup_violations(capsys):
    # A bare transistor legitimately fails the latch-up rule (Fig. 1).
    assert main(["explain", "mos_transistor"]) == 1
    out = capsys.readouterr().out
    assert "LATCHUP subcontact" in out
    assert "from: MosTransistor" in out
    assert "fix:" in out


def test_explain_json_output(capsys):
    import json

    assert main(["explain", "mos_transistor", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload and payload[0]["kind"] == "latchup"
    assert payload[0]["rects"][0]["provenance"].startswith("MosTransistor")


def test_explain_unknown_cell():
    with pytest.raises(SystemExit):
        main(["explain", "bogus_cell"])


def test_report_command_writes_html(tmp_path, capsys):
    out = tmp_path / "report.html"
    assert main(["report", "mos_transistor", "-o", str(out)]) == 0
    html = out.read_text(encoding="utf-8")
    assert "<svg" in html and "</html>" in html
    assert "provenance coverage" in html
    assert "report →" in capsys.readouterr().out


def test_report_restores_process_recorder(tmp_path):
    from repro.obs import get_recorder

    before = get_recorder()
    assert main(["report", "mos_transistor", "-o",
                 str(tmp_path / "r.html")]) == 0
    assert get_recorder() is before
    assert not get_recorder().enabled

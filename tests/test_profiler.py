"""The sampling profiler: folded stacks, top-function tables, trace overlay.

Wall-clock mode samples real threads, so these tests use a deterministic
spin-loop hot enough (≈0.2 s at 1 ms/sample) that missing it entirely would
mean the sampler never ran.  Memory mode is deterministic via tracemalloc.
"""

import re
import time

from repro.cli import main
from repro.obs.profiler import SamplingProfiler, _frame_label
from repro.obs.sinks import ChromeTraceSink, validate_chrome_trace

FOLDED_LINE = re.compile(r"^\S+(;\S+)* \d+$")


def _spin(duration_s):
    """Burn CPU on this line for ``duration_s`` seconds."""
    deadline = time.perf_counter() + duration_s
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(50))
    return total


def _profiled_spin(duration_s=0.2, **kwargs):
    profiler = SamplingProfiler(interval_s=0.001, **kwargs)
    profiler.start()
    try:
        _spin(duration_s)
    finally:
        profiler.stop()
    return profiler


def test_wall_mode_catches_the_hot_function():
    profiler = _profiled_spin()
    assert profiler.sample_count > 20  # 0.2s at 1ms/sample, generous margin
    folded = profiler.folded()
    assert "_spin" in folded
    for line in folded.splitlines():
        assert FOLDED_LINE.match(line), line
    # stacks are root-first: the test runner is an ancestor of _spin
    hot = [ln for ln in folded.splitlines() if "_spin" in ln]
    assert hot and all(ln.split()[0].split(";")[-1].endswith("._spin")
                       or "_spin" in ln.split()[0] for ln in hot)


def test_top_table_ranks_spin_first():
    profiler = _profiled_spin()
    table = profiler.top_table(top=5)
    lines = table.splitlines()
    assert "samples over" in lines[0]
    # first ranked row (after header + column header) is the spin loop
    body = [ln for ln in lines if "_spin" in ln]
    assert body, table
    assert "_spin" in lines[2] or "_spin" in lines[3], table


def test_write_folded(tmp_path):
    profiler = _profiled_spin(duration_s=0.05)
    out = tmp_path / "prof.folded"
    profiler.write_folded(out)
    assert out.read_text() == profiler.folded()


def test_sampler_excludes_its_own_thread():
    profiler = _profiled_spin(duration_s=0.05)
    assert "_sample_loop" not in profiler.folded()


def test_chrome_overlay_emits_valid_samples(tmp_path):
    sink = ChromeTraceSink(tmp_path / "trace.json")
    profiler = _profiled_spin(duration_s=0.1, chrome_sink=sink)
    payload = sink.to_json()
    samples = [e for e in payload["traceEvents"] if e.get("ph") == "P"]
    assert len(samples) == profiler.sample_count > 0
    assert payload["stackFrames"]
    assert validate_chrome_trace(payload) == []
    # every sample resolves through the frame table down to a root
    leaf = samples[0]["sf"]
    depth = 0
    while leaf is not None:
        frame = payload["stackFrames"][leaf]
        leaf = frame.get("parent")
        depth += 1
        assert depth < 300
    assert any("_spin" in f["name"] for f in payload["stackFrames"].values())


def _allocate_kib(kib):
    keep = [bytearray(1024) for _ in range(kib)]
    return keep


def test_memory_mode_attributes_allocations():
    profiler = SamplingProfiler(mode="memory")
    profiler.start()
    try:
        keep = _allocate_kib(512)
    finally:
        profiler.stop()
    assert len(keep) == 512
    assert profiler.peak_kib >= 512
    folded = profiler.folded()
    assert "test_profiler.py:" in folded
    for line in folded.splitlines():
        assert FOLDED_LINE.match(line), line


def test_frame_label_sanitizes_separators():
    class FakeCode:
        co_qualname = "outer.<locals> x;y"
        co_filename = "/tmp/pkg/mod.py"

    class FakeFrame:
        f_code = FakeCode()
        f_globals = {"__name__": "pkg.mod"}

    label = _frame_label(FakeFrame())
    assert ";" not in label and " " not in label
    assert label.startswith("pkg.mod.")


def test_cli_profile_writes_folded_and_table(tmp_path, capsys):
    out = tmp_path / "tech.folded"
    tech_out = tmp_path / "t.tech"
    status = main([
        "--profile", str(out), "--profile-interval", "1",
        "tech", "dump", "generic_bicmos_1u", "-o", str(tech_out),
    ])
    assert status == 0
    assert out.exists()
    # `tech dump` may finish inside one sampling interval; the profile file
    # and its confirmation line must appear either way.
    assert "wrote profile" in capsys.readouterr().out


def test_cli_profile_memory_mode(tmp_path, capsys):
    out = tmp_path / "tech.mem.folded"
    tech_out = tmp_path / "t.tech"
    status = main([
        "--profile", str(out), "--profile-memory",
        "tech", "dump", "generic_bicmos_1u", "-o", str(tech_out),
    ])
    assert status == 0
    assert out.exists()
    assert "KiB over" in capsys.readouterr().out

"""Checker recall: planted violations are caught — by both paths.

The equivalence suite proves indexed == brute; it cannot prove either
actually catches defects (they could agree on an empty list).  Here the
:mod:`repro.verify.inject` harness plants one known violation per rule
class into DRC-clean golden cells and both checker paths must report
exactly that violation: same new-violation set vs. the clean baseline,
expected class, target rect involved, and byte-identical between the
indexed and brute runs.  Undo must restore cleanliness on both paths.
"""

import pytest

from repro.drc import run_drc
from repro.library import GOLDEN_CELLS
from repro.tech import BUILTIN_TECHNOLOGIES
from repro.verify.inject import INJECTORS, PROBE_NET, inject_violation

TECHS = {name: build() for name, build in BUILTIN_TECHNOLOGIES.items()}
TECH_NAMES = sorted(TECHS)

#: Stop after this many successful plants per (technology, rule class) —
#: coverage comes from planting in several distinct cells, bounded runtime
#: from not sweeping the whole matrix in every test.
PLANTS_PER_CASE = 2


def _keys(violations):
    return sorted((v.kind, v.message, v.where) for v in violations)


def _clean_cells(tech):
    for spec in GOLDEN_CELLS:
        if not spec.supported(tech):
            continue
        obj = spec.build(tech)
        if not run_drc(obj, include_latchup=False, use_index=False):
            yield spec, obj


@pytest.mark.parametrize("tech_name", TECH_NAMES)
@pytest.mark.parametrize("kind", sorted(INJECTORS))
def test_planted_violation_is_caught_by_both_paths(tech_name, kind):
    tech = TECHS[tech_name]
    planted = 0
    for spec, obj in _clean_cells(tech):
        injection = inject_violation(obj, kind)
        if injection is None:
            continue  # no viable site in this cell (e.g. no transistor)

        # The harness's own contract.
        assert injection.violations, spec.name
        assert all(v.kind == kind for v in injection.violations), spec.name
        assert all(
            any(r is injection.target for r in v.rects)
            for v in injection.violations
        ), spec.name

        # Both checker paths report exactly the planted violations.
        indexed = run_drc(obj, include_latchup=False, use_index=True)
        brute = run_drc(obj, include_latchup=False, use_index=False)
        assert _keys(indexed) == _keys(brute) == _keys(injection.violations), (
            spec.name
        )
        for path in (indexed, brute):
            for violation, reported in zip(injection.violations, path):
                assert reported.kind == violation.kind
                assert reported.message == violation.message
                assert reported.where == violation.where

        # Undo restores a clean layout on both paths.
        injection.undo()
        assert run_drc(obj, include_latchup=False, use_index=True) == []
        assert run_drc(obj, include_latchup=False, use_index=False) == []

        planted += 1
        if planted >= PLANTS_PER_CASE:
            break
    assert planted >= 1, (
        f"no golden cell of {tech_name} accepted a {kind!r} injection"
    )


def test_unknown_kind_raises():
    tech = TECHS[TECH_NAMES[0]]
    spec = next(s for s in GOLDEN_CELLS if s.supported(tech))
    with pytest.raises(ValueError, match="no injector"):
        inject_violation(spec.build(tech), "latchup")


def test_probe_net_never_collides(tech):
    """The spacing probe's reserved net must not appear in library cells —
    otherwise the same-net spacing exemption could hide the plant."""
    for spec in GOLDEN_CELLS:
        if spec.supported(tech):
            assert PROBE_NET not in spec.build(tech).nets()

"""Orthogonal transforms: composition, mirrors, edge-property remapping."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import ORIENTATIONS, Direction, Rect, Transform

coords = st.integers(min_value=-1_000, max_value=1_000)
small = st.integers(min_value=1, max_value=500)


def rect_strategy():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h, "poly"), coords, coords, small, small
    )


def transform_strategy():
    return st.builds(
        Transform,
        dx=coords,
        dy=coords,
        rotation=st.integers(min_value=0, max_value=3),
        mirror_x=st.booleans(),
    )


def test_identity():
    rect = Rect(1, 2, 5, 9, "poly")
    assert Transform().apply_rect(rect).as_tuple() == rect.as_tuple()


def test_mirror_about_y_axis():
    t = Transform.mirror_about_y(0)
    assert t.apply_rect(Rect(2, 0, 5, 3, "poly")).as_tuple() == (-5, 0, -2, 3)
    t5 = Transform.mirror_about_y(5)
    assert t5.apply_rect(Rect(0, 0, 2, 3, "poly")).as_tuple() == (8, 0, 10, 3)


def test_mirror_about_x_axis():
    t = Transform.mirror_about_x(0)
    assert t.apply_rect(Rect(0, 2, 3, 5, "poly")).as_tuple() == (0, -5, 3, -2)


def test_rotate180():
    t = Transform.rotate180(0, 0)
    assert t.apply_rect(Rect(1, 2, 3, 4, "poly")).as_tuple() == (-3, -4, -1, -2)


def test_mirror_remaps_edge_properties():
    rect = Rect(0, 0, 10, 10, "poly")
    rect.set_variable(Direction.EAST)
    image = Transform.mirror_about_y(0).apply_rect(rect)
    assert image.edge_variable(Direction.WEST)
    assert not image.edge_variable(Direction.EAST)


def test_mirror_remaps_edge_bounds():
    rect = Rect(0, 0, 10, 10, "poly")
    rect.edge(Direction.EAST).min_coord = 6  # east edge may shrink to x=6
    image = Transform.mirror_about_y(0).apply_rect(rect)
    # The image's west edge may then grow (shrink inward) to x=-6.
    assert image.edge(Direction.WEST).max_coord == -6
    assert image.edge(Direction.WEST).min_coord is None


def test_direction_images():
    t = Transform.mirror_about_y(0)
    assert t.apply_direction(Direction.EAST) is Direction.WEST
    assert t.apply_direction(Direction.NORTH) is Direction.NORTH
    r = Transform(rotation=1)
    assert r.apply_direction(Direction.EAST) is Direction.NORTH


@given(rect_strategy(), transform_strategy())
def test_transforms_preserve_area(rect, transform):
    assert transform.apply_rect(rect).area == rect.area


@given(rect_strategy())
def test_mirror_is_involution(rect):
    t = Transform.mirror_about_y(7)
    twice = t.apply_rect(t.apply_rect(rect))
    assert twice.as_tuple() == rect.as_tuple()


@given(rect_strategy(), transform_strategy(), transform_strategy())
def test_composition_matches_sequential_application(rect, first, second):
    sequential = second.apply_rect(first.apply_rect(rect))
    composed = first.then(second).apply_rect(rect)
    assert sequential.as_tuple() == composed.as_tuple()


def test_orientations_enumeration():
    assert len(ORIENTATIONS) == 8
    assert len(set(ORIENTATIONS)) == 8

"""The PLDL-written module library (Sec. 4: designers maintain their own)."""

import pytest

from repro.drc import run_drc
from repro.lang import Interpreter, Runtime, translate
from repro.library.dsl_sources import DSL_LIBRARY

BUILD_ARGS = {
    "ContactRow": dict(layer="poly", W=1.0, L=8.0),
    "DiffPair": dict(W=8.0, L=1.0),
    "Transistor": dict(W=8.0, L=1.0),
    "Mirror": dict(W=8.0, L=1.0),
    "Interdigitated": dict(W=8.0, L=1.0, N=4.0),
    "Serpentine": dict(W=2.0, LSEG=15.0, NSEG=3.0),
    "GuardedTransistor": dict(W=8.0, L=1.0),
}


@pytest.mark.parametrize("name", sorted(DSL_LIBRARY))
def test_every_dsl_module_is_drc_clean(tech, name):
    interp = Interpreter(tech)
    interp.load(DSL_LIBRARY[name])
    module = interp.call(name, **BUILD_ARGS[name])
    include_latchup = name == "GuardedTransistor"  # the only guarded one
    assert run_drc(module, include_latchup=include_latchup) == []
    assert not module.is_empty()


@pytest.mark.parametrize("name", sorted(DSL_LIBRARY))
def test_every_dsl_module_is_technology_independent(tech05, name):
    interp = Interpreter(tech05)
    interp.load(DSL_LIBRARY[name])
    module = interp.call(name, **BUILD_ARGS[name])
    assert run_drc(module, include_latchup=False) == []


@pytest.mark.parametrize("name", sorted(DSL_LIBRARY))
def test_every_dsl_module_translates(tech, name):
    code = translate(DSL_LIBRARY[name])
    namespace = {}
    exec(compile(code, "<generated>", "exec"), namespace)
    module = namespace[name](Runtime(tech), **BUILD_ARGS[name])
    interp = Interpreter(tech)
    interp.load(DSL_LIBRARY[name])
    reference = interp.call(name, **BUILD_ARGS[name])
    assert module.bbox().as_tuple() == reference.bbox().as_tuple()
    assert len(module.nonempty_rects) == len(reference.nonempty_rects)


def test_interdigitated_scales_with_finger_count(tech):
    interp = Interpreter(tech)
    interp.load(DSL_LIBRARY["Interdigitated"])
    two = interp.call("Interdigitated", W=8.0, L=1.0, N=2.0)
    six = interp.call("Interdigitated", W=8.0, L=1.0, N=6.0)
    assert six.width > two.width
    gates_two = [r for r in two.rects_on("poly") if r.height > r.width]
    gates_six = [r for r in six.rects_on("poly") if r.height > r.width]
    assert len(gates_two) == 2 and len(gates_six) == 6


def test_mirror_layout_is_symmetric(tech):
    interp = Interpreter(tech)
    interp.load(DSL_LIBRARY["Mirror"])
    mirror = interp.call("Mirror", W=8.0, L=1.0)
    gates = sorted(
        (r for r in mirror.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    assert len(gates) == 2
    vss = [r for r in mirror.rects_on("contact") if r.net == "vss"]
    cx = sum((c.x1 + c.x2) / 2 for c in vss) / len(vss)
    assert gates[0].x2 < cx < gates[1].x1  # shared tail in the middle


def test_serpentine_resistance_scales(tech):
    from repro.db import estimate_net_resistance

    interp = Interpreter(tech)
    interp.load(DSL_LIBRARY["Serpentine"])
    short = interp.call("Serpentine", W=2.0, LSEG=15.0, NSEG=2.0)
    long = interp.call("Serpentine", W=2.0, LSEG=15.0, NSEG=6.0)
    r_short = estimate_net_resistance(short.rects, tech, "body")
    r_long = estimate_net_resistance(long.rects, tech, "body")
    assert r_long > 2.5 * r_short


def test_guarded_transistor_passes_latchup(tech):
    from repro.drc import check_latchup

    interp = Interpreter(tech)
    interp.load(DSL_LIBRARY["GuardedTransistor"])
    module = interp.call("GuardedTransistor", W=8.0, L=1.0)
    assert check_latchup(module) == []

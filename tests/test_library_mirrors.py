"""Current mirrors, cascodes, cross-coupled pairs."""

import pytest

from repro.db import net_is_connected
from repro.drc import run_drc
from repro.library import (
    cascode_pair,
    cross_coupled_pair,
    simple_current_mirror,
    symmetric_current_mirror,
)


def test_simple_mirror(tech):
    mirror = simple_current_mirror(tech, 8.0, 1.0)
    assert run_drc(mirror, include_latchup=False) == []
    assert net_is_connected(mirror.rects, tech, "iref")  # gates + diode tie


def test_symmetric_mirror_diode_in_middle(tech):
    """Block B: 'a symmetrical layout module ... with the diode transistor
    in the middle'."""
    mirror = symmetric_current_mirror(tech, 8.0, 1.0)
    assert run_drc(mirror, include_latchup=False) == []
    assert net_is_connected(mirror.rects, tech, "iref")
    gates = sorted(
        (r for r in mirror.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    assert len(gates) == 3
    # The middle device's drain carries the reference (diode) net; the
    # outer devices' drains carry the outputs.
    ref_cols = [
        r for r in mirror.rects_on("contact")
        if r.net == "iref" and r.y2 < gates[0].y2
    ]
    assert ref_cols
    cx = sum((c.x1 + c.x2) // 2 for c in ref_cols) / len(ref_cols)
    assert gates[0].x2 < cx < gates[2].x1


def test_symmetric_mirror_output_symmetry(tech):
    mirror = symmetric_current_mirror(tech, 8.0, 1.0)
    out1 = [r for r in mirror.rects_on("contact") if r.net == "iout1"]
    out2 = [r for r in mirror.rects_on("contact") if r.net == "iout2"]
    assert len(out1) == len(out2)


def test_cascode_pair_shares_mid_column(tech):
    stack = cascode_pair(tech, 8.0, 1.0)
    assert run_drc(stack, include_latchup=False) == []
    assert net_is_connected(stack.rects, tech, "mid")
    mid_cuts = [r for r in stack.rects_on("contact") if r.net == "mid"]
    columns = {c.x1 for c in mid_cuts}
    assert len(columns) == 1  # one shared column


def test_cross_coupled_pattern_is_palindromic(tech):
    pair = cross_coupled_pair(tech, 10.0, 1.0, fingers_per_device=2)
    assert run_drc(pair, include_latchup=False) == []
    gates = sorted(
        (r for r in pair.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    nets = [g.net for g in gates]
    assert nets == ["gA", "gB", "gB", "gA"]  # ABBA


def test_cross_coupled_common_centroid(tech):
    pair = cross_coupled_pair(tech, 10.0, 1.0, fingers_per_device=2)
    gates = sorted(
        (r for r in pair.rects_on("poly") if r.height > r.width),
        key=lambda g: g.x1,
    )
    a_centre = sum((g.x1 + g.x2) / 2 for g in gates if g.net == "gA") / 2
    b_centre = sum((g.x1 + g.x2) / 2 for g in gates if g.net == "gB") / 2
    assert abs(a_centre - b_centre) < 100  # dbu


def test_cross_coupled_wiring_connects_split_devices(tech):
    pair = cross_coupled_pair(tech, 10.0, 1.0, fingers_per_device=2)
    for net in ("gA", "gB", "dA", "dB"):
        assert net_is_connected(pair.rects, tech, net), net


def test_cross_coupled_wiring_optional(tech):
    bare = cross_coupled_pair(tech, 10.0, 1.0, wiring=False)
    assert not net_is_connected(bare.rects, tech, "dA")
    assert run_drc(bare, include_latchup=False) == []


def test_cross_coupled_validation(tech):
    with pytest.raises(ValueError):
        cross_coupled_pair(tech, 10.0, 1.0, fingers_per_device=0)

"""Bipolar modules (block F) and guard/substrate rings."""

import pytest

from repro.db import LayoutObject, net_is_connected
from repro.drc import check_latchup, run_drc
from repro.geometry import Rect
from repro.library import (
    guard_ring,
    mos_transistor,
    npn_transistor,
    substrate_ring,
    symmetric_npn_pair,
)


def test_npn_structure(tech):
    npn = npn_transistor(tech)
    assert run_drc(npn, include_latchup=False) == []
    emitter = [r for r in npn.rects_on("emitter") if r.net == "e"]
    base = npn.rects_on("base")
    buried = npn.rects_on("buried")
    assert emitter and base and buried
    # Nesting: the device emitter inside base inside buried.
    core_emitter = max(emitter, key=lambda r: r.area)
    big_base = max(base, key=lambda r: r.area)
    big_buried = max(buried, key=lambda r: r.area)
    assert big_base.contains(core_emitter)
    assert big_buried.contains(big_base)


def test_npn_terminals_contacted(tech):
    npn = npn_transistor(tech)
    for net in ("e", "b", "c"):
        cuts = [r for r in npn.rects_on("contact") if r.net == net]
        assert cuts, net


def test_symmetric_pair_is_mirror(tech):
    pair = symmetric_npn_pair(tech)
    assert run_drc(pair, include_latchup=False) == []
    left = [r for r in pair.rects_on("emitter") if r.net == "e1"]
    right = [r for r in pair.rects_on("emitter") if r.net == "e2"]
    assert len(left) == len(right)
    # Mirror: x-sorted widths match in reverse.
    widths_l = sorted(r.width for r in left)
    widths_r = sorted(r.width for r in right)
    assert widths_l == widths_r


def test_substrate_ring_fixes_latchup(tech):
    mos = mos_transistor(tech, 10.0, 1.0)
    assert check_latchup(mos)  # bare device: unprotected
    substrate_ring(mos, net="sub")
    assert check_latchup(mos) == []
    assert run_drc(mos, include_latchup=True) == []


def test_substrate_ring_is_contacted_and_connected(tech):
    mos = mos_transistor(tech, 10.0, 1.0)
    substrate_ring(mos, net="sub")
    cuts = [r for r in mos.rects_on("contact") if r.net == "sub"]
    assert len(cuts) >= 4  # every ring side carries contacts
    assert net_is_connected(mos.rects, tech, "sub")


def test_substrate_ring_uncontacted_option(tech):
    mos = mos_transistor(tech, 10.0, 1.0)
    substrate_ring(mos, net="sub", contacted=False)
    assert [r for r in mos.rects_on("contact") if r.net == "sub"] == []


def test_guard_ring_on_well(tech):
    obj = LayoutObject("o", tech)
    obj.add_rect(Rect(0, 0, 10000, 10000, "pdiff"))
    sides = guard_ring(obj, layer="nwell")
    assert len(sides) == 4
    assert all(r.layer == "nwell" for r in sides)

"""PLDL lexer."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)]


def test_empty_source():
    tokens = tokenize("")
    assert [t.kind for t in tokens] == [TokenKind.EOF]


def test_simple_assignment():
    tokens = tokenize('x = ContactRow(layer = "poly", W = 1)\n')
    assert tokens[0].kind is TokenKind.IDENT and tokens[0].value == "x"
    assert tokens[1].kind is TokenKind.ASSIGN
    assert tokens[2].value == "ContactRow"
    assert any(t.kind is TokenKind.STRING and t.value == "poly" for t in tokens)
    assert tokens[-1].kind is TokenKind.EOF
    assert tokens[-2].kind is TokenKind.NEWLINE


def test_comments_are_stripped():
    tokens = tokenize("a = 1 // step 1\nb = 2 # other comment\n")
    assert all(t.kind is not TokenKind.STRING for t in tokens)
    assert sum(1 for t in tokens if t.kind is TokenKind.NUMBER) == 2


def test_newlines_collapse():
    tokens = tokenize("a = 1\n\n\n\nb = 2\n")
    newline_count = sum(1 for t in tokens if t.kind is TokenKind.NEWLINE)
    assert newline_count == 2


def test_newlines_suppressed_inside_parens():
    tokens = tokenize("f(a,\n  b,\n  c)\n")
    newline_count = sum(1 for t in tokens if t.kind is TokenKind.NEWLINE)
    assert newline_count == 1  # only the final one


def test_numbers_int_and_float():
    tokens = tokenize("a = 1.5\nb = 42\nc = .5\n")
    numbers = [t.value for t in tokens if t.kind is TokenKind.NUMBER]
    assert numbers == ["1.5", "42", ".5"]


def test_operators():
    source = "a <= b >= c == d != e < f > g + h - i * j / k\n"
    ops = [
        t.kind
        for t in tokenize(source)
        if t.kind
        not in (TokenKind.IDENT, TokenKind.NEWLINE, TokenKind.EOF)
    ]
    assert ops == [
        TokenKind.LE, TokenKind.GE, TokenKind.EQ, TokenKind.NE,
        TokenKind.LT, TokenKind.GT, TokenKind.PLUS, TokenKind.MINUS,
        TokenKind.STAR, TokenKind.SLASH,
    ]


def test_angle_params_lex_as_lt_gt():
    tokens = tokenize("ENT F(<W>)\n")
    assert [t.kind for t in tokens[:6]] == [
        TokenKind.IDENT, TokenKind.IDENT, TokenKind.LPAREN,
        TokenKind.LT, TokenKind.IDENT, TokenKind.GT,
    ]


def test_line_numbers_tracked():
    tokens = tokenize("a = 1\nb = 2\n")
    b_token = next(t for t in tokens if t.value == "b")
    assert b_token.line == 2


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('x = "oops\n')


def test_bad_character_raises():
    with pytest.raises(LexError):
        tokenize("a = 1 @ 2\n")


def test_dot_attribute_access():
    tokens = tokenize("obj.width\n")
    assert tokens[1].kind is TokenKind.DOT

#!/usr/bin/env python3
"""A tour of the procedural layout description language (Sec. 2.1).

Demonstrates every language feature the paper lists: hierarchy, optional
parameters, loops, conditionals, backtracking (ALT), automatic design-rule
evaluation, translation to the host language, and the two-window session.

Run:  python examples/dsl_tour.py
"""

from pathlib import Path

from repro import DesignSession, Environment

OUT = Path(__file__).parent / "output"

SOURCE = """
// A resistor ladder exercising loops and conditionals: poly snake with a
// contact row at both ends.  NSEG chooses the number of segments; WIDE
// switches a topology alternative via backtracking.
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
END

ENT Snake(<NSEG>, <WIDE>)
  FOR i = 0 TO NSEG - 1
    WIRE("poly", 0, i * 4, 12, i * 4, 1)
    IF i < NSEG - 1
      IF i / 2 == i / 2  // always true; keeps the corner sides alternating
        WIRE("poly", 12, i * 4, 12, i * 4 + 4, 1)
      ENDIF
    ENDIF
  ENDFOR
  ALT
    // First topology: a wide end strap.  Fails when WIDE is not wanted.
    IF WIDE == 0
      ERROR("narrow variant requested")
    ENDIF
    WIRE("metal1", 0, 0, 0, (NSEG - 1) * 4, 3)
  ELSEALT
    WIRE("metal1", 0, 0, 0, (NSEG - 1) * 4, 1.5)
  ENDALT
END

narrow = Snake(NSEG = 5, WIDE = 0)
wide = Snake(NSEG = 5, WIDE = 1)
"""


def main():
    OUT.mkdir(exist_ok=True)
    env = Environment()

    print("Running the snake source (loops, IF, ALT backtracking)...")
    result = env.run(SOURCE)
    for name in ("narrow", "wide"):
        obj = result[name]
        strap = max(obj.rects_on("metal1"), key=lambda r: r.area)
        print(
            f"  {name:6s}: {len(obj.rects_on('poly'))} poly segments,"
            f" end strap {strap.width / 1000:.1f} µm wide"
        )
    assert (
        max(result["wide"].rects_on("metal1"), key=lambda r: r.area).width
        > max(result["narrow"].rects_on("metal1"), key=lambda r: r.area).width
    )

    print("\nTranslating to Python (the paper translates to C):")
    code = env.translate(SOURCE)
    print("\n".join(code.splitlines()[:16]))
    print("  ...")

    print("\nRecording a two-window design session (Sec. 2.1)...")
    session = DesignSession()
    session.run(SOURCE)
    page = OUT / "dsl_session.html"
    session.save_html(page, title="Snake design session")
    print(f"  {len(session.snapshots)} snapshots → {page}")

    generated = OUT / "snake_generated.py"
    generated.write_text(code, encoding="utf-8")
    print(f"  translated module → {generated}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The broad-band BiCMOS amplifier of Sec. 3 (Figs. 8/9), end to end.

Builds blocks A–F per the paper's knowledge-based partitioning, assembles
them with scripted placement/routing and a substrate ring, verifies the
whole layout (DRC + latch-up + connectivity), and reports the numbers the
paper quotes.

Run:  python examples/bicmos_amplifier.py
"""

import time
from pathlib import Path

from repro import Environment
from repro.amplifier import (
    BLOCK_BUILDERS,
    GLOBAL_NETS,
    build_amplifier,
    measure_amplifier,
)
from repro.db import net_is_connected

OUT = Path(__file__).parent / "output"
PAPER_AREA = 592 * 481


def main():
    OUT.mkdir(exist_ok=True)
    env = Environment()

    print("Blocks A–F (knowledge-based partitioning of Fig. 8):")
    for name, builder in BLOCK_BUILDERS.items():
        block = builder(env.tech)
        print(f"  block {name}: {block.width / 1000:6.1f} × "
              f"{block.height / 1000:5.1f} µm, "
              f"{len(block.nonempty_rects):4d} rects, "
              f"DRC {len(env.drc(block, include_latchup=False))}")

    print("\nAssembling the amplifier (placement + routing + substrate ring)...")
    start = time.perf_counter()
    amp = build_amplifier(env.tech)
    elapsed = time.perf_counter() - start
    report = measure_amplifier(amp)

    print(f"  built in {elapsed:.1f} s, {len(amp.nonempty_rects)} rectangles")
    print(f"  size: {report.width_um:.0f} × {report.height_um:.0f} µm"
          f" = {report.area_um2:,.0f} µm²")
    print(f"  paper: 592 × 481 µm² = {PAPER_AREA:,} µm² (1 µm Siemens BiCMOS)")
    print(f"  DRC violations incl. latch-up: {report.drc_violations}")

    print("\nGlobal nets:")
    for net in GLOBAL_NETS:
        connected = net_is_connected(amp.rects, env.tech, net)
        print(f"  {net:8s} connected: {connected}")

    print("\nInternal-node parasitic capacitance (fF):")
    for net in ("n1", "n2", "itail", "ibias"):
        print(f"  {net:8s} {report.net_capacitance_af[net] / 1000:8.1f}")

    env.write_gds(amp, OUT / "bicmos_amplifier.gds")
    env.write_svg(amp, OUT / "bicmos_amplifier.svg", scale=0.004)
    print(f"\nGDSII and SVG written to {OUT}/")


if __name__ == "__main__":
    main()

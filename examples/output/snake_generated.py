"""Generated from PLDL by repro.lang.translate — do not edit."""

from repro.geometry import Direction
from repro.lang.runtime import Runtime

NORTH = Direction.NORTH
SOUTH = Direction.SOUTH
EAST = Direction.EAST
WEST = Direction.WEST

def ContactRow(rt, layer, W=None, L=None):
    """Generated from entity ContactRow."""
    obj = rt.begin("ContactRow", layer=layer, W=W, L=L)
    try:
        rt.INBOX(obj, layer, W, L)
        rt.INBOX(obj, 'metal1')
        rt.ARRAY(obj, 'contact')
    finally:
        rt.end(obj)
    return obj

def Snake(rt, NSEG=None, WIDE=None):
    """Generated from entity Snake."""
    obj = rt.begin("Snake", NSEG=NSEG, WIDE=WIDE)
    try:
        for i in rt.frange(0.0, (NSEG - 1.0), 1.0):
            rt.WIRE(obj, 'poly', 0.0, (i * 4.0), 12.0, (i * 4.0), 1.0)
            if (i < (NSEG - 1.0)):
                if ((i / 2.0) == (i / 2.0)):
                    rt.WIRE(obj, 'poly', 12.0, (i * 4.0), 12.0, ((i * 4.0) + 4.0), 1.0)
        def _alt1_branch0():
            if (WIDE == 0.0):
                rt.ERROR('narrow variant requested')
            rt.WIRE(obj, 'metal1', 0.0, 0.0, 0.0, ((NSEG - 1.0) * 4.0), 3.0)
        def _alt1_branch1():
            rt.WIRE(obj, 'metal1', 0.0, 0.0, 0.0, ((NSEG - 1.0) * 4.0), 1.5)
        def _alt1_save():
            _state = {}
            try:
                _state['NSEG'] = NSEG
            except NameError:
                pass
            try:
                _state['WIDE'] = WIDE
            except NameError:
                pass
            return rt.alt_state(_state)
        def _alt1_restore(_state):
            nonlocal NSEG, WIDE
            NSEG = _state.get('NSEG')
            WIDE = _state.get('WIDE')
        rt.alt(obj, [_alt1_branch0, _alt1_branch1], save=_alt1_save, restore=_alt1_restore)
    finally:
        rt.end(obj)
    return obj

def main(rt):
    """Top-level calling sequence of the source file."""
    narrow = Snake(rt, NSEG=5.0, WIDE=0.0)
    wide = Snake(rt, NSEG=5.0, WIDE=1.0)

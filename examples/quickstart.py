#!/usr/bin/env python3
"""Quickstart: the module generator environment in a dozen lines.

Loads the paper's Fig. 2 contact-row source, builds the three Fig. 3
parameterizations, checks the design rules and writes GDSII + SVG output —
then rebuilds one variant under the tracer to show where the time goes
(see docs/observability.md).

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import Environment, obs
from repro.drc import format_report
from repro.library import CONTACT_ROW_SOURCE

OUT = Path(__file__).parent / "output"


def main():
    OUT.mkdir(exist_ok=True)
    env = Environment()  # generic 1 µm BiCMOS technology
    env.load(CONTACT_ROW_SOURCE)
    print("Loaded the paper's Fig. 2 module source:")
    print(CONTACT_ROW_SOURCE)

    variants = {
        "minimal": {},
        "w_only": {"W": 1.0},
        "full": {"W": 1.0, "L": 10.0},
    }
    for name, params in variants.items():
        row = env.build("ContactRow", layer="poly", **params)
        violations = env.drc(row, include_latchup=False)
        print(
            f"ContactRow {name:8s}: {row.width / 1000:5.1f} × "
            f"{row.height / 1000:4.1f} µm, "
            f"{len(row.rects_on('contact'))} contact(s) — "
            f"{format_report(violations).splitlines()[0]}"
        )
        env.write_gds(row, OUT / f"contact_row_{name}.gds")
        env.write_svg(row, OUT / f"contact_row_{name}.svg", scale=0.05)

    print(f"\nGDSII and SVG written to {OUT}/")

    # Tracing walkthrough: rerun one build with the process tracer live.
    # StatsSink aggregates in memory; ChromeTraceSink writes a trace you can
    # open in https://ui.perfetto.dev (the CLI equivalents are `repro stats
    # build ...` and `repro --trace out.json build ...`).
    tracer = obs.Tracer(enabled=True)
    stats = tracer.add_sink(obs.StatsSink())
    tracer.add_sink(obs.ChromeTraceSink(OUT / "quickstart_trace.json"))
    with obs.activate(tracer):
        env.build("ContactRow", layer="poly", W=1.0, L=10.0)
    tracer.close()
    print("\nTraced rebuild of the full variant:")
    print(stats.format_table())
    print(f"\nChrome trace written to {OUT}/quickstart_trace.json"
          " (open in Perfetto; generated locally, not committed)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Fig. 6/7 differential pair, plus compaction-order optimization.

Builds the paper's simple MOS differential pair from its hierarchical
source, shows the Fig. 5 compactor features, and runs the Sec. 2.4
order-optimization over a small module.

Run:  python examples/diff_pair_tour.py
"""

from pathlib import Path

from repro import Environment
from repro.compact import Compactor
from repro.db import net_is_connected
from repro.geometry import Direction
from repro.library import DIFF_PAIR_SOURCE, DeviceNets, contact_row, patterned_row, strap_net
from repro.opt import Step

OUT = Path(__file__).parent / "output"


def main():
    OUT.mkdir(exist_ok=True)
    env = Environment()

    # ------------------------------------------------------------------
    print("Fig. 6/7 — the simple MOS differential pair from its source:")
    env.load(DIFF_PAIR_SOURCE)
    pair = env.build("DiffPair", W=10.0, L=1.0)
    gates = [r for r in pair.rects_on("poly") if r.height > r.width]
    print(f"  transistors: {len(gates)}, size "
          f"{pair.width / 1000:.1f} × {pair.height / 1000:.1f} µm, "
          f"DRC violations: {len(env.drc(pair, include_latchup=False))}")
    env.write_svg(pair, OUT / "diff_pair.svg", scale=0.04)

    # ------------------------------------------------------------------
    print("\nFig. 5a/5b — auto-connection and variable edges:")
    for variable in (False, True):
        compactor = Compactor(variable_edges=variable)
        row = patterned_row(
            env.tech, 10.0, 1.0, "AA", {"A": DeviceNets("g", "d")},
            source_net="s", gate_side="south", compactor=compactor,
        )
        strap_net(row, "s", Direction.SOUTH, compactor=compactor)
        label = "variable" if variable else "fixed   "
        print(
            f"  {label} edges: area {row.area() / 1e6:7.1f} µm², "
            f"source connected: {net_is_connected(row.rects, env.tech, 's')}"
        )

    # ------------------------------------------------------------------
    print("\nSec. 2.4 — compaction-order optimization (all 24 orders):")
    steps = [
        Step(contact_row(env.tech, "pdiff", w=4.0, net="a", name="a"), Direction.WEST),
        Step(contact_row(env.tech, "pdiff", w=14.0, net="b", name="b"), Direction.SOUTH),
        Step(contact_row(env.tech, "pdiff", w=8.0, net="c", name="c"), Direction.WEST),
        Step(contact_row(env.tech, "poly", w=2.0, length=12.0, net="d", name="d"),
             Direction.SOUTH),
    ]
    result = env.optimize_order("module", steps)
    scores = sorted(result.scores.values())
    print(f"  evaluated {result.evaluated} orders; best {scores[0]:.1f} µm², "
          f"worst {scores[-1]:.1f} µm² ({scores[-1] / scores[0]:.2f}x)")
    print(f"  best order: {result.best_order}")
    env.write_svg(result.best, OUT / "optimized_module.svg", scale=0.04)
    print(f"\nSVGs written to {OUT}/")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Passive modules and RC estimation from the technology file.

Generates serpentine poly resistors and MOS capacitors, estimates their
values from the SHEET/CAP rules, and prints per-net RC reports — the
"poly-wire resistance" consideration the paper's partitioning mentions,
turned into numbers.

Run:  python examples/passives_and_rc.py
"""

from pathlib import Path

from repro import Environment
from repro.db import rc_report
from repro.library import (
    capacitor_value,
    mos_capacitor,
    poly_resistor,
    resistor_value,
)

OUT = Path(__file__).parent / "output"


def main():
    OUT.mkdir(exist_ok=True)
    env = Environment()

    print("Serpentine poly resistors (25 Ω/□ in generic_bicmos_1u):")
    print(f"{'W (µm)':>7s} {'seg len':>8s} {'segments':>9s} {'R (Ω)':>9s}")
    for width, seg_len, segments in [
        (2.0, 20.0, 2), (2.0, 20.0, 4), (2.0, 20.0, 8), (4.0, 20.0, 4),
    ]:
        resistor = poly_resistor(
            env.tech, width=width, segment_length=seg_len, segments=segments
        )
        assert env.drc(resistor, include_latchup=False) == []
        value = resistor_value(resistor, env.tech)
        print(f"{width:7.1f} {seg_len:8.1f} {segments:9d} {value:9.0f}")

    print("\nMOS capacitors (gate area model):")
    print(f"{'W×L (µm)':>12s} {'C (fF)':>9s}")
    for w, l in [(10, 10), (20, 20), (40, 20)]:
        cap = mos_capacitor(env.tech, float(w), float(l))
        assert env.drc(cap, include_latchup=False) == []
        print(f"{w:5d}×{l:<5d} {capacitor_value(cap, env.tech) / 1000:9.1f}")

    print("\nPer-net RC report of an 8-segment resistor:")
    resistor = poly_resistor(env.tech, segments=8)
    print(f"{'net':14s} {'R (Ω)':>9s} {'C (fF)':>9s} {'RC (ps)':>9s}")
    for net, (r, c, rc) in rc_report(resistor.rects, env.tech).items():
        print(f"{net:14s} {r:9.1f} {c / 1000:9.2f} {rc:9.4f}")

    env.write_svg(resistor, OUT / "resistor.svg", scale=0.05)
    cap = mos_capacitor(env.tech, 20.0, 20.0)
    env.write_svg(cap, OUT / "mos_capacitor.svg", scale=0.03)
    print(f"\nSVGs written to {OUT}/")


if __name__ == "__main__":
    main()

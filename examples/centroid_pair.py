#!/usr/bin/env python3
"""Module E (Fig. 10): the centroidal cross-coupled differential pair.

Builds the paper's flagship matched structure and verifies its claims:
8 middle + 4 left + 4 right dummies, 2-D common centroid, symmetric wiring
with identical crossings per net pair.

Run:  python examples/centroid_pair.py
"""

import time
from pathlib import Path

from repro import Environment
from repro.db import net_is_connected
from repro.library import centroid_cross_coupled_pair
from repro.route import count_crossings

OUT = Path(__file__).parent / "output"


def main():
    OUT.mkdir(exist_ok=True)
    env = Environment()

    start = time.perf_counter()
    module = centroid_cross_coupled_pair(env.tech)
    elapsed = time.perf_counter() - start
    print(f"Module E built in {elapsed * 1e3:.0f} ms "
          f"(paper: ~5 s on 1996 hardware)")
    print(f"  size: {module.width / 1000:.1f} × {module.height / 1000:.1f} µm, "
          f"{len(module.nonempty_rects)} rectangles")
    print(f"  DRC violations: {len(env.drc(module, include_latchup=False))}")

    bars = [r for r in module.rects_on("poly") if r.height > r.width * 2]
    dummies = [b for b in bars if b.net == "vss"]
    xs = sorted({(b.x1 + b.x2) // 2 for b in bars})
    span = xs[-1] - xs[0]
    left = sum(1 for b in dummies if (b.x1 + b.x2) // 2 < xs[0] + span / 4)
    right = sum(1 for b in dummies if (b.x1 + b.x2) // 2 > xs[-1] - span / 4)
    print(f"  dummies: {len(dummies) - left - right} middle, {left} left, "
          f"{right} right   (paper: 8 / 4 / 4)")

    for pair in (("gA", "gB"), ("outA", "outB")):
        a, b = pair
        print(f"  crossings {a}/{b}: {count_crossings(module, a, ['via'])} / "
              f"{count_crossings(module, b, ['via'])}   (identical)")
    for net in ("gA", "gB", "outA", "outB", "vss"):
        assert net_is_connected(module.rects, env.tech, net), net
    print("  all nets electrically connected")

    env.write_svg(module, OUT / "module_e.svg", scale=0.008)
    env.write_gds(module, OUT / "module_e.gds")
    print(f"\nOutputs in {OUT}/")


if __name__ == "__main__":
    main()

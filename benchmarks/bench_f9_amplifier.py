"""F8/F9 — Figs. 8 and 9: the broad-band BiCMOS amplifier.

Builds blocks A–F per the paper's knowledge-based partitioning, assembles
the amplifier with scripted placement/routing and the substrate ring, and
reports the figures the paper quotes: layout area (paper: 592 × 481 µm² in
the 1 µm Siemens process) and internal-node parasitic capacitances.
"""

from pathlib import Path

import pytest

from repro.amplifier import (
    BLOCK_BUILDERS,
    GLOBAL_NETS,
    build_amplifier,
    measure_amplifier,
)
from repro.db import net_is_connected
from repro.io import write_svg

PAPER_AREA_UM2 = 592 * 481


def test_f9_blocks(tech, record, benchmark):
    blocks = {name: builder(tech) for name, builder in BLOCK_BUILDERS.items()}
    benchmark(lambda: BLOCK_BUILDERS["B"](tech))
    dbu = tech.dbu_per_micron
    lines = [
        "Fig. 8 — knowledge-based partitioning, per-block inventory:",
        f"{'block':6s} {'module type':44s} {'size (µm)':>14s}",
    ]
    kinds = {
        "A": "two inter-digital MOS transistors",
        "B": "symmetric mirror, diode transistor in middle",
        "C": "cross-coupled inter-digital transistors",
        "D": "plain MOS devices (no matching)",
        "E": "centroidal cross-coupled pair + dummies",
        "F": "symmetrically composed npn pair",
    }
    for name, block in blocks.items():
        lines.append(
            f"{name:6s} {kinds[name]:44s} "
            f"{block.width / dbu:6.1f}×{block.height / dbu:<6.1f}"
        )
    record("f8_blocks", lines)


def test_f9_amplifier(tech, record, benchmark):
    amp = benchmark(lambda: build_amplifier(tech))
    report = measure_amplifier(amp)
    assert report.drc_violations == 0
    for net in GLOBAL_NETS:
        assert net_is_connected(amp.rects, tech, net), net

    signal_nets = ["n1", "n2", "itail", "ibias"]
    lines = [
        "Fig. 9 — automatically generated layout of the BiCMOS amplifier:",
        f"  measured size: {report.width_um:.0f} × {report.height_um:.0f} µm"
        f"  = {report.area_um2:,.0f} µm²",
        f"  paper's size:  592 × 481 µm² = {PAPER_AREA_UM2:,} µm²"
        "  (1 µm Siemens BiCMOS)",
        f"  ratio measured/paper: {report.area_um2 / PAPER_AREA_UM2:.2f}",
        f"  DRC violations (incl. latch-up): {report.drc_violations}",
        "",
        "  internal-node parasitic capacitances (area+perimeter model, fF):",
    ]
    for net in signal_nets:
        lines.append(f"    {net:8s} {report.net_capacitance_af[net] / 1000:8.1f}")
    c1 = report.net_capacitance_af["n1"]
    c2 = report.net_capacitance_af["n2"]
    lines += [
        f"  pair-node mismatch |n1-n2|/max: {abs(c1 - c2) / max(c1, c2) * 100:.1f} %",
        "",
        "shape vs paper: same order of magnitude in area (device sizes and",
        "rule values of the substitute technology differ from the Siemens",
        "process); all special analog properties hold (symmetric blocks,",
        "matched signal-path parasitics, substrate contacts included).",
    ]
    record("f9_amplifier", lines)
    assert 0.05 < report.area_um2 / PAPER_AREA_UM2 < 2.0
    write_svg(amp, Path(__file__).parent / "results" / "f9_amplifier.svg",
              scale=0.004)

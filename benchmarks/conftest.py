"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's figures/claims and records a
paper-vs-measured report under ``benchmarks/results/`` (stdout is captured
by pytest, so the reports persist as files; EXPERIMENTS.md summarises them).
"""

from pathlib import Path

import pytest

from repro.tech import generic_bicmos_1u

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tech():
    """The paper-substitute 1 µm BiCMOS technology."""
    return generic_bicmos_1u()


@pytest.fixture(scope="session")
def record():
    """Write one experiment's report lines to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name, lines):
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _record

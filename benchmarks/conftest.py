"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's figures/claims and records a
paper-vs-measured report under ``benchmarks/results/`` (stdout is captured
by pytest, so the reports persist as files; EXPERIMENTS.md summarises them).
"""

from pathlib import Path

import pytest

from repro.tech import generic_bicmos_1u

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tech():
    """The paper-substitute 1 µm BiCMOS technology."""
    return generic_bicmos_1u()


@pytest.fixture(scope="session")
def ledger_append():
    """Append one benchmark report to the run ledger (command ``bench:<stem>``).

    Pairs with ``repro perf check --baseline benchmarks/results``: the
    committed BENCH_*.json files load under the same ``bench:<stem>``
    command keys, so fresh bench runs diff directly against them.  Respects
    REPRO_LEDGER=0 and never fails the benchmark it records.
    """
    from repro.obs.ledger import (
        Ledger, RunRecord, current_git_sha, flatten_metrics, ledger_enabled,
        peak_rss_kb, resolve_ledger_dir,
    )

    def _append(stem, payload, wall_s=None):
        if not ledger_enabled():
            return
        try:
            record = RunRecord(
                f"bench:{stem}", kind="bench", argv=["benchmarks", stem],
                tech="generic_bicmos_1u", git_sha=current_git_sha(),
                status=0, wall_s=wall_s, peak_rss_kb=peak_rss_kb(),
                metrics=flatten_metrics(payload),
            )
            with Ledger(resolve_ledger_dir()) as ledger:
                ledger.try_append(record)
        except Exception:  # a broken ledger must never fail a bench
            pass

    return _append


@pytest.fixture(scope="session")
def record():
    """Write one experiment's report lines to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name, lines):
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _record

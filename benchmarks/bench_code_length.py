"""T-CODE — Sec. 2.5: code-length comparison against the coordinate method.

"Former methods for equivalent generation by describing each rectangle with
its exact coordinates needed a multiple of this source code."  We measure it:
the PLDL sources for ContactRow + DiffPair versus our honest reimplementation
of the coordinate-level style (reference [11]).
"""

import pytest

from repro.baselines import (
    coordinate_contact_row,
    coordinate_diff_pair,
    source_line_count,
)
from repro.baselines import coordinate_generator
from repro.lang import Interpreter
from repro.library import CONTACT_ROW_SOURCE, DIFF_PAIR_SOURCE


def count_pldl_lines(source):
    return len(
        [
            line
            for line in source.splitlines()
            if line.strip() and not line.strip().startswith("//")
        ]
    )


def test_code_length_ratio(tech, record, benchmark):
    pldl_row = count_pldl_lines(CONTACT_ROW_SOURCE)
    pldl_pair = count_pldl_lines(DIFF_PAIR_SOURCE)
    coord_row = source_line_count(coordinate_generator.coordinate_contact_row)
    coord_pair = source_line_count(coordinate_generator.coordinate_diff_pair)

    # Both styles must produce equivalent, DRC-clean modules.
    interp = Interpreter(tech)
    interp.load(DIFF_PAIR_SOURCE)
    pldl_module = interp.call("DiffPair", W=10.0, L=1.0)
    coord_module = benchmark(lambda: coordinate_diff_pair(tech, 10.0, 1.0))
    from repro.drc import run_drc

    assert run_drc(pldl_module, include_latchup=False) == []
    assert run_drc(coord_module, include_latchup=False) == []

    ratio_row = coord_row / pldl_row
    ratio_pair = coord_pair / (pldl_pair - 0)
    lines = [
        "Sec. 2.5 — code length: PLDL vs coordinate-level generation:",
        f"{'module':14s} {'PLDL lines':>11s} {'coordinate lines':>17s} {'ratio':>7s}",
        f"{'ContactRow':14s} {pldl_row:11d} {coord_row:17d} {ratio_row:6.1f}x",
        f"{'DiffPair':14s} {pldl_pair:11d} {coord_pair:17d} {ratio_pair:6.1f}x",
        "",
        "paper: coordinate methods 'needed a multiple of this source code'.",
        f"measured multiple: {ratio_row:.1f}–{ratio_pair:.1f}x — the claim's",
        "shape holds (both well above 2x).",
    ]
    record("t_code_length", lines)
    assert ratio_row > 2.0
    assert ratio_pair > 2.0


def test_coordinate_row_equivalence(tech, record, benchmark):
    coord = benchmark(lambda: coordinate_contact_row(tech, "poly", 1.0, 10.0))
    from repro.library import contact_row

    procedural = contact_row(tech, "poly", w=1.0, length=10.0)
    record("t_code_equivalence", [
        "Equivalence check — both styles generate the same contact row:",
        f"  coordinate method contacts: {len(coord.rects_on('contact'))}",
        f"  PLDL method contacts:       {len(procedural.rects_on('contact'))}",
    ])
    assert len(coord.rects_on("contact")) == len(procedural.rects_on("contact"))

"""T-SPEED — Sec. 2.3: successive compaction vs the general edge graph.

"Thus, only outer edges of the main object have to be kept in the data
structure and no general edge graph must be created.  This speeds up the
compaction time."  We assemble growing rows of contact columns with both
methods and compare runtime and pair-check counts.
"""

import time

import pytest

from repro.baselines import GraphCompactor
from repro.compact import Compactor
from repro.db import LayoutObject
from repro.geometry import Direction
from repro.library import contact_row

SIZES = (4, 8, 16, 24)


def make_objects(tech, count):
    objects = []
    for index in range(count):
        obj = contact_row(tech, "pdiff", w=8.0, net=f"n{index}", name=f"r{index}")
        obj.translate(index * 20000, 0)
        objects.append(obj)
    return objects


def successive_pack(tech, objects):
    compactor = Compactor(variable_edges=False)
    main = LayoutObject("row", tech)
    for obj in objects:
        compactor.compact(main, obj, Direction.WEST)
    return main


def test_speed_scaling(tech, record, benchmark):
    rows = []
    for count in SIZES:
        objects = make_objects(tech, count)

        start = time.perf_counter()
        successive = successive_pack(tech, [o.copy() for o in objects])
        t_successive = time.perf_counter() - start

        graph = GraphCompactor(tech)
        start = time.perf_counter()
        packed = graph.compact([o.copy() for o in objects], Direction.WEST)
        t_graph = time.perf_counter() - start

        assert successive.width == packed.width  # same quality
        rows.append(
            (count, t_successive * 1e3, t_graph * 1e3,
             graph.last_stats.pair_checks)
        )

    benchmark(lambda: successive_pack(tech, make_objects(tech, 8)))

    lines = [
        "Sec. 2.3 — compaction time: successive vs general edge graph:",
        f"{'objects':>8s} {'successive (ms)':>16s} {'edge graph (ms)':>16s}"
        f" {'graph pair checks':>18s} {'speedup':>8s}",
    ]
    for count, t_s, t_g, checks in rows:
        lines.append(
            f"{count:8d} {t_s:16.2f} {t_g:16.2f} {checks:18d} {t_g / t_s:7.1f}x"
        )
    first, last = rows[0], rows[-1]
    lines += [
        "",
        "shape vs paper: identical packed results, but the edge-graph method",
        "scales quadratically in pair checks "
        f"({first[3]} → {last[3]} checks for {first[0]} → {last[0]} objects)",
        "while the successive method stays near-linear — 'this speeds up the",
        "compaction time' holds, increasingly so with module size.",
    ]
    record("t_compaction_speed", lines)
    # Quadratic vs linear: the gap must widen with size.
    assert rows[-1][2] / rows[-1][1] > rows[0][2] / rows[0][1]


def test_frontier_filter_ablation(tech, record, benchmark):
    """The 'only outer edges' pruning: result-identical, fewer pair checks."""
    objects = make_objects(tech, 12)

    def pack(use_frontier):
        compactor = Compactor(variable_edges=False, use_frontier=use_frontier)
        main = LayoutObject("row", tech)
        for obj in objects:
            compactor.compact(main, obj.copy(), Direction.WEST)
        return main

    with_frontier = benchmark(lambda: pack(True))
    without = pack(False)
    assert with_frontier.width == without.width

    start = time.perf_counter()
    pack(True)
    t_on = time.perf_counter() - start
    start = time.perf_counter()
    pack(False)
    t_off = time.perf_counter() - start
    record("t_frontier_ablation", [
        "Ablation — outer-edge (frontier) pruning:",
        f"  with pruning:    {t_on * 1e3:8.2f} ms",
        f"  without pruning: {t_off * 1e3:8.2f} ms",
        f"  identical result: True",
        "paper: 'only outer edges of the main object have to be kept'.",
    ])

#!/usr/bin/env python3
"""Concatenate all benchmark reports into one paper-vs-measured summary.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py            # print to stdout
    python benchmarks/summarize.py -o report.txt
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"

#: Presentation order: figures first, then in-text claims, then ablations.
ORDER = [
    "f1_latchup_cases",
    "f1_latchup_flow",
    "f2_contact_row",
    "f2_translation_speed",
    "f4_patterns",
    "f4_rendering",
    "f5a_auto_connect",
    "f5b_variable_edges",
    "f6_diff_pair",
    "f6_before_after",
    "f8_blocks",
    "f9_amplifier",
    "f10_module_e",
    "f10_symmetry",
    "t_code_length",
    "t_code_equivalence",
    "t_compaction_speed",
    "t_frontier_ablation",
    "t_optimizer_orders",
    "t_optimizer_beam",
    "t_optimizer_anneal",
    "t_optimizer_variants",
    "t_variable_edges",
]


def summarize() -> str:
    """Build the combined report text."""
    if not RESULTS.exists():
        return (
            "no results yet — run `pytest benchmarks/ --benchmark-only` first\n"
        )
    parts = ["REPRODUCTION SUMMARY — paper vs. measured", "=" * 60, ""]
    seen = set()
    names = [n for n in ORDER if (RESULTS / f"{n}.txt").exists()]
    names += sorted(
        p.stem for p in RESULTS.glob("*.txt") if p.stem not in ORDER
    )
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        parts.append(f"--- {name} " + "-" * max(0, 50 - len(name)))
        parts.append((RESULTS / f"{name}.txt").read_text(encoding="utf-8"))
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output")
    args = parser.parse_args(argv)
    text = summarize()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())

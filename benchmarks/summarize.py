#!/usr/bin/env python3
"""Concatenate all benchmark reports into one paper-vs-measured summary.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py            # print to stdout
    python benchmarks/summarize.py -o report.txt

Every ``results/*.txt`` report is discovered automatically — a new bench
only has to ``record("name", lines)`` and it appears here.  ``PRIORITY``
is presentation order only (paper figures first, in the paper's sequence);
reports it does not name follow in sorted order, figures before claims.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"

#: Presentation priority — never a gate: un-listed reports still appear.
PRIORITY = [
    "f1_latchup_cases",
    "f1_latchup_flow",
    "f2_contact_row",
    "f2_translation_speed",
    "f4_patterns",
    "f4_rendering",
    "f5a_auto_connect",
    "f5b_variable_edges",
    "f6_diff_pair",
    "f6_before_after",
    "f8_blocks",
    "f9_amplifier",
    "f10_module_e",
    "f10_symmetry",
]


def discover() -> list[str]:
    """All report stems, priority figures first, then figures, then claims.

    Discovery is the source of truth: every ``results/*.txt`` is included
    exactly once.  ``PRIORITY`` only pins the paper-figure sequence;
    everything else sorts within its group (``f*`` figures before the
    ``t_*`` in-text claims/ablations before anything else).
    """
    stems = {p.stem for p in RESULTS.glob("*.txt")}
    stems.discard("SUMMARY")  # this script's own -o output, if committed
    ordered = [name for name in PRIORITY if name in stems]
    rest = stems.difference(ordered)

    def group(stem: str) -> int:
        if stem.startswith("f"):
            return 0
        if stem.startswith("t_"):
            return 1
        return 2

    ordered += sorted(rest, key=lambda stem: (group(stem), stem))
    return ordered


def summarize() -> str:
    """Build the combined report text."""
    if not RESULTS.exists():
        return (
            "no results yet — run `pytest benchmarks/ --benchmark-only` first\n"
        )
    parts = ["REPRODUCTION SUMMARY — paper vs. measured", "=" * 60, ""]
    for name in discover():
        parts.append(f"--- {name} " + "-" * max(0, 50 - len(name)))
        parts.append((RESULTS / f"{name}.txt").read_text(encoding="utf-8"))
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output")
    args = parser.parse_args(argv)
    text = summarize()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())

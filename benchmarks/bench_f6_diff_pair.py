"""F6/F7 — Figs. 6 and 7: the simple MOS differential pair.

Runs the paper's hierarchical source (ContactRow → Trans → DiffPair, five
compaction steps) and reports the structural inventory of Fig. 6b; benches
the full interpret-and-generate time.
"""

import pytest

from repro.drc import run_drc
from repro.io import write_svg
from repro.lang import Interpreter
from repro.library import DIFF_PAIR_SOURCE


@pytest.fixture(scope="module")
def interpreter(tech):
    interp = Interpreter(tech)
    interp.load(DIFF_PAIR_SOURCE)
    return interp


def test_f6_structure(tech, interpreter, record, benchmark):
    pair = benchmark(lambda: interpreter.call("DiffPair", W=10.0, L=1.0))
    assert run_drc(pair, include_latchup=False) == []

    gates = [r for r in pair.rects_on("poly") if r.height > r.width]
    rows = [r for r in pair.rects_on("poly") if r.width >= r.height]
    diff_cols = {
        r.x1
        for r in pair.rects_on("contact")
        if r.y2 <= max(g.y2 for g in gates)
    }
    dbu = tech.dbu_per_micron
    lines = [
        "Figs. 6/7 — simple MOS differential pair (W=10 µm, L=1 µm):",
        f"  transistors (vertical gates):   {len(gates)}   (paper: 2)",
        f"  poly contact rows:              {len(rows)}   (paper: 2)",
        f"  diffusion contact columns:      {len(diff_cols)}   (paper: 3)",
        f"  module size:                    {pair.width / dbu:.1f} × "
        f"{pair.height / dbu:.1f} µm",
        f"  DRC violations:                 0",
        "",
        "paper: 'which consists of two transistors, three diffusion-contact-",
        "rows and two poly-contacts' — inventory reproduced exactly; the",
        "hierarchical description (Fig. 7) runs with five compaction steps.",
    ]
    record("f6_diff_pair", lines)
    assert len(gates) == 2 and len(rows) == 2 and len(diff_cols) == 3

    from pathlib import Path

    write_svg(pair, Path(__file__).parent / "results" / "f6_diff_pair.svg")


def test_f6_before_after_compaction(tech, record, benchmark):
    """Fig. 6a vs 6b: compaction shrinks the assembled pair substantially."""
    from repro.compact import Compactor
    from repro.db import LayoutObject
    from repro.geometry import Direction, union_area
    from repro.library import contact_row, mos_transistor

    def build(compacted):
        compactor = Compactor()
        pair = LayoutObject("pair", tech)
        spread = 0 if compacted else 40000
        t1 = mos_transistor(tech, 10.0, 1.0, gate_net="g1", drain_net="d1",
                            source_contact=False, compactor=compactor, name="t1")
        t2 = mos_transistor(tech, 10.0, 1.0, gate_net="g2", drain_net="d2",
                            source_contact=False, compactor=compactor, name="t2")
        col = contact_row(tech, "pdiff", w=10.0, net="tail", name="tail")
        for index, (obj, direction) in enumerate(
            [(t1, Direction.WEST), (t2, Direction.WEST), (col, Direction.WEST)]
        ):
            if compacted:
                compactor.compact(pair, obj, direction, ignore_layers=("pdiff",))
            else:
                obj.translate(index * (40000 + spread), 0)
                pair.merge(obj)
        return pair

    before = build(False)
    after = benchmark(lambda: build(True))
    dbu2 = tech.dbu_per_micron ** 2
    record("f6_before_after", [
        "Fig. 6a/6b — before vs after successive compaction:",
        f"  bounding area before: {before.area() / dbu2:9.0f} µm²",
        f"  bounding area after:  {after.area() / dbu2:9.0f} µm²",
        f"  compaction factor:    {before.area() / after.area():9.2f}x",
        "shape: compaction collapses the spread assembly to rule-minimum",
        "abutment, as the figure shows.",
    ])
    assert after.area() < before.area()

"""T-DRC — perf: sweep-indexed DRC checker vs the all-pairs reference.

After connectivity extraction was indexed, the DRC checker became the
dominant hotspot of the amplifier build (``check_spacing`` /
``_Components`` ≈ 60% of sampled time).  :class:`repro.drc.index.DrcIndex`
replaces the quadratic component loop with sweep-fed union-find and the
all-pairs spacing scan with rule-radius dilated candidate sweeps, behind
``run_drc(obj, use_index=True)``.

This bench races brute vs indexed full DRC over

* the full BiCMOS amplifier layout (the paper's flagship module),
* a compactor-packed contact row (the stretched tier-1 workload), and
* seeded random rect soups at two sizes (the unstructured worst case);

asserts the violation lists are identical and that the index performs at
least 10x fewer pair tests on the amplifier, and writes
``benchmarks/results/BENCH_drc.json``.  CI runs the smoke variant
(``BENCH_SMOKE=1``: single repeat; the workloads stay identical so the
deterministic ``drc.pairs_scanned`` counters diff exactly against the
committed JSON) and fails the build when they regress.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.amplifier import build_amplifier
from repro.compact import Compactor
from repro.db import LayoutObject
from repro.drc import run_drc
from repro.geometry import Direction, Rect
from repro.library import contact_row
from repro.obs import StatsSink, Tracer, activate

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

#: Workload sizes.  Identical in smoke mode — the counters must diff
#: exactly against the committed baseline; only the repeat count shrinks.
ROW_CELLS = 96
SOUP_SIZES = (250, 700)
SOUP_SEED = 96
REPEATS = 1 if SMOKE else 3

COUNTERS = (
    ("pairs_scanned", "drc.pairs_scanned"),
    ("candidates", "drc.candidates"),
    ("index_builds", "drc.index_builds"),
    ("violations", "drc.violations.total"),
)


def _traced(fn, repeats=REPEATS):
    """Run *fn* under fresh tracers; returns (result, timing+counter entry).

    Wall time is the minimum over *repeats* runs; the counters are
    deterministic, so any run's values serve.
    """
    entry = None
    for _ in range(repeats):
        tracer = Tracer(enabled=True)
        stats = StatsSink()
        tracer.add_sink(stats)
        with activate(tracer):
            start = time.perf_counter()
            result = fn()
            wall = time.perf_counter() - start
        if entry is None or wall < entry["wall_s"]:
            entry = {"wall_s": wall}
            for name, counter in COUNTERS:
                entry[name] = stats.counter(counter)
    return result, entry


def _signature(violations):
    return [
        (
            v.kind,
            v.message,
            v.where,
            tuple((r.x1, r.y1, r.x2, r.y2, r.layer, r.net) for r in v.rects),
        )
        for v in violations
    ]


def _packed_row(tech, count):
    """A successively packed contact row — the tier-1 compactor workload."""
    compactor = Compactor()
    main = LayoutObject("row", tech)
    for index in range(count):
        obj = contact_row(
            tech, "pdiff", w=8.0, net=f"n{index % 6}", name=f"r{index}"
        )
        obj.translate(index * 20000, 0)
        compactor.compact(
            main, obj, Direction.WEST if index % 2 else Direction.SOUTH
        )
    return main


def _random_soup(tech, size):
    """Seeded unstructured rect soup over the full layer table."""
    rng = random.Random(SOUP_SEED + size)
    layers = [layer.name for layer in tech.layers]
    obj = LayoutObject(f"soup{size}", tech)
    for _ in range(size):
        x = rng.randrange(-60_000, 60_000)
        y = rng.randrange(-60_000, 60_000)
        w = rng.randrange(200, 6_000)
        h = rng.randrange(200, 6_000)
        obj.add_rect(
            Rect(
                x, y, x + w, y + h,
                rng.choice(layers),
                rng.choice(["a", "b", "c", None]),
            )
        )
    return obj


def _race(label, obj, lines, report):
    # The amplifier builder's rect order varies run-to-run (hash-order
    # wiring); geometry and violations are stable, but early-break scan
    # counts are order-sensitive.  Normalise so the counters diff exactly
    # against the committed baseline on any machine.
    obj.rects.sort(key=lambda r: (r.layer, r.x1, r.y1, r.x2, r.y2, r.net or ""))
    obj.invalidate_index()
    brute, brute_entry = _traced(
        lambda: run_drc(obj, include_latchup=False, use_index=False)
    )
    indexed, on_entry = _traced(
        lambda: run_drc(obj, include_latchup=False, use_index=True)
    )
    assert _signature(indexed) == _signature(brute)  # identical violations
    entry = {
        "rects": len(obj.nonempty_rects),
        "violations": len(brute),
        "brute": brute_entry,
        "indexed": on_entry,
        "pairs_ratio": brute_entry["pairs_scanned"]
        / max(1, on_entry["pairs_scanned"]),
        "speedup": brute_entry["wall_s"] / max(1e-9, on_entry["wall_s"]),
    }
    report[label] = entry
    lines.append(
        f"  {label}: {entry['rects']} rects, {entry['violations']} violations —"
        f" pairs {brute_entry['pairs_scanned']} -> {on_entry['pairs_scanned']}"
        f" ({entry['pairs_ratio']:.1f}x fewer),"
        f" drc {brute_entry['wall_s'] * 1e3:7.1f} ->"
        f" {on_entry['wall_s'] * 1e3:7.1f} ms ({entry['speedup']:.1f}x)"
    )
    return entry


def test_drc_index_speedup(tech, record, benchmark, ledger_append):
    report = {"smoke": SMOKE, "row_cells": ROW_CELLS, "soup_sizes": list(SOUP_SIZES)}
    lines = ["T-DRC — full design-rule check, brute vs indexed:"]

    # ----------------------------------------------------------- amplifier
    amp = build_amplifier(tech)
    amp_entry = _race("amplifier", amp, lines, report)
    # Acceptance: >= 10x fewer pair tests on the real module; one shared
    # index build serves all checks.
    assert amp_entry["pairs_ratio"] >= 10.0, amp_entry
    assert amp_entry["indexed"]["index_builds"] == 1, amp_entry

    # -------------------------------------------------------- stretched row
    # The packed row is the adversarial shape for a sweep: every cell abuts
    # its neighbours, so far more rects sit within rule radius than in the
    # amplifier.  The ratio plateaus near 8x — gate the deterministic floor.
    row = _packed_row(tech, ROW_CELLS)
    row_entry = _race("packed_row", row, lines, report)
    assert row_entry["pairs_ratio"] >= 5.0, row_entry

    # --------------------------------------------------------- random soups
    for size in SOUP_SIZES:
        _race(f"soup{size}", _random_soup(tech, size), lines, report)

    benchmark(lambda: run_drc(amp, include_latchup=False, use_index=True))

    lines += [
        "shape vs paper: identical violation lists either way — the index",
        "only changes how fast rules are checked, never what they flag.",
    ]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_drc.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    record("t_drc", lines)
    ledger_append("BENCH_drc", report)

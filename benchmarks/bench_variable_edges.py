"""T-VAR — Sec. 2.3: the area benefit of variable edges across a sweep.

"The concept of variable edges provides additional freedom in optimization
... The benefit of this strategy is a substantial reduction of the layout
area."  We sweep channel widths and finger counts, building the same module
with fixed and with variable edges.
"""

import pytest

from repro.compact import Compactor
from repro.geometry import Direction
from repro.library import DeviceNets, patterned_row, strap_net

WIDTHS = (6.0, 10.0, 14.0)
PATTERNS = ("AA", "AAA", "AAAA")


def build(tech, width, pattern, variable):
    compactor = Compactor(variable_edges=variable)
    row = patterned_row(
        tech, width, 1.0, pattern, {"A": DeviceNets("g", "d")},
        source_net="s", gate_side="south", compactor=compactor,
    )
    strap_net(row, "s", Direction.SOUTH, compactor=compactor)
    return row.area() / tech.dbu_per_micron ** 2


def test_variable_edge_sweep(tech, record, benchmark):
    rows = []
    for width in WIDTHS:
        for pattern in PATTERNS:
            fixed = build(tech, width, pattern, False)
            variable = build(tech, width, pattern, True)
            rows.append((width, len(pattern), fixed, variable))

    benchmark(lambda: build(tech, 10.0, "AAA", True))

    lines = [
        "Sec. 2.3 — variable-edge area reduction across a module sweep:",
        f"{'W (µm)':>7s} {'fingers':>8s} {'fixed (µm²)':>12s}"
        f" {'variable (µm²)':>15s} {'reduction':>10s}",
    ]
    reductions = []
    for width, fingers, fixed, variable in rows:
        reduction = 100 * (fixed - variable) / fixed
        reductions.append(reduction)
        lines.append(
            f"{width:7.1f} {fingers:8d} {fixed:12.1f} {variable:15.1f}"
            f" {reduction:9.1f}%"
        )
    lines += [
        "",
        f"mean reduction: {sum(reductions) / len(reductions):.1f} %",
        "paper: 'a substantial reduction of the layout area' — holds at",
        "every sweep point (all reductions positive).",
    ]
    record("t_variable_edges", lines)
    assert all(r > 0 for r in reductions)

"""F2/F3 — Figs. 2 and 3: the contact-row module from its paper source.

Runs the paper's three-line PLDL source for the three parameterizations of
Fig. 3 (both omitted / only W / W and L) and reports the resulting module
dimensions and contact counts; benchmarks interpretation + generation.
"""

import pytest

from repro.drc import run_drc
from repro.lang import Interpreter
from repro.library import CONTACT_ROW_SOURCE


@pytest.fixture(scope="module")
def interpreter(tech):
    interp = Interpreter(tech)
    interp.load(CONTACT_ROW_SOURCE)
    return interp


def row_stats(tech, row):
    dbu = tech.dbu_per_micron
    return (
        row.width / dbu,
        row.height / dbu,
        len(row.rects_on("contact")),
    )


def test_f2_f3_three_parameterizations(tech, interpreter, record, benchmark):
    variants = {
        "W and L omitted": {},
        "only W given (W=1)": {"W": 1.0},
        "W=1 and L=10": {"W": 1.0, "L": 10.0},
    }
    rows = {
        label: interpreter.call("ContactRow", layer="poly", **kwargs)
        for label, kwargs in variants.items()
    }
    for label, row in rows.items():
        assert run_drc(row, include_latchup=False) == [], label

    benchmark(
        lambda: interpreter.call("ContactRow", layer="poly", W=1.0, L=10.0)
    )

    lines = [
        "Figs. 2/3 — contact row from the paper's 3-call source:",
        "  ENT ContactRow(layer, <W>, <L>)",
        '    INBOX(layer, W, L) / INBOX("metal1") / ARRAY("contact")',
        "",
        f"{'variant':24s} {'W×L (µm)':>14s} {'contacts':>9s}",
    ]
    for label, row in rows.items():
        w, h, cuts = row_stats(tech, row)
        lines.append(f"{label:24s} {w:6.1f}×{h:<6.1f} {cuts:9d}")
    lines += [
        "",
        "paper (Fig. 3): left = minimal single-contact row; middle = W only;",
        "right = maximal equidistant array.  Shape reproduced: omitted",
        "parameters default per design rules with automatic expansion, and",
        "the explicit row packs the maximum number of contacts.",
    ]
    record("f2_contact_row", lines)
    assert row_stats(tech, rows["W and L omitted"])[2] == 1
    assert row_stats(tech, rows["W=1 and L=10"])[2] == 4


def test_f2_translated_generation_speed(tech, interpreter, record, benchmark):
    """The paper translates module source to C; we translate to Python —
    compare interpreted vs translated generation speed."""
    import time

    from repro.lang import Runtime, translate

    namespace = {}
    exec(compile(translate(CONTACT_ROW_SOURCE), "<gen>", "exec"), namespace)
    runtime = Runtime(tech)

    translated = benchmark(
        lambda: namespace["ContactRow"](runtime, layer="poly", W=1.0, L=10.0)
    )
    start = time.perf_counter()
    for _ in range(20):
        interpreter.call("ContactRow", layer="poly", W=1.0, L=10.0)
    interpreted_ms = (time.perf_counter() - start) / 20 * 1e3
    start = time.perf_counter()
    for _ in range(20):
        namespace["ContactRow"](runtime, layer="poly", W=1.0, L=10.0)
    translated_ms = (time.perf_counter() - start) / 20 * 1e3
    record("f2_translation_speed", [
        "Sec. 2.1 — 'the source code is automatically translated into C':",
        f"  interpreted generation: {interpreted_ms:7.3f} ms/module",
        f"  translated (Python):    {translated_ms:7.3f} ms/module",
        f"  speedup: {interpreted_ms / max(translated_ms, 1e-9):.2f}x",
        "shape: the translated form is at least as fast as interpretation.",
    ])

"""F5 — Figs. 5a/5b: auto-connected edges and variable-edge optimization.

5a: a metal strap compacted onto an interdigitated transistor connects the
outer source columns automatically.  5b: with variable metal edges the
blocking contact row is shrunk (its array recalculated) so the strap lands
closer — a measurable area reduction.
"""

import pytest

from repro.compact import Compactor
from repro.db import net_is_connected
from repro.drc import run_drc
from repro.geometry import Direction
from repro.library import DeviceNets, patterned_row, strap_net


def build_strapped(tech, variable_edges):
    compactor = Compactor(variable_edges=variable_edges)
    row = patterned_row(
        tech, 10.0, 1.0, "AA", {"A": DeviceNets("g", "d")},
        source_net="s", gate_side="south", compactor=compactor,
    )
    strap_net(row, "s", Direction.SOUTH, compactor=compactor)
    return row


def test_f5a_auto_connection(tech, record, benchmark):
    row = benchmark(lambda: build_strapped(tech, True))
    assert net_is_connected(row.rects, tech, "s")
    assert run_drc(row, include_latchup=False) == []
    record("f5a_auto_connect", [
        "Fig. 5a — auto-connected edges:",
        "  a metal1 strap was compacted to the top of the transistor;",
        "  the outer source columns were automatically connected to it",
        f"  (net 's' electrically connected: "
        f"{net_is_connected(row.rects, tech, 's')}).",
        "paper: 'the outer diffusion contact rows were automatically",
        "connected to this rectangle.'",
    ])


def test_f5b_variable_edges_area(tech, record, benchmark):
    fixed = build_strapped(tech, False)
    variable = benchmark(lambda: build_strapped(tech, True))
    area_fixed = fixed.area() / tech.dbu_per_micron ** 2
    area_variable = variable.area() / tech.dbu_per_micron ** 2
    reduction = 100 * (area_fixed - area_variable) / area_fixed
    # The middle drain row's metal shrank and its array was recalculated.
    cuts_fixed = len([r for r in fixed.rects_on("contact") if r.net == "d"])
    cuts_variable = len([r for r in variable.rects_on("contact") if r.net == "d"])
    record("f5b_variable_edges", [
        "Fig. 5b — optimization by shrinking objects (variable edges):",
        f"  area, all edges fixed:    {area_fixed:9.1f} µm²",
        f"  area, variable edges:     {area_variable:9.1f} µm²",
        f"  reduction:                {reduction:9.1f} %",
        f"  middle-row contacts:      {cuts_fixed} → {cuts_variable}"
        "  (array recalculated)",
        "paper: 'the metal1-rectangle of the middle contact row was shrinked",
        "automatically ... the array of contact-rectangles was recalculated'",
        "and 'the benefit of this strategy is a substantial reduction of the",
        "layout area.'  Shape holds: variable edges strictly reduce area.",
    ])
    assert area_variable < area_fixed
    assert cuts_variable <= cuts_fixed

"""T-INDEX — perf: the incremental frontier index on the compactor hot path.

The successive compactor's per-step scans (frontier pruning, constraint
candidate gathering, auto-connect resident lookup, bridge blocking) used to
be rebuilt from ``main.rects`` on every step and every shrink round.  The
:class:`~repro.compact.index.FrontierIndex` keeps that state persistent per
layout object and updates it incrementally as rects merge, stretch and
shrink.  This bench races ``Compactor(use_index=...)`` off vs on over

* the full BiCMOS amplifier build (the paper's flagship module), and
* a successive row packing stretched 10x past its tier-1 size, where the
  per-step rescans' quadratic growth dominates;

asserts the outputs are identical, and writes
``benchmarks/results/BENCH_compact.json``.  CI runs the smoke variant
(``BENCH_SMOKE=1``: base row size only) and fails the build when the
indexed ``compact.pairs_scanned`` counters regress against the committed
JSON — the counters are deterministic, so any increase is a real loss of
pruning, not noise.
"""

import json
import os
import time
from pathlib import Path

from repro.amplifier import build_amplifier
from repro.compact import Compactor
from repro.db import LayoutObject
from repro.geometry import Direction
from repro.library import contact_row
from repro.obs import StatsSink, Tracer, activate

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

#: Row-packing sizes: the tier-1 base and its 10x stretch (full mode only).
BASE_ROW = 12
STRETCH = 10
ROW_SIZES = (
    (BASE_ROW, BASE_ROW * 2)
    if SMOKE
    else (BASE_ROW, BASE_ROW * 2, BASE_ROW * 5, BASE_ROW * STRETCH)
)

COUNTERS = (
    ("pairs_scanned", "compact.pairs_scanned"),
    ("frontier_dropped", "compact.frontier_dropped"),
    ("window_dropped", "compact.index_window_dropped"),
    ("sweeps", "compact.index_sweeps"),
    ("sweep_hits", "compact.index_sweep_hits"),
    ("rebuilds", "compact.index_rebuilds"),
)


def _traced(fn, repeats=3):
    """Run *fn* under fresh tracers; returns (result, timing+counter entry).

    Wall and compact times are the minimum over *repeats* runs (single-shot
    millisecond timings are at the mercy of GC pauses and scheduler noise);
    the counters are deterministic, so any run's values serve.
    """
    entry = None
    for _ in range(repeats):
        tracer = Tracer(enabled=True)
        stats = StatsSink()
        tracer.add_sink(stats)
        with activate(tracer):
            start = time.perf_counter()
            result = fn()
            wall = time.perf_counter() - start
        if entry is None or wall < entry["wall_s"]:
            entry = {"wall_s": wall, "compact_s": stats.total_s("compact.step")}
            for name, counter in COUNTERS:
                entry[name] = stats.counter(counter)
    return result, entry


def _signature(obj):
    return [
        (r.x1, r.y1, r.x2, r.y2, r.layer, r.net, r.no_overlap)
        for r in obj.rects
    ]


def _row_objects(tech, count):
    objects = []
    for index in range(count):
        obj = contact_row(
            tech, "pdiff", w=8.0, net=f"n{index % 6}", name=f"r{index}"
        )
        obj.translate(index * 20000, 0)
        objects.append(obj)
    return objects


def _pack_row(tech, objects, use_index):
    compactor = Compactor(use_index=use_index)
    main = LayoutObject("row", tech)
    for index, obj in enumerate(objects):
        compactor.compact(
            main, obj, Direction.WEST if index % 2 else Direction.SOUTH
        )
    return main


def test_frontier_index_speedup(tech, record, benchmark, ledger_append):
    report = {"smoke": SMOKE, "stretch_factor": STRETCH}
    lines = ["T-INDEX — incremental frontier index, off vs on:"]

    # ---------------------------------------------------------------- rows
    sizes = {}
    for count in ROW_SIZES:
        objects = _row_objects(tech, count)
        off, off_entry = _traced(
            lambda: _pack_row(tech, [o.copy() for o in objects], False)
        )
        on, on_entry = _traced(
            lambda: _pack_row(tech, [o.copy() for o in objects], True)
        )
        assert _signature(off) == _signature(on)  # byte-identical packing
        entry = {
            "unindexed": off_entry,
            "indexed": on_entry,
            "speedup": off_entry["compact_s"] / on_entry["compact_s"],
            "pairs_ratio": off_entry["pairs_scanned"]
            / max(1, on_entry["pairs_scanned"]),
        }
        sizes[str(count)] = entry
        lines.append(
            f"  row n={count}: compact {off_entry['compact_s'] * 1e3:8.1f} ->"
            f" {on_entry['compact_s'] * 1e3:8.1f} ms"
            f" ({entry['speedup']:.2f}x), pairs"
            f" {off_entry['pairs_scanned']} -> {on_entry['pairs_scanned']}"
            f" ({entry['pairs_ratio']:.1f}x fewer)"
        )
        # The pruning win is deterministic in both modes: the index must
        # scan several times fewer candidate pairs than the naive rescan,
        # and at least 5x fewer once the row outgrows the tier-1 base.
        floor = 3.0 if count == BASE_ROW else 5.0
        assert entry["pairs_ratio"] >= floor, entry
    report["row"] = {"sizes": sizes}

    benchmark(lambda: _pack_row(tech, _row_objects(tech, BASE_ROW), True))

    # ----------------------------------------------------------- amplifier
    amp_repeats = 1 if SMOKE else 3
    amp_off, off_entry = _traced(
        lambda: build_amplifier(tech, compactor=Compactor(use_index=False)),
        repeats=amp_repeats,
    )
    amp_on, on_entry = _traced(
        lambda: build_amplifier(tech, compactor=Compactor(use_index=True)),
        repeats=amp_repeats,
    )
    assert _signature(amp_off) == _signature(amp_on)
    report["amplifier"] = {
        "unindexed": off_entry,
        "indexed": on_entry,
        "compact_speedup": off_entry["compact_s"] / on_entry["compact_s"],
        "pairs_ratio": off_entry["pairs_scanned"]
        / max(1, on_entry["pairs_scanned"]),
    }
    lines.append(
        f"  amplifier: compact {off_entry['compact_s'] * 1e3:8.1f} ->"
        f" {on_entry['compact_s'] * 1e3:8.1f} ms"
        f" ({report['amplifier']['compact_speedup']:.2f}x),"
        f" pairs {off_entry['pairs_scanned']} -> {on_entry['pairs_scanned']}"
    )

    if not SMOKE:
        headline = sizes[str(BASE_ROW * STRETCH)]["speedup"]
        report["headline_stretch_speedup"] = headline
        lines.append(
            f"  headline: {headline:.2f}x compact_s at the 10x-stretched row"
        )

    lines += [
        "shape vs paper: identical geometry either way — the index only",
        "changes how fast 'only outer edges' are found, never which ones.",
    ]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compact.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    record("t_frontier_index", lines)
    ledger_append("BENCH_compact", report)

    if not SMOKE:
        # Acceptance: >= 5x compact_s at the stretched size, identical output.
        assert report["headline_stretch_speedup"] >= 5.0, report

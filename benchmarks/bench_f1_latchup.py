"""F1 — Fig. 1: the latch-up examination over all 16 overlap cases.

Regenerates the figure's 4×4 case table (horizontal × vertical overlap
classes) showing the remainder piece count of each case, and benchmarks the
subtraction kernel plus a realistic full-module latch-up check.
"""

import itertools

import pytest

from repro.drc import check_latchup, insert_protection_contacts
from repro.geometry import Rect, overlap_classification, subtract
from repro.library import mos_transistor, substrate_ring


def case_cutter(solid, h_case, v_case):
    x1, y1, x2, y2 = solid.as_tuple()
    tx, ty = (x2 - x1) // 3, (y2 - y1) // 3
    h = {
        0: (x1 - 10, x2 + 10), 1: (x1 - 10, x1 + tx),
        2: (x2 - tx, x2 + 10), 3: (x1 + tx, x2 - tx),
    }[h_case]
    v = {
        0: (y1 - 10, y2 + 10), 1: (y1 - 10, y1 + ty),
        2: (y2 - ty, y2 + 10), 3: (y1 + ty, y2 - ty),
    }[v_case]
    return Rect(h[0], v[0], h[1], v[1], "locos")


def test_f1_sixteen_case_table(record, benchmark):
    """The 4×4 grid of Fig. 1, with the remainder piece count per case."""
    solid = Rect(0, 0, 90, 90, "locos")
    table = {}
    for h_case, v_case in itertools.product(range(4), repeat=2):
        cutter = case_cutter(solid, h_case, v_case)
        assert overlap_classification(solid, cutter) == (h_case, v_case)
        pieces = subtract(solid, cutter)
        overlap = solid.intersection(cutter)
        assert sum(p.area for p in pieces) == solid.area - overlap.area
        table[(h_case, v_case)] = len(pieces)

    def run_all():
        total = 0
        for h_case, v_case in itertools.product(range(4), repeat=2):
            total += len(subtract(solid, case_cutter(solid, h_case, v_case)))
        return total

    benchmark(run_all)

    lines = [
        "Fig. 1 — latch-up rule: all 16 overlap cases of rectangle subtraction",
        "(rows: vertical case, columns: horizontal case; cell = remainder pieces)",
        "case 0=covers span, 1=covers low end, 2=covers high end, 3=interior",
        "",
        "        h=0  h=1  h=2  h=3",
    ]
    for v_case in range(4):
        row = "  ".join(f"{table[(h, v_case)]:3d}" for h in range(4))
        lines.append(f"  v={v_case}   {row}")
    lines.append("")
    lines.append("paper: 'all possible 16 cases of overlapping are depicted' — "
                 "every case classified and subtracted exactly.")
    record("f1_latchup_cases", lines)


def test_f1_module_latchup_flow(tech, record, benchmark):
    """End-to-end: unprotected device fails, ring fixes, inserter fixes."""
    def build_and_check():
        mos = mos_transistor(tech, 10.0, 1.0)
        before = len(check_latchup(mos))
        substrate_ring(mos, net="sub")
        after = len(check_latchup(mos))
        return before, after

    before, after = benchmark(build_and_check)
    assert before > 0 and after == 0

    wide = mos_transistor(tech, 10.0, 1.0, name="wide")
    from repro.geometry import Rect as R

    wide.add_rect(R(0, 0, 3 * tech.latchup_half_size("subcontact"), 4000, "pdiff"))
    added = insert_protection_contacts(wide)
    record("f1_latchup_flow", [
        "Fig. 1 flow — latch-up verdicts:",
        f"  bare transistor violations: {before}",
        f"  after substrate ring:       {after}",
        f"  wide active area: inserter added {len(added)} substrate contact(s)",
        "paper: 'If not all active areas are enclosed additional substrate",
        "contacts have to be inserted.'",
    ])
    assert check_latchup(wide) == []

"""T-NETS — perf: indexed connectivity extraction vs the all-pairs reference.

:func:`repro.db.nets.extract_connectivity_brute` tests every conducting
rect pair — on the profiled amplifier build that made ``extract_
connectivity`` the top hotspot, repeated once per net by the global router
and again by the verification oracles.  The :class:`~repro.db.netindex.
ConnectivityIndex` replaces the quadratic loops with per-layer interval
sweeps and shares one cached extraction across every per-net query.

This bench races brute vs indexed over

* the full BiCMOS amplifier layout (the paper's flagship module), and
* a synthetic dense metal grid — the same-layer all-pairs worst case;

asserts the component partitions are identical and that the index tests
at least 10x fewer pairs on the amplifier, and writes
``benchmarks/results/BENCH_nets.json``.  CI runs the smoke variant
(``BENCH_SMOKE=1``: single repeat; the workloads stay identical so the
deterministic ``nets.pairs_scanned`` counters diff exactly against the
committed JSON) and fails the build when they regress.
"""

import json
import os
import time
from pathlib import Path

from repro.amplifier import build_amplifier
from repro.db import extract_connectivity_brute
from repro.db.netindex import ConnectivityIndex
from repro.geometry import Rect
from repro.obs import StatsSink, Tracer, activate

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

#: Dense-grid side length: n² rects on one layer (brute is O(n⁴) pairs).
#: Identical in smoke mode — the counters must diff exactly against the
#: committed baseline; only the repeat count shrinks.
GRID_SIDE = 32
REPEATS = 1 if SMOKE else 3

COUNTERS = (
    ("pairs_scanned", "nets.pairs_scanned"),
    ("candidates", "nets.candidates"),
    ("extractions", "nets.extractions"),
    ("cache_hits", "nets.cache_hits"),
)


def _traced(fn, repeats=REPEATS):
    """Run *fn* under fresh tracers; returns (result, timing+counter entry).

    Wall time is the minimum over *repeats* runs; the counters are
    deterministic, so any run's values serve.
    """
    entry = None
    for _ in range(repeats):
        tracer = Tracer(enabled=True)
        stats = StatsSink()
        tracer.add_sink(stats)
        with activate(tracer):
            start = time.perf_counter()
            result = fn()
            wall = time.perf_counter() - start
        if entry is None or wall < entry["wall_s"]:
            entry = {"wall_s": wall}
            for name, counter in COUNTERS:
                entry[name] = stats.counter(counter)
    return result, entry


def _signature(components):
    return [
        [(r.x1, r.y1, r.x2, r.y2, r.layer, r.net) for r in component]
        for component in components
    ]


def _dense_grid(side):
    """side × side metal tiles; tiles touch along rows, rows carry nets.

    Every rect shares a layer with every other, so the brute pass tests
    all ~(side²)²/2 pairs while the sweep only tests x-adjacent ones.
    """
    rects = []
    for y in range(side):
        for x in range(side):
            rects.append(
                Rect(
                    x * 1000, y * 1500, x * 1000 + 1000, y * 1500 + 1000,
                    "metal1", f"row{y}",
                )
            )
    return rects


def _race(label, rects, tech, lines, report):
    brute, brute_entry = _traced(lambda: extract_connectivity_brute(rects, tech))
    indexed, on_entry = _traced(
        lambda: ConnectivityIndex(rects, tech).components()
    )
    assert _signature(indexed) == _signature(brute)  # identical partitions
    entry = {
        "rects": len(rects),
        "components": len(brute),
        "brute": brute_entry,
        "indexed": on_entry,
        "pairs_ratio": brute_entry["pairs_scanned"]
        / max(1, on_entry["pairs_scanned"]),
        "speedup": brute_entry["wall_s"] / max(1e-9, on_entry["wall_s"]),
    }
    report[label] = entry
    lines.append(
        f"  {label}: {len(rects)} rects, {len(brute)} components —"
        f" pairs {brute_entry['pairs_scanned']} -> {on_entry['pairs_scanned']}"
        f" ({entry['pairs_ratio']:.1f}x fewer),"
        f" extract {brute_entry['wall_s'] * 1e3:7.1f} ->"
        f" {on_entry['wall_s'] * 1e3:7.1f} ms ({entry['speedup']:.1f}x)"
    )
    return entry


def test_connectivity_index_speedup(tech, record, benchmark, ledger_append):
    report = {"smoke": SMOKE, "grid_side": GRID_SIDE}
    lines = ["T-NETS — connectivity extraction, brute vs indexed:"]

    # ----------------------------------------------------------- amplifier
    amp = build_amplifier(tech)
    amp_entry = _race("amplifier", amp.rects, tech, lines, report)
    # Acceptance: the index tests >= 10x fewer pairs on the real module.
    assert amp_entry["pairs_ratio"] >= 10.0, amp_entry

    # ---------------------------------------------------------- dense grid
    grid_entry = _race("grid", _dense_grid(GRID_SIDE), tech, lines, report)
    assert grid_entry["pairs_ratio"] >= 10.0, grid_entry

    # ------------------------------------------------- shared-index router
    # The router's per-net queries ride one extraction + appends; count it.
    _, routed_entry = _traced(lambda: build_amplifier(tech), repeats=1)
    report["routed_build"] = routed_entry
    lines.append(
        f"  routed build: {routed_entry['extractions']} extraction(s),"
        f" {routed_entry['cache_hits']} cache hits,"
        f" {routed_entry['pairs_scanned']} pairs scanned"
    )
    assert routed_entry["extractions"] == 1, routed_entry

    benchmark(lambda: ConnectivityIndex(amp.rects, tech).components())

    lines += [
        "shape vs paper: identical net partitions either way — the index",
        "only changes how fast connectivity is found, never what connects.",
    ]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_nets.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    record("t_nets", lines)
    ledger_append("BENCH_nets", report)

"""T-TREE — perf: shared-prefix tree vs replay-based exhaustive order search.

Sec. 2.4 finds the best compaction order by trying "all different
variations".  The replay baseline recompacts every permutation from scratch
(O(n!*n) compaction steps); :class:`~repro.opt.TreeOrderOptimizer` shares
each distinct order prefix (one step per prefix), optionally prunes subtrees
by the area lower bound, and can fan first-step subtrees out to worker
processes.  This bench races the four engines on a heterogeneous module of
transistor-like devices (diffusion + poly + metal straps) at 4-8 objects and
writes ``benchmarks/results/BENCH_optimizer.json``.  Each serial engine runs
under a :class:`repro.obs.Tracer`, so every entry carries a per-stage split
(compaction vs candidate rating vs tree bookkeeping) from the obs timers.

Run ``BENCH_SMOKE=1 pytest benchmarks/bench_order_tree.py`` for the quick
CI variant (4-5 objects, no headline-speedup assertion).
"""

import json
import os
import time
from pathlib import Path

from repro.compact import Compactor
from repro.db import LayoutObject
from repro.geometry import Direction, Rect
from repro.obs import StatsSink, Tracer, activate
from repro.opt import OrderOptimizer, Step, TreeOrderOptimizer

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

# Heterogeneous footprints (w, h, direction): tall strips interleaved with
# wide bars so a bad early placement inflates the bounding box immediately —
# the regime branch-and-bound is built for.
SHAPES = [
    (1500, 28000, Direction.WEST),
    (24000, 1500, Direction.SOUTH),
    (3000, 9000, Direction.WEST),
    (11000, 2000, Direction.SOUTH),
    (2500, 14000, Direction.WEST),
    (20000, 3000, Direction.SOUTH),
    (4000, 4000, Direction.WEST),
    (9000, 2500, Direction.SOUTH),
]

# Engine sizes: replay is O(n!*n) and the unpruned tree still visits every
# permutation node, so both stop at 7; the pruned engines carry on to 8.
REPLAY_MAX = 7
TREE_MAX = 7


def device(tech, name, w, h, net):
    """A transistor-like footprint: diffusion body, poly gate, metal strap."""
    obj = LayoutObject(name, tech)
    obj.add_rect(Rect(0, 0, w, h, "ndiff", None))
    obj.add_rect(Rect(w // 3, -600, w // 3 + 600, h + 600, "poly", net + "_g"))
    obj.add_rect(Rect(0, h // 3, w, h // 3 + 800, "metal1", net))
    return obj


def make_steps(tech, count):
    return [
        Step(device(tech, f"dev{i}", w, h, f"n{i}"), direction)
        for i, (w, h, direction) in enumerate(SHAPES[:count])
    ]


def _timed(optimize, name, tech, steps):
    """Run one engine under a fresh tracer; returns (wall_s, result, stages).

    The per-stage split comes from the obs timers: ``compact_s`` is time in
    :meth:`Compactor.compact` steps (``compact.step`` spans), ``rating_s``
    is candidate evaluation (``opt.rate`` spans), and ``bookkeeping_s`` is
    the remainder — snapshots, cache management, permutation walking.  The
    parallel engine compacts in worker processes (fresh disabled tracers),
    so its stage split only covers the coordinating process.
    """
    tracer = Tracer(enabled=True)
    stats = StatsSink()
    tracer.add_sink(stats)
    with activate(tracer):
        start = time.perf_counter()
        result = optimize(name, tech, steps)
        wall = time.perf_counter() - start
    compact_s = stats.total_s("compact.step")
    rating_s = stats.total_s("opt.rate")
    stages = {
        "compact_s": compact_s,
        "rating_s": rating_s,
        "bookkeeping_s": max(0.0, wall - compact_s - rating_s),
        "snapshots": stats.counter("opt.tree.snapshots"),
        "cache_hits": stats.counter("opt.tree.cache_hits"),
    }
    return wall, result, stages


def test_order_tree_scaling(tech, record, ledger_append):
    sizes = range(4, 6) if SMOKE else range(4, 9)
    report = {"module": "heterogeneous device row", "smoke": SMOKE, "sizes": {}}
    lines = ["T-TREE — order-search engines, one compact per distinct prefix:"]

    headline = None
    for count in sizes:
        steps = make_steps(tech, count)
        entry = {}

        replay = None
        if count <= REPLAY_MAX:
            replay_opt = OrderOptimizer(
                compactor=Compactor(), exhaustive_limit=REPLAY_MAX
            )
            entry["replay_s"], replay, entry["replay_stages"] = _timed(
                replay_opt.optimize, "m", tech, steps
            )
            entry["replay_compacts"] = replay_opt.compactor.calls
        else:
            entry["replay_s"] = None  # O(n!*n) — dropped, not measured

        tree = None
        if count <= TREE_MAX:
            entry["tree_s"], tree, entry["tree_stages"] = _timed(
                TreeOrderOptimizer(compactor=Compactor(), prune=False).optimize,
                "m", tech, steps,
            )
            entry["tree_compacts"] = tree.compact_calls
        else:
            entry["tree_s"] = None  # visits every permutation — dropped

        entry["pruned_s"], pruned, entry["pruned_stages"] = _timed(
            TreeOrderOptimizer(compactor=Compactor(), prune=True).optimize,
            "m", tech, steps,
        )
        entry["pruned_compacts"] = pruned.compact_calls
        entry["pruned_orders_skipped"] = pruned.pruned

        entry["parallel_s"], parallel, _ = _timed(
            TreeOrderOptimizer(
                compactor=Compactor(), prune=True, workers=2
            ).optimize,
            "m", tech, steps,
        )

        # All engines must agree exactly — same best order, same score.
        reference = replay or tree or pruned
        for result in (replay, tree, pruned, parallel):
            if result is None:
                continue
            assert result.best_order == reference.best_order
            assert abs(result.best_score - reference.best_score) < 1e-9
        entry["best_order"] = list(reference.best_order)
        entry["best_score"] = reference.best_score

        if replay is not None:
            entry["tree_speedup"] = (
                entry["replay_s"] / entry["tree_s"] if tree else None
            )
            entry["pruned_speedup"] = entry["replay_s"] / entry["pruned_s"]
            if count == 7:
                headline = entry["pruned_speedup"]
        report["sizes"][str(count)] = entry

        def fmt(value):
            return f"{value:7.3f}s" if value is not None else "      —"

        stages = entry["pruned_stages"]
        lines.append(
            f"  n={count}: replay {fmt(entry['replay_s'])}"
            f"  tree {fmt(entry['tree_s'])}"
            f"  pruned {fmt(entry['pruned_s'])}"
            f" ({entry['pruned_compacts']}c,"
            f" skip {entry['pruned_orders_skipped']})"
            f"  parallel {fmt(entry['parallel_s'])}"
            f"  [pruned split: compact {stages['compact_s']:.2f}s"
            f" rate {stages['rating_s']:.2f}s"
            f" tree {stages['bookkeeping_s']:.2f}s]"
        )

    if headline is not None:
        report["headline_pruned_speedup_n7"] = headline
        lines.append(f"  headline: pruned tree {headline:.2f}x replay at n=7")
    lines.append("shape vs paper: identical optima to Sec. 2.4's exhaustive")
    lines.append("sweep; the tree pays one compaction step per distinct prefix")
    lines.append("and the bound prunes most permutations outright.")

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_optimizer.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    record("t_order_tree", lines)
    ledger_append("BENCH_optimizer", report)

    if not SMOKE and headline is not None:
        # Acceptance: >= 3x over replay at n=7 with identical best order.
        assert headline >= 3.0, f"pruned speedup {headline:.2f}x < 3x"

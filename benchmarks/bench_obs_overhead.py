"""T-OBS — cost of the observability layer on the amplifier workload.

The instrumentation in interpreter/compactor/optimizer/DRC stays in the hot
paths permanently, so its *disabled* cost must be negligible: every site
fetches the process tracer and takes one ``enabled`` check (spans return a
shared null object, counters return immediately).  This bench measures

* the Sec. 3 amplifier build + DRC with the tracer disabled vs enabled
  (a :class:`~repro.obs.StatsSink` attached),
* the microbenchmarked per-call cost of a disabled span and counter, and
* the estimated disabled overhead: (instrumentation calls actually made by
  the workload) × (disabled per-call cost) / (workload time),

and writes ``benchmarks/results/BENCH_obs.json``.  Acceptance: the
estimated disabled overhead is under 2% of the workload.  (The estimate is
the honest number — two back-to-back wall-clock runs of a ~2 s workload
differ by more than the disabled instrumentation costs, so a measured
disabled-vs-disabled delta would be noise.)

The provenance recorder (``repro.obs.provenance``) follows the same
zero-cost-when-disabled contract, so the bench measures it the same way:
an enabled run counts the recorder-site hits (rect stamps, entity frames,
builtin tags), a microbenchmark prices the disabled ``get_recorder()`` +
``enabled`` check, and the product must stay under 1% of the workload.

So do the cross-process additions: histogram recording lives inside
``StatsSink.on_span`` — the *enabled* path — so a disabled span is the same
shared null object as before and ``_disabled_call_ns`` already prices the
histogram-bearing instrumentation exactly; trace-context capture
(``TraceContext.capture`` at every pool fan-out) reduces to one ``enabled``
check when untraced, which ``_disabled_context_capture_ns`` prices
(acceptance: under 1% of the workload even at one capture per compaction
step, a wild overestimate of real fan-out frequency).

Run ``BENCH_SMOKE=1 pytest benchmarks/bench_obs_overhead.py`` for the quick
CI variant (one repetition per mode).
"""

import json
import os
import time
from pathlib import Path

from repro.amplifier import build_amplifier, measure_amplifier
from repro.obs import (
    ProvenanceRecorder,
    StatsSink,
    TraceContext,
    Tracer,
    activate,
    get_recorder,
    get_tracer,
    recording,
)

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
REPS = 1 if SMOKE else 3

#: Acceptance threshold for the disabled-tracer overhead estimate.
MAX_DISABLED_OVERHEAD_PCT = 2.0
#: Acceptance threshold for the disabled-provenance overhead estimate.
MAX_DISABLED_PROV_OVERHEAD_PCT = 1.0
#: Acceptance threshold for the opted-out run-ledger overhead estimate.
MAX_DISABLED_LEDGER_OVERHEAD_PCT = 1.0
#: Acceptance threshold for the untraced context-capture overhead estimate.
MAX_DISABLED_CONTEXT_OVERHEAD_PCT = 1.0


def _workload(tech):
    amp = build_amplifier(tech)
    return measure_amplifier(amp)


def _best_of(reps, func, *args):
    """Fastest of *reps* runs (the standard way to suppress timer noise)."""
    best = None
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = func(*args)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _disabled_call_ns(loops=200_000):
    """Per-call cost of one disabled span plus one disabled counter."""
    tracer = get_tracer()
    assert not tracer.enabled
    start = time.perf_counter_ns()
    for _ in range(loops):
        with tracer.span("bench.noop", k=1):
            pass
        tracer.count("bench.noop")
    return (time.perf_counter_ns() - start) / loops


def _disabled_prov_check_ns(loops=200_000):
    """Per-site cost of a disabled provenance check (what add_rect pays)."""
    assert not get_recorder().enabled
    start = time.perf_counter_ns()
    for _ in range(loops):
        recorder = get_recorder()
        if recorder.enabled:  # pragma: no cover - disabled by assertion
            recorder.current()
    return (time.perf_counter_ns() - start) / loops


def _disabled_ledger_check_ns(loops=200_000):
    """Per-call cost of the one ``ledger_enabled()`` check an opted-out
    CLI command pays (REPRO_LEDGER=0: the whole ledger reduces to this)."""
    from repro.obs.ledger import ledger_enabled

    previous = os.environ.get("REPRO_LEDGER")
    os.environ["REPRO_LEDGER"] = "0"  # price the opted-out path itself
    try:
        assert not ledger_enabled()
        start = time.perf_counter_ns()
        for _ in range(loops):
            ledger_enabled()
        return (time.perf_counter_ns() - start) / loops
    finally:
        if previous is None:
            os.environ.pop("REPRO_LEDGER", None)
        else:
            os.environ["REPRO_LEDGER"] = previous


def _disabled_context_capture_ns(loops=200_000):
    """Per-call cost of ``TraceContext.capture`` on a disabled tracer —
    the whole price an untraced pool fan-out pays for propagation."""
    tracer = get_tracer()
    assert not tracer.enabled
    start = time.perf_counter_ns()
    for _ in range(loops):
        TraceContext.capture(tracer)
    return (time.perf_counter_ns() - start) / loops


def test_obs_overhead(tech, record, ledger_append):
    # Tracer disabled: the production default.
    disabled_s, report = _best_of(REPS, _workload, tech)
    assert report.drc_violations == 0

    # Tracer enabled with a stats sink: the `repro stats` / `--trace` mode.
    def enabled_run():
        tracer = Tracer(enabled=True)
        stats = StatsSink()
        tracer.add_sink(stats)
        with activate(tracer):
            _workload(tech)
        return stats

    enabled_s, stats = _best_of(REPS, enabled_run)
    enabled_overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s

    # How many instrumentation calls the workload actually makes: every
    # recorded span plus every counter increment batch is one call site hit.
    span_calls = sum(s.calls for s in stats.spans.values())
    counter_calls = sum(stats.counter_calls.values())
    instrumentation_calls = span_calls + counter_calls

    per_call_ns = _disabled_call_ns()
    est_disabled_overhead_pct = (
        100.0 * (instrumentation_calls * per_call_ns) / (disabled_s * 1e9)
    )

    # Provenance recorder: count the sites an enabled run actually hits,
    # then price the disabled check they all reduce to.
    recorder = ProvenanceRecorder(enabled=True)
    with recording(recorder):
        _workload(tech)
    prov_sites = recorder.stamps + recorder.entity_calls + recorder.builtin_calls
    prov_check_ns = _disabled_prov_check_ns()
    est_disabled_prov_overhead_pct = (
        100.0 * (prov_sites * prov_check_ns) / (disabled_s * 1e9)
    )

    # Run ledger: an opted-out CLI command pays exactly one env check.
    ledger_check_ns = _disabled_ledger_check_ns()
    est_disabled_ledger_overhead_pct = (
        100.0 * ledger_check_ns / (disabled_s * 1e9)
    )

    # Trace-context propagation: price one untraced capture per compaction
    # step — a heavy overestimate, since captures happen per pool *fan-out*
    # (one per parallel optimize call), not per step.
    context_capture_ns = _disabled_context_capture_ns()
    capture_sites = stats.counters.get("compact.steps", 1)
    est_disabled_context_overhead_pct = (
        100.0 * (capture_sites * context_capture_ns) / (disabled_s * 1e9)
    )

    report_json = {
        "workload": "Sec. 3 amplifier build + measure (DRC included)",
        "smoke": SMOKE,
        "reps": REPS,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_pct": enabled_overhead_pct,
        "instrumentation_calls": instrumentation_calls,
        "disabled_per_call_ns": per_call_ns,
        "est_disabled_overhead_pct": est_disabled_overhead_pct,
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
        "provenance_sites": prov_sites,
        "disabled_prov_check_ns": prov_check_ns,
        "est_disabled_prov_overhead_pct": est_disabled_prov_overhead_pct,
        "max_disabled_prov_overhead_pct": MAX_DISABLED_PROV_OVERHEAD_PCT,
        "disabled_ledger_check_ns": ledger_check_ns,
        "est_disabled_ledger_overhead_pct": est_disabled_ledger_overhead_pct,
        "max_disabled_ledger_overhead_pct": MAX_DISABLED_LEDGER_OVERHEAD_PCT,
        "context_capture_sites": capture_sites,
        "disabled_context_capture_ns": context_capture_ns,
        "est_disabled_context_overhead_pct": est_disabled_context_overhead_pct,
        "max_disabled_context_overhead_pct": MAX_DISABLED_CONTEXT_OVERHEAD_PCT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(report_json, indent=2) + "\n", encoding="utf-8"
    )

    record("t_obs_overhead", [
        "T-OBS — observability layer cost on the amplifier workload:",
        f"  tracer off  {disabled_s:7.3f}s   (production default)",
        f"  tracer on   {enabled_s:7.3f}s   ({enabled_overhead_pct:+.1f}%,"
        " stats sink attached)",
        f"  {instrumentation_calls} instrumentation hits ×"
        f" {per_call_ns:.0f} ns/disabled call"
        f" → {est_disabled_overhead_pct:.3f}% estimated disabled overhead",
        f"  acceptance: < {MAX_DISABLED_OVERHEAD_PCT}% disabled overhead",
        f"  {prov_sites} provenance sites ×"
        f" {prov_check_ns:.0f} ns/disabled check"
        f" → {est_disabled_prov_overhead_pct:.3f}% estimated disabled"
        " provenance overhead"
        f" (acceptance: < {MAX_DISABLED_PROV_OVERHEAD_PCT}%)",
        f"  1 opted-out ledger check × {ledger_check_ns:.0f} ns"
        f" → {est_disabled_ledger_overhead_pct:.6f}% estimated disabled"
        " ledger overhead"
        f" (acceptance: < {MAX_DISABLED_LEDGER_OVERHEAD_PCT}%)",
        f"  {capture_sites} untraced context captures ×"
        f" {context_capture_ns:.0f} ns"
        f" → {est_disabled_context_overhead_pct:.4f}% estimated untraced"
        " propagation overhead"
        f" (acceptance: < {MAX_DISABLED_CONTEXT_OVERHEAD_PCT}%)",
    ])
    ledger_append("BENCH_obs", report_json, wall_s=disabled_s)

    assert est_disabled_overhead_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled-tracer overhead {est_disabled_overhead_pct:.2f}% exceeds"
        f" {MAX_DISABLED_OVERHEAD_PCT}%"
    )
    assert est_disabled_prov_overhead_pct < MAX_DISABLED_PROV_OVERHEAD_PCT, (
        f"disabled-provenance overhead {est_disabled_prov_overhead_pct:.2f}%"
        f" exceeds {MAX_DISABLED_PROV_OVERHEAD_PCT}%"
    )
    assert est_disabled_ledger_overhead_pct < MAX_DISABLED_LEDGER_OVERHEAD_PCT, (
        f"opted-out ledger overhead {est_disabled_ledger_overhead_pct:.4f}%"
        f" exceeds {MAX_DISABLED_LEDGER_OVERHEAD_PCT}%"
    )
    assert est_disabled_context_overhead_pct < MAX_DISABLED_CONTEXT_OVERHEAD_PCT, (
        f"untraced context-capture overhead"
        f" {est_disabled_context_overhead_pct:.4f}%"
        f" exceeds {MAX_DISABLED_CONTEXT_OVERHEAD_PCT}%"
    )

"""F4 — Fig. 4: the layer fill-pattern legend.

Regenerates the legend (one patterned swatch per technology layer) and
benchmarks SVG rendering of a full module with those patterns.
"""

from pathlib import Path

import pytest

from repro.io import render_legend, render_svg
from repro.library import diff_pair
from repro.tech import FILL_PATTERNS


def test_f4_legend(tech, record, benchmark):
    legend = benchmark(lambda: render_legend(tech))
    used = {layer.fill_pattern for layer in tech.layers}
    lines = [
        "Fig. 4 — fill patterns for the layers:",
        f"{'layer':12s} {'kind':10s} {'pattern':12s}",
    ]
    for layer in tech.layers:
        lines.append(f"{layer.name:12s} {layer.kind.value:10s} {layer.fill_pattern:12s}")
    lines += [
        "",
        f"distinct patterns in use: {len(used)} of {len(FILL_PATTERNS)} available",
        "every layer renders with a distinguishable hatch/dot/solid pattern,",
        "reproducing the figure's legend role.",
    ]
    record("f4_patterns", lines)
    for layer in tech.layers:
        assert layer.name in legend
    out = Path(__file__).parent / "results" / "f4_legend.svg"
    out.write_text(legend, encoding="utf-8")


def test_f4_module_rendering(tech, record, benchmark):
    pair = diff_pair(tech, 10.0, 1.0)
    svg = benchmark(lambda: render_svg(pair))
    assert svg.count("<rect") >= len(pair.nonempty_rects)
    out = Path(__file__).parent / "results" / "f4_diff_pair.svg"
    out.write_text(svg, encoding="utf-8")
    record("f4_rendering", [
        "Fig. 4 companion — patterned rendering of the Fig. 6 diff pair:",
        f"  rects rendered: {len(pair.nonempty_rects)}",
        f"  SVG bytes:      {len(svg)}",
        f"  written to:     {out.name}",
    ])

"""T-PROFILE — sampled wall-clock profile of the amplifier build.

Runs the Sec. 3 amplifier build + measurement under the zero-dependency
sampling profiler (``repro.obs.SamplingProfiler``) and records the
top-functions table to ``benchmarks/results/t_profile_amplifier.txt``.
This is the repository's standing answer to "where does the time go?": the
table pins the current hotspot ranking (connectivity extraction leads — see
ROADMAP's compaction open item) so later optimisation PRs can diff against
it.  The folded stacks land next to the table for flamegraph tooling.

Acceptance: the profiler must actually catch the known hotspot —
``repro.db.nets.extract_connectivity`` appears in the sampled frames.

Run ``BENCH_SMOKE=1 pytest benchmarks/bench_profile_amplifier.py`` for the
CI variant (identical workload; one build is already only a few seconds).
"""

import time
from pathlib import Path

from repro.amplifier import build_amplifier, measure_amplifier
from repro.obs import SamplingProfiler

RESULTS_DIR = Path(__file__).parent / "results"

#: Sampling period — 2 ms gives ~2000 samples on a ~4 s workload.
INTERVAL_S = 0.002


def test_profile_amplifier(tech, record, ledger_append):
    profiler = SamplingProfiler(interval_s=INTERVAL_S)
    profiler.start()
    start = time.perf_counter()
    try:
        amp = build_amplifier(tech)
        report = measure_amplifier(amp)
    finally:
        profiler.stop()
    wall_s = time.perf_counter() - start
    assert report.drc_violations == 0

    folded = profiler.folded()
    assert profiler.sample_count > 50, "workload too fast to profile?"
    assert "extract_connectivity" in folded, (
        "the known hotspot never appeared in the sampled stacks"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    profiler.write_folded(RESULTS_DIR / "t_profile_amplifier.folded")

    table = profiler.top_table(top=15)
    record("t_profile_amplifier", [
        "T-PROFILE — sampled profile of amplifier build + measure:",
        *("  " + line for line in table.splitlines()),
        "folded stacks: benchmarks/results/t_profile_amplifier.folded",
        "(load in speedscope.app or flamegraph.pl; `repro --profile` makes",
        "the same artifact for any command)",
    ])
    ledger_append("BENCH_profile", {
        "wall_s": wall_s,
        "samples": profiler.sample_count,
        "interval_ms": INTERVAL_S * 1e3,
    }, wall_s=wall_s)

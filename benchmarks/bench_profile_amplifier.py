"""T-PROFILE — sampled wall-clock profile of the amplifier build.

Runs the Sec. 3 amplifier build + measurement under the zero-dependency
sampling profiler (``repro.obs.SamplingProfiler``) and records the
top-functions table to ``benchmarks/results/t_profile_amplifier.txt``.
This is the repository's standing answer to "where does the time go?": the
table pins the current hotspot ranking so later optimisation PRs can diff
against it.  The folded stacks land next to the table for flamegraph
tooling.

Acceptance: connectivity extraction — the pre-index top hotspot, now the
swept :class:`~repro.db.netindex.ConnectivityIndex` — must stay OUT of the
top-5 frames by self weight.  A reappearance means the index stopped being
shared or its sweeps regressed to quadratic.  Likewise the DRC checker's
``check_spacing`` / ``_Components`` (the post-netindex dominant hotspot,
now served by :class:`~repro.drc.index.DrcIndex`) must stay out of the
top-5 — its reappearance means ``run_drc`` fell back to the all-pairs
reference path.

Run ``BENCH_SMOKE=1 pytest benchmarks/bench_profile_amplifier.py`` for the
CI variant (identical workload; one build is already only a few seconds).
"""

import time
from pathlib import Path

from repro.amplifier import build_amplifier, measure_amplifier
from repro.obs import SamplingProfiler

RESULTS_DIR = Path(__file__).parent / "results"

#: Sampling period — 0.5 ms; the indexed DRC dropped the build+measure
#: to well under a second, so the workload repeats to keep the sample
#: count statistically useful.
INTERVAL_S = 0.0005
BUILDS = 3


def test_profile_amplifier(tech, record, ledger_append):
    profiler = SamplingProfiler(interval_s=INTERVAL_S)
    profiler.start()
    start = time.perf_counter()
    try:
        for _ in range(BUILDS):
            amp = build_amplifier(tech)
            report = measure_amplifier(amp)
    finally:
        profiler.stop()
    wall_s = time.perf_counter() - start
    assert report.drc_violations == 0

    assert profiler.sample_count > 50, "workload too fast to profile?"
    self_w, _ = profiler.totals()
    top5 = sorted(self_w, key=lambda name: -self_w[name])[:5]
    assert not any(
        "extract_connectivity" in name or "netindex" in name for name in top5
    ), f"connectivity extraction is a top-5 hotspot again: {top5}"
    assert not any(
        "check_spacing" in name or "_Components" in name for name in top5
    ), f"the all-pairs DRC path is a top-5 hotspot again: {top5}"

    RESULTS_DIR.mkdir(exist_ok=True)
    profiler.write_folded(RESULTS_DIR / "t_profile_amplifier.folded")

    table = profiler.top_table(top=15)
    record("t_profile_amplifier", [
        "T-PROFILE — sampled profile of amplifier build + measure:",
        *("  " + line for line in table.splitlines()),
        "folded stacks: benchmarks/results/t_profile_amplifier.folded",
        "(load in speedscope.app or flamegraph.pl; `repro --profile` makes",
        "the same artifact for any command)",
    ])
    ledger_append("BENCH_profile", {
        "wall_s": wall_s,
        "samples": profiler.sample_count,
        "interval_ms": INTERVAL_S * 1e3,
    }, wall_s=wall_s)

"""F10 — Fig. 10: module E, the centroidal cross-coupled differential pair.

Checks every quantitative claim the paper makes for this module: the dummy
inventory (8 middle, 4 left, 4 right), fully symmetric wiring with identical
crossings, ~180 lines of generator source, and a ~5 s build time (1996
hardware — we report ours for comparison).
"""

import inspect
import time

import pytest

from repro.db import net_is_connected
from repro.drc import run_drc
from repro.io import write_svg
from repro.library import centroid_cross_coupled_pair
from repro.route import count_crossings

PAPER_SOURCE_LINES = 180
PAPER_BUILD_SECONDS = 5.0


def test_f10_module_e(tech, record, benchmark):
    module = benchmark(lambda: centroid_cross_coupled_pair(tech))
    assert run_drc(module, include_latchup=False) == []

    bars = [r for r in module.rects_on("poly") if r.height > r.width * 2]
    dummies = [b for b in bars if b.net == "vss"]
    xs = sorted({(b.x1 + b.x2) // 2 for b in bars})
    span = xs[-1] - xs[0]
    left = [b for b in dummies if (b.x1 + b.x2) // 2 < xs[0] + span / 4]
    right = [b for b in dummies if (b.x1 + b.x2) // 2 > xs[-1] - span / 4]
    middle = [b for b in dummies if b not in left and b not in right]

    crossings = {
        net: count_crossings(module, net, ["via"])
        for net in ("gA", "gB", "outA", "outB")
    }

    import repro.library.centroid_pair as generator

    source_lines = len(
        [
            line
            for line in inspect.getsource(generator).splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
    )
    start = time.perf_counter()
    centroid_cross_coupled_pair(tech)
    build_seconds = time.perf_counter() - start

    dbu = tech.dbu_per_micron
    lines = [
        "Fig. 10 — module E (centroidal cross-coupled differential pair):",
        f"  gate fingers total:      {len(bars)} (2 rows × 16)",
        f"  dummies middle:          {len(middle)}   (paper: 8)",
        f"  dummies left:            {len(left)}   (paper: 4)",
        f"  dummies right:           {len(right)}   (paper: 4)",
        f"  via crossings gA/gB:     {crossings['gA']}/{crossings['gB']}"
        "   (paper: identical)",
        f"  via crossings outA/outB: {crossings['outA']}/{crossings['outB']}"
        "   (paper: identical)",
        f"  module size:             {module.width / dbu:.1f} × "
        f"{module.height / dbu:.1f} µm",
        f"  generator source lines:  {source_lines}"
        f"   (paper: ~{PAPER_SOURCE_LINES})",
        f"  build time:              {build_seconds * 1e3:.0f} ms"
        f"   (paper: {PAPER_BUILD_SECONDS:.0f} s on 1996 hardware)",
        "",
        "all Fig. 10 claims hold: exact dummy inventory, mirror-symmetric",
        "device geometry, matched pair wiring with identical crossings, and",
        "the source stays within the paper's order of magnitude while the",
        "build time is far below the paper's 5 s.",
    ]
    record("f10_module_e", lines)
    assert (len(middle), len(left), len(right)) == (8, 4, 4)
    assert crossings["gA"] == crossings["gB"]
    assert crossings["outA"] == crossings["outB"]
    assert build_seconds < PAPER_BUILD_SECONDS

    from pathlib import Path

    write_svg(module, Path(__file__).parent / "results" / "f10_module_e.svg",
              scale=0.008)


def test_f10_symmetry_verification(tech, record, benchmark):
    module = centroid_cross_coupled_pair(tech)
    bars = [r for r in module.rects_on("poly") if r.height > r.width * 2]
    axis2 = min(b.x1 for b in bars) + max(b.x2 for b in bars)

    def verify():
        a_set = {
            (axis2 - b.x2, b.y1, axis2 - b.x1, b.y2)
            for b in bars if b.net == "inp" or b.net == "gA"
        }
        b_set = {
            (b.x1, b.y1, b.x2, b.y2) for b in bars if b.net == "inn" or b.net == "gB"
        }
        return a_set == b_set

    assert benchmark(verify)
    for net in ("gA", "gB", "outA", "outB", "vss"):
        assert net_is_connected(module.rects, tech, net)
    record("f10_symmetry", [
        "Fig. 10 symmetry verification:",
        "  device A's finger geometry maps exactly onto device B's under",
        "  the module's vertical mirror axis; all five nets are electrically",
        "  connected through the symmetric wiring.",
    ])

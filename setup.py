"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments that lack the `wheel` package needed for PEP 660."""

from setuptools import setup

setup()

"""Axis-aligned rectangles — the only geometric primitive in the database.

The paper keeps the layout data structure efficient by converting every
polygon into "simple rectangular structures" (Sec. 2.1).  A :class:`Rect`
carries, besides its integer coordinates and layer:

* a *potential* (net name) — edges on the same potential are ignored during
  compaction and merged afterwards (Sec. 2.3, Fig. 5a);
* per-edge *fixed/variable* flags — a variable edge may be moved inward by the
  compactor to produce a denser layout (Sec. 2.3, Fig. 5b);
* a *no_overlap* property — "a special property for every rectangle can avoid
  undesired overlaps (parasitic capacitances)" (Sec. 2.3).

All coordinates are integers in database units (dbu); the technology file
defines the dbu-per-micron scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .direction import Axis, Direction


@dataclass
class EdgeProperty:
    """Mutable per-edge attributes of a rectangle.

    ``variable`` marks an edge the compactor may move inward ("shrink") when
    it is the critical edge blocking a compaction step.  ``min_coord`` /
    ``max_coord`` bound that movement; ``None`` means the owning object's
    rebuild logic decides the limit.
    """

    variable: bool = False
    min_coord: Optional[int] = None
    max_coord: Optional[int] = None

    def copy(self) -> "EdgeProperty":
        """Return an independent copy."""
        return EdgeProperty(self.variable, self.min_coord, self.max_coord)


class Rect:
    """An axis-aligned rectangle on a layer.

    Coordinates are canonical: ``x1 <= x2`` and ``y1 <= y2`` always hold;
    the constructor normalises swapped corners.  Degenerate (zero-area)
    rectangles are permitted — they arise transiently during subtraction —
    but most algorithms filter them out via :meth:`is_empty`.
    """

    __slots__ = ("x1", "y1", "x2", "y2", "layer", "net", "no_overlap", "_edges",
                 "prov")

    def __init__(
        self,
        x1: int,
        y1: int,
        x2: int,
        y2: int,
        layer: str,
        net: Optional[str] = None,
        no_overlap: bool = False,
        edges: Optional[Dict[Direction, EdgeProperty]] = None,
        prov: Optional[object] = None,
    ) -> None:
        if x2 < x1:
            x1, x2 = x2, x1
        if y2 < y1:
            y1, y2 = y2, y1
        self.x1 = int(x1)
        self.y1 = int(y1)
        self.x2 = int(x2)
        self.y2 = int(y2)
        self.layer = layer
        self.net = net
        self.no_overlap = no_overlap
        self._edges: Dict[Direction, EdgeProperty] = edges if edges is not None else {}
        #: Optional obs.Provenance record; never affects geometry or output.
        self.prov = prov

    # ------------------------------------------------------------------
    # basic metrics
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Horizontal extent."""
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        """Vertical extent."""
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        """Enclosed area in dbu²."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[int, int]:
        """Integer centre point (floor of the true centre)."""
        return ((self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2)

    @property
    def is_empty(self) -> bool:
        """True when the rectangle has zero area."""
        return self.x1 >= self.x2 or self.y1 >= self.y2

    def short_side(self) -> int:
        """Length of the shorter side (used by width rules)."""
        return min(self.width, self.height)

    # ------------------------------------------------------------------
    # edge access
    # ------------------------------------------------------------------
    def edge(self, direction: Direction) -> EdgeProperty:
        """Return (creating lazily) the property record of an edge."""
        prop = self._edges.get(direction)
        if prop is None:
            prop = EdgeProperty()
            self._edges[direction] = prop
        return prop

    def edge_coord(self, direction: Direction) -> int:
        """Coordinate of the edge facing *direction*."""
        if direction is Direction.NORTH:
            return self.y2
        if direction is Direction.SOUTH:
            return self.y1
        if direction is Direction.EAST:
            return self.x2
        return self.x1

    def set_edge_coord(self, direction: Direction, coord: int) -> None:
        """Move the edge facing *direction* to *coord* (may invert the rect)."""
        if direction is Direction.NORTH:
            self.y2 = coord
        elif direction is Direction.SOUTH:
            self.y1 = coord
        elif direction is Direction.EAST:
            self.x2 = coord
        else:
            self.x1 = coord

    def set_variable(self, *directions: Direction) -> "Rect":
        """Mark edges as variable; with no arguments, mark all four."""
        targets: Iterable[Direction] = directions or tuple(Direction)
        for direction in targets:
            self.edge(direction).variable = True
        return self

    def set_fixed(self, *directions: Direction) -> "Rect":
        """Mark edges as fixed; with no arguments, mark all four."""
        targets: Iterable[Direction] = directions or tuple(Direction)
        for direction in targets:
            self.edge(direction).variable = False
        return self

    def edge_variable(self, direction: Direction) -> bool:
        """True when the edge facing *direction* is marked variable."""
        prop = self._edges.get(direction)
        return bool(prop and prop.variable)

    # ------------------------------------------------------------------
    # spatial predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True when interiors overlap (edge-touching does not count)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least a point."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlapping region, or ``None`` when interiors are disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 >= x2 or y1 >= y2:
            return None
        return Rect(x1, y1, x2, y2, self.layer, self.net)

    def contains(self, other: "Rect") -> bool:
        """True when *other* lies completely inside (or on) this rect."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def contains_point(self, x: int, y: int) -> bool:
        """True when (x, y) lies inside or on the boundary."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def span(self, axis: Axis) -> Tuple[int, int]:
        """Interval covered along *axis*."""
        if axis is Axis.HORIZONTAL:
            return (self.x1, self.x2)
        return (self.y1, self.y2)

    def spans_overlap(self, other: "Rect", axis: Axis, margin: int = 0) -> bool:
        """True when projections onto *axis*, grown by *margin*, overlap."""
        a1, a2 = self.span(axis)
        b1, b2 = other.span(axis)
        return a1 - margin < b2 and b1 - margin < a2

    def distance(self, other: "Rect") -> int:
        """Chebyshev-style separation: max of per-axis gaps, 0 if touching."""
        dx = max(self.x1 - other.x2, other.x1 - self.x2, 0)
        dy = max(self.y1 - other.y2, other.y1 - self.y2, 0)
        return max(dx, dy)

    # ------------------------------------------------------------------
    # constructive operations
    # ------------------------------------------------------------------
    def translate(self, dx: int, dy: int) -> "Rect":
        """Move in place (edge-movement bounds move along); returns self."""
        self.x1 += dx
        self.x2 += dx
        self.y1 += dy
        self.y2 += dy
        for direction, prop in self._edges.items():
            shift = dx if direction.axis is Axis.HORIZONTAL else dy
            if prop.min_coord is not None:
                prop.min_coord += shift
            if prop.max_coord is not None:
                prop.max_coord += shift
        return self

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return a moved copy."""
        return self.copy().translate(dx, dy)

    def grown(self, margin: int) -> "Rect":
        """Return a copy expanded by *margin* on every side."""
        return Rect(
            self.x1 - margin,
            self.y1 - margin,
            self.x2 + margin,
            self.y2 + margin,
            self.layer,
            self.net,
            self.no_overlap,
        )

    def copy(self) -> "Rect":
        """Deep copy including edge properties (shares the provenance record)."""
        return Rect(
            self.x1,
            self.y1,
            self.x2,
            self.y2,
            self.layer,
            self.net,
            self.no_overlap,
            {d: p.copy() for d, p in self._edges.items()},
            self.prov,
        )

    def merged(self, other: "Rect") -> "Rect":
        """Bounding box of both rects on this rect's layer/net."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
            self.layer,
            self.net,
            self.no_overlap,
        )

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """(x1, y1, x2, y2)."""
        return (self.x1, self.y1, self.x2, self.y2)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.as_tuple() == other.as_tuple()
            and self.layer == other.layer
            and self.net == other.net
        )

    def __hash__(self) -> int:
        return hash((self.as_tuple(), self.layer, self.net))

    def __repr__(self) -> str:
        net = f" net={self.net!r}" if self.net else ""
        return f"Rect({self.x1}, {self.y1}, {self.x2}, {self.y2}, {self.layer!r}{net})"


@dataclass(frozen=True)
class Point:
    """An integer lattice point (used by routers)."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a moved copy."""
        return Point(self.x + dx, self.y + dy)


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Bounding box of a rect collection on the pseudo-layer ``"bbox"``.

    Returns ``None`` for an empty collection.
    """
    rects = [r for r in rects if not r.is_empty]
    if not rects:
        return None
    return Rect(
        min(r.x1 for r in rects),
        min(r.y1 for r in rects),
        max(r.x2 for r in rects),
        max(r.y2 for r in rects),
        "bbox",
    )

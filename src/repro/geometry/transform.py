"""Orthogonal transforms (translation, mirroring, 90°-multiple rotation).

Module generators compose matched structures by mirroring and rotating
sub-objects — e.g. the symmetric current mirror of block B or the
cross-coupled arrangements of blocks C and E.  Only the eight orthogonal
orientations are supported, matching the rectangle-only database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .direction import Axis, Direction
from .rect import Rect

#: The eight orthogonal orientations as (rotation quarter-turns, mirror-x flag).
ORIENTATIONS = tuple((rot, mir) for mir in (False, True) for rot in range(4))


@dataclass(frozen=True)
class Transform:
    """Mirror-then-rotate-then-translate orthogonal transform.

    Application order: optional mirror about the y axis (x → −x), then
    ``rotation`` quarter-turns counter-clockwise about the origin, then a
    translation by (dx, dy).
    """

    dx: int = 0
    dy: int = 0
    rotation: int = 0
    mirror_x: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "rotation", self.rotation % 4)

    def apply_point(self, x: int, y: int) -> Tuple[int, int]:
        """Transform a single point."""
        if self.mirror_x:
            x = -x
        for _ in range(self.rotation):
            x, y = -y, x
        return (x + self.dx, y + self.dy)

    def apply_rect(self, rect: Rect) -> Rect:
        """Return a transformed copy of *rect* (edge properties remapped).

        Per-edge movement bounds (min/max coordinates) are transformed like
        coordinates: a mirrored edge's inward-limit swaps between min and
        max as the coordinate sense flips.
        """
        ax, ay = self.apply_point(rect.x1, rect.y1)
        bx, by = self.apply_point(rect.x2, rect.y2)
        out = Rect(
            min(ax, bx),
            min(ay, by),
            max(ax, bx),
            max(ay, by),
            rect.layer,
            rect.net,
            rect.no_overlap,
        )
        for direction in Direction:
            prop = rect.edge(direction).copy()
            image = self.apply_direction(direction)
            bounds = []
            for value in (prop.min_coord, prop.max_coord):
                if value is None:
                    bounds.append(None)
                    continue
                if direction.axis is Axis.HORIZONTAL:
                    mapped = self.apply_point(value, 0)
                else:
                    mapped = self.apply_point(0, value)
                bounds.append(
                    mapped[0] if image.axis is Axis.HORIZONTAL else mapped[1]
                )
            lo, hi = bounds
            if lo is not None and hi is not None and lo > hi:
                lo, hi = hi, lo
            elif lo is not None and hi is None and self._flips_axis_sense(direction, image):
                lo, hi = None, lo
            elif hi is not None and lo is None and self._flips_axis_sense(direction, image):
                lo, hi = hi, None
            prop.min_coord, prop.max_coord = lo, hi
            out._edges[image] = prop
        return out

    def _flips_axis_sense(self, direction: "Direction", image: "Direction") -> bool:
        """True when the transform reverses the coordinate sense of the edge."""
        return direction.is_positive != image.is_positive

    def apply_direction(self, direction: Direction) -> Direction:
        """Image of a compass direction under this transform."""
        dx, dy = direction.dx, direction.dy
        if self.mirror_x:
            dx = -dx
        for _ in range(self.rotation):
            dx, dy = -dy, dx
        for candidate in Direction:
            if candidate.dx == dx and candidate.dy == dy:
                return candidate
        raise AssertionError("unreachable: direction image must be a compass direction")

    def then(self, other: "Transform") -> "Transform":
        """Composition: first self, then *other*."""
        ox, oy = other.apply_point(self.dx, self.dy)
        rotation = other.rotation + (-self.rotation if other.mirror_x else self.rotation)
        return Transform(
            dx=ox,
            dy=oy,
            rotation=rotation % 4,
            mirror_x=self.mirror_x != other.mirror_x,
        )

    @classmethod
    def translation(cls, dx: int, dy: int) -> "Transform":
        """Pure translation."""
        return cls(dx=dx, dy=dy)

    @classmethod
    def mirror_about_x(cls, axis_y: int = 0) -> "Transform":
        """Mirror about the horizontal line y = axis_y (y → 2·axis_y − y)."""
        # mirror_x + two quarter turns maps (x, y) -> (x, -y).
        return cls(dx=0, dy=2 * axis_y, rotation=2, mirror_x=True)

    @classmethod
    def mirror_about_y(cls, axis_x: int = 0) -> "Transform":
        """Mirror about the vertical line x = axis_x (x → 2·axis_x − x)."""
        return cls(dx=2 * axis_x, dy=0, rotation=0, mirror_x=True)

    @classmethod
    def rotate180(cls, cx: int = 0, cy: int = 0) -> "Transform":
        """Rotate 180° about (cx, cy)."""
        return cls(dx=2 * cx, dy=2 * cy, rotation=2, mirror_x=False)

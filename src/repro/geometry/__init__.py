"""Geometry kernel: rectangles, directions, transforms, region algebra."""

from .direction import EAST, NORTH, SOUTH, WEST, Axis, Direction
from .polygon import decompose_rectilinear, outline_area
from .rect import EdgeProperty, Point, Rect, bounding_box
from .region import (
    covered_by,
    merge_touching,
    overlap_classification,
    subtract,
    subtract_many,
    union_area,
)
from .transform import ORIENTATIONS, Transform

__all__ = [
    "Axis",
    "Direction",
    "NORTH",
    "SOUTH",
    "EAST",
    "WEST",
    "EdgeProperty",
    "Point",
    "Rect",
    "bounding_box",
    "covered_by",
    "merge_touching",
    "overlap_classification",
    "subtract",
    "subtract_many",
    "union_area",
    "decompose_rectilinear",
    "outline_area",
    "ORIENTATIONS",
    "Transform",
]

"""Rectangle-set algebra: subtraction, union area, coverage.

The subtraction kernel implements the mechanism of the paper's latch-up check
(Fig. 1): a temporary rectangle is subtracted from a solid rectangle; "only
the overlapping part is cut while the remaining part of the rectangle is still
stored".  Fig. 1 enumerates the 16 cases — four horizontal overlap classes
crossed with four vertical overlap classes — and :func:`subtract` produces the
correct remainder (zero to four pieces) for every one of them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .rect import Rect


def subtract(solid: Rect, cutter: Rect) -> List[Rect]:
    """Return the parts of *solid* not covered by *cutter*.

    The remainder is a list of zero to four disjoint rectangles on the layer
    and net of *solid*.  This is the workhorse of the latch-up rule: each
    remaining piece "is converted to single rectangles that have to be
    enclosed by other temporary rectangles to fulfill the rule".
    """
    overlap = solid.intersection(cutter)
    if overlap is None:
        return [solid.copy()]

    pieces: List[Rect] = []
    # Slab below the overlap (full width of solid).
    if solid.y1 < overlap.y1:
        pieces.append(Rect(solid.x1, solid.y1, solid.x2, overlap.y1, solid.layer, solid.net))
    # Slab above the overlap (full width of solid).
    if overlap.y2 < solid.y2:
        pieces.append(Rect(solid.x1, overlap.y2, solid.x2, solid.y2, solid.layer, solid.net))
    # Left and right slivers at the overlap's vertical span.
    if solid.x1 < overlap.x1:
        pieces.append(Rect(solid.x1, overlap.y1, overlap.x1, overlap.y2, solid.layer, solid.net))
    if overlap.x2 < solid.x2:
        pieces.append(Rect(overlap.x2, overlap.y1, solid.x2, overlap.y2, solid.layer, solid.net))
    return pieces


def subtract_many(solids: Iterable[Rect], cutters: Sequence[Rect]) -> List[Rect]:
    """Subtract every cutter from every solid, keeping all remainders.

    This is exactly the latch-up examination loop: after examining all
    enclosing (temporary) rectangles, an empty result means the rule holds.
    """
    remaining: List[Rect] = [s.copy() for s in solids if not s.is_empty]
    for cutter in cutters:
        next_remaining: List[Rect] = []
        for piece in remaining:
            next_remaining.extend(subtract(piece, cutter))
        remaining = [r for r in next_remaining if not r.is_empty]
        if not remaining:
            break
    return remaining


def covered_by(solids: Iterable[Rect], covers: Sequence[Rect]) -> bool:
    """True when the union of *covers* completely contains every solid."""
    return not subtract_many(solids, covers)


def overlap_classification(solid: Rect, cutter: Rect) -> Tuple[int, int]:
    """Classify the overlap the way Fig. 1 tabulates it.

    Returns ``(horizontal_case, vertical_case)``, each in 0..3:

    ======  ================================================================
    case    meaning along the axis
    ======  ================================================================
    0       cutter covers the solid's full span
    1       cutter covers the low end, solid sticks out on the high side
    2       cutter covers the high end, solid sticks out on the low side
    3       cutter is interior: solid sticks out on both sides
    ======  ================================================================

    The 4×4 grid of these cases is the paper's Fig. 1.  Classification is only
    defined when the rectangles actually overlap; ``ValueError`` otherwise.
    """
    if solid.intersection(cutter) is None:
        raise ValueError("rectangles do not overlap; Fig. 1 classifies overlaps only")

    def axis_case(s1: int, s2: int, c1: int, c2: int) -> int:
        covers_low = c1 <= s1
        covers_high = c2 >= s2
        if covers_low and covers_high:
            return 0
        if covers_low:
            return 1
        if covers_high:
            return 2
        return 3

    return (
        axis_case(solid.x1, solid.x2, cutter.x1, cutter.x2),
        axis_case(solid.y1, solid.y2, cutter.y1, cutter.y2),
    )


def union_area(rects: Iterable[Rect]) -> int:
    """Area of the union of a rect collection (overlaps counted once).

    Implemented as a coordinate-compressed sweep over x slabs; adequate for
    module-sized rect counts (the environment keeps modules small by design).
    """
    boxes = [r for r in rects if not r.is_empty]
    if not boxes:
        return 0
    xs = sorted({x for r in boxes for x in (r.x1, r.x2)})
    total = 0
    for left, right in zip(xs, xs[1:]):
        if left == right:
            continue
        spans = sorted(
            (r.y1, r.y2) for r in boxes if r.x1 <= left and r.x2 >= right
        )
        covered = 0
        cur_lo: Optional[int] = None
        cur_hi: Optional[int] = None
        for lo, hi in spans:
            if cur_hi is None or lo > cur_hi:
                if cur_hi is not None:
                    covered += cur_hi - cur_lo  # type: ignore[operator]
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        if cur_hi is not None:
            covered += cur_hi - cur_lo  # type: ignore[operator]
        total += covered * (right - left)
    return total


def merge_touching(rects: Sequence[Rect]) -> List[Rect]:
    """Greedily merge same-layer, same-net rects whose union is a rectangle.

    Two rectangles merge when they share layer and net, touch or overlap, and
    their bounding box equals their union (i.e. they are aligned slabs).  The
    compactor uses this to realise the paper's "rectangles on the same
    potential are merged" auto-connection feature.
    """
    out: List[Rect] = [r.copy() for r in rects]
    changed = True
    while changed:
        changed = False
        for i in range(len(out)):
            for j in range(i + 1, len(out)):
                a, b = out[i], out[j]
                if a.layer != b.layer or a.net != b.net:
                    continue
                if not a.touches_or_intersects(b):
                    continue
                if not _union_is_rect(a, b):
                    continue
                out[i] = a.merged(b)
                del out[j]
                changed = True
                break
            if changed:
                break
    return out


def _union_is_rect(a: Rect, b: Rect) -> bool:
    """True when a ∪ b is itself a rectangle (aligned and touching)."""
    if a.contains(b) or b.contains(a):
        return True
    if a.x1 == b.x1 and a.x2 == b.x2:
        return a.y1 <= b.y2 and b.y1 <= a.y2
    if a.y1 == b.y1 and a.y2 == b.y2:
        return a.x1 <= b.x2 and b.x1 <= a.x2
    return False

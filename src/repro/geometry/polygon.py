"""Rectilinear polygon decomposition into rectangles.

"To keep the layout data structure efficient, polygons are converted into
simple rectangular structures" (Sec. 2.1).  The environment never stores
polygons; any rectilinear outline handed to it (e.g. from an imported cell) is
sliced into horizontal slabs first.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .rect import Rect

Vertex = Tuple[int, int]


def decompose_rectilinear(vertices: Sequence[Vertex], layer: str, net: str = None) -> List[Rect]:
    """Slice a simple rectilinear polygon into horizontal slab rectangles.

    *vertices* lists the polygon boundary in order (either orientation);
    consecutive vertices must differ in exactly one coordinate.  The result is
    a list of disjoint rectangles whose union is the polygon interior.

    Raises ``ValueError`` for non-rectilinear or degenerate input.
    """
    if len(vertices) < 4:
        raise ValueError("a rectilinear polygon needs at least 4 vertices")
    pts = [tuple(v) for v in vertices]
    if pts[0] == pts[-1]:
        pts = pts[:-1]
    for (x1, y1), (x2, y2) in zip(pts, pts[1:] + pts[:1]):
        if (x1 != x2) == (y1 != y2):
            raise ValueError(
                f"edge ({x1},{y1})-({x2},{y2}) is not axis-parallel or is degenerate"
            )

    ys = sorted({y for _, y in pts})
    rects: List[Rect] = []
    for y_lo, y_hi in zip(ys, ys[1:]):
        y_mid = (y_lo + y_hi) / 2.0
        crossings = _vertical_crossings(pts, y_mid)
        for x_lo, x_hi in zip(crossings[0::2], crossings[1::2]):
            rects.append(Rect(x_lo, y_lo, x_hi, y_hi, layer, net))
    return _coalesce_vertically(rects)


def _vertical_crossings(pts: List[Vertex], y: float) -> List[int]:
    """Sorted x coordinates of vertical edges crossing the horizontal line."""
    xs: List[int] = []
    for (x1, y1), (x2, y2) in zip(pts, pts[1:] + pts[:1]):
        if x1 == x2 and min(y1, y2) < y < max(y1, y2):
            xs.append(x1)
    xs.sort()
    if len(xs) % 2:
        raise ValueError("polygon boundary is self-intersecting or not closed")
    return xs


def _coalesce_vertically(rects: List[Rect]) -> List[Rect]:
    """Merge vertically adjacent slabs with identical x spans."""
    rects = sorted(rects, key=lambda r: (r.x1, r.x2, r.y1))
    out: List[Rect] = []
    for rect in rects:
        if (
            out
            and out[-1].x1 == rect.x1
            and out[-1].x2 == rect.x2
            and out[-1].y2 == rect.y1
            and out[-1].layer == rect.layer
            and out[-1].net == rect.net
        ):
            out[-1] = out[-1].merged(rect)
        else:
            out.append(rect)
    return out


def outline_area(vertices: Sequence[Vertex]) -> int:
    """Area of a simple rectilinear polygon via the shoelace formula."""
    pts = [tuple(v) for v in vertices]
    if pts[0] == pts[-1]:
        pts = pts[:-1]
    doubled = 0
    for (x1, y1), (x2, y2) in zip(pts, pts[1:] + pts[:1]):
        doubled += x1 * y2 - x2 * y1
    return abs(doubled) // 2

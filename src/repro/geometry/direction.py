"""Compass directions used throughout the environment.

The paper's compaction calls are written as ``compact(polycon, SOUTH, "poly")``;
this module defines the four compass directions with the vector arithmetic the
compactor and primitives need.  NORTH is +y, EAST is +x.
"""

from __future__ import annotations

import enum


class Axis(enum.Enum):
    """Coordinate axis; HORIZONTAL means motion along x."""

    HORIZONTAL = "x"
    VERTICAL = "y"

    @property
    def other(self) -> "Axis":
        """Return the perpendicular axis."""
        if self is Axis.HORIZONTAL:
            return Axis.VERTICAL
        return Axis.HORIZONTAL


class Direction(enum.Enum):
    """One of the four compass directions.

    Members carry the unit vector of motion: compacting an object SOUTH moves
    it toward negative y until it abuts the existing structure.
    """

    NORTH = (0, 1)
    SOUTH = (0, -1)
    EAST = (1, 0)
    WEST = (-1, 0)

    @property
    def dx(self) -> int:
        """x component of the unit vector."""
        return self.value[0]

    @property
    def dy(self) -> int:
        """y component of the unit vector."""
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        """Return the direction pointing the other way."""
        return _OPPOSITE[self]

    @property
    def axis(self) -> Axis:
        """Axis of motion for this direction."""
        if self.dx:
            return Axis.HORIZONTAL
        return Axis.VERTICAL

    @property
    def is_positive(self) -> bool:
        """True for NORTH and EAST (motion toward +coordinates)."""
        return self.dx + self.dy > 0

    @property
    def perpendiculars(self) -> tuple["Direction", "Direction"]:
        """The two directions orthogonal to this one."""
        if self.axis is Axis.HORIZONTAL:
            return (Direction.SOUTH, Direction.NORTH)
        return (Direction.WEST, Direction.EAST)

    @classmethod
    def from_name(cls, name: str) -> "Direction":
        """Parse a direction from its (case-insensitive) name.

        The PLDL interpreter uses this to resolve the bare words ``NORTH`` /
        ``SOUTH`` / ``EAST`` / ``WEST`` appearing in module source code.
        """
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown direction {name!r}") from None


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

#: Convenience aliases matching the paper's source-code examples.
NORTH = Direction.NORTH
SOUTH = Direction.SOUTH
EAST = Direction.EAST
WEST = Direction.WEST

"""Baseline: general constraint-graph compaction (the paper's refs [17, 18]).

"In contrast to general compaction approaches, the compaction is done
successively ... no general edge graph must be created.  This speeds up the
compaction time."  To measure that claim we implement the general approach:
all objects are placed at once, a full constraint graph over every rect pair
is built, and a longest-path solve assigns each object its packed position.

The result quality is comparable (both respect the same separation rules);
the interesting difference is runtime scaling, which
``benchmarks/bench_compaction_speed.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compact.separation import pair_travel, required_spacing
from ..db import LayoutObject
from ..geometry import Direction, Rect, bounding_box
from ..obs import get_tracer
from ..tech import Technology


@dataclass
class GraphStats:
    """Size of the constraint graph a solve produced."""

    nodes: int
    edges: int
    pair_checks: int


class GraphCompactor:
    """1-D constraint-graph compactor over whole objects.

    Objects keep their internal geometry rigid; the solver packs them along
    one axis.  Every rect pair between different objects is examined for a
    separation constraint — the "general edge graph" of the classical
    approach.
    """

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self.last_stats = GraphStats(0, 0, 0)

    def compact(
        self,
        objects: Sequence[LayoutObject],
        direction: Direction = Direction.WEST,
        ignore_layers: Sequence[str] = (),
    ) -> LayoutObject:
        """Pack *objects* along *direction*'s axis; returns the merged result.

        Object 0 is the anchor; every other object is pushed as far toward
        *direction* as the full constraint graph allows.  The DAG order is
        the given object order (a valid topological order for packing).
        """
        if not objects:
            raise ValueError("nothing to compact")
        ignore = frozenset(ignore_layers)

        # Node 0 pinned at its current position; solve positions greedily in
        # topological (input) order: the longest-path relaxation for a DAG.
        offsets: List[int] = [0] * len(objects)
        pair_checks = 0
        edges = 0
        for j in range(1, len(objects)):
            best_travel: Optional[int] = None
            for i in range(j):
                for fixed in objects[i].nonempty_rects:
                    # The already-placed object sits at its solved position.
                    shifted_fixed = fixed.translated(
                        direction.dx * offsets[i],
                        direction.dy * offsets[i],
                    )
                    for moving in objects[j].nonempty_rects:
                        pair_checks += 1
                        spacing = required_spacing(
                            self.tech, moving, shifted_fixed, ignore
                        )
                        if spacing is None:
                            continue
                        travel = pair_travel(
                            moving, shifted_fixed, direction, spacing
                        )
                        if travel is None:
                            continue
                        edges += 1
                        if best_travel is None or travel < best_travel:
                            best_travel = travel
            if best_travel is None:
                # No edge constrains the object: abut its bounding box flush
                # with the already-placed group, matching the successive
                # compactor's fallback (otherwise an unconstrained object
                # stays at its spread position and the packings diverge).
                placed: List[Rect] = []
                for i in range(j):
                    for rect in objects[i].nonempty_rects:
                        placed.append(rect.translated(
                            direction.dx * offsets[i],
                            direction.dy * offsets[i],
                        ))
                group = bounding_box(placed)
                obj_box = bounding_box(objects[j].nonempty_rects)
                if group is None or obj_box is None:
                    best_travel = 0
                else:
                    sign = 1 if direction.is_positive else -1
                    lead = obj_box.edge_coord(direction)
                    face = group.edge_coord(direction.opposite)
                    best_travel = (face - lead) * sign
            offsets[j] = best_travel

        result = LayoutObject("graph_compacted", self.tech)
        for obj, travel in zip(objects, offsets):
            moved = obj.copy()
            moved.translate(direction.dx * travel, direction.dy * travel)
            result.merge(moved)
        self.last_stats = GraphStats(len(objects), edges, pair_checks)
        tracer = get_tracer()
        tracer.count("baseline.graph.solves")
        tracer.count("baseline.graph.pair_checks", pair_checks)
        tracer.count("baseline.graph.edges", edges)
        return result

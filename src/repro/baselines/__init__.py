"""Baselines the paper compares against, implemented for real.

* :mod:`coordinate_generator` — the coordinate-level module-generation style
  of the paper's reference [11] (code-length comparison, Sec. 2.5).
* :mod:`graph_compactor` — the general constraint-graph compaction of
  references [17, 18] (compaction-speed comparison, Sec. 2.3).
"""

from .coordinate_generator import (
    coordinate_contact_row,
    coordinate_diff_pair,
    source_line_count,
)
from .graph_compactor import GraphCompactor, GraphStats

__all__ = [
    "coordinate_contact_row",
    "coordinate_diff_pair",
    "source_line_count",
    "GraphCompactor",
    "GraphStats",
]

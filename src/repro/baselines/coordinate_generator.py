"""Baseline: coordinate-level module generation (the paper's reference [11]).

"Former methods for equivalent generation by describing each rectangle with
its exact coordinates needed a multiple of this source code and were much
more difficult to construct and to maintain" (Sec. 2.5).

This module IS that former method, written honestly: every rectangle of a
contact row and of the simple differential pair is computed from explicit
coordinate arithmetic, with every design-rule value looked up and applied by
hand at each use site.  The code-length benchmark counts these lines against
the PLDL sources in :mod:`repro.library`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..db import LayoutObject
from ..geometry import Rect
from ..tech import Technology


def coordinate_contact_row(
    tech: Technology,
    layer: str,
    w_um: Optional[float] = None,
    l_um: Optional[float] = None,
    net: Optional[str] = None,
    name: str = "CoordContactRow",
) -> LayoutObject:
    """Contact row drawn rectangle by rectangle with explicit coordinates."""
    obj = LayoutObject(name, tech)

    cut = tech.cut_size("contact")
    cut_space = tech.min_space("contact", "contact")
    enc_layer = tech.enclosure(layer, "contact")
    enc_metal = tech.enclosure("metal1", "contact")
    min_w_layer = tech.min_width(layer)
    min_w_metal = tech.min_width("metal1")

    # Height: the requested width, but never below what one contact needs.
    height = tech.um(w_um) if w_um is not None else min_w_layer
    needed_h = cut + 2 * max(enc_layer, enc_metal)
    if height < needed_h:
        height = needed_h
    # Length: the requested length, but never below one contact either.
    length = tech.um(l_um) if l_um is not None else min_w_layer
    needed_l = cut + 2 * max(enc_layer, enc_metal)
    if length < needed_l:
        length = needed_l

    x1 = -(length // 2)
    y1 = -(height // 2)
    x2 = x1 + length
    y2 = y1 + height
    obj.add_rect(Rect(x1, y1, x2, y2, layer, net))

    # Metal: inside the base layer; metal1 has no enclosure rule against the
    # base layer here, but it must itself enclose the contacts, so it gets
    # the same extent as the base rectangle.
    mx1, my1, mx2, my2 = x1, y1, x2, y2
    if mx2 - mx1 < min_w_metal:
        grow = (min_w_metal - (mx2 - mx1) + 1) // 2
        mx1 -= grow
        mx2 += grow
    if my2 - my1 < min_w_metal:
        grow = (min_w_metal - (my2 - my1) + 1) // 2
        my1 -= grow
        my2 += grow
    obj.add_rect(Rect(mx1, my1, mx2, my2, "metal1", net))

    # Contacts: maximum equidistant array inside both enclosures.
    ax1 = max(x1 + enc_layer, mx1 + enc_metal)
    ay1 = max(y1 + enc_layer, my1 + enc_metal)
    ax2 = min(x2 - enc_layer, mx2 - enc_metal)
    ay2 = min(y2 - enc_layer, my2 - enc_metal)
    for (cx, cy) in _grid_positions(ax1, ay1, ax2, ay2, cut, cut_space):
        obj.add_rect(Rect(cx, cy, cx + cut, cy + cut, "contact", net))
    return obj


def _grid_positions(
    x1: int, y1: int, x2: int, y2: int, cut: int, space: int
) -> List[Tuple[int, int]]:
    """Equidistant cut origins: max count along each axis, ends flush."""
    positions: List[Tuple[int, int]] = []
    xs = _axis_positions(x1, x2, cut, space)
    ys = _axis_positions(y1, y2, cut, space)
    for cy in ys:
        for cx in xs:
            positions.append((cx, cy))
    return positions


def _axis_positions(lo: int, hi: int, cut: int, space: int) -> List[int]:
    extent = hi - lo
    if extent < cut:
        return []
    count = 1 + (extent - cut) // (cut + space)
    if count == 1:
        return [lo + (extent - cut) // 2]
    span = extent - cut
    return [lo + round(i * span / (count - 1)) for i in range(count)]


def coordinate_diff_pair(
    tech: Technology,
    w_um: float,
    l_um: float,
    name: str = "CoordDiffPair",
) -> LayoutObject:
    """The simple MOS differential pair with every coordinate spelled out.

    Reproduces the structure of Fig. 6b — two vertical-gate transistors,
    three diffusion contact columns, two poly contact rows — by computing
    each placement from the design rules by hand.
    """
    obj = LayoutObject(name, tech)

    w = tech.um(w_um)
    length = tech.um(l_um)
    endcap = tech.extension("poly", "pdiff")
    sd_ext = tech.extension("pdiff", "poly")
    cut = tech.cut_size("contact")
    cut_space = tech.min_space("contact", "contact")
    enc_pdiff = tech.enclosure("pdiff", "contact")
    enc_poly = tech.enclosure("poly", "contact")
    enc_metal = tech.enclosure("metal1", "contact")
    space_contact_poly = tech.min_space("poly", "contact")
    space_contact_pdiff = tech.min_space("contact", "pdiff")
    space_poly_pdiff = tech.min_space("poly", "pdiff")

    # Column width: one contact plus the diffusion enclosure on both sides.
    col_w = cut + 2 * enc_pdiff
    # Horizontal pitch: column, spacing to gate, gate, spacing to column...
    gap = space_contact_poly + enc_pdiff - 0  # contact-to-gate sets the gap
    # x coordinates, left to right: col0 gate0 col1 gate1 col2.
    x = 0
    col_x: List[int] = []
    gate_x: List[int] = []
    for index in range(2):
        col_x.append(x)
        x += col_w
        x += gap - enc_pdiff + 0  # contact spacing to gate poly
        gate_x.append(x)
        x += length
        x += gap - enc_pdiff
    col_x.append(x)
    x += col_w

    # Diffusion body: one rectangle under everything, height = channel width.
    body_x1 = col_x[0] - 0
    body_x2 = col_x[2] + col_w
    body_y1 = -(w // 2)
    body_y2 = body_y1 + w
    obj.add_rect(Rect(body_x1, body_y1, body_x2, body_y2, "pdiff"))
    # Check the source/drain extension beyond each gate explicitly.
    for gx in gate_x:
        if gx - body_x1 < sd_ext or body_x2 - (gx + length) < sd_ext:
            raise AssertionError("hand-computed SD extension violated")

    # Gates: vertical poly bars with endcaps.
    nets = ("g1", "g2")
    for gx, gnet in zip(gate_x, nets):
        obj.add_rect(
            Rect(gx, body_y1 - endcap, gx + length, body_y2 + endcap, "poly", gnet)
        )

    # Diffusion contact columns with their metal and cut arrays.  The poly
    # contact rows sit diagonally adjacent to the column metals, so the
    # metal1 spacing rule forces the column metal tops DOWN by hand — the
    # very adjustment the environment's variable edges make automatically
    # (Fig. 5b), and a fine example of why coordinate-level generators are
    # "much more difficult to construct and to maintain".
    space_metal = tech.min_space("metal1", "metal1")
    row_y1_predict = body_y2 + space_contact_pdiff - enc_poly
    if row_y1_predict < body_y2:
        row_y1_predict = body_y2
    col_metal_y2 = row_y1_predict - space_metal
    col_nets = ("d1", "tail", "d2")
    for cx, cnet in zip(col_x, col_nets):
        obj.add_rect(Rect(cx, body_y1, cx + col_w, body_y2, "pdiff", cnet))
        obj.add_rect(Rect(cx, body_y1, cx + col_w, col_metal_y2, "metal1", cnet))
        ax1 = cx + max(enc_pdiff, enc_metal)
        ax2 = cx + col_w - max(enc_pdiff, enc_metal)
        ay1 = body_y1 + max(enc_pdiff, enc_metal)
        ay2 = min(body_y2 - enc_pdiff, col_metal_y2 - enc_metal)
        for (px, py) in _grid_positions(ax1, ay1, ax2, ay2, cut, cut_space):
            obj.add_rect(Rect(px, py, px + cut, py + cut, "contact", cnet))

    # Poly contact rows on top of each gate endcap.
    row_h = cut + 2 * enc_poly
    row_l = max(length, cut + 2 * enc_poly)
    for gx, gnet in zip(gate_x, nets):
        # The row bottom sits where its cut keeps spacing to the diffusion.
        row_y1 = body_y2 + space_contact_pdiff - enc_poly
        if row_y1 < body_y2:
            row_y1 = body_y2
        row_y2 = row_y1 + row_h
        rx1 = gx + length // 2 - row_l // 2
        rx2 = rx1 + row_l
        obj.add_rect(Rect(rx1, row_y1, rx2, row_y2, "poly", gnet))
        obj.add_rect(Rect(rx1, row_y1, rx2, row_y2, "metal1", gnet))
        ax1 = rx1 + max(enc_poly, enc_metal)
        ax2 = rx2 - max(enc_poly, enc_metal)
        ay1 = row_y1 + max(enc_poly, enc_metal)
        ay2 = row_y2 - max(enc_poly, enc_metal)
        for (px, py) in _grid_positions(ax1, ay1, ax2, ay2, cut, cut_space):
            obj.add_rect(Rect(px, py, px + cut, py + cut, "contact", gnet))
    return obj


def source_line_count(function) -> int:
    """Number of source lines of a baseline generator (for the bench)."""
    import inspect

    return len(inspect.getsource(function).splitlines())

"""Assembly of the broad-band BiCMOS amplifier (Sec. 3, Fig. 9).

"The placement of the modules and the global routing were done manually."
The reproduction scripts that manual step: blocks are placed on a two-row
floorplan, supply rails run horizontally, and the inter-block nets are wired
on metal2 channels between the rows.  A substrate-contact ring closes the
latch-up rule around the whole amplifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compact import Compactor
from ..db import ConnectivityIndex, LayoutObject, capacitance_report
from ..drc import run_drc
from ..geometry import Rect, bounding_box
from ..library import substrate_ring
from ..obs.provenance import provenance_entity
from ..route import via_stack, wire
from ..tech import RuleError, Technology
from .blocks import BLOCK_BUILDERS

#: Two-row floorplan: (row, order) per block, mirroring Fig. 9's grouping of
#: the signal path (E, F) below the bias/load circuitry (A, B, C, D).
FLOORPLAN = {
    "A": (0, 0),
    "B": (0, 1),
    "C": (0, 2),
    "D": (0, 3),
    "E": (1, 0),
    "F": (1, 1),
}

#: Inter-block nets wired by the scripted global routing.  Supplies come
#: first: they have the most pins and so the strongest claim on the clear
#: escape corridors before other nets' tracks crowd the channels.
GLOBAL_NETS = ("vss", "vdd", "ibias", "itail", "n1", "n2", "vbias1")


@dataclass
class AmplifierReport:
    """Measurements the paper reports for the amplifier layout."""

    width_um: float
    height_um: float
    area_um2: float
    drc_violations: int
    net_capacitance_af: Dict[str, float] = field(default_factory=dict)


@provenance_entity("BiCMOSAmplifier")
def build_amplifier(
    tech: Technology,
    compactor: Optional[Compactor] = None,
    with_ring: bool = True,
    with_routing: bool = True,
) -> LayoutObject:
    """Build the full amplifier layout."""
    if compactor is None:
        compactor = Compactor()
    amp = LayoutObject("BiCMOSAmplifier", tech)

    margin = 4 * (tech.min_width("metal2") + (tech.min_space("metal2", "metal2") or 0))
    blocks: Dict[str, LayoutObject] = {}
    for name, builder in BLOCK_BUILDERS.items():
        blocks[name] = builder(tech, compactor=compactor)
        blocks[name].normalize()

    row_heights: Dict[int, int] = {}
    for name, (row, _) in FLOORPLAN.items():
        row_heights[row] = max(row_heights.get(row, 0), blocks[name].height)

    # Place row by row, top row first, with routing channels between rows.
    y_cursor = 0
    placements: Dict[str, Tuple[int, int]] = {}
    for row in sorted(row_heights):
        x_cursor = 0
        for name, (block_row, order) in sorted(
            FLOORPLAN.items(), key=lambda item: item[1]
        ):
            if block_row != row:
                continue
            blocks[name].translate(x_cursor, y_cursor - blocks[name].height)
            placements[name] = (x_cursor, y_cursor)
            x_cursor += blocks[name].width + margin
        y_cursor -= row_heights[row] + 3 * margin

    for name, block in blocks.items():
        amp.merge(block)

    if with_routing:
        _global_routing(amp, tech, margin)
    if with_ring:
        _substrate_strips(amp, tech, placements, row_heights, margin)
        substrate_ring(amp, net="sub")
    return amp


def _substrate_strips(
    amp: LayoutObject,
    tech: Technology,
    placements: Dict[str, Tuple[int, int]],
    row_heights: Dict[int, int],
    margin: int,
) -> None:
    """Contacted substrate strips in the routing channels (latch-up rule).

    The perimeter ring protects a band along each edge; the strips extend
    the protection into the interior, one per inter-row channel, so the
    temporary rectangles of Fig. 1 cover every active area.
    """
    from ..db import ArrayLink

    box = amp.bbox()
    assert box is not None
    width = tech.min_width("subcontact")
    cut = tech.cut_size("contact")
    space = tech.min_space("contact", "contact") or cut
    enc = max(
        tech.enclosure_or_zero("subcontact", "contact"),
        tech.enclosure_or_zero("metal1", "contact"),
    )

    # Strip y centres: midway in every inter-row channel, plus one below the
    # bottom row (tall bottom rows outrun the perimeter ring's reach).
    tops = sorted({placements[name][1] for name in placements}, reverse=True)
    m1s = tech.min_space("metal1", "metal1") or 0

    def row_bottom(row_top: int) -> int:
        bottoms = [
            top - row_heights[FLOORPLAN[name][0]]
            for name, (_, top) in placements.items()
            if top == row_top
        ]
        return max(bottoms)

    centers = [
        (row_bottom(upper_top) + lower_top) // 2
        for upper_top, lower_top in zip(tops, tops[1:])
    ]
    centers.append(row_bottom(tops[-1]) - margin // 2)

    for y_center in centers:
        y1 = y_center - width // 2
        y2 = y1 + width
        # The diffusion strip runs continuously (only the subcontact layer
        # matters for Fig. 1); the metal is segmented around any global
        # verticals crossing the channel so nothing shorts.
        strip_diff = amp.add_rect(
            Rect(box.x1, y1, box.x2, y2, "subcontact", "sub")
        )
        blockers = sorted(
            (r.x1 - m1s, r.x2 + m1s)
            for r in amp.nonempty_rects
            if r.layer == "metal1" and r.net != "sub"
            and r.y1 < y2 and r.y2 > y1
        )
        segments: List[Tuple[int, int]] = []
        cursor = box.x1
        for bx1, bx2 in blockers + [(box.x2, box.x2)]:
            if bx1 > cursor:
                segments.append((cursor, min(bx1, box.x2)))
            cursor = max(cursor, bx2)
        min_len = cut + 2 * enc
        for sx1, sx2 in segments:
            if sx2 - sx1 < min_len:
                continue
            metal = amp.add_rect(Rect(sx1, y1, sx2, y2, "metal1", "sub"))
            link = ArrayLink(
                "contact", cut, space, [(strip_diff, enc), (metal, enc)], "sub"
            )
            link.rebuild()
            link.stamp_provenance()
            for rect in link.rects:
                amp.rects.append(rect)
            amp.add_link(link)


def _global_routing(amp: LayoutObject, tech: Technology, margin: int) -> None:
    """Scripted global routing: one metal2 net at a time, obstacle aware.

    Each net's pins (one per connected component) escape vertically to a
    dedicated horizontal track above or below the whole layout — whichever
    corridor is free of foreign metal2.  Nets needing both tracks join them
    with a vertical in the west channel.  Track offsets and channel x
    positions grow together with the net index, so wires of different nets
    can never cross on metal2.
    """
    box = amp.bbox()
    assert box is not None
    m2w = tech.min_width("metal2")
    m2s = tech.min_space("metal2", "metal2") or m2w
    plate = tech.cut_size("via") + 2 * tech.enclosure_or_zero("metal1", "via")
    pitch = max(m2w, plate) + m2s

    m1w = tech.min_width("metal1")
    m1s = tech.min_space("metal1", "metal1") or m1w

    # One shared connectivity extraction for the whole routing pass: the
    # wires each net adds are folded in incrementally instead of
    # re-extracting the full layout once per net.
    connectivity = ConnectivityIndex(amp.rects, tech)

    for index, net in enumerate(GLOBAL_NETS):
        track_top = box.y2 + 2 * pitch + index * pitch
        track_bot = box.y1 - 2 * pitch - index * pitch
        west_x = box.x1 - 2 * pitch - index * pitch

        pins = _net_pins(amp, tech, net, plate, box, connectivity)
        if len(pins) < 2:
            continue
        top_xs: List[int] = []
        bot_xs: List[int] = []
        for (px, py, on_metal2) in pins:
            # Verticals run on metal1 so they duck under every foreign
            # metal2 track; the corridor only needs clear metal1.
            if _corridor_clear(amp, net, "metal1", px, plate, py, track_bot, m1s):
                target, bucket = track_bot, bot_xs
            elif _corridor_clear(amp, net, "metal1", px, plate, py, track_top, m1s):
                target, bucket = track_top, top_xs
            else:
                raise RuleError(
                    f"global routing: no clear vertical corridor for net"
                    f" {net!r} pin at ({px}, {py})"
                )
            if on_metal2:
                via_stack(amp, px, py, "metal1", "metal2", net=net)
            wire(amp, "metal1", (px, py), (px, target), net=net)
            via_stack(amp, px, target, "metal1", "metal2", net=net)
            bucket.append(px)
        if top_xs and bot_xs:
            top_xs.append(west_x)
            bot_xs.append(west_x)
            wire(amp, "metal1", (west_x, track_bot), (west_x, track_top), net=net)
            via_stack(amp, west_x, track_bot, "metal1", "metal2", net=net)
            via_stack(amp, west_x, track_top, "metal1", "metal2", net=net)
        for xs, y in ((top_xs, track_top), (bot_xs, track_bot)):
            if len(xs) >= 2:
                wire(amp, "metal2", (min(xs), y), (max(xs), y),
                     width=m2w, net=net)


def _corridor_clear(
    amp: LayoutObject,
    net: str,
    layer: str,
    x: int,
    width: int,
    y_from: int,
    y_to: int,
    spacing: int,
) -> bool:
    """True when a vertical wire on *layer* at *x* meets no foreign metal."""
    lo, hi = sorted((y_from, y_to))
    corridor = Rect(
        x - width // 2 - spacing, lo, x + width // 2 + spacing, hi, layer
    )
    for rect in amp.nonempty_rects:
        if rect.layer != layer or rect.net == net:
            continue
        if corridor.intersects(rect):
            return False
    return True


def _net_pins(
    amp: LayoutObject,
    tech: Technology,
    net: str,
    plate: int,
    box: Optional[Rect] = None,
    connectivity: Optional[ConnectivityIndex] = None,
) -> List[Tuple[int, int, bool]]:
    """One pin per connected component of *net*: (x, y, needs_via).

    Components that already own metal2 (module trunks/ports) are tapped at
    the end of their lowest metal2 rect — no via needed and the drop starts
    in clear sky.  Metal1-only components get a metal1 escape stub from
    their largest rect to just outside the layout, where a via landing
    always fits (see :func:`_metal1_escape`).

    *connectivity* is the shared :class:`ConnectivityIndex` over
    ``amp.rects``; the global router passes one per routing pass so each
    net's query costs an incremental catch-up, not a full extraction.
    """
    if connectivity is None:
        connectivity = ConnectivityIndex(amp.rects, tech)
    if box is None:
        box = amp.bbox()
    rects = [r for r in amp.nonempty_rects if r.net == net]
    if not rects:
        return []
    components = connectivity.components()
    pins: List[Tuple[int, int, bool]] = []
    for component in components:
        metal2 = [r for r in component if r.net == net and r.layer == "metal2"]
        if metal2:
            anchor = min(metal2, key=lambda r: r.y1)
            pins.append(((anchor.x1 + anchor.x2) // 2, anchor.y1 + plate // 2, True))
            continue
        candidates = [
            r for r in component if r.net == net and r.layer == "metal1"
        ]
        if not candidates:
            continue
        candidates.sort(key=lambda r: r.area, reverse=True)
        pin: Optional[Tuple[int, int, bool]] = None
        for anchor in candidates[:8]:
            escape = _metal1_escape(amp, tech, net, anchor, plate, box)
            if escape is not None:
                pin = (escape[0], escape[1], False)
                break
        if pin is None:
            for anchor in candidates[:8]:
                if anchor.width < plate or anchor.height < plate:
                    continue
                escape = _metal2_escape(amp, tech, net, anchor, plate, box)
                if escape is not None:
                    pin = (escape[0], escape[1], True)
                    break
        if pin is None:
            for anchor in candidates[:8]:
                if anchor.width < plate or anchor.height < plate:
                    continue
                escape = _ducked_escape(amp, tech, net, anchor, plate, box)
                if escape is not None:
                    pin = escape
                    break
        if pin is not None:
            pins.append(pin)
    return pins


def _ducked_escape(
    amp: LayoutObject,
    tech: Technology,
    net: str,
    anchor: Rect,
    plate: int,
    box: Rect,
) -> Optional[Tuple[int, int, bool]]:
    """Escape by alternating layers around obstacles (ducking).

    When both single-layer corridors are blocked, walk the column switching
    between metal1 and metal2 at each blockage: wire on the current layer up
    to just short of its next obstacle, place a via (both layers must be
    clear there), continue on the other layer.  Up to four switches; both
    directions tried.  Returns (x, y_pad, pad_is_metal2) or None.
    """
    m1s = tech.min_space("metal1", "metal1") or 0
    m2s = tech.min_space("metal2", "metal2") or 0
    margin = max(m1s, m2s)
    half = plate // 2 + margin
    x = (anchor.x1 + anchor.x2) // 2
    start_y = (anchor.y1 + anchor.y2) // 2

    def bands(layer: str) -> List[Tuple[int, int]]:
        out = [
            (r.y1 - margin, r.y2 + margin)
            for r in amp.nonempty_rects
            if r.layer == layer and r.net != net
            and r.x1 < x + half and r.x2 > x - half
        ]
        out.sort()
        return out

    obstacles = {"metal1": bands("metal1"), "metal2": bands("metal2")}

    def clear(layer: str, lo: int, hi: int) -> bool:
        return not any(b_lo < hi and b_hi > lo for b_lo, b_hi in obstacles[layer])

    def plan(y: int, layer: str, upward: bool, switches: int):
        """Segments [(layer, y_from, y_to, via_at_start)] reaching the pad."""
        y_pad = box.y2 + plate if upward else box.y1 - plate
        sign = 1 if upward else -1
        end = y_pad + sign * plate
        lo, hi = sorted((y - sign * plate, end))
        if clear(layer, lo, hi):
            return [(layer, y, y_pad)]
        if switches == 0:
            return None
        # First obstacle ahead on this layer.
        ahead = [
            b for b in obstacles[layer]
            if (b[0] > y - plate if upward else b[1] < y + plate)
        ]
        if not ahead:
            return None
        nxt = min(ahead, key=lambda b: b[0]) if upward else max(ahead, key=lambda b: b[1])
        via_y = (nxt[0] - plate // 2 - margin) if upward else (nxt[1] + plate // 2 + margin)
        if (upward and via_y < y + plate) or (not upward and via_y > y - plate):
            return None
        other = "metal2" if layer == "metal1" else "metal1"
        # Both layers must host the via plates at via_y.
        if not clear(other, via_y - plate, via_y + plate):
            return None
        rest = plan(via_y, other, upward, switches - 1)
        if rest is None:
            return None
        return [(layer, y, via_y)] + rest

    for upward in (True, False):
        # Starting layer is metal1 (we sit on a metal1 anchor).
        segments = plan(start_y, "metal1", upward, switches=4)
        if segments is None:
            continue
        for index, (layer, y_from, y_to) in enumerate(segments):
            if index > 0:
                via_stack(amp, x, y_from, "metal1", "metal2", net=net)
            width = tech.min_width(layer)
            wire(amp, layer, (x, y_from), (x, y_to), width=width, net=net)
        final_layer = segments[-1][0]
        return (x, segments[-1][2], final_layer == "metal2")
    return None


def _metal1_escape(
    amp: LayoutObject,
    tech: Technology,
    net: str,
    anchor: Rect,
    plate: int,
    box: Optional[Rect] = None,
) -> Optional[Tuple[int, int]]:
    """Escape a metal1 anchor vertically to free space; returns the pad spot.

    A metal1 stub runs from the anchor centre straight north or south until
    it leaves everything in its column; the via pad sits at the stub's end.
    A direction is viable only when no foreign metal1 lies in the stub's
    corridor.  Returns None when neither direction works.
    """
    m1w = tech.min_width("metal1")
    m1s = tech.min_space("metal1", "metal1") or 0
    if box is None:
        box = amp.bbox()
    assert box is not None
    x = (anchor.x1 + anchor.x2) // 2
    # The stub is a minimum-width wire; the (wider) via pad lands outside
    # the layout where clearance is guaranteed.
    half = m1w // 2 + m1s

    for upward in (True, False):
        if upward:
            y_pad = box.y2 + plate
            corridor = Rect(x - half, anchor.y2, x + half, y_pad + plate, "metal1")
        else:
            y_pad = box.y1 - plate
            corridor = Rect(x - half, y_pad - plate, x + half, anchor.y1, "metal1")
        blocked = any(
            r.layer == "metal1"
            and r.net != net
            and corridor.intersects(r)
            for r in amp.nonempty_rects
        )
        if blocked:
            continue
        start_y = (anchor.y1 + anchor.y2) // 2
        wire(amp, "metal1", (x, start_y), (x, y_pad), net=net)
        return (x, y_pad)
    return None


def _metal2_escape(
    amp: LayoutObject,
    tech: Technology,
    net: str,
    anchor: Rect,
    plate: int,
    box: Optional[Rect] = None,
) -> Optional[Tuple[int, int]]:
    """Escape a boxed-in metal1 anchor by jumping to metal2 first.

    Used when a metal1 stub cannot leave the anchor's column (a gate tie or
    a neighbouring row blocks both directions): a via on the anchor lifts
    the net to metal2, which crosses metal1 freely; the metal2 stub must in
    turn find a corridor clear of foreign metal2.  Returns the pad spot (on
    metal2) or None.
    """
    m2w = tech.min_width("metal2")
    m2s = tech.min_space("metal2", "metal2") or 0
    if box is None:
        box = amp.bbox()
    assert box is not None
    x = (anchor.x1 + anchor.x2) // 2
    half = max(m2w, plate) // 2 + m2s
    start_y = (anchor.y1 + anchor.y2) // 2

    for upward in (True, False):
        # The wire starts at the via on the anchor's centre: the corridor
        # must be clear from there, not just from the anchor's edge.
        if upward:
            y_pad = box.y2 + plate
            corridor = Rect(
                x - half, start_y - plate, x + half, y_pad + plate, "metal2"
            )
        else:
            y_pad = box.y1 - plate
            corridor = Rect(
                x - half, y_pad - plate, x + half, start_y + plate, "metal2"
            )
        blocked = any(
            r.layer == "metal2" and r.net != net and corridor.intersects(r)
            for r in amp.nonempty_rects
        )
        if blocked:
            continue
        via_stack(amp, x, start_y, "metal1", "metal2", net=net)
        wire(amp, "metal2", (x, start_y), (x, y_pad), width=m2w, net=net)
        return (x, y_pad)
    return None


def measure_amplifier(amp: LayoutObject) -> AmplifierReport:
    """Measure the finished amplifier the way the paper reports it.

    The paper: "The layout area (592 x 481 µm² in a 1µ Siemens-BiCMOS-
    technology) and the quality (parasitic capacitances of the internal
    nodes) of the amplifier are comparable to an optimal hand-drafted
    version or even better."
    """
    tech = amp.tech
    dbu = tech.dbu_per_micron
    violations = run_drc(amp, include_latchup=True)
    return AmplifierReport(
        width_um=amp.width / dbu,
        height_um=amp.height / dbu,
        area_um2=amp.area() / dbu ** 2,
        drc_violations=len(violations),
        net_capacitance_af=capacitance_report(amp.rects, tech),
    )

"""The broad-band BiCMOS amplifier example (Sec. 3)."""

from .amplifier import (
    FLOORPLAN,
    GLOBAL_NETS,
    AmplifierReport,
    build_amplifier,
    measure_amplifier,
)
from .blocks import BLOCK_BUILDERS, block_a, block_b, block_c, block_d, block_e, block_f

__all__ = [
    "FLOORPLAN",
    "GLOBAL_NETS",
    "AmplifierReport",
    "build_amplifier",
    "measure_amplifier",
    "BLOCK_BUILDERS",
    "block_a",
    "block_b",
    "block_c",
    "block_d",
    "block_e",
    "block_f",
]

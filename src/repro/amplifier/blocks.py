"""Blocks A–F of the broad-band BiCMOS amplifier (Sec. 3, Fig. 8).

"The knowledge based partitioning of the modules takes additional analog
properties like matching and symmetry requirements ... into account":

======  =====================================================================
block   paper requirement → module choice
======  =====================================================================
A       bias cascodes, no matching → two inter-digital MOS transistors
B       moderate matching → symmetric mirror, diode transistor in the middle
C       high symmetry/matching → cross-coupled inter-digital transistors
D       no matching → plain MOS devices
E       best matching → centroidal cross-coupled pair with dummies (Fig. 10)
F       bipolar outputs → symmetrically composed npn pair
======  =====================================================================

Each block builder returns a finished, DRC-clean module with its nets
labelled; the assembly in :mod:`repro.amplifier.amplifier` places and wires
them.
"""

from __future__ import annotations

from typing import Optional

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction
from ..library import (
    cascode_pair,
    centroid_cross_coupled_pair,
    cross_coupled_pair,
    interdigitated_transistor,
    mos_transistor,
    symmetric_current_mirror,
    symmetric_npn_pair,
)
from ..library.interdigitated import via_landing_um
from ..obs.provenance import provenance_entity
from ..tech import Technology


@provenance_entity("BlockA")
def block_a(tech: Technology, compactor: Optional[Compactor] = None) -> LayoutObject:
    """Bias cascodes: two inter-digital MOS transistors side by side."""
    if compactor is None:
        compactor = Compactor()
    block = LayoutObject("BlockA", tech)
    landing = via_landing_um(tech)
    lower = interdigitated_transistor(
        tech, 12.0, 1.0, fingers=3,
        gate_net="vbias1", source_net="vss", drain_net="ncasc",
        col_metal_min=landing, compactor=compactor, name="A_lower",
    )
    upper = interdigitated_transistor(
        tech, 12.0, 1.0, fingers=3,
        gate_net="vbias2", source_net="ncasc", drain_net="ibias",
        col_metal_min=landing, compactor=compactor, name="A_upper",
    )
    compactor.compact(block, lower, Direction.WEST)
    compactor.compact(block, upper, Direction.WEST, ignore_layers=("pdiff",))
    return block


@provenance_entity("BlockB")
def block_b(tech: Technology, compactor: Optional[Compactor] = None) -> LayoutObject:
    """Current mirror with the diode transistor in the middle."""
    return symmetric_current_mirror(
        tech, 10.0, 1.2,
        ref_net="ibias", out_nets=("itail", "iout2"), source_net="vss",
        compactor=compactor, name="BlockB",
    )


@provenance_entity("BlockC")
def block_c(tech: Technology, compactor: Optional[Compactor] = None) -> LayoutObject:
    """Matched current sources: cross-coupled inter-digital transistors."""
    return cross_coupled_pair(
        tech, 14.0, 1.2,
        gate_nets=("vbias1", "vbias1"), drain_nets=("iload1", "iload2"),
        source_net="vdd", fingers_per_device=2,
        compactor=compactor, name="BlockC",
    )


@provenance_entity("BlockD")
def block_d(tech: Technology, compactor: Optional[Compactor] = None) -> LayoutObject:
    """Level shifter devices without matching requirements."""
    if compactor is None:
        compactor = Compactor()
    block = LayoutObject("BlockD", tech)
    landing = via_landing_um(tech)
    first = mos_transistor(
        tech, 8.0, 1.0,
        gate_net="n1", source_net="vss", drain_net="nshift",
        col_metal_min=landing, compactor=compactor, name="D_m1",
    )
    second = mos_transistor(
        tech, 8.0, 1.0,
        gate_net="nshift", source_net="vss", drain_net="n2",
        source_contact=False, col_metal_min=landing,
        compactor=compactor, name="D_m2",
    )
    compactor.compact(block, first, Direction.WEST)
    compactor.compact(block, second, Direction.WEST, ignore_layers=("pdiff",))
    return block


@provenance_entity("BlockE")
def block_e(tech: Technology, compactor: Optional[Compactor] = None) -> LayoutObject:
    """Input differential pair: the module-E centroid pair (Fig. 10)."""
    return centroid_cross_coupled_pair(
        tech,
        w=10.0,
        length=1.0,
        gate_nets=("inp", "inn"),
        drain_nets=("n1", "n2"),
        source_net="itail",
        compactor=compactor,
        name="BlockE",
    )


@provenance_entity("BlockF")
def block_f(tech: Technology, compactor: Optional[Compactor] = None) -> LayoutObject:
    """Output bipolar devices, composed symmetrically."""
    return symmetric_npn_pair(
        tech, 2.0, 6.0,
        nets_left=("outp", "n1", "vdd"),
        nets_right=("outn", "n2", "vdd"),
        compactor=compactor, name="BlockF",
    )


#: Builder registry in schematic order.
BLOCK_BUILDERS = {
    "A": block_a,
    "B": block_b,
    "C": block_c,
    "D": block_d,
    "E": block_e,
    "F": block_f,
}

"""Primitive shape functions — the paper's geometry-creation vocabulary.

Every function here is design-rule driven: callers supply intent (which
layer, optionally which size) and the primitive consults the technology for
overlaps, expansions and defaults, exactly as Sec. 2.2 describes.
"""

from .array import array
from .inbox import inbox
from .shapes import angle_adaptor, around, ring, tworects
from .util import default_extent, enclosure_margin, expand_outers, inner_region

__all__ = [
    "array",
    "inbox",
    "angle_adaptor",
    "around",
    "ring",
    "tworects",
    "default_extent",
    "enclosure_margin",
    "expand_outers",
    "inner_region",
]

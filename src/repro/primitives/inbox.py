"""INBOX — "inserting a rectangle inside other rectangles" (Sec. 2.2).

Two modes, exactly as in the paper's contact-row example (Fig. 2):

* On an empty object, ``INBOX(layer, W, L)`` creates the base rectangle;
  omitted dimensions default to the layer's minimum width.
* On a non-empty object, ``INBOX(layer)`` places a rectangle inside every
  existing rectangle with the necessary layer overlaps; given dimensions are
  centred, omitted dimensions fill the available region.  Outer rectangles
  are expanded when the new rectangle cannot be placed.
"""

from __future__ import annotations

from typing import Optional

from ..db import InsideLink, LayoutObject
from ..geometry import Axis, Direction, Rect
from ..obs.provenance import builtin_call
from ..tech import RuleError
from .util import default_extent, enclosure_margin, expand_outers, inner_region


@builtin_call("INBOX")
def inbox(
    obj: LayoutObject,
    layer: str,
    w: Optional[int] = None,
    length: Optional[int] = None,
    net: Optional[str] = None,
    variable: bool = False,
) -> Rect:
    """Insert a rectangle on *layer*; returns the created rect.

    ``w`` is the vertical extent, ``length`` the horizontal extent, both in
    database units.  ``variable=True`` marks all four edges movable by the
    compactor's variable-edge optimization.
    """
    obj.tech.layer(layer)
    if obj.is_empty():
        rect = _base_rect(obj, layer, w, length, net)
    else:
        rect = _inner_rect(obj, layer, w, length, net)
    if variable:
        rect.set_variable()
    return rect


def _base_rect(
    obj: LayoutObject,
    layer: str,
    w: Optional[int],
    length: Optional[int],
    net: Optional[str],
) -> Rect:
    """First rectangle of a structure: W × L centred on the origin.

    Centring matters: primitives (TWORECTS) also centre on the origin, so
    sub-objects are pre-aligned when the compactor later abuts them — the
    compactor only ever translates along its compaction axis.
    """
    height = w if w is not None else default_extent(obj, layer)
    width = length if length is not None else default_extent(obj, layer)
    if height <= 0 or width <= 0:
        raise RuleError(f"INBOX({layer!r}): dimensions must be positive")
    x1 = -(width // 2)
    y1 = -(height // 2)
    return obj.add_rect(Rect(x1, y1, x1 + width, y1 + height, layer, net))


def _inner_rect(
    obj: LayoutObject,
    layer: str,
    w: Optional[int],
    length: Optional[int],
    net: Optional[str],
) -> Rect:
    """Rectangle inside all existing rects, expanding outers when needed."""
    outers = list(obj.nonempty_rects)
    min_w = obj.tech.rules.width(layer) or 1

    need_h = w if w is not None else min_w
    need_v = length if length is not None else min_w
    region = inner_region(obj, layer, outers)
    assert region is not None
    x1, y1, x2, y2 = region

    # Expand all outers until the required extents fit (Sec. 2.2).
    if x2 - x1 < need_v:
        expand_outers(obj, outers, Axis.HORIZONTAL, need_v - (x2 - x1))
    if y2 - y1 < need_h:
        expand_outers(obj, outers, Axis.VERTICAL, need_h - (y2 - y1))
    x1, y1, x2, y2 = inner_region(obj, layer, outers)  # type: ignore[misc]

    if length is None:
        rx1, rx2 = x1, x2
    else:
        cx = (x1 + x2) // 2
        rx1 = cx - length // 2
        rx2 = rx1 + length
    if w is None:
        ry1, ry2 = y1, y2
    else:
        cy = (y1 + y2) // 2
        ry1 = cy - w // 2
        ry2 = ry1 + w

    rect = obj.add_rect(Rect(rx1, ry1, rx2, ry2, layer, net))
    obj.add_link(
        InsideLink(
            rect,
            [(outer, enclosure_margin(obj, outer.layer, layer)) for outer in outers],
        )
    )
    return rect

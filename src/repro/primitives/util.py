"""Shared helpers for the primitive shape functions."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..db import LayoutObject
from ..geometry import Axis, Rect
from ..tech import RuleError


def enclosure_margin(obj: LayoutObject, outer_layer: str, inner_layer: str) -> int:
    """Required overlap of *inner_layer* inside *outer_layer* (0 when unruled).

    This is the "necessary overlap between all involved layers [that] is
    considered automatically" (Sec. 2.2).
    """
    return obj.tech.enclosure_or_zero(outer_layer, inner_layer)


def inner_region(
    obj: LayoutObject, inner_layer: str, outers: List[Rect]
) -> Optional[Tuple[int, int, int, int]]:
    """Intersection of all outers shrunk by their enclosure margins.

    Returns (x1, y1, x2, y2) which may be inverted when the region is
    infeasible; ``None`` when there are no outers.
    """
    if not outers:
        return None
    x1 = max(o.x1 + enclosure_margin(obj, o.layer, inner_layer) for o in outers)
    y1 = max(o.y1 + enclosure_margin(obj, o.layer, inner_layer) for o in outers)
    x2 = min(o.x2 - enclosure_margin(obj, o.layer, inner_layer) for o in outers)
    y2 = min(o.y2 - enclosure_margin(obj, o.layer, inner_layer) for o in outers)
    return (x1, y1, x2, y2)


def expand_outers(obj: LayoutObject, outers: List[Rect], axis: Axis, deficit: int) -> None:
    """Grow every outer symmetrically so the inner region gains *deficit*.

    Implements "If the new rectangle cannot be placed inside the other
    rectangles, all outer rectangles are expanded" (Sec. 2.2).  Growth is
    split between both sides, biasing the extra unit to the high side when
    the deficit is odd.
    """
    if deficit <= 0:
        return
    low = deficit // 2
    high = deficit - low
    for outer in outers:
        if axis is Axis.HORIZONTAL:
            outer.x1 -= low
            outer.x2 += high
        else:
            outer.y1 -= low
            outer.y2 += high
    obj.rebuild_links()


def default_extent(obj: LayoutObject, layer: str) -> int:
    """Default W/L when an optional parameter is omitted: the minimum width.

    "If an optional parameter is omitted ... the minimum possible length for
    this value is selected according to the design-rules" (Sec. 2.2).  A later
    ARRAY/INBOX call may still expand the structure beyond this.
    """
    width = obj.tech.rules.width(layer)
    if width is None:
        raise RuleError(
            f"cannot default a dimension on layer {layer!r}: no WIDTH rule"
        )
    return width

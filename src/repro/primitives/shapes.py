"""The remaining primitive shape functions of Sec. 2.2.

* :func:`tworects` — "creating two overlapping rectangles": the MOS (or
  bipolar) device core, a gate bar crossing an active area, both sized from
  the EXTEND rules.
* :func:`around` — "placing a rectangle around a structure": covers the
  current structure with the enclosures the technology demands (wells,
  implants, locos).
* :func:`ring` — "placing a ring around a structure": four rectangles forming
  a closed guard ring at rule spacing.
* :func:`angle_adaptor` — "producing an angle adaptor for wiring purposes":
  the corner patch joining two orthogonal wires, with a via stack when the
  wires sit on different metal levels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..db import LayoutObject
from ..geometry import Rect, bounding_box
from ..obs.provenance import builtin_call
from ..tech import RuleError
from .util import enclosure_margin


@builtin_call("TWORECTS")
def tworects(
    obj: LayoutObject,
    gate_layer: str,
    body_layer: str,
    w: int,
    length: int,
    gate_net: Optional[str] = None,
    body_net: Optional[str] = None,
) -> Tuple[Rect, Rect]:
    """Create a transistor core: a *gate_layer* bar crossing a *body_layer* area.

    ``w`` is the channel width (vertical extent of the active area), ``length``
    the channel length (horizontal extent of the gate bar).  The gate extends
    past the body by the EXTEND(gate, body) rule (endcaps) and the body past
    the gate by EXTEND(body, gate) (source/drain areas).  The device is centred
    on the origin; returns (gate rect, body rect).
    """
    if w <= 0 or length <= 0:
        raise RuleError("TWORECTS: W and L must be positive")
    endcap = obj.tech.extension(gate_layer, body_layer)
    sd_ext = obj.tech.extension(body_layer, gate_layer)

    gate = Rect(
        -length // 2,
        -(w // 2) - endcap,
        -length // 2 + length,
        -(w // 2) - endcap + w + 2 * endcap,
        gate_layer,
        gate_net,
    )
    body = Rect(
        -length // 2 - sd_ext,
        -(w // 2),
        -length // 2 + length + sd_ext,
        -(w // 2) + w,
        body_layer,
        body_net,
    )
    obj.add_rect(gate)
    obj.add_rect(body)
    return gate, body


@builtin_call("AROUND")
def around(
    obj: LayoutObject,
    layer: str,
    margin: Optional[int] = None,
    net: Optional[str] = None,
) -> Rect:
    """Cover the structure with one rectangle on *layer*.

    The margin defaults to the largest enclosure the technology requires of
    *layer* around any layer present in the structure (e.g. nwell enclosure
    of pdiff); an explicit *margin* overrides the lookup.
    """
    box = bounding_box(obj.nonempty_rects)
    if box is None:
        raise RuleError(f"AROUND({layer!r}): structure is empty")
    if margin is None:
        margin = 0
        for present in obj.layers():
            rule = obj.tech.rules.enclose(layer, present)
            if rule is not None:
                margin = max(margin, rule)
    rect = Rect(
        box.x1 - margin, box.y1 - margin, box.x2 + margin, box.y2 + margin, layer, net
    )
    return obj.add_rect(rect)


@builtin_call("RING")
def ring(
    obj: LayoutObject,
    layer: str,
    width: Optional[int] = None,
    gap: Optional[int] = None,
    net: Optional[str] = None,
) -> List[Rect]:
    """Surround the structure with a closed four-rect ring on *layer*.

    ``width`` defaults to the layer's minimum width.  ``gap`` (ring to
    structure) defaults to the largest spacing rule between *layer* and any
    layer present.  Returns [south, north, west, east] ring rects.
    """
    box = bounding_box(obj.nonempty_rects)
    if box is None:
        raise RuleError(f"RING({layer!r}): structure is empty")
    if width is None:
        width = obj.tech.min_width(layer)
    if gap is None:
        gap = 0
        for present in obj.layers():
            rule = obj.tech.min_space(layer, present)
            if rule is not None:
                gap = max(gap, rule)

    x1, y1 = box.x1 - gap - width, box.y1 - gap - width
    x2, y2 = box.x2 + gap + width, box.y2 + gap + width
    south = Rect(x1, y1, x2, y1 + width, layer, net)
    north = Rect(x1, y2 - width, x2, y2, layer, net)
    west = Rect(x1, y1 + width, x1 + width, y2 - width, layer, net)
    east = Rect(x2 - width, y1 + width, x2, y2 - width, layer, net)
    for rect in (south, north, west, east):
        obj.add_rect(rect)
    return [south, north, west, east]


@builtin_call("ADAPTOR")
def angle_adaptor(
    obj: LayoutObject,
    h_layer: str,
    v_layer: str,
    x: int,
    y: int,
    h_width: Optional[int] = None,
    v_width: Optional[int] = None,
    net: Optional[str] = None,
) -> List[Rect]:
    """Create the corner patch joining a horizontal and a vertical wire.

    The horizontal wire runs on *h_layer* with width ``h_width`` (vertical
    extent) and the vertical wire on *v_layer* with width ``v_width``; the
    wires meet at (x, y), the corner's centre.  Same layer → one square patch.
    Different layers → both patches plus the connecting cut array, sized so
    the cut's enclosure rules hold.  Returns the created rects.
    """
    h_width = h_width if h_width is not None else obj.tech.min_width(h_layer)
    v_width = v_width if v_width is not None else obj.tech.min_width(v_layer)

    if h_layer == v_layer:
        half_w = v_width // 2
        half_h = h_width // 2
        patch = Rect(
            x - half_w, y - half_h, x - half_w + v_width, y - half_h + h_width,
            h_layer, net,
        )
        obj.add_rect(patch)
        return [patch]

    cut_layer = obj.tech.cut_between(h_layer, v_layer)
    if cut_layer is None:
        raise RuleError(
            f"angle adaptor: no cut layer connects {h_layer!r} and {v_layer!r}"
        )
    cut_size = obj.tech.cut_size(cut_layer)
    enc_h = enclosure_margin(obj, h_layer, cut_layer)
    enc_v = enclosure_margin(obj, v_layer, cut_layer)

    side_h = max(h_width, cut_size + 2 * enc_h)
    side_v = max(v_width, cut_size + 2 * enc_v)
    patch_h = Rect(x - side_h // 2, y - side_h // 2, x - side_h // 2 + side_h,
                   y - side_h // 2 + side_h, h_layer, net)
    patch_v = Rect(x - side_v // 2, y - side_v // 2, x - side_v // 2 + side_v,
                   y - side_v // 2 + side_v, v_layer, net)
    cut = Rect(x - cut_size // 2, y - cut_size // 2,
               x - cut_size // 2 + cut_size, y - cut_size // 2 + cut_size,
               cut_layer, net)
    for rect in (patch_h, patch_v, cut):
        obj.add_rect(rect)
    return [patch_h, patch_v, cut]

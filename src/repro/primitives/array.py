"""ARRAY — "creating an array of rectangles inside other rectangles" (Sec. 2.2).

"The maximum number of rectangles which fits horizontally and vertically into
the structure is calculated according to the necessary overlap and the
contacts are placed equidistantly to minimize the contact resistance.  If no
rectangle can be placed, the outer geometries are expanded so that at least
one rectangle can be generated."
"""

from __future__ import annotations

from typing import List, Optional

from ..db import ArrayLink, LayoutObject
from ..geometry import Axis, Rect
from ..obs.provenance import builtin_call
from ..tech import RuleError
from .util import enclosure_margin, expand_outers


@builtin_call("ARRAY")
def array(
    obj: LayoutObject,
    layer: str,
    net: Optional[str] = None,
) -> List[Rect]:
    """Fill the structure with the maximal equidistant grid of cuts.

    *layer* must be a cut layer (CUTSIZE rule present).  Returns the placed
    cut rects; the registered :class:`~repro.db.links.ArrayLink` keeps them
    consistent under later edge movement.
    """
    cut_size = obj.tech.rules.cut_size(layer)
    if cut_size is None:
        raise RuleError(f"ARRAY({layer!r}): layer has no CUTSIZE rule")
    cut_space = obj.tech.min_space(layer, layer)
    if cut_space is None:
        raise RuleError(f"ARRAY({layer!r}): layer has no SPACE rule")
    if obj.is_empty():
        raise RuleError(f"ARRAY({layer!r}): structure is empty")

    outers = list(obj.nonempty_rects)
    link = ArrayLink(
        layer,
        cut_size,
        cut_space,
        [(outer, enclosure_margin(obj, outer.layer, layer)) for outer in outers],
        net,
    )

    # Expand the outers until at least one cut fits along each axis.
    region = link.region()
    if region is None or region.width < cut_size:
        have = region.width if region is not None else _region_extent(link, Axis.HORIZONTAL)
        expand_outers(obj, outers, Axis.HORIZONTAL, cut_size - have)
    region = link.region()
    if region is None or region.height < cut_size:
        have = region.height if region is not None else _region_extent(link, Axis.VERTICAL)
        expand_outers(obj, outers, Axis.VERTICAL, cut_size - have)

    link.rebuild()
    assert link.rects, "ARRAY expansion must yield at least one cut"
    link.stamp_provenance()
    for rect in link.rects:
        obj.rects.append(rect)
    obj.add_link(link)
    return list(link.rects)


def _region_extent(link: ArrayLink, axis: Axis) -> int:
    """Signed extent of the (possibly inverted) array region along *axis*."""
    if axis is Axis.HORIZONTAL:
        lo = max(o.x1 + m for o, m in link.outers)
        hi = min(o.x2 - m for o, m in link.outers)
    else:
        lo = max(o.y1 + m for o, m in link.outers)
        hi = min(o.y2 - m for o, m in link.outers)
    return hi - lo

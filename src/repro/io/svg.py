"""SVG rendering with per-layer fill patterns (Fig. 4).

The paper explains its layer legend in Fig. 4; each technology layer carries
a ``fill_pattern`` tag that maps to an SVG ``<pattern>`` here, so the
rendered module looks like the paper's figures.  The renderer also provides
the "graphical view of the module" half of the two-window programming
environment (the text half being the source itself).
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..db import LayoutObject
from ..geometry import Rect
from ..tech import Technology

_PATTERN_BODIES: Dict[str, str] = {
    "hatch-left": '<path d="M0,8 L8,0" stroke="{color}" stroke-width="1.2"/>',
    "hatch-right": '<path d="M0,0 L8,8" stroke="{color}" stroke-width="1.2"/>',
    "cross-hatch": (
        '<path d="M0,8 L8,0" stroke="{color}" stroke-width="1"/>'
        '<path d="M0,0 L8,8" stroke="{color}" stroke-width="1"/>'
    ),
    "dots": '<circle cx="4" cy="4" r="1.3" fill="{color}"/>',
    "dense-dots": (
        '<circle cx="2" cy="2" r="1.1" fill="{color}"/>'
        '<circle cx="6" cy="6" r="1.1" fill="{color}"/>'
    ),
    "horizontal": '<path d="M0,4 L8,4" stroke="{color}" stroke-width="1.2"/>',
    "vertical": '<path d="M4,0 L4,8" stroke="{color}" stroke-width="1.2"/>',
}


def _pattern_defs(tech: Technology, layers: Iterable[str]) -> str:
    defs: List[str] = ["<defs>"]
    for name in layers:
        layer = tech.layer(name)
        if layer.fill_pattern == "solid":
            continue
        body = _PATTERN_BODIES[layer.fill_pattern].format(color=layer.color)
        defs.append(
            f'<pattern id="pat-{layer.name}" width="8" height="8"'
            f' patternUnits="userSpaceOnUse">{body}</pattern>'
        )
    defs.append("</defs>")
    return "".join(defs)


def _fill_for(tech: Technology, layer_name: str) -> str:
    layer = tech.layer(layer_name)
    if layer.fill_pattern == "solid":
        return f'fill="{layer.color}" fill-opacity="0.55"'
    return f'fill="url(#pat-{layer.name})"'


def render_svg(
    obj: LayoutObject,
    scale: float = 0.02,
    margin: int = 2000,
    show_labels: bool = True,
    tooltip_extra: Optional[Callable[[Rect], Optional[str]]] = None,
    highlights: Optional[Sequence[Tuple[Rect, str]]] = None,
) -> str:
    """Render a layout object as an SVG document string.

    ``scale`` maps database units to SVG pixels; layers draw in technology
    registration order (wells below, metals on top).  ``tooltip_extra``
    may return an extra tooltip line per rect (the run report passes the
    rect's provenance chain).  ``highlights`` draws dashed red outlines
    with their own tooltips on top of everything — used for DRC violation
    overlays.
    """
    tech = obj.tech
    box = obj.bbox()
    if box is None:
        return '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'
    x0, y0 = box.x1 - margin, box.y1 - margin
    width = (box.width + 2 * margin) * scale
    height = (box.height + 2 * margin) * scale

    order = {layer.name: index for index, layer in enumerate(tech.layers)}
    rects = sorted(obj.nonempty_rects, key=lambda r: order.get(r.layer, 99))

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}"'
        f' height="{height:.0f}" viewBox="0 0 {width:.2f} {height:.2f}">',
        _pattern_defs(tech, sorted({r.layer for r in rects})),
        f'<rect width="{width:.2f}" height="{height:.2f}" fill="white"/>',
    ]
    for rect in rects:
        layer = tech.layer(rect.layer)
        x = (rect.x1 - x0) * scale
        # SVG y axis points down; flip about the box.
        y = height - (rect.y2 - y0) * scale
        title = (
            f"{rect.layer}"
            + (f" net={rect.net}" if rect.net else "")
            + f" ({rect.x1},{rect.y1})-({rect.x2},{rect.y2})"
        )
        if tooltip_extra is not None:
            extra = tooltip_extra(rect)
            if extra:
                title += "\n" + extra
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{rect.width * scale:.2f}"'
            f' height="{rect.height * scale:.2f}" {_fill_for(tech, rect.layer)}'
            f' stroke="{layer.color}" stroke-width="0.6">'
            f"<title>{escape(title)}</title></rect>"
        )
    if show_labels:
        for label in obj.labels:
            x = (label.x - x0) * scale
            y = height - (label.y - y0) * scale
            parts.append(
                f'<text x="{x:.2f}" y="{y:.2f}" font-size="8"'
                f' fill="black">{label.text}</text>'
            )
    for mark, tooltip in highlights or ():
        x = (mark.x1 - x0) * scale
        y = height - (mark.y2 - y0) * scale
        w = max(mark.width * scale, 2.0)
        h = max(mark.height * scale, 2.0)
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}"'
            ' fill="none" stroke="#d00" stroke-width="1.6"'
            ' stroke-dasharray="4,2">'
            f"<title>{escape(tooltip)}</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def render_legend(tech: Technology, swatch: int = 48) -> str:
    """Render the Fig. 4 layer legend: one patterned swatch per layer."""
    rows = len(tech.layers)
    height = rows * (swatch // 2 + 10) + 10
    width = swatch + 180
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}">',
        _pattern_defs(tech, [layer.name for layer in tech.layers]),
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    y = 10
    for layer in tech.layers:
        parts.append(
            f'<rect x="10" y="{y}" width="{swatch}" height="{swatch // 2}"'
            f" {_fill_for(tech, layer.name)}"
            f' stroke="{layer.color}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{swatch + 20}" y="{y + swatch // 4 + 4}" font-size="12"'
            f' fill="black">{layer.name} ({layer.kind.value},'
            f" {layer.fill_pattern})</text>"
        )
        y += swatch // 2 + 10
    parts.append("</svg>")
    return "".join(parts)


def write_svg(obj: LayoutObject, path: Union[str, Path], **kwargs) -> None:
    """Render and write an SVG file."""
    Path(path).write_text(render_svg(obj, **kwargs), encoding="utf-8")

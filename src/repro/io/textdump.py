"""Line-based text serialization of layout objects.

A deterministic, diff-friendly dump used by golden tests and for quick
inspection::

    OBJECT DiffPair_0 TECH generic_bicmos_1u
    RECT poly -500 -6000 500 6000 NET g1
    RECT pdiff -3000 -5000 3000 5000
    LABEL out 0 0 metal1
    ENDOBJECT
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from ..db import LayoutObject
from ..geometry import Rect
from ..tech import Technology


def dumps_object(obj: LayoutObject) -> str:
    """Serialise one object (rects sorted for determinism)."""
    lines: List[str] = [f"OBJECT {obj.name} TECH {obj.tech.name}"]
    for rect in sorted(
        obj.nonempty_rects, key=lambda r: (r.layer, r.x1, r.y1, r.x2, r.y2, r.net or "")
    ):
        line = f"RECT {rect.layer} {rect.x1} {rect.y1} {rect.x2} {rect.y2}"
        if rect.net:
            line += f" NET {rect.net}"
        lines.append(line)
    for label in obj.labels:
        lines.append(f"LABEL {label.text} {label.x} {label.y} {label.layer}")
    lines.append("ENDOBJECT")
    return "\n".join(lines) + "\n"


def loads_object(text: str, tech: Technology) -> LayoutObject:
    """Parse a dump produced by :func:`dumps_object`."""
    obj: Optional[LayoutObject] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "OBJECT":
            obj = LayoutObject(tokens[1], tech)
        elif keyword == "RECT":
            if obj is None:
                raise ValueError(f"line {lineno}: RECT before OBJECT")
            net = tokens[7] if len(tokens) > 6 and tokens[6] == "NET" else None
            obj.add_rect(
                Rect(
                    int(tokens[2]), int(tokens[3]), int(tokens[4]), int(tokens[5]),
                    tokens[1], net,
                )
            )
        elif keyword == "LABEL":
            if obj is None:
                raise ValueError(f"line {lineno}: LABEL before OBJECT")
            obj.add_label(tokens[1], int(tokens[2]), int(tokens[3]), tokens[4])
        elif keyword == "ENDOBJECT":
            break
        else:
            raise ValueError(f"line {lineno}: unknown keyword {keyword!r}")
    if obj is None:
        raise ValueError("no OBJECT found")
    return obj


def dump_object(obj: LayoutObject, path: Union[str, Path]) -> None:
    """Write a text dump to disk."""
    Path(path).write_text(dumps_object(obj), encoding="utf-8")


def load_object(path: Union[str, Path], tech: Technology) -> LayoutObject:
    """Read a text dump from disk."""
    return loads_object(Path(path).read_text(encoding="utf-8"), tech)

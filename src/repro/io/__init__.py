"""Layout IO: GDSII stream, CIF, SVG rendering, text dumps."""

from .cif import dumps_cif, loads_cif, read_cif, write_cif
from .gds import dumps_gds, read_gds, write_gds
from .svg import render_legend, render_svg, write_svg
from .textdump import dump_object, dumps_object, load_object, loads_object

__all__ = [
    "dumps_cif",
    "loads_cif",
    "read_cif",
    "write_cif",
    "dumps_gds",
    "read_gds",
    "write_gds",
    "render_legend",
    "render_svg",
    "write_svg",
    "dump_object",
    "dumps_object",
    "load_object",
    "loads_object",
]

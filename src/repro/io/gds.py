"""Minimal GDSII stream writer/reader for the rectangle database.

Emits one structure per :class:`LayoutObject` with a BOUNDARY element per
rectangle and a TEXT element per label.  The reader parses exactly what the
writer emits (rectangular boundaries), which is sufficient for round-trip
tests and for handing layouts to external viewers.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..db import LayoutObject
from ..geometry import Rect
from ..tech import Technology

# Record types
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_ENDLIB = 0x0400
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_TEXT = 0x0C00
_TEXTTYPE = 0x1602
_STRING = 0x1906

#: Fixed timestamp (year, month, day, hour, minute, second) — deterministic
#: output beats mtime fidelity for a layout generator.
_TIMESTAMP = (1996, 3, 11, 0, 0, 0)


def _record(rectype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HH", length, rectype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii", "replace")
    if len(data) % 2:
        data += b"\0"
    return data


def _gds_real(value: float) -> bytes:
    """Encode an 8-byte excess-64 base-16 GDSII real."""
    if value == 0:
        return b"\0" * 8
    sign = 0x80 if value < 0 else 0
    value = abs(value)
    exponent = 64
    while value >= 1:
        value /= 16.0
        exponent += 1
    while value < 1 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B", sign | exponent) + mantissa.to_bytes(7, "big")


def _decode_real(data: bytes) -> float:
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0 ** exponent)


def dumps_gds(
    objects: Union[LayoutObject, Sequence[LayoutObject]],
    library: str = "REPRO",
) -> bytes:
    """Serialise one or more layout objects to GDSII bytes.

    Timestamps are fixed, so equal layouts produce byte-identical streams —
    the golden-cell regression hashes this output directly.
    """
    if isinstance(objects, LayoutObject):
        objects = [objects]
    if not objects:
        raise ValueError("nothing to write")
    tech = objects[0].tech

    out = bytearray()
    out += _record(_HEADER, struct.pack(">h", 600))
    out += _record(_BGNLIB, struct.pack(">12h", *(_TIMESTAMP * 2)))
    out += _record(_LIBNAME, _ascii(library))
    user_unit = 1.0 / tech.dbu_per_micron
    meters_per_dbu = 1e-6 / tech.dbu_per_micron
    out += _record(_UNITS, _gds_real(user_unit) + _gds_real(meters_per_dbu))

    for obj in objects:
        out += _record(_BGNSTR, struct.pack(">12h", *(_TIMESTAMP * 2)))
        out += _record(_STRNAME, _ascii(obj.name))
        for rect in obj.nonempty_rects:
            layer = tech.layer(rect.layer)
            out += _record(_BOUNDARY)
            out += _record(_LAYER, struct.pack(">h", layer.gds_number))
            out += _record(_DATATYPE, struct.pack(">h", layer.gds_datatype))
            xy = [
                rect.x1, rect.y1,
                rect.x2, rect.y1,
                rect.x2, rect.y2,
                rect.x1, rect.y2,
                rect.x1, rect.y1,
            ]
            out += _record(_XY, struct.pack(f">{len(xy)}i", *xy))
            out += _record(_ENDEL)
        for label in obj.labels:
            layer = tech.layer(label.layer)
            out += _record(_TEXT)
            out += _record(_LAYER, struct.pack(">h", layer.gds_number))
            out += _record(_TEXTTYPE, struct.pack(">h", 0))
            out += _record(_XY, struct.pack(">2i", label.x, label.y))
            out += _record(_STRING, _ascii(label.text))
            out += _record(_ENDEL)
        out += _record(_ENDSTR)
    out += _record(_ENDLIB)
    return bytes(out)


def write_gds(
    objects: Union[LayoutObject, Sequence[LayoutObject]],
    path: Union[str, Path],
    library: str = "REPRO",
) -> None:
    """Write one or more layout objects to a GDSII file."""
    Path(path).write_bytes(dumps_gds(objects, library))


def read_gds(
    path: Union[str, Path], tech: Technology
) -> List[LayoutObject]:
    """Read a GDSII file produced by :func:`write_gds` back into objects.

    Boundaries must be axis-aligned rectangles (5-point closed outlines);
    anything else raises ``ValueError``.
    """
    data = Path(path).read_bytes()
    by_number: Dict[int, str] = {
        layer.gds_number: layer.name for layer in tech.layers
    }

    objects: List[LayoutObject] = []
    current: Optional[LayoutObject] = None
    element: Optional[str] = None
    element_layer: Optional[int] = None
    element_xy: List[int] = []
    element_text = ""

    index = 0
    while index < len(data):
        length, rectype = struct.unpack_from(">HH", data, index)
        if length < 4:
            raise ValueError("corrupt GDS record")
        payload = data[index + 4: index + length]
        index += length

        if rectype == _BGNSTR:
            current = None
        elif rectype == _STRNAME:
            current = LayoutObject(payload.rstrip(b"\0").decode("ascii"), tech)
            objects.append(current)
        elif rectype == _BOUNDARY:
            element, element_layer, element_xy = "boundary", None, []
        elif rectype == _TEXT:
            element, element_layer, element_xy, element_text = "text", None, [], ""
        elif rectype == _LAYER:
            element_layer = struct.unpack(">h", payload)[0]
        elif rectype == _XY:
            count = len(payload) // 4
            element_xy = list(struct.unpack(f">{count}i", payload))
        elif rectype == _STRING:
            element_text = payload.rstrip(b"\0").decode("ascii")
        elif rectype == _ENDEL:
            if current is None or element_layer is None:
                raise ValueError("element outside structure")
            layer_name = by_number.get(element_layer)
            if layer_name is None:
                raise ValueError(f"unknown GDS layer {element_layer}")
            if element == "boundary":
                for rect in _xy_to_rects(element_xy, layer_name):
                    current.add_rect(rect)
            elif element == "text":
                current.add_label(element_text, element_xy[0], element_xy[1], layer_name)
            element = None
        elif rectype == _ENDLIB:
            break
    return objects


def _xy_to_rects(xy: List[int], layer: str) -> List[Rect]:
    """Convert a boundary outline to rectangles.

    Rectangular outlines map 1:1; any other rectilinear outline is sliced by
    :func:`repro.geometry.decompose_rectilinear` — the database "converts
    polygons into simple rectangular structures" (Sec. 2.1).
    """
    points = list(zip(xy[0::2], xy[1::2]))
    if points and points[0] == points[-1]:
        points = points[:-1]
    xs = {x for x, _ in points}
    ys = {y for _, y in points}
    if len(points) == 4 and len(xs) == 2 and len(ys) == 2:
        return [Rect(min(xs), min(ys), max(xs), max(ys), layer)]
    from ..geometry import decompose_rectilinear

    return decompose_rectilinear(points, layer)

"""Layout database: hierarchical objects, rebuild links, connectivity."""

from .links import ArrayLink, InsideLink, Link
from .netindex import ConnectivityIndex
from .nets import (
    DisjointSet,
    capacitance_report,
    estimate_net_capacitance,
    estimate_net_resistance,
    extract_connectivity,
    extract_connectivity_brute,
    net_is_connected,
    rc_report,
)
from .object import Label, LayoutObject

__all__ = [
    "ArrayLink",
    "InsideLink",
    "Link",
    "ConnectivityIndex",
    "DisjointSet",
    "capacitance_report",
    "estimate_net_capacitance",
    "estimate_net_resistance",
    "extract_connectivity",
    "extract_connectivity_brute",
    "net_is_connected",
    "rc_report",
    "Label",
    "LayoutObject",
]

"""Layout database: hierarchical objects, rebuild links, connectivity."""

from .links import ArrayLink, InsideLink, Link
from .nets import (
    DisjointSet,
    capacitance_report,
    estimate_net_capacitance,
    estimate_net_resistance,
    extract_connectivity,
    net_is_connected,
    rc_report,
)
from .object import Label, LayoutObject

__all__ = [
    "ArrayLink",
    "InsideLink",
    "Link",
    "DisjointSet",
    "capacitance_report",
    "estimate_net_capacitance",
    "estimate_net_resistance",
    "extract_connectivity",
    "net_is_connected",
    "rc_report",
    "Label",
    "LayoutObject",
]

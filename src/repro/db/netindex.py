"""Indexed, shared connectivity extraction.

:func:`repro.db.nets.extract_connectivity_brute` answers "which rects are
electrically one node?" by testing every conducting rect pair — three
quadratic loops (same-layer touching, declared diffused junctions, cut
joins) feeding a union-find.  On the profiled amplifier build that was the
top hotspot: ~5.8M ``Rect.intersects`` calls, repeated once *per net* by
the global router and once per net again by the verification oracles.

The :class:`ConnectivityIndex` removes both multipliers:

* **per-layer sweep candidate generation** — rects are bucketed by layer
  (seq-ordered, the same idiom as :class:`repro.compact.index.
  FrontierIndex`); each interaction (same-layer touching, each declared
  overlap junction, each cut↔plate pair) runs a sort-by-``x1`` interval
  sweep that only tests pairs whose x-ranges can interact, instead of all
  pairs;
* **a cached-components layer** — one index owns one union-find over one
  rect list; :meth:`components`, :meth:`net_is_connected` and
  :meth:`connected_components_by_net` all answer from the same cached
  extraction, so N per-net queries cost one build, not N;
* **incremental appends** — rects appended to the source list after the
  build (the global router laying wires) are folded in by querying the
  existing layer buckets, never by re-extracting.

Exactness contract: :meth:`components` returns *the same partition in the
same order* as the brute-force pass — groups ordered by their first member,
members in source order.  ``tests/test_netindex.py`` pins the equivalence
with a Hypothesis property over random rect soups and with
diffusion/cut-semantics cases mirrored against the brute path.

Staleness: only **appends** to the source list are tracked.  Code that
mutates coordinates, nets, layers or emptiness of already-indexed rects
must call :meth:`invalidate` (or build a fresh index).  Truncating or
replacing the source list triggers a full rebuild on the next query.

Deterministic counters (gated exactly by ``repro perf check``):

* ``nets.pairs_scanned`` — geometric pair tests performed (the brute pass
  counts here too, so indexed-vs-brute ratios are directly comparable);
* ``nets.candidates`` — candidate pairs the index's sweeps generated;
* ``nets.cache_hits`` — queries served from the cached components;
* ``nets.extractions`` — full builds (one per index unless invalidated).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Rect
from ..obs import get_tracer
from ..tech import Technology
from ..tech.layer import LayerKind

__all__ = ["ConnectivityIndex"]


class ConnectivityIndex:
    """Shared, incrementally maintained connectivity over one rect list."""

    __slots__ = (
        "tech", "_source", "_tracked", "_built", "_conducting", "_dsu",
        "_buckets", "_diffusion_layers", "_net_counts", "_net_members",
        "_components", "_by_net", "extractions",
    )

    def __init__(self, rects: Sequence[Rect], tech: Technology) -> None:
        self.tech = tech
        self._source = rects
        self._tracked = 0
        self._built = False
        #: Conducting rects in source order (the union-find's index space).
        self._conducting: List[Rect] = []
        self._dsu: Optional["DisjointSet"] = None
        #: layer -> conducting indices in source order.
        self._buckets: Dict[str, List[int]] = {}
        #: Layer names whose kind is DIFFUSION (same-net-only merging).
        self._diffusion_layers: set = set()
        #: net -> count of non-empty labelled rects (conducting or not);
        #: the denominator of :meth:`net_is_connected`.
        self._net_counts: Dict[str, int] = {}
        #: net -> conducting indices labelled with that net.
        self._net_members: Dict[str, List[int]] = {}
        self._components: Optional[List[List[Rect]]] = None
        self._by_net: Optional[Dict[str, List[List[Rect]]]] = None
        self.extractions = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Force a full re-extraction on the next query.

        Required after mutating coordinates, nets, layers or emptiness of
        rects that were already indexed; plain appends need no call.
        """
        self._built = False

    def sync(self) -> None:
        """Catch up with the source list (appends are incremental)."""
        rects = self._source
        if not self._built or self._tracked > len(rects):
            self._build()
            return
        if self._tracked < len(rects):
            self._append(rects[self._tracked:])
            self._tracked = len(rects)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def components(self) -> List[List[Rect]]:
        """Connected components, identical to the brute-force extraction:
        groups ordered by first member, members in source order."""
        self.sync()
        if self._components is not None:
            get_tracer().count("nets.cache_hits")
            return self._components
        dsu = self._dsu
        groups: Dict[int, List[Rect]] = {}
        for index, rect in enumerate(self._conducting):
            groups.setdefault(dsu.find(index), []).append(rect)
        self._components = list(groups.values())
        return self._components

    def net_is_connected(self, net: str) -> bool:
        """True when every non-empty rect labelled *net* is one component.

        Matches :func:`repro.db.nets.net_is_connected`: nets with at most
        one labelled rect are trivially connected; a labelled rect on a
        non-conducting layer can never join a component, so its net is
        split by definition.
        """
        self.sync()
        labelled = self._net_counts.get(net, 0)
        if labelled <= 1:
            return True
        members = self._net_members.get(net, ())
        if len(members) != labelled:
            return False  # some labelled rect sits on a non-conducting layer
        find = self._dsu.find
        root = find(members[0])
        for index in members[1:]:
            if find(index) != root:
                return False
        return True

    def connected_components_by_net(self) -> Dict[str, List[List[Rect]]]:
        """net -> components containing at least one rect of that net.

        One pass over the cached components; the component lists are shared
        with :meth:`components` (do not mutate them).
        """
        self.sync()
        if self._by_net is not None:
            get_tracer().count("nets.cache_hits")
            return self._by_net
        by_net: Dict[str, List[List[Rect]]] = {}
        for component in self.components():
            seen: set = set()
            for rect in component:
                net = rect.net
                if net is not None and net not in seen:
                    seen.add(net)
                    by_net.setdefault(net, []).append(component)
        self._by_net = by_net
        return by_net

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def _layer_info(self) -> Dict[str, Tuple[bool, bool]]:
        """layer name -> (conducting, is_diffusion), memoized per build."""
        info: Dict[str, Tuple[bool, bool]] = {}
        for rect in self._source:
            name = rect.layer
            if name not in info:
                layer = self.tech.layer(name)
                info[name] = (layer.conducting, layer.kind is LayerKind.DIFFUSION)
        return info

    def _build(self) -> None:
        from .nets import DisjointSet

        tracer = get_tracer()
        rects = self._source
        self._conducting = []
        self._buckets = {}
        self._diffusion_layers = set()
        self._net_counts = {}
        self._net_members = {}
        self._components = None
        self._by_net = None

        info = self._layer_info()
        conducting = self._conducting
        buckets = self._buckets
        for rect in rects:
            if rect.is_empty:
                continue
            if rect.net is not None:
                self._net_counts[rect.net] = self._net_counts.get(rect.net, 0) + 1
            conducts, diffusion = info[rect.layer]
            if not conducts or (diffusion and rect.net is None):
                continue
            index = len(conducting)
            conducting.append(rect)
            buckets.setdefault(rect.layer, []).append(index)
            if diffusion:
                self._diffusion_layers.add(rect.layer)
            if rect.net is not None:
                self._net_members.setdefault(rect.net, []).append(index)

        self._dsu = DisjointSet(len(conducting))
        scanned = 0

        # Same-layer touching (same-net-only on diffusion: crossing gates
        # split an active region electrically, so each net sweeps alone).
        for layer, indices in buckets.items():
            if layer in self._diffusion_layers:
                by_net: Dict[str, List[int]] = {}
                for index in indices:
                    by_net.setdefault(conducting[index].net, []).append(index)
                for group in by_net.values():
                    scanned += self._sweep_touching(group)
            else:
                scanned += self._sweep_touching(indices)

        # Declared diffused junctions: overlap connects directly.
        for layer_a, layer_b in self.tech.overlap_connections():
            if layer_a == layer_b:
                continue
            a_bucket = buckets.get(layer_a)
            b_bucket = buckets.get(layer_b)
            if a_bucket and b_bucket:
                scanned += self._sweep_intersecting(a_bucket, b_bucket)

        # Cross-layer through cuts: a cut rect joins everything it overlaps
        # on the layer pair(s) it connects.
        for layer, indices in buckets.items():
            for bottom, top in self.tech.connected_layers(layer):
                for plate_layer in (bottom, top):
                    plate_bucket = buckets.get(plate_layer)
                    if plate_bucket:
                        scanned += self._sweep_intersecting(indices, plate_bucket)

        self._built = True
        self._tracked = len(rects)
        self.extractions += 1
        tracer.count("nets.extractions")
        tracer.count("nets.candidates", scanned)
        tracer.count("nets.pairs_scanned", scanned)

    def _sweep_touching(self, indices: List[int]) -> int:
        """Closed-interval x-sweep; unions pairs that touch or overlap.

        Returns the number of candidate pairs tested.  Stable sort on
        ``x1`` keeps ties in source order; the active list holds every
        earlier rect whose right edge has not yet passed the sweep line,
        so exactly the pairs with touching x-ranges are tested.
        """
        conducting = self._conducting
        union = self._dsu.union
        items = sorted(indices, key=lambda index: conducting[index].x1)
        active: List[int] = []
        scanned = 0
        for i in items:
            rect = conducting[i]
            x1 = rect.x1
            y1 = rect.y1
            y2 = rect.y2
            keep: List[int] = []
            for j in active:
                other = conducting[j]
                if other.x2 < x1:
                    continue
                keep.append(j)
                scanned += 1
                if other.y1 <= y2 and y1 <= other.y2:
                    union(i, j)
            keep.append(i)
            active = keep
        return scanned

    def _sweep_intersecting(self, a_indices: List[int], b_indices: List[int]) -> int:
        """Open-interval x-sweep between two buckets; unions overlaps.

        Returns the number of candidate pairs tested.  Only cross-bucket
        pairs are candidates; interiors must overlap (edge-touching does
        not connect across layers, matching ``Rect.intersects``).
        """
        conducting = self._conducting
        union = self._dsu.union
        events = sorted(
            [(conducting[i].x1, 0, i) for i in a_indices]
            + [(conducting[i].x1, 1, i) for i in b_indices]
        )
        actives: List[List[int]] = [[], []]
        scanned = 0
        for x1, side, i in events:
            rect = conducting[i]
            y1 = rect.y1
            y2 = rect.y2
            keep: List[int] = []
            for j in actives[1 - side]:
                other = conducting[j]
                if other.x2 <= x1:
                    continue
                keep.append(j)
                scanned += 1
                if other.y1 < y2 and y1 < other.y2:
                    union(i, j)
            actives[1 - side] = keep
            actives[side].append(i)
        return scanned

    # ------------------------------------------------------------------
    # incremental appends
    # ------------------------------------------------------------------
    def _append(self, fresh: Sequence[Rect]) -> None:
        """Fold appended rects in by querying the existing layer buckets."""
        tracer = get_tracer()
        tech = self.tech
        conducting = self._conducting
        buckets = self._buckets
        dsu = self._dsu
        scanned = 0
        added_conducting = False
        for rect in fresh:
            if rect.is_empty:
                continue
            if rect.net is not None:
                self._net_counts[rect.net] = self._net_counts.get(rect.net, 0) + 1
            layer = tech.layer(rect.layer)
            diffusion = layer.kind is LayerKind.DIFFUSION
            if not layer.conducting or (diffusion and rect.net is None):
                continue
            index = dsu.grow()
            conducting.append(rect)
            added_conducting = True
            if diffusion:
                self._diffusion_layers.add(rect.layer)
            if rect.net is not None:
                self._net_members.setdefault(rect.net, []).append(index)

            x1 = rect.x1
            y1 = rect.y1
            x2 = rect.x2
            y2 = rect.y2

            # Same-layer touching (same-net only on diffusion).
            for j in buckets.get(rect.layer, ()):
                other = conducting[j]
                scanned += 1
                if diffusion and other.net != rect.net:
                    continue
                if (other.x1 <= x2 and x1 <= other.x2
                        and other.y1 <= y2 and y1 <= other.y2):
                    dsu.union(index, j)

            # Declared diffused junctions touching this rect's layer.
            for layer_a, layer_b in tech.overlap_connections():
                if layer_a == layer_b:
                    continue
                partner = None
                if layer_a == rect.layer:
                    partner = layer_b
                elif layer_b == rect.layer:
                    partner = layer_a
                if partner is None:
                    continue
                for j in buckets.get(partner, ()):
                    other = conducting[j]
                    scanned += 1
                    if (other.x1 < x2 and x1 < other.x2
                            and other.y1 < y2 and y1 < other.y2):
                        dsu.union(index, j)

            # This rect as a cut over its plate layers...
            plate_layers = [
                plate
                for bottom, top in tech.connected_layers(rect.layer)
                for plate in (bottom, top)
            ]
            # ... and as a plate under existing cut rects.
            cut_layers = [
                cut_layer
                for cut_layer in buckets
                if any(
                    rect.layer in pair
                    for pair in tech.connected_layers(cut_layer)
                )
            ]
            for partner in plate_layers + cut_layers:
                for j in buckets.get(partner, ()):
                    other = conducting[j]
                    scanned += 1
                    if (other.x1 < x2 and x1 < other.x2
                            and other.y1 < y2 and y1 < other.y2):
                        dsu.union(index, j)

            # Enter the buckets only after the scans: a rect never pairs
            # with itself, and fresh rects pair with each other exactly
            # once (the earlier one is already bucketed).
            buckets.setdefault(rect.layer, []).append(index)

        if added_conducting:
            self._components = None
            self._by_net = None
        tracer.count("nets.candidates", scanned)
        tracer.count("nets.pairs_scanned", scanned)

"""The hierarchical layout object — the environment's working data structure.

A :class:`LayoutObject` is what a PLDL entity builds: a bag of rectangles
plus the rebuild links recorded by the primitives that created them.  Objects
are constructed stand-alone and then *compacted into* a parent object
(Sec. 2.3); merging flattens the child's geometry into the parent, which is
why "only outer edges of the main object have to be kept in the data
structure".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import Direction, Rect, Transform, bounding_box, union_area
from ..obs.provenance import get_recorder
from ..tech import Technology
from ..tech.layer import LayerKind
from .links import ArrayLink, InsideLink, Link


class Label:
    """A text annotation (exported to GDS as a text element)."""

    def __init__(self, text: str, x: int, y: int, layer: str) -> None:
        self.text = text
        self.x = x
        self.y = y
        self.layer = layer

    def copy(self) -> "Label":
        """Return an independent copy."""
        return Label(self.text, self.x, self.y, self.layer)

    def __repr__(self) -> str:
        return f"Label({self.text!r}, {self.x}, {self.y}, {self.layer!r})"


class LayoutObject:
    """A named, technology-bound collection of rectangles and rebuild links."""

    def __init__(self, name: str, tech: Technology) -> None:
        self.name = name
        self.tech = tech
        self.rects: List[Rect] = []
        self.links: List[Link] = []
        self.labels: List[Label] = []
        #: Lazily built incremental spatial index (compact.index).  Never
        #: affects results — only how fast the compactor finds them.
        self._index = None

    # ------------------------------------------------------------------
    # spatial index
    # ------------------------------------------------------------------
    def frontier_index(self):
        """The object's incremental frontier index, built/synced on demand.

        Appends since the last query are folded in incrementally; a
        replaced rect list or an explicit :meth:`invalidate_index` triggers
        a full rebuild.  See :class:`repro.compact.index.FrontierIndex`.
        """
        if self._index is None:
            from ..compact.index import FrontierIndex

            self._index = FrontierIndex(self)
        self._index.sync()
        return self._index

    def invalidate_index(self) -> None:
        """Force a full index rebuild on the next query.

        Required after mutating rect coordinates, nets, layers or
        ``no_overlap`` flags directly instead of through this object's
        methods.
        """
        if self._index is not None:
            self._index.mark_dirty()

    def __getstate__(self):
        # The index maps rects by id(); ids do not survive pickling (the
        # parallel order optimizer ships step objects to worker processes).
        state = self.__dict__.copy()
        state["_index"] = None
        return state

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_rect(self, rect: Rect) -> Rect:
        """Append a rectangle (validating its layer) and return it."""
        self.tech.layer(rect.layer)
        recorder = get_recorder()
        if recorder.enabled and rect.prov is None:
            recorder.stamp(rect)
        self.rects.append(rect)
        return rect

    def add_link(self, link: Link) -> Link:
        """Register a rebuild link."""
        self.links.append(link)
        return link

    def add_label(self, text: str, x: int, y: int, layer: str) -> Label:
        """Attach a text label."""
        label = Label(text, x, y, layer)
        self.labels.append(label)
        return label

    def merge(self, other: "LayoutObject") -> List[Rect]:
        """Copy *other*'s geometry, links and labels into this object.

        Returns the newly added rect objects (in *other*'s rect order) so the
        caller — typically the compactor — can keep tracking them.
        """
        mapping: Dict[int, Rect] = {}
        added: List[Rect] = []
        for rect in other.rects:
            clone = rect.copy()
            mapping[id(rect)] = clone
            self.rects.append(clone)
            added.append(clone)
        for link in other.links:
            self.links.append(link.remapped(mapping))
        for label in other.labels:
            self.labels.append(label.copy())
        return added

    def copy(self, name: Optional[str] = None) -> "LayoutObject":
        """Deep copy — the PLDL statement ``trans2 = trans1``."""
        clone = self.snapshot()
        if name is not None:
            clone.name = name
        return clone

    def snapshot(self) -> "LayoutObject":
        """Deep copy tuned for state caching (the order optimizer's trees).

        Equivalent to :meth:`copy` but skips object construction overhead and
        layer re-validation: rects, links and labels are cloned directly with
        link references remapped.  The search tree snapshots one object per
        visited order prefix, so this is a hot path.
        """
        clone = LayoutObject.__new__(LayoutObject)
        clone.name = self.name
        clone.tech = self.tech
        mapping: Dict[int, Rect] = {}
        rects: List[Rect] = []
        for rect in self.rects:
            twin = rect.copy()
            mapping[id(rect)] = twin
            rects.append(twin)
        clone.rects = rects
        clone.links = [link.remapped(mapping) for link in self.links]
        clone.labels = [label.copy() for label in self.labels]
        # Carry the spatial index (with its warm frontier caches) across the
        # snapshot: rect positions are preserved, so the clone's index is
        # this one with every rect reference remapped.  The search-tree
        # optimizer snapshots one layout per visited order prefix; without
        # this the clone would re-sweep every layer on its first step.
        index = self._index
        clone._index = (
            index.clone_into(clone, mapping)
            if index is not None and index.in_sync()
            else None
        )
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nonempty_rects(self) -> List[Rect]:
        """All rects with positive area (empty ones are collapsed array cuts)."""
        return [r for r in self.rects if not r.is_empty]

    def rects_on(self, layer: str) -> List[Rect]:
        """Non-empty rects on *layer*."""
        return [r for r in self.nonempty_rects if r.layer == layer]

    def rects_on_net(self, net: str) -> List[Rect]:
        """Non-empty rects assigned to *net*."""
        return [r for r in self.nonempty_rects if r.net == net]

    def nets(self) -> Set[str]:
        """All net names present."""
        return {r.net for r in self.nonempty_rects if r.net}

    def layers(self) -> Set[str]:
        """All layers with geometry."""
        return {r.layer for r in self.nonempty_rects}

    def bbox(self) -> Optional[Rect]:
        """Bounding box over all non-empty rects, or None when empty.

        Served from the :class:`~repro.compact.index.FrontierIndex` cache
        when one is attached and current (the compactor queries the bbox
        after every step); otherwise a from-scratch scan.
        """
        index = self._index
        if index is not None and index.in_sync():
            return index.bbox()
        return bounding_box(self.nonempty_rects)

    @property
    def width(self) -> int:
        """Bounding-box width (0 when empty)."""
        box = self.bbox()
        return box.width if box else 0

    @property
    def height(self) -> int:
        """Bounding-box height (0 when empty)."""
        box = self.bbox()
        return box.height if box else 0

    def area(self) -> int:
        """Bounding-box area — the primary term of the rating function."""
        box = self.bbox()
        return box.area if box else 0

    def drawn_area(self) -> int:
        """Union area of the drawn geometry (overlaps counted once)."""
        return union_area(self.nonempty_rects)

    def is_empty(self) -> bool:
        """True when the object holds no non-empty geometry.

        Served from the index's exact non-empty count when one is attached
        and current; otherwise a rect scan.
        """
        index = self._index
        if index is not None and index.in_sync():
            return index.is_empty()
        return not self.nonempty_rects

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def translate(self, dx: int, dy: int) -> "LayoutObject":
        """Move every rect and label; returns self."""
        for rect in self.rects:
            rect.translate(dx, dy)
        for label in self.labels:
            label.x += dx
            label.y += dy
        if self._index is not None:
            # A uniform shift preserves every sorted order and sweep result.
            self._index.note_translate(dx, dy)
        return self

    def apply_transform(self, transform: Transform) -> "LayoutObject":
        """Apply an orthogonal transform in place; returns self.

        Rect objects are mutated (not replaced) so links remain valid.
        """
        for rect in self.rects:
            image = transform.apply_rect(rect)
            rect.x1, rect.y1, rect.x2, rect.y2 = image.as_tuple()
            rect._edges = image._edges
        for label in self.labels:
            label.x, label.y = transform.apply_point(label.x, label.y)
        self.invalidate_index()
        return self

    def mirror_x(self, axis_y: int = 0) -> "LayoutObject":
        """Mirror about the horizontal line y = axis_y."""
        return self.apply_transform(Transform.mirror_about_x(axis_y))

    def mirror_y(self, axis_x: int = 0) -> "LayoutObject":
        """Mirror about the vertical line x = axis_x."""
        return self.apply_transform(Transform.mirror_about_y(axis_x))

    def normalize(self) -> "LayoutObject":
        """Translate so the bounding box's lower-left corner sits at (0, 0)."""
        box = self.bbox()
        if box is not None:
            self.translate(-box.x1, -box.y1)
        return self

    def set_net(self, net: str, layer: Optional[str] = None) -> "LayoutObject":
        """Assign *net* to every rect (optionally restricted to *layer*)."""
        for rect in self.rects:
            if layer is None or rect.layer == layer:
                rect.net = net
        self.invalidate_index()
        return self

    def rename_nets(self, mapping: Dict[str, str]) -> "LayoutObject":
        """Rename nets per *mapping*; used when mirroring matched halves.

        Swaps are supported (``{"a": "b", "b": "a"}``) — the mapping is
        applied simultaneously, not sequentially.
        """
        for rect in self.rects:
            if rect.net in mapping:
                rect.net = mapping[rect.net]
        for link in self.links:
            net = getattr(link, "net", None)
            if net in mapping:
                link.net = mapping[net]
        self.invalidate_index()
        return self

    # ------------------------------------------------------------------
    # variable-edge machinery (Sec. 2.3 / Fig. 5b)
    # ------------------------------------------------------------------
    def _min_dimension(self, rect: Rect) -> int:
        """Smallest legal extent of *rect* along either axis."""
        cut = self.tech.rules.cut_size(rect.layer)
        if cut is not None:
            return cut
        width = self.tech.rules.width(rect.layer)
        return width if width is not None else 0

    def shrink_limit(self, rect: Rect, direction: Direction) -> int:
        """Furthest coordinate the edge facing *direction* may move inward.

        For NORTH/EAST edges the result is a lower bound on the coordinate;
        for SOUTH/WEST edges an upper bound.  The limit honours the rect's
        own minimum width, explicit edge bounds, and — through the rebuild
        links — the survival of enclosed rects and at least one array cut.
        """
        return self._shrink_limit(rect, direction, frozenset())

    def _shrink_limit(self, rect: Rect, direction: Direction, visiting: frozenset) -> int:
        sign = 1 if direction.is_positive else -1
        key = (id(rect), direction)
        if key in visiting:
            return rect.edge_coord(direction)
        visiting = visiting | {key}

        bounds: List[int] = []
        # The rect itself must keep its minimum extent.
        opposite = rect.edge_coord(direction.opposite)
        bounds.append(opposite + sign * self._min_dimension(rect))

        # Explicit per-edge bounds.
        prop = rect.edge(direction)
        if sign > 0 and prop.min_coord is not None:
            bounds.append(prop.min_coord)
        if sign < 0 and prop.max_coord is not None:
            bounds.append(prop.max_coord)

        for link in self.links:
            if isinstance(link, InsideLink):
                for outer, margin in link.outers:
                    if outer is rect:
                        inner_limit = self._shrink_limit(link.inner, direction, visiting)
                        bounds.append(inner_limit + sign * margin)
            elif isinstance(link, ArrayLink):
                for outer, margin in link.outers:
                    if outer is rect:
                        far = self._array_far_side(link, direction, rect)
                        bounds.append(far + sign * (link.cut_size + margin))

        return max(bounds) if sign > 0 else min(bounds)

    def _array_far_side(self, link: ArrayLink, direction: Direction, moving: Rect) -> int:
        """Region boundary opposite the moving edge of an array's outers."""
        other = direction.opposite
        coords = [
            outer.edge_coord(other) - other.dx * margin - other.dy * margin
            for outer, margin in link.outers
        ]
        # The region's far side is the tightest of the outers' far edges.
        return max(coords) if direction.is_positive else min(coords)

    def move_edge(self, rect: Rect, direction: Direction, coord: int) -> int:
        """Move an edge inward to *coord* (clamped to the shrink limit).

        Dependent links are rebuilt.  Returns the coordinate actually set.
        """
        limit = self.shrink_limit(rect, direction)
        if direction.is_positive:
            coord = max(coord, limit)
            coord = min(coord, rect.edge_coord(direction))
        else:
            coord = min(coord, limit)
            coord = max(coord, rect.edge_coord(direction))
        rect.set_edge_coord(direction, coord)
        self._rebuild_links_tracked(rect)
        return coord

    def move_stretch(self, rect: Rect, direction: Direction, coord: int) -> None:
        """Move an edge *outward* to *coord* (auto-connection stretch).

        Any enclosure clamp on that edge is released first so rebuilds do not
        pull the stretched wire back; dependent arrays are then recomputed
        (a longer wire may admit more cuts).
        """
        current = rect.edge_coord(direction)
        outward = coord > current if direction.is_positive else coord < current
        if not outward:
            return
        for link in self.links:
            if isinstance(link, InsideLink) and link.inner is rect:
                link.release(direction)
        rect.set_edge_coord(direction, coord)
        self._rebuild_links_tracked(rect)

    def rebuild_links(self) -> None:
        """Re-solve every link to a fixpoint (bounded passes).

        Callers typically mutated rect coordinates directly beforehand
        (primitive construction), so any live index is conservatively
        invalidated; the compactor's edge moves go through the tracked
        variant instead, which updates the index precisely.
        """
        self._solve_links()
        self.invalidate_index()

    def _rebuild_links_tracked(self, moved: Rect) -> None:
        """Re-solve links after an edge move, keeping the index current."""
        if self._index is None:
            self._solve_links()
            return
        changed = self._solve_links(collect=True)
        changed.add(id(moved))
        self._index.note_changed_ids(changed)

    def _solve_links(self, collect: bool = False) -> Optional[Set[int]]:
        """Fixpoint link solve; optionally return ids of rects that moved."""
        changed: Optional[Set[int]] = set() if collect else None
        for _ in range(len(self.links) + 2):
            before = {}
            for link in self.links:
                for r in link.involved_rects():
                    before[id(r)] = r.as_tuple()
            for link in self.links:
                link.rebuild()
            stable = True
            for link in self.links:
                for r in link.involved_rects():
                    rid = id(r)
                    if before.get(rid) != r.as_tuple():
                        stable = False
                        if changed is not None:
                            changed.add(rid)
            if stable:
                break
        return changed

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"LayoutObject({self.name!r}, rects={len(self.nonempty_rects)},"
            f" bbox={self.bbox()!r})"
        )

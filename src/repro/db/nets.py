"""Electrical connectivity extraction and parasitic estimation.

Used for three things:

* verifying the compactor's same-potential auto-connection actually connected
  what it merged (Fig. 5a);
* the electrical term of the optimizer's rating function (Sec. 2.4);
* reporting "the quality (parasitic capacitances of the internal nodes)" of a
  finished module, as the paper does for the BiCMOS amplifier.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import Rect
from ..tech import Technology


class DisjointSet:
    """Union-find over integer indices with path compression."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, index: int) -> int:
        """Representative of the set containing *index*."""
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing *a* and *b*."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def extract_connectivity(rects: Sequence[Rect], tech: Technology) -> List[List[Rect]]:
    """Group conducting rects into electrically connected components.

    Two rects connect when they touch/overlap on the same layer, or when a
    cut rect overlaps both plates of a layer pair the technology declares the
    cut to join (e.g. ``contact`` joins ``poly`` to ``metal1``).

    Diffusion is special: an unlabelled active region is a device body, not
    interconnect — the source and drain sides of a transistor both touch it
    yet are separated by the channel.  Unlabelled diffusion is therefore
    excluded, and labelled diffusion rects only connect to each other when
    they carry the same net.
    """
    from ..tech.layer import LayerKind

    def is_diffusion(rect: Rect) -> bool:
        return tech.layer(rect.layer).kind is LayerKind.DIFFUSION

    conducting = [
        r
        for r in rects
        if not r.is_empty
        and tech.layer(r.layer).conducting
        and not (is_diffusion(r) and r.net is None)
    ]
    dsu = DisjointSet(len(conducting))

    by_layer: Dict[str, List[int]] = {}
    for index, rect in enumerate(conducting):
        by_layer.setdefault(rect.layer, []).append(index)

    # Same-layer touching (same-net only on diffusion: crossing gates split
    # an active region electrically).
    for indices in by_layer.values():
        for pos, i in enumerate(indices):
            for j in indices[pos + 1:]:
                a, b = conducting[i], conducting[j]
                if is_diffusion(a) and a.net != b.net:
                    continue
                if a.touches_or_intersects(b):
                    dsu.union(i, j)

    # Declared diffused junctions: overlapping shapes connect directly.
    for i, a in enumerate(conducting):
        for j in range(i + 1, len(conducting)):
            b = conducting[j]
            if a.layer != b.layer and tech.overlap_connected(a.layer, b.layer):
                if a.intersects(b):
                    dsu.union(i, j)

    # Cross-layer through cuts.
    for cut_index, cut in enumerate(conducting):
        for bottom, top in tech.connected_layers(cut.layer):
            bottoms = [
                i for i in by_layer.get(bottom, []) if conducting[i].intersects(cut)
            ]
            tops = [i for i in by_layer.get(top, []) if conducting[i].intersects(cut)]
            for i in bottoms + tops:
                dsu.union(cut_index, i)

    groups: Dict[int, List[Rect]] = {}
    for index, rect in enumerate(conducting):
        groups.setdefault(dsu.find(index), []).append(rect)
    return list(groups.values())


def net_is_connected(rects: Sequence[Rect], tech: Technology, net: str) -> bool:
    """True when every rect labelled *net* sits in one connected component."""
    labelled = [r for r in rects if r.net == net and not r.is_empty]
    if len(labelled) <= 1:
        return True
    components = extract_connectivity(rects, tech)
    for component in components:
        members = set(map(id, component))
        if all(id(r) in members for r in labelled):
            return True
    return False


def estimate_net_capacitance(
    rects: Iterable[Rect], tech: Technology, net: str
) -> float:
    """Area + perimeter capacitance of all geometry on *net* (aF)."""
    total = 0.0
    for rect in rects:
        if rect.net != net or rect.is_empty:
            continue
        model = tech.capacitance(rect.layer)
        total += model.area * rect.area
        total += model.perimeter * 2 * (rect.width + rect.height)
    return total


def capacitance_report(
    rects: Sequence[Rect], tech: Technology
) -> Dict[str, float]:
    """Per-net capacitance summary (aF), sorted by net name."""
    nets = sorted({r.net for r in rects if r.net and not r.is_empty})
    return {net: estimate_net_capacitance(rects, tech, net) for net in nets}


def estimate_net_resistance(
    rects: Iterable[Rect], tech: Technology, net: str
) -> float:
    """Series resistance estimate of the wiring on *net* (Ω).

    Each rect contributes its sheet resistance times its aspect ratio along
    the long axis (squares of material).  A crude serial model — rects of a
    snaking wire add, branching is ignored — but exactly what the paper's
    partitioning needs to weigh "poly-wire resistance" against alternatives.
    """
    total = 0.0
    for rect in rects:
        if rect.net != net or rect.is_empty:
            continue
        rho = tech.sheet_rho(rect.layer)
        if rho <= 0:
            continue
        long_side = max(rect.width, rect.height)
        short_side = min(rect.width, rect.height)
        total += rho * long_side / short_side
    return total


def rc_report(
    rects: Sequence[Rect], tech: Technology
) -> Dict[str, Tuple[float, float, float]]:
    """Per-net (R in Ω, C in aF, RC in ps) summary, sorted by net name.

    The RC product converts as Ω·aF = 10⁻¹⁸ s = 10⁻⁶ ps, reported in ps.
    """
    nets = sorted({r.net for r in rects if r.net and not r.is_empty})
    report: Dict[str, Tuple[float, float, float]] = {}
    for net in nets:
        resistance = estimate_net_resistance(rects, tech, net)
        capacitance = estimate_net_capacitance(rects, tech, net)
        report[net] = (resistance, capacitance, resistance * capacitance * 1e-6)
    return report

"""Electrical connectivity extraction and parasitic estimation.

Used for three things:

* verifying the compactor's same-potential auto-connection actually connected
  what it merged (Fig. 5a);
* the electrical term of the optimizer's rating function (Sec. 2.4);
* reporting "the quality (parasitic capacitances of the internal nodes)" of a
  finished module, as the paper does for the BiCMOS amplifier.

:func:`extract_connectivity` delegates to the indexed extractor
(:class:`repro.db.netindex.ConnectivityIndex` — per-layer sweeps feeding the
union-find); the original all-pairs implementation survives as
:func:`extract_connectivity_brute`, the reference the equivalence tests and
benchmarks race the index against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import Rect
from ..obs import get_tracer
from ..tech import Technology


class DisjointSet:
    """Union-find over integer indices with path compression and
    union-by-size (small tree under big, so chains stay logarithmic even
    on sorted merge orders)."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))
        self._size = [1] * size

    def grow(self, count: int = 1) -> int:
        """Append *count* fresh singleton sets; returns the first new index."""
        start = len(self._parent)
        self._parent.extend(range(start, start + count))
        self._size.extend([1] * count)
        return start

    def find(self, index: int) -> int:
        """Representative of the set containing *index*."""
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing *a* and *b* (by size)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


def extract_connectivity(rects: Sequence[Rect], tech: Technology) -> List[List[Rect]]:
    """Group conducting rects into electrically connected components.

    Two rects connect when they touch/overlap on the same layer, or when a
    cut rect overlaps both plates of a layer pair the technology declares the
    cut to join (e.g. ``contact`` joins ``poly`` to ``metal1``).

    Diffusion is special: an unlabelled active region is a device body, not
    interconnect — the source and drain sides of a transistor both touch it
    yet are separated by the channel.  Unlabelled diffusion is therefore
    excluded, and labelled diffusion rects only connect to each other when
    they carry the same net.

    Thin wrapper over a one-shot :class:`~repro.db.netindex.
    ConnectivityIndex`; repeated per-net queries should build and share one
    index instead of calling this in a loop.
    """
    from .netindex import ConnectivityIndex

    return ConnectivityIndex(rects, tech).components()


def extract_connectivity_brute(
    rects: Sequence[Rect], tech: Technology
) -> List[List[Rect]]:
    """Reference all-pairs extraction (see :func:`extract_connectivity`).

    Quadratic in the conducting rect count; kept as the oracle the indexed
    path is verified and benchmarked against.  Counts every pair test on
    the ``nets.pairs_scanned`` tracer counter.
    """
    from ..tech.layer import LayerKind

    def is_diffusion(rect: Rect) -> bool:
        return tech.layer(rect.layer).kind is LayerKind.DIFFUSION

    conducting = [
        r
        for r in rects
        if not r.is_empty
        and tech.layer(r.layer).conducting
        and not (is_diffusion(r) and r.net is None)
    ]
    dsu = DisjointSet(len(conducting))
    scanned = 0

    by_layer: Dict[str, List[int]] = {}
    for index, rect in enumerate(conducting):
        by_layer.setdefault(rect.layer, []).append(index)

    # Same-layer touching (same-net only on diffusion: crossing gates split
    # an active region electrically).
    for indices in by_layer.values():
        for pos, i in enumerate(indices):
            for j in indices[pos + 1:]:
                a, b = conducting[i], conducting[j]
                scanned += 1
                if is_diffusion(a) and a.net != b.net:
                    continue
                if a.touches_or_intersects(b):
                    dsu.union(i, j)

    # Declared diffused junctions: overlapping shapes connect directly.
    for i, a in enumerate(conducting):
        for j in range(i + 1, len(conducting)):
            b = conducting[j]
            scanned += 1
            if a.layer != b.layer and tech.overlap_connected(a.layer, b.layer):
                if a.intersects(b):
                    dsu.union(i, j)

    # Cross-layer through cuts.
    for cut_index, cut in enumerate(conducting):
        for bottom, top in tech.connected_layers(cut.layer):
            scanned += len(by_layer.get(bottom, [])) + len(by_layer.get(top, []))
            bottoms = [
                i for i in by_layer.get(bottom, []) if conducting[i].intersects(cut)
            ]
            tops = [i for i in by_layer.get(top, []) if conducting[i].intersects(cut)]
            for i in bottoms + tops:
                dsu.union(cut_index, i)

    get_tracer().count("nets.pairs_scanned", scanned)

    groups: Dict[int, List[Rect]] = {}
    for index, rect in enumerate(conducting):
        groups.setdefault(dsu.find(index), []).append(rect)
    return list(groups.values())


def net_is_connected(rects: Sequence[Rect], tech: Technology, net: str) -> bool:
    """True when every rect labelled *net* sits in one connected component.

    Only the component containing the first labelled rect can possibly hold
    them all, so the scan stops as soon as that component is found.
    """
    labelled = [r for r in rects if r.net == net and not r.is_empty]
    if len(labelled) <= 1:
        return True
    components = extract_connectivity(rects, tech)
    first = id(labelled[0])
    for component in components:
        members = set(map(id, component))
        if first in members:
            return all(id(r) in members for r in labelled)
    # The first labelled rect joined no component (non-conducting layer):
    # the net cannot be electrically whole.
    return False


def estimate_net_capacitance(
    rects: Iterable[Rect], tech: Technology, net: str
) -> float:
    """Area + perimeter capacitance of all geometry on *net* (aF)."""
    total = 0.0
    for rect in rects:
        if rect.net != net or rect.is_empty:
            continue
        model = tech.capacitance(rect.layer)
        total += model.area * rect.area
        total += model.perimeter * 2 * (rect.width + rect.height)
    return total


def capacitance_report(
    rects: Sequence[Rect], tech: Technology
) -> Dict[str, float]:
    """Per-net capacitance summary (aF), sorted by net name.

    Single pass over the rects — per-net accumulation in rect order keeps
    the float sums identical to the per-net scans it replaced.
    """
    totals: Dict[str, float] = {}
    for rect in rects:
        if not rect.net or rect.is_empty:
            continue
        model = tech.capacitance(rect.layer)
        # Two separate additions, exactly as estimate_net_capacitance sums.
        total = totals.get(rect.net, 0.0)
        total += model.area * rect.area
        total += model.perimeter * 2 * (rect.width + rect.height)
        totals[rect.net] = total
    return {net: totals[net] for net in sorted(totals)}


def estimate_net_resistance(
    rects: Iterable[Rect], tech: Technology, net: str
) -> float:
    """Series resistance estimate of the wiring on *net* (Ω).

    Each rect contributes its sheet resistance times its aspect ratio along
    the long axis (squares of material).  A crude serial model — rects of a
    snaking wire add, branching is ignored — but exactly what the paper's
    partitioning needs to weigh "poly-wire resistance" against alternatives.
    """
    total = 0.0
    for rect in rects:
        if rect.net != net or rect.is_empty:
            continue
        rho = tech.sheet_rho(rect.layer)
        if rho <= 0:
            continue
        long_side = max(rect.width, rect.height)
        short_side = min(rect.width, rect.height)
        total += rho * long_side / short_side
    return total


def rc_report(
    rects: Sequence[Rect], tech: Technology
) -> Dict[str, Tuple[float, float, float]]:
    """Per-net (R in Ω, C in aF, RC in ps) summary, sorted by net name.

    The RC product converts as Ω·aF = 10⁻¹⁸ s = 10⁻⁶ ps, reported in ps.
    Both the R and C terms accumulate in one shared pass over the rects
    (per-net sums in rect order, so the floats match the per-net scans).
    """
    resistances: Dict[str, float] = {}
    capacitances: Dict[str, float] = {}
    for rect in rects:
        if not rect.net or rect.is_empty:
            continue
        net = rect.net
        model = tech.capacitance(rect.layer)
        capacitance = capacitances.get(net, 0.0)
        capacitance += model.area * rect.area
        capacitance += model.perimeter * 2 * (rect.width + rect.height)
        capacitances[net] = capacitance
        resistances.setdefault(net, 0.0)
        rho = tech.sheet_rho(rect.layer)
        if rho > 0:
            long_side = max(rect.width, rect.height)
            short_side = min(rect.width, rect.height)
            resistances[net] += rho * long_side / short_side
    report: Dict[str, Tuple[float, float, float]] = {}
    for net in sorted(capacitances):
        resistance = resistances[net]
        capacitance = capacitances[net]
        report[net] = (resistance, capacitance, resistance * capacitance * 1e-6)
    return report

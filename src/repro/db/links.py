"""Rebuild links: the dependency records behind variable-edge optimization.

Sec. 2.3: "If an edge is variable and defines the minimum distance between the
two objects, the compactor tries to move it ... The objects affected by the
movement are rebuilt automatically" — e.g. in Fig. 5b the metal1 rectangle of
a contact row is shrunk and "the array of contact-rectangles was recalculated".

Primitives register a link for every geometric dependency they create:

* :class:`InsideLink` — an inner rectangle must stay inside one or more outer
  rectangles with per-outer margins (INBOX).
* :class:`ArrayLink` — a maximal equidistant grid of cut rectangles inside the
  intersection of its outer rectangles (ARRAY).

When the compactor moves an edge, the owning :class:`~repro.db.object.
LayoutObject` re-solves the affected links, clamping inner rectangles and
re-placing arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Direction, Rect
from ..obs.provenance import get_recorder


class Link:
    """Base class for geometric dependency records."""

    def rebuild(self) -> None:
        """Re-satisfy the dependency after one of its rects changed."""
        raise NotImplementedError

    def involved_rects(self) -> List[Rect]:
        """Every rect referenced (for copy remapping)."""
        raise NotImplementedError

    def remapped(self, mapping: Dict[int, Rect]) -> "Link":
        """Return a copy with rect references swapped per ``id`` mapping."""
        raise NotImplementedError


class InsideLink(Link):
    """*inner* must lie inside every *outer* shrunk by its margin.

    Rebuilding clamps the inner rectangle; it never grows outers (growth
    happens once, at primitive-construction time).
    """

    def __init__(self, inner: Rect, outers: Sequence[Tuple[Rect, int]]) -> None:
        self.inner = inner
        self.outers = list(outers)
        #: Edges exempted from clamping — set when the compactor's
        #: auto-connection stretches the inner past its construction-time
        #: enclosure (a connected wire legitimately leaves its row).
        self.released: set = set()

    def rebuild(self) -> None:
        """Clamp the inner rect into the margin-shrunk outer intersection."""
        for outer, margin in self.outers:
            if Direction.WEST not in self.released and self.inner.x1 < outer.x1 + margin:
                self.inner.x1 = outer.x1 + margin
            if Direction.EAST not in self.released and self.inner.x2 > outer.x2 - margin:
                self.inner.x2 = outer.x2 - margin
            if Direction.SOUTH not in self.released and self.inner.y1 < outer.y1 + margin:
                self.inner.y1 = outer.y1 + margin
            if Direction.NORTH not in self.released and self.inner.y2 > outer.y2 - margin:
                self.inner.y2 = outer.y2 - margin

    def release(self, direction: Direction) -> None:
        """Permanently exempt one inner edge from enclosure clamping."""
        self.released.add(direction)

    def inner_bound(self, direction: Direction) -> int:
        """Tightest coordinate the inner's *direction* edge may reach."""
        bounds = [
            outer.edge_coord(direction) - direction.dx * margin - direction.dy * margin
            for outer, margin in self.outers
        ]
        return min(bounds) if direction.is_positive else max(bounds)

    def involved_rects(self) -> List[Rect]:
        return [self.inner] + [outer for outer, _ in self.outers]

    def remapped(self, mapping: Dict[int, Rect]) -> "InsideLink":
        link = InsideLink(
            mapping.get(id(self.inner), self.inner),
            [(mapping.get(id(o), o), m) for o, m in self.outers],
        )
        link.released = set(self.released)
        return link


class ArrayLink(Link):
    """A maximal, equidistant array of square cuts inside its outers.

    The placement reproduces ARRAY's contract: "The maximum number of
    rectangles which fits horizontally and vertically into the structure is
    calculated according to the necessary overlap and the contacts are placed
    equidistantly" (Sec. 2.2).
    """

    def __init__(
        self,
        cut_layer: str,
        cut_size: int,
        cut_space: int,
        outers: Sequence[Tuple[Rect, int]],
        net: Optional[str] = None,
    ) -> None:
        if cut_size <= 0:
            raise ValueError("cut size must be positive")
        if cut_space < 0:
            raise ValueError("cut spacing must be non-negative")
        self.cut_layer = cut_layer
        self.cut_size = cut_size
        self.cut_space = cut_space
        self.outers = list(outers)
        self.net = net
        self.rects: List[Rect] = []
        #: Creation-time obs.Provenance of the array (set by the ARRAY
        #: primitive when recording); rebuild() stamps new cuts with a
        #: "rebuild" lineage derived from it.
        self.prov = None

    # ------------------------------------------------------------------
    def region(self) -> Optional[Rect]:
        """Intersection of all outers shrunk by their margins."""
        if not self.outers:
            return None
        x1 = max(o.x1 + m for o, m in self.outers)
        y1 = max(o.y1 + m for o, m in self.outers)
        x2 = min(o.x2 - m for o, m in self.outers)
        y2 = min(o.y2 - m for o, m in self.outers)
        if x2 < x1 or y2 < y1:
            return None
        return Rect(x1, y1, x2, y2, self.cut_layer, self.net)

    def min_region_extent(self) -> int:
        """Smallest region side still admitting one cut."""
        return self.cut_size

    def count(self, extent: int) -> int:
        """Maximum cuts along one axis of the given extent."""
        if extent < self.cut_size:
            return 0
        return 1 + (extent - self.cut_size) // (self.cut_size + self.cut_space)

    def rebuild(self) -> None:
        """Re-place the cut grid; mutates :attr:`rects` in place.

        Existing rect objects are reused where possible so identity held by
        the owning object's rect list stays valid; surplus rects are emptied.
        """
        region = self.region()
        placements: List[Tuple[int, int]] = []
        if region is not None:
            xs = self._positions(region.x1, region.x2)
            ys = self._positions(region.y1, region.y2)
            placements = [(x, y) for y in ys for x in xs]

        derived = None
        for index, (x, y) in enumerate(placements):
            if index < len(self.rects):
                rect = self.rects[index]
                rect.x1, rect.y1 = x, y
                rect.x2, rect.y2 = x + self.cut_size, y + self.cut_size
            else:
                if derived is None and self.prov is not None:
                    derived = self.prov.derived("rebuild", self.prov)
                self.rects.append(
                    Rect(x, y, x + self.cut_size, y + self.cut_size,
                         self.cut_layer, self.net, prov=derived)
                )
        # Collapse any surplus rects to empty so they vanish from output.
        for rect in self.rects[len(placements):]:
            rect.x2, rect.y2 = rect.x1, rect.y1

    def _positions(self, lo: int, hi: int) -> List[int]:
        """Equidistant edge-to-edge cut origins along one axis."""
        extent = hi - lo
        n = self.count(extent)
        if n <= 0:
            return []
        if n == 1:
            return [lo + (extent - self.cut_size) // 2]
        span = extent - self.cut_size
        return [lo + round(i * span / (n - 1)) for i in range(n)]

    def stamp_provenance(self) -> None:
        """Record the creation context on the link and its current cuts.

        Array cuts bypass :meth:`LayoutObject.add_rect`, so every builder
        that creates an :class:`ArrayLink` calls this right after the
        creating :meth:`rebuild`; later rebuilds then derive "rebuild"
        lineage from the remembered record.  No-op when recording is off.
        """
        recorder = get_recorder()
        if not recorder.enabled:
            return
        self.prov = recorder.current()
        for rect in self.rects:
            if rect.prov is None:
                recorder.stamp(rect)

    def involved_rects(self) -> List[Rect]:
        return list(self.rects) + [outer for outer, _ in self.outers]

    def remapped(self, mapping: Dict[int, Rect]) -> "ArrayLink":
        link = ArrayLink(
            self.cut_layer,
            self.cut_size,
            self.cut_space,
            [(mapping.get(id(o), o), m) for o, m in self.outers],
            self.net,
        )
        link.rects = [mapping.get(id(r), r) for r in self.rects]
        link.prov = self.prov
        return link

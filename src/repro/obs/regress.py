"""``repro perf``: history, comparison and regression checks over the ledger.

Four verbs over the :mod:`repro.obs.ledger` store:

* ``repro perf log`` — list recorded runs (newest first);
* ``repro perf show <run>`` — one run's full metric snapshot;
* ``repro perf diff <a> <b>`` — compare two runs, or a run against a
  named baseline;
* ``repro perf check --baseline <name-or-dir>`` — exit non-zero when a
  tracked metric regresses beyond a noise-aware threshold.

A run reference is a ledger row id (``17``), ``last`` (newest run),
``last~2`` (two back), ``last:bench:BENCH_compact`` (newest run of one
command) or a saved baseline name.  A *baseline* for ``check`` is either a
name saved with ``repro perf baseline <name>`` (median-of-k with MAD per
metric) or a directory of committed ``BENCH_*.json`` reports
(``--baseline benchmarks/results``), whose flattened numeric leaves are
matched against ledger runs recorded as ``bench:<stem>``.

Noise policy: a metric regresses when its fresh median (over the last *k*
runs) exceeds ``baseline_median + band`` with ``band = max(rel · median,
mads · MAD, floor)``.  Timing-like metrics (suffixes ``_s``, ``_pct``,
``_ns``, ``rss_kb``, ``_kib``) get the relative/MAD band; counter metrics
are deterministic, so their band is just ``floor`` (default 0 — any
increase fails, which is what the old one-off ``pairs_scanned`` CI guard
enforced).
"""

from __future__ import annotations

import fnmatch
import json
import statistics
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .ledger import BaselineStat, Ledger, RunRecord, flatten_metrics

__all__ = [
    "DEFAULT_TRACKED",
    "is_noisy",
    "allowed_band",
    "load_baseline_dir",
    "resolve_run",
    "perf_log",
    "perf_show",
    "perf_diff",
    "perf_check",
    "perf_baseline",
]

#: Metric patterns checked by default: resource totals, the compactor's
#: headline time/counter pair, and the observability overhead estimates.
DEFAULT_TRACKED = (
    "wall_s",
    "cpu_s",
    "peak_rss_kb",
    "*compact_s",
    "*pairs_scanned",
    "*est_disabled*_pct",
    "span.compact.step.total_s",
)

#: Suffixes of metrics subject to timer/allocator noise; everything else
#: is treated as a deterministic counter.
NOISY_SUFFIXES = ("_s", "_pct", "_ns", "rss_kb", "_kib")


def is_noisy(metric: str) -> bool:
    return metric.endswith(NOISY_SUFFIXES)


def allowed_band(
    metric: str, stat: BaselineStat, rel: float, mads: float, floor: float
) -> float:
    """How far above the baseline median a fresh median may sit."""
    if not is_noisy(metric):
        return floor
    return max(rel * abs(stat.median), mads * stat.mad, floor)


def _matches(metric: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatchcase(metric, pattern) for pattern in patterns)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


# ---------------------------------------------------------------------------
def load_baseline_dir(path: Path) -> Dict[str, Dict[str, BaselineStat]]:
    """Committed ``BENCH_*.json`` reports as a ``{command: metrics}`` baseline.

    Each ``BENCH_<x>.json`` becomes the baseline for ledger command
    ``bench:BENCH_<x>`` — the name the benchmark producers append under.
    """
    stats: Dict[str, Dict[str, BaselineStat]] = {}
    for report in sorted(path.glob("BENCH_*.json")):
        try:
            payload = json.loads(report.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        metrics = flatten_metrics(payload)
        if metrics:
            stats[f"bench:{report.stem}"] = {
                name: BaselineStat(value, 0.0, 1)
                for name, value in metrics.items()
            }
    return stats


def resolve_run(ledger: Ledger, ref: str) -> RunRecord:
    """A run reference (id, ``last``, ``last~N``, ``last:<command>[~N]``)."""
    if ref.isdigit():
        record = ledger.get(int(ref))
        if record is None:
            raise SystemExit(f"error: no ledger run #{ref}")
        return record
    if ref == "last" or ref.startswith(("last~", "last:")):
        command: Optional[str] = None
        offset = 0
        spec = ref[4:]
        if spec.startswith(":"):
            spec = spec[1:]
            if "~" in spec:
                command, _, tail = spec.rpartition("~")
                offset = int(tail)
            else:
                command = spec
        elif spec.startswith("~"):
            offset = int(spec[1:])
        record = ledger.last(command=command, offset=offset)
        if record is None:
            raise SystemExit(f"error: no ledger run matching {ref!r}")
        return record
    raise SystemExit(
        f"error: unknown run reference {ref!r} (expected a run id, 'last',"
        " 'last~N', 'last:<command>' or a baseline name)"
    )


def _resolve_side(
    ledger: Ledger, ref: str
) -> Tuple[str, Dict[str, float]]:
    """A diff side: a run reference or a saved baseline name."""
    baseline = ledger.baseline(ref)
    if baseline:
        merged: Dict[str, float] = {}
        for metrics in baseline.values():
            for name, stat in metrics.items():
                merged[name] = stat.median
        return f"baseline {ref}", merged
    record = resolve_run(ledger, ref)
    return (
        f"run #{record.rowid} {record.command} ({record.ts})",
        record.all_metrics(),
    )


# ---------------------------------------------------------------------------
def perf_log(
    ledger: Ledger,
    limit: int = 20,
    command: Optional[str] = None,
    kind: Optional[str] = None,
) -> str:
    records = ledger.runs(command=command, kind=kind, limit=limit)
    if not records:
        return f"(ledger at {ledger.root} has no matching runs)"
    lines = [
        f"{'id':>5} {'when':<20} {'kind':<6} {'command':<26} {'tech':<18}"
        f" {'sha':<12} {'wall s':>9} {'rss MiB':>8}"
    ]
    for record in records:
        rss = (f"{record.peak_rss_kb / 1024:.0f}"
               if record.peak_rss_kb is not None else "—")
        wall = f"{record.wall_s:.3f}" if record.wall_s is not None else "—"
        lines.append(
            f"{record.rowid:>5} {record.ts:<20} {record.kind:<6}"
            f" {record.command:<26} {record.tech or '—':<18}"
            f" {record.git_sha or '—':<12} {wall:>9} {rss:>8}"
        )
    return "\n".join(lines)


def perf_show(ledger: Ledger, ref: str) -> str:
    record = resolve_run(ledger, ref)
    lines = [
        f"run #{record.rowid}  {record.command}  ({record.kind})",
        f"  when     {record.ts}",
        f"  argv     {' '.join(record.argv) or '—'}",
        f"  tech     {record.tech or '—'}",
        f"  git      {record.git_sha or '—'}",
        f"  status   {record.status}",
    ]
    metrics = record.all_metrics()
    if metrics:
        name_w = max(len(name) for name in metrics)
        lines.append("  metrics:")
        for name in sorted(metrics):
            lines.append(f"    {name:<{name_w}} {_fmt(metrics[name]):>14}")
    return "\n".join(lines)


def perf_diff(
    ledger: Ledger,
    ref_a: str,
    ref_b: str,
    patterns: Sequence[str] = ("*",),
) -> str:
    label_a, metrics_a = _resolve_side(ledger, ref_a)
    label_b, metrics_b = _resolve_side(ledger, ref_b)
    shared = sorted(
        name for name in metrics_a
        if name in metrics_b and _matches(name, patterns)
    )
    lines = [f"A: {label_a}", f"B: {label_b}"]
    if not shared:
        lines.append("(no shared metrics)")
        return "\n".join(lines)
    name_w = max(max(len(name) for name in shared), len("metric"))
    lines.append(
        f"{'metric':<{name_w}} {'A':>14} {'B':>14} {'delta':>14} {'%':>8}"
    )
    for name in shared:
        a, b = metrics_a[name], metrics_b[name]
        delta = b - a
        pct = f"{100.0 * delta / a:+.1f}%" if a else "—"
        lines.append(
            f"{name:<{name_w}} {_fmt(a):>14} {_fmt(b):>14}"
            f" {_fmt(delta):>14} {pct:>8}"
        )
    only_a = sum(1 for name in metrics_a if name not in metrics_b)
    only_b = sum(1 for name in metrics_b if name not in metrics_a)
    if only_a or only_b:
        lines.append(f"({only_a} metrics only in A, {only_b} only in B)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
def perf_check(
    ledger: Ledger,
    baseline_spec: str,
    commands: Optional[Sequence[str]] = None,
    k: int = 3,
    rel: float = 0.25,
    mads: float = 3.0,
    floor: float = 0.0,
    patterns: Sequence[str] = DEFAULT_TRACKED,
) -> Tuple[int, str]:
    """Compare fresh ledger medians against a baseline; ``(status, report)``.

    Status 0 = clean, 1 = at least one regression, 2 = nothing comparable
    (a misconfigured check must not pass silently).
    """
    baseline_path = Path(baseline_spec)
    if baseline_path.is_dir():
        baseline = load_baseline_dir(baseline_path)
        source = f"directory {baseline_path}"
    else:
        baseline = ledger.baseline(baseline_spec)
        source = f"saved baseline {baseline_spec!r}"
    if not baseline:
        return 2, f"error: baseline {baseline_spec!r} is empty or unknown"

    if commands:
        baseline = {cmd: baseline[cmd] for cmd in commands if cmd in baseline}
        if not baseline:
            return 2, (f"error: none of {list(commands)} appear in {source}")

    lines = [f"perf check against {source} (k={k}, rel={rel:.0%},"
             f" mads={mads:g}, floor={floor:g})"]
    regressions = 0
    compared = 0
    for command in sorted(baseline):
        window = ledger.runs(command=command, limit=k)
        if not window:
            lines.append(f"  {command}: no fresh runs in the ledger — skipped")
            continue
        fresh_samples: Dict[str, List[float]] = {}
        for record in window:
            for metric, value in record.all_metrics().items():
                fresh_samples.setdefault(metric, []).append(value)
        tracked = sorted(
            metric for metric in baseline[command]
            if metric in fresh_samples and _matches(metric, patterns)
        )
        if not tracked:
            lines.append(f"  {command}: no tracked metrics in common")
            continue
        lines.append(f"  {command} ({len(window)} fresh run(s)):")
        for metric in tracked:
            stat = baseline[command][metric]
            fresh = statistics.median(fresh_samples[metric])
            band = allowed_band(metric, stat, rel, mads, floor)
            compared += 1
            delta = fresh - stat.median
            pct = (f"{100.0 * delta / stat.median:+.1f}%"
                   if stat.median else f"{delta:+g}")
            if delta > band:
                regressions += 1
                verdict = "REGRESSED"
            elif delta < -band and band > 0:
                verdict = "improved"
            else:
                verdict = "ok"
            lines.append(
                f"    {metric:<42} {_fmt(stat.median):>14} ->"
                f" {_fmt(fresh):>14}  {pct:>8}  [{verdict}]"
            )
    if compared == 0:
        lines.append("error: nothing was compared — ledger runs or metric"
                     " patterns do not match the baseline")
        return 2, "\n".join(lines)
    lines.append(
        f"{compared} metric(s) checked, {regressions} regression(s)"
    )
    return (1 if regressions else 0), "\n".join(lines)


def perf_baseline(
    ledger: Ledger, name: str, command: Optional[str] = None, k: int = 5
) -> str:
    stats = ledger.save_baseline(name, command=command, k=k)
    metric_count = sum(len(metrics) for metrics in stats.values())
    return (f"baseline {name!r}: froze {metric_count} metrics across"
            f" {len(stats)} command(s) (median of up to {k} runs)")

"""Fixed log-bucket histograms: latency distributions without dependencies.

Scalar span statistics (total / mean / max) hide exactly what a parallel
workload needs visible: the *shape* of a latency distribution across many
calls and many worker processes.  :class:`LogHistogram` records values into
a fixed logarithmic bucket grid — powers of two subdivided into
:data:`~LogHistogram.SUBBUCKETS` linear sub-buckets, the HdrHistogram idea
shrunk to a dict — so p50/p90/p99 estimates stay within ~9% relative error
at any magnitude while an empty histogram costs one dict.

The bucket grid is *fixed* (a value always lands in the same bucket no
matter which process recorded it), which makes histograms **mergeable**:
folding worker histograms into the parent is plain bucket-count addition
and is exactly equal to having recorded every value in one process.  That
property is what lets :class:`~repro.obs.context.TracerSnapshot` carry
distributions across process boundaries deterministically.

Values are non-negative integers (the tracer records span durations in
nanoseconds); floats are truncated, negatives clamp to zero.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["LogHistogram"]


class LogHistogram:
    """A mergeable fixed log-bucket histogram of non-negative values.

    Bucket 0 holds exact zeros; bucket ``1 + e * SUBBUCKETS + sub`` holds
    values ``v`` with ``2**e <= v < 2**(e+1)``, linearly subdivided into
    ``SUBBUCKETS`` sub-ranges.  Buckets are stored sparsely (only non-empty
    buckets exist), so a histogram of a tight distribution is a few dict
    entries regardless of magnitude.
    """

    __slots__ = ("buckets", "count")

    #: Linear subdivisions per power-of-two octave.  8 bounds the relative
    #: quantization error of a percentile estimate at 1/16 ≈ 6.25%.
    SUBBUCKETS = 8

    def __init__(self, buckets: Optional[Mapping[int, int]] = None) -> None:
        self.buckets: Dict[int, int] = dict(buckets) if buckets else {}
        self.count = sum(self.buckets.values()) if self.buckets else 0

    # ------------------------------------------------------------------
    @classmethod
    def bucket_index(cls, value: int) -> int:
        """The fixed bucket a value lands in (identical in every process)."""
        v = int(value)
        if v <= 0:
            return 0
        e = v.bit_length() - 1
        sub = ((v - (1 << e)) * cls.SUBBUCKETS) >> e
        return 1 + e * cls.SUBBUCKETS + sub

    @classmethod
    def bucket_bounds(cls, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` value range of a bucket (bucket 0 is exactly zero)."""
        if index <= 0:
            return (0.0, 0.0)
        e, sub = divmod(index - 1, cls.SUBBUCKETS)
        base = float(1 << e)
        step = base / cls.SUBBUCKETS
        return (base + sub * step, base + (sub + 1) * step)

    # ------------------------------------------------------------------
    def add(self, value: int, n: int = 1) -> None:
        """Record *value* *n* times."""
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += n

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold *other* in by bucket-count addition; returns self.

        Exactness: because the grid is fixed, ``a.merge(b)`` equals a
        histogram that recorded every one of a's and b's values itself.
        """
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        return self

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate (bucket midpoint), 0.0 if empty."""
        if self.count == 0:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q!r} not in [0, 100]")
        rank = max(1, math.ceil(self.count * q / 100.0))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                lo, hi = self.bucket_bounds(index)
                return (lo + hi) / 2.0
        # Unreachable: cumulative == count >= rank by construction.
        lo, hi = self.bucket_bounds(max(self.buckets))  # pragma: no cover
        return (lo + hi) / 2.0  # pragma: no cover

    def percentiles(self, qs: Iterable[float] = (50, 90, 99)) -> Tuple[float, ...]:
        """Several percentiles in one call (default: p50, p90, p99)."""
        return tuple(self.percentile(q) for q in qs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[int, int]:
        """The sparse bucket counts (the picklable snapshot payload)."""
        return dict(self.buckets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return self.buckets == other.buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogHistogram(n={self.count}, buckets={len(self.buckets)})"

"""Layout provenance: where did this rectangle come from?

Every rectangle and wire in a layout can carry a cheap, optional
:class:`Provenance` record answering the debugging questions the tracer's
aggregate counters cannot:

* which PLDL **entity stack** (with parameter bindings) was executing when
  the rect was created — captured by the interpreter, the translate runtime
  and the Python library builders;
* which **builtin** produced it (``INBOX``, ``ARRAY``, ``TWORECTS``, a
  ``WIRE``/``VIA`` route call, ...);
* which **compaction step** merged it into its final structure;
* its **lineage**: auto-connected rects link to the arrival that triggered
  the stretch (Fig. 5a), rebuilt array cuts link to their pre-compaction
  ancestors (Fig. 5b).

The write side mirrors the tracer exactly: a process-local
:class:`ProvenanceRecorder` that is *disabled* by default.  Hot sites
(``LayoutObject.add_rect``, the primitives, the compactor) fetch the
recorder and take one ``enabled`` check; disabled context managers are a
shared no-op object.  The cost is measured by
``benchmarks/bench_obs_overhead.py`` next to the tracer's.

Records are immutable and shared: every rect stamped under the same entity
frame and builtin holds the *same* ``Provenance`` object, so memory cost is
one slot per rect plus one small record per distinct creation context.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Provenance",
    "ProvenanceRecorder",
    "StageSnapshot",
    "get_recorder",
    "set_recorder",
    "recording",
    "provenance_entity",
    "builtin_call",
    "format_provenance",
]


def _freeze_value(value: Any) -> Any:
    """A parameter value made safe to hold forever in a shared record."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return type(value).__name__


def _freeze_params(params: Optional[Dict[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not params:
        return ()
    return tuple((key, _freeze_value(value)) for key, value in params.items())


class Provenance:
    """One immutable creation record, shared between rects.

    ``entities`` is the entity stack at creation time, outermost first, as
    ``(name, ((param, value), ...))`` tuples.  ``builtin`` names the
    primitive that drew the rect (``None`` for direct ``add_rect`` calls).
    ``step`` is the global compaction step that merged the rect into its
    final structure (``None`` before any merge).  ``lineage`` records
    derivations as ``(kind, ancestor)`` pairs — ``"auto_connect"`` ancestors
    are the arrival rects' records, ``"rebuild"`` ancestors the array's
    creation-time record.
    """

    __slots__ = ("entities", "builtin", "step", "lineage")

    def __init__(
        self,
        entities: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = (),
        builtin: Optional[str] = None,
        step: Optional[int] = None,
        lineage: Tuple[Tuple[str, "Provenance"], ...] = (),
    ) -> None:
        self.entities = entities
        self.builtin = builtin
        self.step = step
        self.lineage = lineage

    # ------------------------------------------------------------------
    @property
    def entity_stack(self) -> Tuple[str, ...]:
        """Just the entity names, outermost first."""
        return tuple(name for name, _ in self.entities)

    def with_step(self, step: int) -> "Provenance":
        """A copy recording the compaction step that merged the rect."""
        return Provenance(self.entities, self.builtin, step, self.lineage)

    def derived(self, kind: str, ancestor: "Provenance") -> "Provenance":
        """A copy whose lineage gains one ``(kind, ancestor)`` entry."""
        return Provenance(
            self.entities, self.builtin, self.step,
            self.lineage + ((kind, ancestor),),
        )

    # ------------------------------------------------------------------
    def describe(self, with_lineage: bool = True) -> str:
        """One-line human rendering of the full chain."""
        if self.entities:
            frames = []
            for name, params in self.entities:
                if params:
                    inner = ", ".join(f"{k}={v}" for k, v in params)
                    frames.append(f"{name}({inner})")
                else:
                    frames.append(name)
            text = " > ".join(frames)
        else:
            text = "(no entity)"
        if self.builtin:
            text += f" · {self.builtin}"
        if self.step is not None:
            text += f" · step {self.step}"
        if with_lineage:
            for kind, ancestor in self.lineage:
                text += f" · {kind} of [{ancestor.describe(with_lineage=False)}]"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Provenance({self.describe()!r})"


def format_provenance(prov: Optional[Provenance]) -> str:
    """Render a rect's provenance, tolerating unstamped rects."""
    if prov is None:
        return "(no provenance recorded)"
    return prov.describe()


# ---------------------------------------------------------------------------
class StageSnapshot:
    """One compaction stage kept for the visual run report."""

    __slots__ = ("index", "label", "obj", "meta")

    def __init__(self, index: int, label: str, obj: Any, meta: Dict[str, Any]) -> None:
        self.index = index
        self.label = label
        self.obj = obj
        self.meta = meta


class _NullContext:
    """Shared no-op context manager returned by a disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _EntityContext:
    __slots__ = ("_recorder", "_name", "_params")

    def __init__(self, recorder: "ProvenanceRecorder", name: str,
                 params: Optional[Dict[str, Any]]) -> None:
        self._recorder = recorder
        self._name = name
        self._params = params

    def __enter__(self) -> "_EntityContext":
        self._recorder.push_entity(self._name, self._params)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._recorder.pop_entity(len(self._recorder._frames) - 1)
        return False


class _BuiltinContext:
    __slots__ = ("_recorder", "_name", "_previous")

    def __init__(self, recorder: "ProvenanceRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_BuiltinContext":
        recorder = self._recorder
        self._previous = recorder._builtin
        recorder._builtin = self._name
        recorder._cache = None
        recorder.builtin_calls += 1
        return self

    def __exit__(self, *exc: Any) -> bool:
        recorder = self._recorder
        recorder._builtin = self._previous
        recorder._cache = None
        return False


class ProvenanceRecorder:
    """Collects creation context and stamps rects with shared records.

    ``enabled`` is the master switch, exactly like the tracer's: a disabled
    recorder never builds a record, and its ``entity``/``builtin`` context
    managers are a shared no-op.  ``capture_stages`` additionally snapshots
    the main structure after every compaction step (used by ``repro
    report``; off by default because snapshots are not cheap).
    """

    def __init__(
        self,
        enabled: bool = True,
        capture_stages: bool = False,
        stage_limit: int = 200,
    ) -> None:
        self.enabled = enabled
        self.capture_stages = capture_stages
        self.stage_limit = stage_limit
        #: Entity frames, outermost first: (name, frozen params).
        self._frames: List[Tuple[str, Tuple[Tuple[str, Any], ...]]] = []
        self._builtin: Optional[str] = None
        self._cache: Optional[Provenance] = None
        self._step = 0
        #: Instrumentation-site hit counts (the overhead bench reads these).
        self.stamps = 0
        self.entity_calls = 0
        self.builtin_calls = 0
        self.stages: List[StageSnapshot] = []
        self.stages_dropped = 0
        self.trials: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # context capture
    # ------------------------------------------------------------------
    def entity(self, name: str, params: Optional[Dict[str, Any]] = None):
        """Context manager pushing one entity frame (no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _EntityContext(self, name, params)

    def builtin(self, name: str):
        """Context manager naming the active builtin (no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _BuiltinContext(self, name)

    def push_entity(self, name: str, params: Optional[Dict[str, Any]] = None) -> int:
        """Push a frame; returns its depth (for :meth:`pop_entity`).

        The depth-token protocol exists for the translate runtime, whose
        generated entities call ``rt.begin``/``rt.end`` rather than nesting
        a ``with`` block; popping truncates to the recorded depth so a
        missed ``end`` (older generated modules) cannot corrupt deeper pops.
        """
        depth = len(self._frames)
        self._frames.append((name, _freeze_params(params)))
        self._cache = None
        self.entity_calls += 1
        return depth

    def pop_entity(self, depth: int) -> None:
        """Pop back to *depth* (tolerant of already-popped frames)."""
        if depth < len(self._frames):
            del self._frames[depth:]
            self._cache = None

    # ------------------------------------------------------------------
    # record construction and stamping
    # ------------------------------------------------------------------
    def current(self) -> Provenance:
        """The shared record for the current creation context."""
        record = self._cache
        if record is None:
            record = self._cache = Provenance(tuple(self._frames), self._builtin)
        return record

    def stamp(self, rect: Any) -> None:
        """Attach the current record to *rect* (callers check ``enabled``)."""
        rect.prov = self.current()
        self.stamps += 1

    def next_step(self) -> int:
        """Advance and return the global compaction step index (1-based)."""
        self._step += 1
        return self._step

    # ------------------------------------------------------------------
    # report inputs
    # ------------------------------------------------------------------
    def record_stage(self, obj: Any, label: str, **meta: Any) -> None:
        """Keep a snapshot of *obj* as one compaction stage."""
        if len(self.stages) >= self.stage_limit:
            self.stages_dropped += 1
            return
        self.stages.append(
            StageSnapshot(len(self.stages) + self.stages_dropped, label,
                          obj.snapshot(), meta)
        )

    def add_trial(self, **fields: Any) -> None:
        """Record one optimizer trial summary for the report's table."""
        self.trials.append(fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"ProvenanceRecorder({state}, frames={len(self._frames)},"
            f" stamps={self.stamps})"
        )


#: The process recorder: disabled until someone installs a live one.
_PROCESS_RECORDER = ProvenanceRecorder(enabled=False)


def get_recorder() -> ProvenanceRecorder:
    """The process-local provenance recorder (disabled by default)."""
    return _PROCESS_RECORDER


def set_recorder(recorder: ProvenanceRecorder) -> ProvenanceRecorder:
    """Install *recorder* as the process recorder; returns the previous one."""
    global _PROCESS_RECORDER
    previous = _PROCESS_RECORDER
    _PROCESS_RECORDER = recorder
    return previous


class recording:
    """``with recording(recorder):`` — install a recorder for the block."""

    def __init__(self, recorder: ProvenanceRecorder) -> None:
        self.recorder = recorder
        self._previous: Optional[ProvenanceRecorder] = None

    def __enter__(self) -> ProvenanceRecorder:
        self._previous = set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: Any) -> bool:
        assert self._previous is not None
        set_recorder(self._previous)
        return False


# ---------------------------------------------------------------------------
# decorators for the Python-side builders and primitives
# ---------------------------------------------------------------------------
def provenance_entity(name: Optional[str] = None) -> Callable:
    """Decorator: run the builder under an entity frame named *name*.

    The Python library builders (``mos_transistor``, the amplifier blocks,
    ...) are the paper's entities written in the host language; this gives
    their rects the same entity-stack capture the interpreter provides for
    PLDL entities.  Keyword arguments become the frame's parameter bindings.
    With the recorder disabled the wrapper costs one attribute check.
    """

    def decorate(func: Callable) -> Callable:
        label = name if name is not None else func.__name__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            recorder = _PROCESS_RECORDER
            if not recorder.enabled:
                return func(*args, **kwargs)
            with recorder.entity(label, kwargs):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def builtin_call(name: str) -> Callable:
    """Decorator: mark every rect the function creates as built by *name*.

    Applied to the geometry primitives (``INBOX``, ``ARRAY``, ``WIRE``, ...)
    so the originating builtin is captured no matter the entry path —
    interpreter, translate runtime or direct Python.  Nested primitives
    (a via stack drawing plates) record the innermost builtin.
    """

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            recorder = _PROCESS_RECORDER
            if not recorder.enabled:
                return func(*args, **kwargs)
            with recorder.builtin(name):
                return func(*args, **kwargs)

        return wrapper

    return decorate

"""Process-local tracer: nestable spans, counters, gauges, pluggable sinks.

The tracer is the write side of the observability layer.  Instrumented code
asks for the process-local tracer with :func:`get_tracer` and emits

* **spans** — named, nestable time intervals (``with tracer.span("x"): ...``
  or the :func:`traced` decorator), timed on the monotonic clock;
* **counters** — named monotonically accumulated integers
  (``tracer.count("compact.relaxed_edges", 3)``);
* **gauges** — named last-value-wins numbers;
* **events** — named instants.

Everything is fanned out to the attached sinks (:mod:`repro.obs.sinks`).
The default process tracer is *disabled*: every emit call returns after one
attribute check and :meth:`Tracer.span` hands back a shared no-op context
manager, so an un-traced run pays a few nanoseconds per instrumentation
site (measured by ``benchmarks/bench_obs_overhead.py``).

Thread model: the tracer is process-local and its span stack is per-thread,
so spans nest correctly under concurrency; worker *processes* (the parallel
order optimizer) start with their own disabled tracer.
"""

from __future__ import annotations

import functools
import threading
import time
import uuid
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple

from .sinks import Sink

if TYPE_CHECKING:  # pragma: no cover - import cycle with .context
    from .context import TracerSnapshot

__all__ = [
    "Tracer",
    "SpanRecord",
    "get_tracer",
    "set_tracer",
    "activate",
    "traced",
]


class SpanRecord:
    """One finished span as handed to the sinks."""

    __slots__ = ("name", "start_ns", "duration_ns", "depth", "attrs")

    def __init__(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        self.depth = depth
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, start={self.start_ns},"
            f" dur={self.duration_ns}, depth={self.depth})"
        )


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; records itself to every sink when the block exits.

    Exception safe: the span closes (and the per-thread stack is restored)
    whether the block returns or raises; a raising block is marked with an
    ``error`` attribute carrying the exception class name.
    """

    __slots__ = ("_tracer", "name", "attrs", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        for sink in self._tracer.sinks:
            sink.on_span_start(self.name)
        self._start_ns = time.perf_counter_ns() - self._tracer.epoch_ns
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end_ns = time.perf_counter_ns() - self._tracer.epoch_ns
        stack = self._tracer._stack()
        # Normal LIFO exit pops ourselves; be tolerant of a corrupted stack
        # (a span leaked across a generator) rather than raising in __exit__.
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - defensive
            stack.remove(self)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        record = SpanRecord(
            self.name, self._start_ns, end_ns - self._start_ns, self._depth, self.attrs
        )
        for sink in self._tracer.sinks:
            sink.on_span(record)
        return False


class Tracer:
    """Collects spans/counters/gauges and fans them out to sinks.

    ``enabled`` is the master switch: a disabled tracer never touches its
    sinks and never takes a timestamp.  Timestamps are nanoseconds on the
    monotonic clock (:func:`time.perf_counter_ns`) relative to
    :attr:`epoch_ns`, taken when the tracer is created.
    """

    def __init__(self, enabled: bool = True, sinks: Iterable[Sink] = ()) -> None:
        self.enabled = enabled
        self.sinks: List[Sink] = list(sinks)
        self.epoch_ns = time.perf_counter_ns()
        #: Identity of this trace — carried into pool workers by
        #: :class:`~repro.obs.context.TraceContext` so merged snapshots can
        #: be matched back to the trace that spawned them.
        self.trace_id = uuid.uuid4().hex
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _now_ns(self) -> int:
        return time.perf_counter_ns() - self.epoch_ns

    # ------------------------------------------------------------------
    def add_sink(self, sink: Sink) -> Sink:
        """Attach *sink*; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def span(self, name: str, **attrs: Any):
        """A context manager timing the enclosed block as span *name*."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name*."""
        if not self.enabled or n == 0:
            return
        ts = self._now_ns()
        for sink in self.sinks:
            sink.on_count(name, n, ts)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        if not self.enabled:
            return
        ts = self._now_ns()
        for sink in self.sinks:
            sink.on_gauge(name, value, ts)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a named instant."""
        if not self.enabled:
            return
        ts = self._now_ns()
        for sink in self.sinks:
            sink.on_event(name, ts, attrs)

    def current_span_name(self) -> Optional[str]:
        """Name of the innermost open span on this thread (None at top)."""
        stack = self._stack()
        return stack[-1].name if stack else None

    def merge_snapshot(self, snapshot: "TracerSnapshot") -> None:
        """Fold a worker's :class:`~repro.obs.context.TracerSnapshot` in.

        Every sink receives ``on_snapshot`` (exact merges where the sink
        supports them, replay otherwise), and the merge itself is counted:
        ``obs.snapshots_merged`` and ``obs.spans_merged`` make dropped
        child spans visible as a counter mismatch rather than a silently
        thinner trace.  Deterministic given a deterministic merge order —
        callers fold snapshots in submission order.
        """
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.on_snapshot(snapshot)
        self.count("obs.snapshots_merged")
        if snapshot.spans:
            self.count("obs.spans_merged", len(snapshot.spans))

    def close(self) -> None:
        """Flush and close every sink (idempotent sinks required)."""
        for sink in self.sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, sinks={len(self.sinks)})"


#: The process tracer: disabled until someone installs a live one.
_PROCESS_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-local tracer (disabled by default)."""
    return _PROCESS_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process tracer; returns the previous one."""
    global _PROCESS_TRACER
    previous = _PROCESS_TRACER
    _PROCESS_TRACER = tracer
    return previous


class activate:
    """``with activate(tracer):`` — install a tracer for the block only."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc: Any) -> bool:
        assert self._previous is not None
        set_tracer(self._previous)
        return False


def traced(name: Optional[str] = None, **span_attrs: Any) -> Callable:
    """Decorator: run the function under a span on the process tracer.

    ``@traced()`` names the span after the function's qualified name;
    ``@traced("interp.entity")`` names it explicitly.  With the process
    tracer disabled the wrapper adds one attribute check per call.
    """

    def decorate(func: Callable) -> Callable:
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _PROCESS_TRACER
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(label, **span_attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate

"""Sinks: where the tracer's spans, counters and gauges end up.

Three built-ins cover the paper pipeline's needs:

* :class:`StatsSink` — in-memory aggregation (per-span call counts and
  total/min/max durations, counter totals, last gauge values) with a
  human-readable summary table — what ``repro stats`` prints;
* :class:`JsonlSink` — one JSON object per record, append-streamed to a
  file, for machine consumption of the raw event log;
* :class:`ChromeTraceSink` — Chrome trace-event JSON (the ``traceEvents``
  array format) loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing`` — what ``repro --trace out.json ...`` writes.

A sink is any object with the ``on_*`` callbacks plus ``close``;
:class:`Sink` is the no-op base class custom sinks can subclass.  Since
worker snapshots (:mod:`repro.obs.context`) exist, sinks also receive
``on_snapshot`` when the parent tracer folds in a worker's records; the
base class replays the snapshot through the ordinary callbacks, and
:class:`StatsSink` / :class:`ChromeTraceSink` override it to merge exactly
(aggregate addition; per-worker pid lanes).
"""

from __future__ import annotations

import io
import json
import os
import threading
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from .hist import LogHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle with .tracer
    from .context import TracerSnapshot
    from .tracer import SpanRecord

__all__ = [
    "Sink",
    "StatsSink",
    "SpanStats",
    "JsonlSink",
    "ChromeTraceSink",
    "validate_chrome_trace",
]


class Sink:
    """No-op base sink; subclass and override what you need."""

    def on_span_start(self, name: str) -> None:
        """A span began (its matching :meth:`on_span` may never arrive)."""

    def on_span(self, record: "SpanRecord") -> None:
        """A span finished."""

    def on_count(self, name: str, n: int, ts_ns: int) -> None:
        """Counter *name* was incremented by *n*."""

    def on_gauge(self, name: str, value: float, ts_ns: int) -> None:
        """Gauge *name* was set to *value*."""

    def on_event(self, name: str, ts_ns: int, attrs: Dict[str, Any]) -> None:
        """An instant event occurred.

        ``attrs`` may carry a reserved ``__tid``/``__pid`` marking a record
        replayed from a worker snapshot (see :meth:`on_snapshot`)."""

    def on_snapshot(self, snapshot: "TracerSnapshot") -> None:
        """A worker's :class:`~repro.obs.context.TracerSnapshot` was merged.

        The default replays the snapshot through the ordinary callbacks —
        spans via :meth:`on_span` (paired with :meth:`on_span_start` so
        begin/end accounting stays balanced), counters via :meth:`on_count`
        and so on — so an unaware sink sees worker records as if they had
        happened locally.  Sinks that can merge more faithfully (exact
        aggregates, per-worker lanes) override this.
        """
        from .tracer import SpanRecord  # deferred: import cycle

        for name, start_ns, dur_ns, depth, attrs, _tid in snapshot.spans:
            self.on_span_start(name)
            self.on_span(SpanRecord(name, start_ns, dur_ns, depth, attrs))
        for name, value in snapshot.counters.items():
            self.on_count(name, value, snapshot.end_ns)
        for name, value in snapshot.gauges.items():
            self.on_gauge(name, value, snapshot.end_ns)
        for name, ts_ns, attrs in snapshot.events:
            self.on_event(name, ts_ns, attrs)

    def close(self) -> None:
        """Flush buffers / write files; must be idempotent."""


# ---------------------------------------------------------------------------
class SpanStats:
    """Aggregate of every finished span sharing one name.

    Alongside the scalar aggregates, each name keeps a
    :class:`~repro.obs.hist.LogHistogram` of durations so ``repro stats``
    can report p50/p90/p99 — the distribution shape scalars hide.
    """

    __slots__ = ("calls", "total_ns", "min_ns", "max_ns", "hist")

    def __init__(self) -> None:
        self.calls = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns = 0
        self.hist = LogHistogram()

    def add(self, duration_ns: int) -> None:
        self.calls += 1
        self.total_ns += duration_ns
        self.max_ns = max(self.max_ns, duration_ns)
        if self.min_ns is None or duration_ns < self.min_ns:
            self.min_ns = duration_ns
        self.hist.add(duration_ns)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    def percentile_ns(self, q: float) -> float:
        """Estimated duration percentile in nanoseconds (0.0 if empty)."""
        return self.hist.percentile(q)


class StatsSink(Sink):
    """In-memory aggregation: the data behind ``repro stats``."""

    def __init__(self) -> None:
        self.spans: Dict[str, SpanStats] = {}
        self.counters: Dict[str, int] = {}
        #: How many ``count()`` calls fed each counter (vs the summed value)
        #: — the overhead bench uses this as the instrumentation hit count.
        self.counter_calls: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.events: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def on_span(self, record: "SpanRecord") -> None:
        stats = self.spans.get(record.name)
        if stats is None:
            stats = self.spans[record.name] = SpanStats()
        stats.add(record.duration_ns)

    def on_count(self, name: str, n: int, ts_ns: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        self.counter_calls[name] = self.counter_calls.get(name, 0) + 1

    def on_gauge(self, name: str, value: float, ts_ns: int) -> None:
        self.gauges[name] = value

    def on_event(self, name: str, ts_ns: int, attrs: Dict[str, Any]) -> None:
        self.events[name] = self.events.get(name, 0) + 1

    def on_snapshot(self, snapshot: "TracerSnapshot") -> None:
        """Fold a worker snapshot in exactly.

        Spans replay through :meth:`on_span` (which rebuilds the identical
        histogram state, since the bucket grid is fixed); counter *call*
        counts — which the default replay would collapse to one call per
        counter — are merged from the snapshot's own tally so the overhead
        bench still sees true instrumentation hit counts.
        """
        from .tracer import SpanRecord  # deferred: import cycle

        for name, start_ns, dur_ns, depth, attrs, _tid in snapshot.spans:
            self.on_span(SpanRecord(name, start_ns, dur_ns, depth, attrs))
        for name, value in snapshot.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, calls in snapshot.counter_calls.items():
            self.counter_calls[name] = self.counter_calls.get(name, 0) + calls
        for name, value in snapshot.gauges.items():
            self.gauges[name] = value
        for name, _ts_ns, _attrs in snapshot.events:
            self.events[name] = self.events.get(name, 0) + 1

    # ------------------------------------------------------------------
    def total_s(self, span_name: str) -> float:
        """Total seconds spent in spans named *span_name* (0.0 if none)."""
        stats = self.spans.get(span_name)
        return stats.total_ns / 1e9 if stats else 0.0

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    #: ``format_table`` sort orders: a key on (name, SpanStats) per mode.
    _SPAN_SORTS = {
        "name": lambda item: item[0],
        "total": lambda item: (-item[1].total_ns, item[0]),
        "mean": lambda item: (-item[1].mean_ns, item[0]),
        "calls": lambda item: (-item[1].calls, item[0]),
        "max": lambda item: (-item[1].max_ns, item[0]),
    }

    def format_table(self, sort: str = "name", top: Optional[int] = None) -> str:
        """The aligned summary table ``repro stats`` prints.

        *sort* orders the span section by ``name`` (default), ``total``,
        ``mean``, ``calls`` or ``max`` (descending); *top* keeps only the
        first N spans and the N largest counters, with a trailing note for
        what was elided — `repro stats --sort total --top 10` makes a
        large trace readable.
        """
        try:
            span_key = self._SPAN_SORTS[sort]
        except KeyError:
            raise ValueError(
                f"unknown sort {sort!r} (one of {sorted(self._SPAN_SORTS)})"
            ) from None
        lines: List[str] = []
        if self.spans:
            name_w = max(len(name) for name in self.spans)
            name_w = max(name_w, len("span"))
            lines.append(
                f"{'span':<{name_w}} {'calls':>8} {'total ms':>10}"
                f" {'mean ms':>10} {'p50 ms':>10} {'p90 ms':>10}"
                f" {'p99 ms':>10} {'max ms':>10}"
            )
            ranked = sorted(self.spans.items(), key=span_key)
            shown = ranked if top is None else ranked[:top]
            for name, stats in shown:
                p50, p90, p99 = stats.hist.percentiles((50, 90, 99))
                lines.append(
                    f"{name:<{name_w}} {stats.calls:>8}"
                    f" {stats.total_ns / 1e6:>10.3f}"
                    f" {stats.mean_ns / 1e6:>10.4f}"
                    f" {p50 / 1e6:>10.4f}"
                    f" {p90 / 1e6:>10.4f}"
                    f" {p99 / 1e6:>10.4f}"
                    f" {stats.max_ns / 1e6:>10.3f}"
                )
            if len(shown) < len(ranked):
                lines.append(f"… {len(ranked) - len(shown)} more spans")
        if self.counters:
            if lines:
                lines.append("")
            name_w = max(len(name) for name in self.counters)
            name_w = max(name_w, len("counter"))
            lines.append(f"{'counter':<{name_w}} {'value':>12}")
            if sort == "name":
                ranked_counters = sorted(self.counters)
            else:
                ranked_counters = sorted(
                    self.counters, key=lambda name: (-self.counters[name], name)
                )
            shown_counters = (ranked_counters if top is None
                              else ranked_counters[:top])
            for name in shown_counters:
                lines.append(f"{name:<{name_w}} {self.counters[name]:>12}")
            if len(shown_counters) < len(ranked_counters):
                lines.append(
                    f"… {len(ranked_counters) - len(shown_counters)}"
                    " more counters"
                )
        if self.gauges:
            if lines:
                lines.append("")
            name_w = max(len(name) for name in self.gauges)
            name_w = max(name_w, len("gauge"))
            lines.append(f"{'gauge':<{name_w}} {'value':>12}")
            for name in sorted(self.gauges):
                lines.append(f"{name:<{name_w}} {self.gauges[name]:>12g}")
        if not lines:
            return "(no spans, counters or gauges recorded)"
        return "\n".join(lines)


# ---------------------------------------------------------------------------
class JsonlSink(Sink):
    """Raw event log: one JSON object per line.

    Record shapes: ``{"type": "span", "name", "ts_ns", "dur_ns", "depth",
    "attrs"}``, ``{"type": "count", "name", "n", "ts_ns"}``, ``{"type":
    "gauge", ...}``, ``{"type": "event", ...}``.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._lock = threading.Lock()
        self._closed = False

    def _write(self, record: Dict[str, Any]) -> None:
        if self._closed:
            return
        line = json.dumps(record, default=str)
        with self._lock:
            self._file.write(line + "\n")

    def on_span(self, record: "SpanRecord") -> None:
        self._write(
            {
                "type": "span",
                "name": record.name,
                "ts_ns": record.start_ns,
                "dur_ns": record.duration_ns,
                "depth": record.depth,
                "attrs": record.attrs,
            }
        )

    def on_count(self, name: str, n: int, ts_ns: int) -> None:
        self._write({"type": "count", "name": name, "n": n, "ts_ns": ts_ns})

    def on_gauge(self, name: str, value: float, ts_ns: int) -> None:
        self._write({"type": "gauge", "name": name, "value": value, "ts_ns": ts_ns})

    def on_event(self, name: str, ts_ns: int, attrs: Dict[str, Any]) -> None:
        self._write({"type": "event", "name": name, "ts_ns": ts_ns, "attrs": attrs})

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()


# ---------------------------------------------------------------------------
class ChromeTraceSink(Sink):
    """Chrome trace-event JSON, viewable in Perfetto.

    Spans become complete (``"ph": "X"``) events with microsecond ``ts`` /
    ``dur``; counters become cumulative counter (``"ph": "C"``) tracks;
    instants become ``"ph": "i"`` events.  The span name's dotted prefix
    (``compact`` in ``compact.step``) is used as the event category so
    Perfetto can filter per pipeline stage.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: List[Dict[str, Any]] = []
        self._pid = os.getpid()
        self._tid = threading.get_ident()
        self._counter_totals: Dict[str, int] = {}
        #: Interned sampled-stack frames: (parent id, label) -> frame id.
        self._frame_ids: Dict[Tuple[Optional[str], str], str] = {}
        self._stack_frames: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._spans_begun = 0
        self._spans_ended = 0
        #: Worker pids already given a process_name metadata record.
        self._worker_pids: set = set()
        #: Begin/end imbalance observed at :meth:`close` (0 = balanced).
        #: A positive value means that many spans never finished — their
        #: "X" events are missing from the written trace.
        self.unbalanced_spans = 0

    @staticmethod
    def _category(name: str) -> str:
        return name.split(".", 1)[0]

    def on_span_start(self, name: str) -> None:
        with self._lock:
            self._spans_begun += 1

    def on_span(self, record: "SpanRecord") -> None:
        event = {
            "name": record.name,
            "cat": self._category(record.name),
            "ph": "X",
            "ts": record.start_ns / 1000.0,
            "dur": record.duration_ns / 1000.0,
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if record.attrs:
            event["args"] = {key: str(value) for key, value in record.attrs.items()}
        with self._lock:
            self._spans_ended += 1
            self.events.append(event)

    def on_count(self, name: str, n: int, ts_ns: int) -> None:
        with self._lock:
            total = self._counter_totals.get(name, 0) + n
            self._counter_totals[name] = total
            self.events.append(
                {
                    "name": name,
                    "cat": self._category(name),
                    "ph": "C",
                    "ts": ts_ns / 1000.0,
                    "pid": self._pid,
                    "tid": self._tid,
                    "args": {"value": total},
                }
            )

    def on_gauge(self, name: str, value: float, ts_ns: int) -> None:
        with self._lock:
            self.events.append(
                {
                    "name": name,
                    "cat": self._category(name),
                    "ph": "C",
                    "ts": ts_ns / 1000.0,
                    "pid": self._pid,
                    "tid": self._tid,
                    "args": {"value": value},
                }
            )

    def on_event(self, name: str, ts_ns: int, attrs: Dict[str, Any]) -> None:
        event = {
            "name": name,
            "cat": self._category(name),
            "ph": "i",
            "ts": ts_ns / 1000.0,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "s": "t",
        }
        if attrs:
            event["args"] = {key: str(value) for key, value in attrs.items()}
        with self._lock:
            self.events.append(event)

    def on_snapshot(self, snapshot: "TracerSnapshot") -> None:
        """Merge a worker snapshot as its own pid lane.

        The first snapshot from a pid contributes a ``process_name``
        metadata record so Perfetto labels the lane; each span becomes an
        ``"X"`` event under the worker's pid and recorded thread id, with
        timestamps already rebased onto this process's epoch.  Counters
        become one cumulative ``"C"`` step per name at the snapshot's end
        (per-increment timing died with the worker; the totals are exact).
        """
        with self._lock:
            if snapshot.pid not in self._worker_pids:
                self._worker_pids.add(snapshot.pid)
                self.events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "ts": 0,
                        "pid": snapshot.pid,
                        "tid": 0,
                        "args": {"name": f"repro worker {snapshot.pid}"},
                    }
                )
            for name, start_ns, dur_ns, _depth, attrs, tid in snapshot.spans:
                event = {
                    "name": name,
                    "cat": self._category(name),
                    "ph": "X",
                    "ts": start_ns / 1000.0,
                    "dur": dur_ns / 1000.0,
                    "pid": snapshot.pid,
                    "tid": tid,
                }
                if attrs:
                    event["args"] = {
                        key: str(value) for key, value in attrs.items()
                    }
                self._spans_begun += 1
                self._spans_ended += 1
                self.events.append(event)
            for name in sorted(snapshot.counters):
                total = self._counter_totals.get(name, 0) + snapshot.counters[name]
                self._counter_totals[name] = total
                self.events.append(
                    {
                        "name": name,
                        "cat": self._category(name),
                        "ph": "C",
                        "ts": snapshot.end_ns / 1000.0,
                        "pid": self._pid,
                        "tid": self._tid,
                        "args": {"value": total},
                    }
                )
            for name, ts_ns, attrs in snapshot.events:
                event = {
                    "name": name,
                    "cat": self._category(name),
                    "ph": "i",
                    "ts": ts_ns / 1000.0,
                    "pid": snapshot.pid,
                    "tid": self._tid,
                    "s": "t",
                }
                if attrs:
                    event["args"] = {
                        key: str(value) for key, value in attrs.items()
                    }
                self.events.append(event)

    # ------------------------------------------------------------------
    def add_sample(
        self,
        ts_ns: int,
        frames: Tuple[str, ...],
        tid: Optional[int] = None,
    ) -> None:
        """Record one sampled stack (outermost frame first) as a ``P`` event.

        Stacks are interned into the trace's global ``stackFrames`` table
        (each frame holds a ``parent`` id), so a profile attached by
        :class:`~repro.obs.profiler.SamplingProfiler` overlays the span
        timeline in Perfetto without repeating whole stacks per sample.
        """
        if not frames:
            return
        with self._lock:
            parent: Optional[str] = None
            for label in frames:
                key = (parent, label)
                frame_id = self._frame_ids.get(key)
                if frame_id is None:
                    frame_id = str(len(self._frame_ids) + 1)
                    self._frame_ids[key] = frame_id
                    entry: Dict[str, Any] = {
                        "name": label,
                        "category": label.rsplit(".", 1)[0],
                    }
                    if parent is not None:
                        entry["parent"] = parent
                    self._stack_frames[frame_id] = entry
                parent = frame_id
            self.events.append(
                {
                    "name": "sample",
                    "cat": "profile",
                    "ph": "P",
                    "ts": ts_ns / 1000.0,
                    "pid": self._pid,
                    "tid": tid if tid is not None else self._tid,
                    "sf": parent,
                }
            )

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The trace as the Chrome trace-event object format."""
        with self._lock:
            events = sorted(self.events, key=lambda e: e["ts"])
            trace: Dict[str, Any] = {
                "traceEvents": events,
                "displayTimeUnit": "ms",
            }
            if self._stack_frames:
                trace["stackFrames"] = dict(self._stack_frames)
        return trace

    def write(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Serialize the trace to *path* (default: the constructor path)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("ChromeTraceSink has no output path")
        target.write_text(
            json.dumps(self.to_json(), indent=None, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        return target

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self.unbalanced_spans = self._spans_begun - self._spans_ended
        if self.unbalanced_spans:
            from .logsetup import get_logger

            get_logger("obs").warning(
                "chrome trace %s: span begin/end imbalance of %d"
                " (%d begun, %d ended) — the written trace is missing"
                " events for spans that never finished",
                self.path if self.path is not None else "(unwritten)",
                self.unbalanced_spans,
                self._spans_begun,
                self._spans_ended,
            )
        if self.path is not None:
            self.write()


# ---------------------------------------------------------------------------
_VALID_PHASES = {
    "X", "B", "E", "C", "i", "I", "M", "b", "e", "n", "s", "t", "f", "P",
}


def validate_chrome_trace(data: Any) -> List[str]:
    """Structural validation against the Chrome trace-event format.

    Accepts the object format (``{"traceEvents": [...]}``) or the bare
    array format.  Returns a list of problems; an empty list means the
    trace is loadable by Perfetto / ``chrome://tracing``.
    """
    problems: List[str] = []
    stack_frames: Optional[Dict[str, Any]] = None
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' list"]
        frames = data.get("stackFrames")
        if frames is not None:
            if not isinstance(frames, dict):
                return ["'stackFrames' must be an object"]
            stack_frames = frames
            for frame_id, frame in frames.items():
                if not isinstance(frame, dict) or "name" not in frame:
                    problems.append(f"stackFrames[{frame_id}]: missing 'name'")
                elif "parent" in frame and str(frame["parent"]) not in frames:
                    problems.append(
                        f"stackFrames[{frame_id}]: dangling parent"
                        f" {frame['parent']!r}"
                    )
    elif isinstance(data, list):
        events = data
    else:
        return [f"trace must be an object or array, got {type(data).__name__}"]

    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: invalid phase {phase!r}")
        if not isinstance(event.get("name"), str) and phase != "M":
            problems.append(f"{where}: missing string 'name'")
        if not isinstance(event.get("ts"), (int, float)) and phase != "M":
            problems.append(f"{where}: missing numeric 'ts'")
        if "pid" not in event:
            problems.append(f"{where}: missing 'pid'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs a non-negative 'dur'")
        if phase == "P" and stack_frames is not None:
            sf = event.get("sf")
            if sf is not None and str(sf) not in stack_frames:
                problems.append(f"{where}: sample references unknown frame {sf!r}")
    return problems

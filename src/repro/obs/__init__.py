"""repro.obs — structured tracing, metrics and profiling for the pipeline.

A zero-dependency observability layer instrumenting the four hot stages of
the module generator environment: PLDL interpretation (entity calls, ALT
backtracking, builtin primitives), successive compaction (per-object spans,
constraints, relaxations, auto-connects), order optimization (tree nodes,
branch-and-bound cuts, prefix-cache hits, trial ratings) and DRC (per-check
spans, violations by class, latch-up subtraction cases).  The verification
subsystem (``repro.verify``) reports through the same tracer: oracle runs
(``verify.oracle.checks`` / ``verify.oracle.violations.*``), differential
trials (``verify.differential.trials`` / ``.failures``), fuzz outcomes
(``verify.fuzz.ok`` / ``.graceful`` / ``.diverged`` / ``.crash``) and
golden-cell fingerprints (``verify.golden.cells`` / ``.skipped``), plus
``baseline.graph.*`` counters from the constraint-graph compactor.

Quick start::

    from repro import obs

    tracer = obs.Tracer()
    stats = tracer.add_sink(obs.StatsSink())
    tracer.add_sink(obs.ChromeTraceSink("trace.json"))
    with obs.activate(tracer):
        build_amplifier(tech)          # all stages record spans/counters
    tracer.close()                     # writes trace.json (open in Perfetto)
    print(stats.format_table())

From the command line: ``repro --trace trace.json amplifier`` and
``repro stats amplifier``.  See ``docs/observability.md`` for the API, the
sink catalogue, the per-layer instrumentation map and the Perfetto how-to.
"""

from .context import TraceContext, TracerSnapshot
from .hist import LogHistogram
from .ledger import (
    Ledger,
    RunRecord,
    current_git_sha,
    flatten_metrics,
    ledger_enabled,
    peak_rss_kb,
    resolve_ledger_dir,
    snapshot_metrics,
)
from .logsetup import ROOT_LOGGER_NAME, configure_logging, get_logger
from .profiler import SamplingProfiler
from .provenance import (
    Provenance,
    ProvenanceRecorder,
    StageSnapshot,
    builtin_call,
    format_provenance,
    get_recorder,
    provenance_entity,
    recording,
    set_recorder,
)
from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    Sink,
    SpanStats,
    StatsSink,
    validate_chrome_trace,
)
from .tracer import SpanRecord, Tracer, activate, get_tracer, set_tracer, traced

# NOTE: repro.obs.report is deliberately not imported here — it depends on
# repro.drc (which itself imports repro.obs); access it as repro.obs.report.
# repro.obs.regress (the `repro perf` engine) is likewise loaded on demand.

__all__ = [
    "Tracer",
    "SpanRecord",
    "get_tracer",
    "set_tracer",
    "activate",
    "traced",
    "Sink",
    "StatsSink",
    "SpanStats",
    "JsonlSink",
    "ChromeTraceSink",
    "validate_chrome_trace",
    "LogHistogram",
    "TraceContext",
    "TracerSnapshot",
    "SamplingProfiler",
    "Ledger",
    "RunRecord",
    "ledger_enabled",
    "resolve_ledger_dir",
    "current_git_sha",
    "flatten_metrics",
    "snapshot_metrics",
    "peak_rss_kb",
    "configure_logging",
    "get_logger",
    "ROOT_LOGGER_NAME",
    "Provenance",
    "ProvenanceRecorder",
    "StageSnapshot",
    "get_recorder",
    "set_recorder",
    "recording",
    "provenance_entity",
    "builtin_call",
    "format_provenance",
]

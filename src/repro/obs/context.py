"""Cross-process tracing: context propagation and mergeable snapshots.

The tracer is process-local, so every pool fan-out (the parallel order
optimizer today; the serving-layer worker pool and the DSE sweep harness
next) used to be an observability hole: spans, counters and gauges
produced inside a worker process died with it.  This module closes the
hole with two picklable values:

* :class:`TraceContext` — captured in the parent next to the work being
  submitted (trace id, the submitting span, the parent's epoch on the
  shared wall clock) and shipped to the worker inside its payload.  In the
  worker, ``with context.worker() as scope:`` bootstraps a fresh enabled
  tracer around the task — every instrumentation site in the worker works
  unchanged — and wraps the task in an ``obs.worker`` root span parented
  (by attribute) under the submitting span.

* :class:`TracerSnapshot` — everything the worker's tracer recorded
  (completed spans with thread ids, counter totals and call counts, gauges,
  events, per-span-name :class:`~repro.obs.hist.LogHistogram` state),
  returned alongside the worker's payload and folded into the parent with
  :meth:`~repro.obs.tracer.Tracer.merge_snapshot`.  Span timestamps are
  rebased onto the parent's epoch via the wall clock, so a merged
  :class:`~repro.obs.sinks.ChromeTraceSink` trace shows one coherent
  timeline with a distinct per-worker pid lane.

Merging is deterministic: counters, spans and histograms fold by addition
(order-independent); gauges are last-write-wins in the order snapshots are
merged, and callers merge in submission order.  A disabled parent tracer
captures no context (``TraceContext.capture`` returns ``None``) and the
workers run exactly as before — one ``is None`` check per fan-out.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .hist import LogHistogram
from .sinks import Sink
from .tracer import SpanRecord, Tracer, get_tracer, set_tracer

__all__ = ["TraceContext", "TracerSnapshot"]

#: Span tuple layout inside a snapshot: (name, start_ns, dur_ns, depth,
#: attrs, tid).  ``start_ns`` is already rebased onto the parent epoch.
SpanTuple = Tuple[str, int, int, int, Dict[str, Any], int]


class TracerSnapshot:
    """A picklable, mergeable capture of one worker tracer's records."""

    __slots__ = (
        "trace_id", "parent_span", "pid", "offset_ns", "duration_ns",
        "spans", "counters", "counter_calls", "gauges", "events",
        "histograms",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        pid: Optional[int] = None,
        offset_ns: int = 0,
        duration_ns: int = 0,
        spans: Optional[List[SpanTuple]] = None,
        counters: Optional[Dict[str, int]] = None,
        counter_calls: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, float]] = None,
        events: Optional[List[Tuple[str, int, Dict[str, Any]]]] = None,
        histograms: Optional[Dict[str, Dict[int, int]]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span = parent_span
        self.pid = pid if pid is not None else os.getpid()
        #: Worker epoch relative to the parent epoch (wall-clock aligned).
        self.offset_ns = offset_ns
        self.duration_ns = duration_ns
        self.spans: List[SpanTuple] = spans if spans is not None else []
        self.counters: Dict[str, int] = counters if counters is not None else {}
        self.counter_calls: Dict[str, int] = (
            counter_calls if counter_calls is not None else {}
        )
        self.gauges: Dict[str, float] = gauges if gauges is not None else {}
        #: Instants as (name, rebased ts_ns, attrs), in emission order.
        self.events: List[Tuple[str, int, Dict[str, Any]]] = (
            events if events is not None else []
        )
        #: Per-span-name fixed log-bucket state (sparse bucket -> count).
        self.histograms: Dict[str, Dict[int, int]] = (
            histograms if histograms is not None else {}
        )

    # ------------------------------------------------------------------
    @property
    def end_ns(self) -> int:
        """Parent-epoch timestamp at which the worker tracer closed."""
        return self.offset_ns + self.duration_ns

    def span_records(self) -> List[SpanRecord]:
        """The completed spans as :class:`SpanRecord` objects."""
        return [
            SpanRecord(name, start_ns, dur_ns, depth, dict(attrs))
            for name, start_ns, dur_ns, depth, attrs, _tid in self.spans
        ]

    @staticmethod
    def fold(snapshots: "List[TracerSnapshot]") -> Dict[str, int]:
        """Sum the counters of several snapshots (the merge arithmetic the
        parent performs — tests pin parent totals against this fold)."""
        totals: Dict[str, int] = {}
        for snapshot in snapshots:
            for name, value in snapshot.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TracerSnapshot(pid={self.pid}, spans={len(self.spans)},"
            f" counters={len(self.counters)})"
        )


class _SnapshotSink(Sink):
    """Worker-side sink collecting everything for the snapshot."""

    def __init__(self) -> None:
        self.spans: List[Tuple[str, int, int, int, Dict[str, Any], int]] = []
        self.counters: Dict[str, int] = {}
        self.counter_calls: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.events: List[Tuple[str, int, Dict[str, Any]]] = []
        self._lock = threading.Lock()

    def on_span(self, record: SpanRecord) -> None:
        entry = (
            record.name, record.start_ns, record.duration_ns, record.depth,
            record.attrs, threading.get_ident(),
        )
        with self._lock:
            self.spans.append(entry)

    def on_count(self, name: str, n: int, ts_ns: int) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
            self.counter_calls[name] = self.counter_calls.get(name, 0) + 1

    def on_gauge(self, name: str, value: float, ts_ns: int) -> None:
        with self._lock:
            self.gauges[name] = value

    def on_event(self, name: str, ts_ns: int, attrs: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append((name, ts_ns, attrs))


class _WorkerScope:
    """``with context.worker() as scope:`` — a bootstrapped worker tracer.

    Entering installs a fresh enabled tracer as the process tracer (the
    forked child may have inherited the parent's live tracer object — its
    sinks are unreachable from here, so it is always replaced) and opens
    the ``obs.worker`` root span.  Exiting restores the previous tracer;
    :meth:`snapshot` then packages what was recorded.
    """

    def __init__(self, context: "TraceContext") -> None:
        self.context = context
        self.tracer = Tracer(enabled=True)
        self._collector = _SnapshotSink()
        self.tracer.add_sink(self._collector)
        self._previous: Optional[Tracer] = None
        self._root = None
        self._offset_ns = 0
        self._duration_ns = 0

    def __enter__(self) -> "_WorkerScope":
        # Wall-clock alignment: both processes share one wall clock, so the
        # worker epoch expressed on the parent epoch is the wall time now
        # minus how long this tracer has already been running.
        self._offset_ns = max(
            0, (time.time_ns() - self.tracer._now_ns()) - self.context.epoch_wall_ns
        )
        self._previous = set_tracer(self.tracer)
        self._root = self.tracer.span(
            "obs.worker",
            parent=self.context.parent_span,
            trace=self.context.trace_id,
            pid=os.getpid(),
        )
        self._root.__enter__()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._root.__exit__(exc_type, exc, tb)
        self._duration_ns = self.tracer._now_ns()
        assert self._previous is not None
        set_tracer(self._previous)
        return False

    def snapshot(self) -> TracerSnapshot:
        """Package the records (call after the ``with`` block exits)."""
        collector = self._collector
        offset = self._offset_ns
        spans: List[SpanTuple] = [
            (name, start_ns + offset, dur_ns, depth, attrs, tid)
            for name, start_ns, dur_ns, depth, attrs, tid in collector.spans
        ]
        histograms: Dict[str, Dict[int, int]] = {}
        for name, _start, dur_ns, _depth, _attrs, _tid in spans:
            hist = histograms.get(name)
            if hist is None:
                hist = histograms[name] = {}
            index = LogHistogram.bucket_index(dur_ns)
            hist[index] = hist.get(index, 0) + 1
        return TracerSnapshot(
            trace_id=self.context.trace_id,
            parent_span=self.context.parent_span,
            pid=os.getpid(),
            offset_ns=offset,
            duration_ns=self._duration_ns,
            spans=spans,
            counters=dict(collector.counters),
            counter_calls=dict(collector.counter_calls),
            gauges=dict(collector.gauges),
            events=[
                (name, ts_ns + offset, attrs)
                for name, ts_ns, attrs in collector.events
            ],
            histograms=histograms,
        )


class TraceContext:
    """The picklable tracing state a pool worker needs to continue a trace."""

    __slots__ = ("trace_id", "parent_span", "epoch_wall_ns")

    def __init__(
        self,
        trace_id: Optional[str],
        parent_span: Optional[str],
        epoch_wall_ns: int,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span = parent_span
        #: Wall-clock time (``time.time_ns()``) of the parent tracer's epoch
        #: — the anchor worker timestamps are rebased against.
        self.epoch_wall_ns = epoch_wall_ns

    @classmethod
    def capture(cls, tracer: Optional[Tracer] = None) -> Optional["TraceContext"]:
        """The current tracing context, or ``None`` when tracing is off.

        This is the whole cost an untraced fan-out pays: one ``enabled``
        check (priced by ``benchmarks/bench_obs_overhead.py``).
        """
        if tracer is None:
            tracer = get_tracer()
        if not tracer.enabled:
            return None
        return cls(
            trace_id=tracer.trace_id,
            parent_span=tracer.current_span_name(),
            epoch_wall_ns=time.time_ns() - tracer._now_ns(),
        )

    def worker(self) -> _WorkerScope:
        """A context manager bootstrapping the worker-side tracer."""
        return _WorkerScope(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id}, parent={self.parent_span!r})"

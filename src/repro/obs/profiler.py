"""Zero-dependency sampling profiler: wall-clock stacks and memory peaks.

``SamplingProfiler`` is a ``threading``-based wall-clock stack sampler: a
daemon thread wakes every ``interval_s`` (default 5 ms), grabs every live
thread's Python stack via :func:`sys._current_frames` and accumulates
collapsed call stacks.  Its output is

* **folded stacks** (``frame;frame;frame count`` lines) — the format
  consumed by ``flamegraph.pl`` and importable into
  `speedscope <https://www.speedscope.app>`_,
* a **top-functions table** (self/total sample counts per function), and
* optional **sampled-stack events** streamed into a
  :class:`~repro.obs.sinks.ChromeTraceSink`, so profiles overlay the
  tracer's spans on the same timeline in Perfetto.

``mode="memory"`` swaps the wall-clock sampler for :mod:`tracemalloc`:
allocation tracebacks become the folded stacks (weighted by KiB still
allocated at stop) and the table lists the top allocation sites.

From the command line: ``repro --profile out.folded <command>``.

There is no always-on instrumentation: a profiler that was never started
costs nothing anywhere in the pipeline (the overhead bench records this as
zero added sites).
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle with .sinks
    from .sinks import ChromeTraceSink

__all__ = ["SamplingProfiler"]

#: Default sampling period: 5 ms ≈ 200 Hz, low enough to be invisible on
#: second-scale workloads, high enough for ~1k samples on the amplifier.
DEFAULT_INTERVAL_S = 0.005

_Stack = Tuple[str, ...]


def _frame_label(frame) -> str:
    """``module.qualname`` for one frame, safe for the folded format."""
    module = frame.f_globals.get("__name__", "?")
    label = f"{module}.{frame.f_code.co_qualname}"
    # The folded format delimits frames with ';' and the count with a space.
    return label.replace(";", ",").replace(" ", "_")


class SamplingProfiler:
    """Collect collapsed stacks from a live process.

    Parameters:

    * ``interval_s`` — wall-clock sampling period (``mode="wall"``).
    * ``mode`` — ``"wall"`` (stack sampler) or ``"memory"``
      (:mod:`tracemalloc` allocation tracebacks, weighted in KiB).
    * ``chrome_sink`` — optional :class:`ChromeTraceSink`; every wall
      sample is forwarded as a trace ``"P"`` event referencing a shared
      ``stackFrames`` table, so the profile overlays spans in Perfetto.
    * ``epoch_ns`` — timestamp origin for chrome events; pass the live
      tracer's ``epoch_ns`` so samples and spans share a timeline.

    Thread model: one daemon sampler thread; it samples every thread
    except itself.  ``start``/``stop`` are idempotent.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        mode: str = "wall",
        chrome_sink: Optional["ChromeTraceSink"] = None,
        epoch_ns: Optional[int] = None,
        max_depth: int = 256,
    ) -> None:
        if mode not in ("wall", "memory"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        self.interval_s = max(interval_s, 0.0001)
        self.mode = mode
        self.chrome_sink = chrome_sink
        self.epoch_ns = epoch_ns
        self.max_depth = max_depth
        #: collapsed stack -> sample count (wall) or KiB (memory).
        self.stacks: Dict[_Stack, float] = {}
        self.sample_count = 0
        self.duration_s = 0.0
        #: tracemalloc peak in KiB (memory mode only).
        self.peak_kib: Optional[float] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._offset_ns = 0

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None or (
            self.mode == "memory" and self._started_at is not None
        )

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._started_at = time.perf_counter()
        if self.mode == "memory":
            import tracemalloc

            tracemalloc.start(min(self.max_depth, 64))
            return self
        # Sample timestamps are relative to the tracer's epoch when given,
        # so "P" events line up with span "X" events on one timeline.
        self._offset_ns = (
            self.epoch_ns if self.epoch_ns is not None
            else time.perf_counter_ns()
        )
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._started_at is None:
            return self
        self.duration_s += time.perf_counter() - self._started_at
        self._started_at = None
        if self.mode == "memory":
            self._collect_memory()
            return self
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        own_id = threading.get_ident()
        stop_wait = self._stop_event.wait
        while not stop_wait(self.interval_s):
            now_ns = time.perf_counter_ns()
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                if not stack:
                    continue
                stack.reverse()
                key = tuple(stack)
                self.stacks[key] = self.stacks.get(key, 0) + 1
                self.sample_count += 1
                if self.chrome_sink is not None:
                    self.chrome_sink.add_sample(
                        now_ns - self._offset_ns, key, tid=thread_id
                    )

    def _collect_memory(self) -> None:
        import tracemalloc

        _, peak = tracemalloc.get_traced_memory()
        self.peak_kib = peak / 1024.0
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        for stat in snapshot.statistics("traceback"):
            stack = tuple(
                # "<frozen runpy>"-style names carry spaces; the folded
                # format reserves both space and semicolon as separators.
                f"{Path(frame.filename).name}:{frame.lineno}"
                .replace(";", ",").replace(" ", "_")
                for frame in stat.traceback  # oldest frame first
            )
            if not stack:
                continue
            kib = stat.size / 1024.0
            self.stacks[stack] = self.stacks.get(stack, 0.0) + kib
            self.sample_count += 1

    # ------------------------------------------------------------------
    def folded(self) -> str:
        """Collapsed stacks, one ``frame;frame count`` line per stack.

        Counts are samples (wall mode) or KiB rounded up (memory mode).
        Lines are sorted for deterministic output; the result loads in
        ``flamegraph.pl`` and speedscope.
        """
        lines = []
        for stack in sorted(self.stacks):
            weight = self.stacks[stack]
            count = int(weight) if weight == int(weight) else max(1, round(weight))
            lines.append(";".join(stack) + f" {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.write_text(self.folded(), encoding="utf-8")
        return target

    # ------------------------------------------------------------------
    def totals(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Per-frame ``(self_weight, total_weight)`` maps."""
        self_w: Dict[str, float] = {}
        total_w: Dict[str, float] = {}
        for stack, weight in self.stacks.items():
            self_w[stack[-1]] = self_w.get(stack[-1], 0) + weight
            for label in set(stack):
                total_w[label] = total_w.get(label, 0) + weight
        return self_w, total_w

    def top_table(self, top: int = 15) -> str:
        """Aligned top-functions table (by self weight, then total)."""
        self_w, total_w = self.totals()
        if not total_w:
            return "(no samples collected)"
        grand = sum(self_w.values()) or 1.0
        unit = "samples" if self.mode == "wall" else "KiB"
        ranked = sorted(
            total_w, key=lambda name: (-self_w.get(name, 0), -total_w[name], name)
        )[:top]
        name_w = max(len(name) for name in ranked)
        name_w = max(name_w, len("function"))
        lines = [
            f"{'function':<{name_w}} {'self%':>7} {'self':>10} {'total%':>7}"
            f" {'total':>10}",
        ]
        for name in ranked:
            own = self_w.get(name, 0)
            total = total_w[name]
            lines.append(
                f"{name:<{name_w}} {100.0 * own / grand:>6.1f}% {own:>10.0f}"
                f" {100.0 * total / grand:>6.1f}% {total:>10.0f}"
            )
        header = (
            f"{self.sample_count} {unit} over {self.duration_s:.2f}s"
            + (f" at {self.interval_s * 1e3:.1f} ms/sample"
               if self.mode == "wall" else
               (f", peak {self.peak_kib:.0f} KiB traced"
                if self.peak_kib is not None else ""))
        )
        return header + "\n" + "\n".join(lines)

"""DRC explainability and the self-contained HTML run report.

Two layers on top of the provenance recorder:

* :func:`explain_violations` upgrades raw DRC :class:`~repro.drc.violations.
  Violation` records into :class:`Explanation` objects: the rule text in the
  technology-file format, a plain-language gloss of the rule family, the
  provenance chain of every involved rect, the Fig. 1 overlap-case id for
  latch-up violations, and a nearest-legal suggestion where one is
  computable (e.g. how far apart two rects must move).
* :func:`render_report` / :func:`write_report` emit a single-file HTML run
  report: overview metrics, one layout SVG per recorded compaction stage,
  the final layout with violation overlays and provenance tooltips, the
  violation/explanation table, the optimizer trial table, and the tracer's
  stats table.

This module deliberately is **not** imported by ``repro.obs.__init__`` — it
depends on ``repro.drc``, which itself imports ``repro.obs``; access it as
``repro.obs.report``.  The CLI's ``repro explain`` and ``repro report``
subcommands are thin wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import escape
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..db import LayoutObject
from ..drc import Violation, run_drc, temporary_rectangles
from ..geometry import Rect, overlap_classification
from ..io import render_svg
from .provenance import ProvenanceRecorder, format_provenance

__all__ = [
    "Explanation",
    "explain_violations",
    "render_report",
    "write_report",
]

#: Plain-language meaning of each violation kind (the "why is this a rule"
#: half of the explanation; the rule text is the "what does it demand" half).
_KIND_GLOSS: Dict[str, str] = {
    "width": (
        "Every drawn shape must meet the layer's minimum width (cuts must be"
        " exactly their fixed size) or it cannot be manufactured reliably."
    ),
    "spacing": (
        "Distinct shapes must keep the technology's minimum separation or"
        " they risk merging/shorting during fabrication."
    ),
    "enclosure": (
        "A cut must be covered by conducting material on both of the layers"
        " it connects, with the rule's enclosure margin."
    ),
    "extension": (
        "A device layer must extend past the layer it crosses (gate endcaps,"
        " source/drain areas) or the device is malformed."
    ),
    "area": (
        "A merged shape must meet the layer's minimum area to survive"
        " lithography."
    ),
    "short": (
        "One electrically merged shape carries more than one net — the"
        " layout connects nets that must stay separate."
    ),
    "latchup": (
        "Active area farther from a substrate contact than the latch-up rule"
        " allows (Fig. 1's temporary-rectangle examination) can trigger the"
        " parasitic thyristor."
    ),
}

#: Fig. 1 axis-case names, index 0..3 (see geometry.overlap_classification).
_AXIS_CASE = ("covers", "covers-low", "covers-high", "interior")


@dataclass
class Explanation:
    """One DRC violation with everything needed to act on it."""

    violation: Violation
    #: The governing rule in the technology-file format, e.g.
    #: ``SPACE metal1 metal1 600`` (empty when no single rule applies).
    rule_text: str
    #: Plain-language meaning of the rule family.
    gloss: str
    #: ``(rect, provenance chain)`` for every rect the checker flagged.
    provenances: List[Tuple[Rect, str]] = field(default_factory=list)
    #: Nearest-legal fix where one is computable.
    suggestion: Optional[str] = None
    #: Fig. 1 ``(horizontal, vertical)`` overlap case for latch-up.
    latchup_case: Optional[Tuple[int, int]] = None

    def format(self) -> str:
        """Multi-line human rendering (what ``repro explain`` prints)."""
        lines = [str(self.violation)]
        if self.rule_text:
            lines.append(f"  rule: {self.rule_text}")
        lines.append(f"  why: {self.gloss}")
        if self.latchup_case is not None:
            h, v = self.latchup_case
            lines.append(
                f"  overlap case: ({h},{v}) —"
                f" horizontal {_AXIS_CASE[h]}, vertical {_AXIS_CASE[v]}"
            )
        for index, (rect, chain) in enumerate(self.provenances):
            lines.append(f"  rect[{index}] {rect!r}")
            lines.append(f"    from: {chain}")
        if self.suggestion:
            lines.append(f"  fix: {self.suggestion}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# rule text reconstruction
# ---------------------------------------------------------------------------
def _rule_text(obj: LayoutObject, violation: Violation) -> str:
    rules = obj.tech.rules
    kind = violation.kind
    rects = violation.rects
    if kind == "width" and rects:
        layer = rects[0].layer
        cut = rules.cut_size(layer)
        if cut is not None:
            return f"CUTSIZE {layer} {cut}"
        value = rules.width(layer)
        return f"WIDTH {layer} {value}" if value is not None else ""
    if kind == "spacing" and len(rects) >= 2:
        a, b = rects[0].layer, rects[1].layer
        value = obj.tech.min_space(a, b)
        return f"SPACE {a} {b} {value}" if value is not None else ""
    if kind == "enclosure" and rects:
        layer = rects[0].layer
        parts = []
        for outer in sorted(rules.enclosing_layers(layer)):
            value = rules.enclose(outer, layer)
            parts.append(f"ENCLOSE {outer} {layer} {value}")
        return "; ".join(parts)
    if kind == "extension" and len(rects) >= 2:
        gate, body = rects[0].layer, rects[1].layer
        parts = []
        for a, b in ((gate, body), (body, gate)):
            value = rules.extend(a, b)
            if value is not None:
                parts.append(f"EXTEND {a} {b} {value}")
        return "; ".join(parts)
    if kind == "area" and rects:
        layer = rects[0].layer
        value = rules.area(layer)
        return f"AREA {layer} {value}" if value is not None else ""
    if kind == "latchup":
        for contact, value in (
            pair for rule, pair in rules.iter_rules() if rule == "LATCHUP"
        ):
            return f"LATCHUP {contact} {value}"
    return ""


# ---------------------------------------------------------------------------
# nearest-legal suggestions
# ---------------------------------------------------------------------------
def _suggestion(obj: LayoutObject, violation: Violation) -> Optional[str]:
    rules = obj.tech.rules
    kind = violation.kind
    rects = violation.rects
    if kind == "spacing" and len(rects) >= 2:
        a, b = rects[0], rects[1]
        rule = obj.tech.min_space(a.layer, b.layer)
        if rule is None:
            return None
        gap = a.distance(b)
        need = rule - gap
        if need <= 0:
            return None
        return (
            f"move the shapes at least {need} dbu further apart"
            f" (gap {gap} dbu, nearest legal spacing {rule} dbu)"
        )
    if kind == "width" and rects:
        layer = rects[0].layer
        if rules.cut_size(layer) is not None:
            return f"redraw the cut as a {rules.cut_size(layer)} dbu square"
        rule = rules.width(layer)
        if rule is None:
            return None
        need = rule - rects[0].short_side()
        if need <= 0:
            return None
        return f"widen the shape by {need} dbu to reach the {rule} dbu minimum"
    if kind == "latchup":
        for contact, value in (
            pair for rule, pair in rules.iter_rules() if rule == "LATCHUP"
        ):
            return (
                f"place a {contact} contact within {value} dbu of this area"
                " (drc.insert_protection_contacts can do it automatically)"
            )
    if kind == "enclosure" and rects:
        return "cover the cut with plates on both connected layers"
    if kind == "short":
        return "separate the shapes or unify their net assignment"
    return None


# ---------------------------------------------------------------------------
# latch-up overlap-case identification
# ---------------------------------------------------------------------------
def _latchup_case(
    obj: LayoutObject, violation: Violation, contact_layer: str = "subcontact"
) -> Optional[Tuple[int, int]]:
    """Fig. 1 case of the nearest protection rectangle, if any reaches.

    The violation rects are *remainders* after subtraction, so by
    construction they overlap no temporary rectangle; the case id describes
    how the nearest temporary rectangle cut the original active solid.
    Returns ``None`` when no temporary rectangle overlaps that solid at all
    (the area is completely unprotected).
    """
    if not violation.rects:
        return None
    if (
        not obj.tech.has_layer(contact_layer)
        or obj.tech.rules.latchup(contact_layer) is None
    ):
        return None
    remainder = violation.rects[0]
    solid = next(
        (
            rect
            for rect in obj.rects_on(remainder.layer)
            if rect.contains(remainder)
        ),
        None,
    )
    if solid is None:
        return None
    best: Optional[Tuple[int, Tuple[int, int]]] = None
    for temp in temporary_rectangles(obj, contact_layer):
        try:
            case = overlap_classification(solid, temp)
        except ValueError:
            continue
        distance = remainder.distance(temp)
        if best is None or distance < best[0]:
            best = (distance, case)
    return best[1] if best is not None else None


def explain_violations(
    obj: LayoutObject, violations: Optional[Sequence[Violation]] = None
) -> List[Explanation]:
    """Explain *violations* (running the full DRC when none are given)."""
    if violations is None:
        violations = run_drc(obj)
    explanations: List[Explanation] = []
    for violation in violations:
        explanations.append(
            Explanation(
                violation=violation,
                rule_text=_rule_text(obj, violation),
                gloss=_KIND_GLOSS.get(violation.kind, ""),
                provenances=[
                    (rect, format_provenance(rect.prov))
                    for rect in violation.rects
                ],
                suggestion=_suggestion(obj, violation),
                latchup_case=(
                    _latchup_case(obj, violation)
                    if violation.kind == "latchup"
                    else None
                ),
            )
        )
    return explanations


# ---------------------------------------------------------------------------
# HTML run report
# ---------------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 70em; color: #222; }
h1, h2 { border-bottom: 1px solid #ccc; padding-bottom: .2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: .3em .6em; text-align: left;
         vertical-align: top; font-size: .9em; }
th { background: #f0f0f0; }
.stage { display: inline-block; margin: .4em; text-align: center;
         vertical-align: top; }
.stage svg { border: 1px solid #ddd; background: white; }
.stage .cap { font-size: .75em; color: #555; max-width: 16em; }
.ok { color: #070; } .bad { color: #b00; }
pre { background: #f6f6f6; padding: .6em; overflow-x: auto; font-size: .85em; }
.prov { font-family: monospace; font-size: .85em; }
"""

#: Maximum stage thumbnails in the gallery (evenly sampled beyond this).
_MAX_STAGES = 48


def _auto_scale(obj: LayoutObject, target_px: float = 860.0) -> float:
    """A scale that fits the object's width into roughly *target_px*."""
    box = obj.bbox()
    if box is None or box.width <= 0:
        return 0.02
    return min(0.02, target_px / (box.width + 4000))


def _sample(stages: Sequence[Any], limit: int) -> List[Any]:
    if len(stages) <= limit:
        return list(stages)
    step = (len(stages) - 1) / (limit - 1)
    picked = [stages[round(i * step)] for i in range(limit)]
    # De-duplicate while keeping order (rounding can repeat an index).
    seen: set = set()
    unique = []
    for stage in picked:
        if id(stage) not in seen:
            seen.add(id(stage))
            unique.append(stage)
    return unique


def _coverage(obj: LayoutObject) -> Tuple[int, int]:
    """(rects with a non-empty entity stack, total non-empty rects)."""
    total = 0
    covered = 0
    for rect in obj.nonempty_rects:
        total += 1
        if rect.prov is not None and rect.prov.entities:
            covered += 1
    return covered, total


def _prov_tooltip(rect: Rect) -> Optional[str]:
    return None if rect.prov is None else rect.prov.describe()


def render_report(
    obj: LayoutObject,
    recorder: Optional[ProvenanceRecorder] = None,
    violations: Optional[Sequence[Violation]] = None,
    stats_table: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Render the self-contained HTML run report for *obj*.

    ``recorder`` supplies the compaction-stage gallery and optimizer trial
    table; ``violations`` defaults to a fresh full DRC run; ``stats_table``
    is the tracer's :meth:`~repro.obs.sinks.StatsSink.format_table` output.
    """
    if violations is None:
        violations = run_drc(obj)
    explanations = explain_violations(obj, violations)
    scale = _auto_scale(obj)
    covered, total = _coverage(obj)
    box = obj.bbox()
    dbu = obj.tech.dbu_per_micron

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{escape(title or obj.name)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title or f'Run report: {obj.name}')}</h1>",
    ]

    # ---- overview -----------------------------------------------------
    parts.append("<h2>Overview</h2><table>")
    rows = [
        ("object", obj.name),
        ("technology", obj.tech.name),
        (
            "dimensions",
            f"{obj.width} × {obj.height} dbu"
            f" ({obj.width / dbu:.2f} × {obj.height / dbu:.2f} µm)"
            if box is not None
            else "(empty)",
        ),
        ("rectangles", str(len(obj.nonempty_rects))),
        ("nets", str(len(obj.nets()))),
        (
            "provenance coverage",
            f"{covered}/{total} rects with a non-empty entity stack",
        ),
        (
            "violations",
            f'<span class="{"bad" if violations else "ok"}">'
            f"{len(violations)}</span>",
        ),
    ]
    for key, value in rows:
        parts.append(f"<tr><th>{escape(key)}</th><td>{value}</td></tr>")
    parts.append("</table>")

    # ---- compaction stages --------------------------------------------
    stages = list(recorder.stages) if recorder is not None else []
    if stages:
        parts.append(f"<h2>Compaction stages ({len(stages)} recorded)</h2>")
        shown = _sample(stages, _MAX_STAGES)
        if len(shown) < len(stages) or recorder.stages_dropped:
            note = f"showing {len(shown)} of {len(stages)}"
            if recorder.stages_dropped:
                note += (
                    f"; {recorder.stages_dropped} further stage(s) not"
                    " recorded (stage limit)"
                )
            parts.append(f"<p>{escape(note)}</p>")
        for stage in shown:
            thumb = render_svg(
                stage.obj, scale=_auto_scale(stage.obj, 220.0),
                show_labels=False,
            )
            meta = ", ".join(f"{k}={v}" for k, v in stage.meta.items())
            parts.append(
                '<div class="stage">'
                + thumb
                + f'<div class="cap">{escape(stage.label)}'
                + (f"<br>{escape(meta)}" if meta else "")
                + "</div></div>"
            )

    # ---- final layout -------------------------------------------------
    parts.append("<h2>Final layout</h2>")
    highlights = [
        (rect, f"[{e.violation.kind}] {e.violation.message}")
        for e in explanations
        for rect in e.violation.rects
        if not rect.is_empty
    ]
    parts.append(
        render_svg(
            obj, scale=scale, tooltip_extra=_prov_tooltip,
            highlights=highlights,
        )
    )
    parts.append(
        "<p>Hover rects for layer/net and provenance; dashed red outlines"
        " mark DRC violations.</p>"
    )

    # ---- violations ---------------------------------------------------
    parts.append("<h2>Violations</h2>")
    if not explanations:
        parts.append('<p class="ok">DRC clean: no violations.</p>')
    else:
        parts.append(
            "<table><tr><th>#</th><th>kind</th><th>message</th><th>rule</th>"
            "<th>provenance</th><th>suggested fix</th></tr>"
        )
        for index, explanation in enumerate(explanations):
            violation = explanation.violation
            chains = "<br>".join(
                f'<span class="prov">{escape(chain)}</span>'
                for _, chain in explanation.provenances
            )
            extra = ""
            if explanation.latchup_case is not None:
                h, v = explanation.latchup_case
                extra = f" (overlap case {h},{v})"
            parts.append(
                f"<tr><td>{index}</td><td>{escape(violation.kind)}</td>"
                f"<td>{escape(violation.message)}{escape(extra)}"
                f" @ {violation.where}</td>"
                f"<td>{escape(explanation.rule_text)}</td>"
                f"<td>{chains}</td>"
                f"<td>{escape(explanation.suggestion or '')}</td></tr>"
            )
        parts.append("</table>")

    # ---- optimizer trials ---------------------------------------------
    trials = list(recorder.trials) if recorder is not None else []
    if trials:
        parts.append(f"<h2>Optimizer trials ({len(trials)})</h2>")
        columns = sorted({key for trial in trials for key in trial})
        # Keep a stable, readable column order.
        preferred = ["engine", "sequence", "order", "score", "best"]
        columns = [c for c in preferred if c in columns] + [
            c for c in columns if c not in preferred
        ]
        parts.append(
            "<table><tr>"
            + "".join(f"<th>{escape(c)}</th>" for c in columns)
            + "</tr>"
        )
        for trial in trials:
            parts.append(
                "<tr>"
                + "".join(
                    f"<td>{escape(str(trial.get(c, '')))}</td>" for c in columns
                )
                + "</tr>"
            )
        parts.append("</table>")

    # ---- tracer stats -------------------------------------------------
    if stats_table:
        parts.append("<h2>Tracer statistics</h2>")
        parts.append(f"<pre>{escape(stats_table)}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(
    obj: LayoutObject,
    path: Union[str, Path],
    **kwargs: Any,
) -> Path:
    """Render and write the HTML run report; returns the path."""
    target = Path(path)
    target.write_text(render_report(obj, **kwargs), encoding="utf-8")
    return target

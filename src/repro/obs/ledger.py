"""Run ledger: an append-only performance history of every pipeline run.

Every ``repro`` CLI command and every benchmark appends one structured
record — command, argv, technology, git SHA, wall/CPU time, peak RSS and a
flat snapshot of all tracer counters/gauges and per-span totals — to an
append-only JSONL file *and* a SQLite index under
``~/.cache/repro/ledger`` (override with ``REPRO_LEDGER_DIR`` or the
``--ledger DIR`` flag; opt out with ``REPRO_LEDGER=0`` or ``--no-ledger``).
The JSONL file is the durable source of truth (one self-contained JSON
object per line, never rewritten); the SQLite database indexes the same
records for the ``repro perf`` queries (:mod:`repro.obs.regress`) and holds
named baselines.

The ledger is the read side of the performance observatory: the sampling
profiler (:mod:`repro.obs.profiler`) answers "where does the time go in
*this* run", the ledger answers "how does this run compare to every run
before it".

Disabled cost: one environment lookup per *command* (not per call site),
measured by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import statistics
import subprocess
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .logsetup import get_logger

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "Ledger",
    "BaselineStat",
    "ledger_enabled",
    "resolve_ledger_dir",
    "current_git_sha",
    "flatten_metrics",
    "snapshot_metrics",
    "peak_rss_kb",
]

log = get_logger("obs")

#: Bump when the record shape changes; records carry their version.
SCHEMA_VERSION = 1

#: ``REPRO_LEDGER=0`` (or false/no/off) disables all ledger writes.
ENV_SWITCH = "REPRO_LEDGER"
#: Overrides the ledger directory (highest precedence after ``--ledger``).
ENV_DIR = "REPRO_LEDGER_DIR"

_FALSY = {"0", "false", "no", "off"}


def ledger_enabled(opt_out: bool = False) -> bool:
    """Whether runs should be recorded (``--no-ledger`` / ``REPRO_LEDGER=0``)."""
    if opt_out:
        return False
    return os.environ.get(ENV_SWITCH, "1").strip().lower() not in _FALSY


def resolve_ledger_dir(override: Union[str, Path, None] = None) -> Path:
    """The ledger directory: explicit override > ``$REPRO_LEDGER_DIR`` > default."""
    if override is not None:
        return Path(override)
    env = os.environ.get(ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "ledger"


# ---------------------------------------------------------------------------
_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def current_git_sha(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The current checkout's short SHA, or ``None`` outside a repository.

    Cached per working directory — the ledger stamps every command and a
    ``git rev-parse`` subprocess per record would dominate small commands.
    Falls back to ``$GITHUB_SHA`` (CI detached worktrees without git).
    """
    key = str(cwd or os.getcwd())
    if key in _GIT_SHA_CACHE:
        return _GIT_SHA_CACHE[key]
    sha: Optional[str] = None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=key, capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0:
            sha = out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - no git
        sha = None
    if sha is None:
        sha = os.environ.get("GITHUB_SHA", "")[:12] or None
    _GIT_SHA_CACHE[key] = sha
    return sha


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (``None`` if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if os.uname().sysname == "Darwin":  # pragma: no cover - platform
        peak //= 1024
    return int(peak)


# ---------------------------------------------------------------------------
def flatten_metrics(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten nested dicts of numbers into ``{"a.b.c": value}``.

    Non-numeric leaves (strings, lists, ``None``, booleans) are dropped —
    the result is the flat metric namespace ``repro perf`` diffs over.
    """
    flat: Dict[str, float] = {}
    if isinstance(payload, Mapping):
        for key, value in payload.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, name))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        if prefix:
            flat[prefix] = float(payload)
    return flat


def snapshot_metrics(stats: Any) -> Dict[str, float]:
    """Flatten a :class:`~repro.obs.sinks.StatsSink` into ledger metrics.

    Counters and gauges keep their dotted names; spans contribute
    ``span.<name>.total_s`` and ``span.<name>.calls`` plus histogram
    percentiles ``span.<name>.p50_s`` / ``.p90_s`` / ``.p99_s`` (the
    ``_s`` suffix keeps them in the perf-check noise classification with
    the other timing metrics).
    """
    metrics: Dict[str, float] = {}
    for name, value in stats.counters.items():
        metrics[name] = float(value)
    for name, value in stats.gauges.items():
        metrics[name] = float(value)
    for name, span in stats.spans.items():
        metrics[f"span.{name}.total_s"] = span.total_ns / 1e9
        metrics[f"span.{name}.calls"] = float(span.calls)
        p50, p90, p99 = span.hist.percentiles((50, 90, 99))
        metrics[f"span.{name}.p50_s"] = p50 / 1e9
        metrics[f"span.{name}.p90_s"] = p90 / 1e9
        metrics[f"span.{name}.p99_s"] = p99 / 1e9
    return metrics


# ---------------------------------------------------------------------------
class RunRecord:
    """One ledger entry; ``rowid`` is assigned by :meth:`Ledger.append`."""

    __slots__ = (
        "run_id", "ts", "kind", "command", "argv", "tech", "git_sha",
        "status", "wall_s", "cpu_s", "peak_rss_kb", "metrics", "extra",
        "rowid",
    )

    def __init__(
        self,
        command: str,
        *,
        kind: str = "cli",
        argv: Sequence[str] = (),
        tech: Optional[str] = None,
        git_sha: Optional[str] = None,
        status: int = 0,
        wall_s: Optional[float] = None,
        cpu_s: Optional[float] = None,
        peak_rss_kb: Optional[int] = None,
        metrics: Optional[Dict[str, float]] = None,
        extra: Optional[Dict[str, Any]] = None,
        run_id: Optional[str] = None,
        ts: Optional[str] = None,
        rowid: Optional[int] = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.ts = ts or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self.kind = kind
        self.command = command
        self.argv = list(argv)
        self.tech = tech
        self.git_sha = git_sha
        self.status = status
        self.wall_s = wall_s
        self.cpu_s = cpu_s
        self.peak_rss_kb = peak_rss_kb
        self.metrics = dict(metrics or {})
        self.extra = dict(extra or {})
        self.rowid = rowid

    # ------------------------------------------------------------------
    def all_metrics(self) -> Dict[str, float]:
        """The tracked metrics plus the built-in resource measurements."""
        merged = dict(self.metrics)
        for name, value in (
            ("wall_s", self.wall_s),
            ("cpu_s", self.cpu_s),
            ("peak_rss_kb", self.peak_rss_kb),
        ):
            if value is not None:
                merged[name] = float(value)
        return merged

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "ts": self.ts,
            "kind": self.kind,
            "command": self.command,
            "argv": self.argv,
            "tech": self.tech,
            "git_sha": self.git_sha,
            "status": self.status,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any],
                  rowid: Optional[int] = None) -> "RunRecord":
        return cls(
            data["command"],
            kind=data.get("kind", "cli"),
            argv=data.get("argv") or (),
            tech=data.get("tech"),
            git_sha=data.get("git_sha"),
            status=int(data.get("status") or 0),
            wall_s=data.get("wall_s"),
            cpu_s=data.get("cpu_s"),
            peak_rss_kb=data.get("peak_rss_kb"),
            metrics=data.get("metrics") or {},
            extra=data.get("extra") or {},
            run_id=data.get("run_id"),
            ts=data.get("ts"),
            rowid=rowid,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunRecord(#{self.rowid} {self.command!r} {self.ts}"
                f" wall={self.wall_s})")


class BaselineStat:
    """Median/MAD of one metric inside a named baseline."""

    __slots__ = ("median", "mad", "samples")

    def __init__(self, median: float, mad: float, samples: int) -> None:
        self.median = median
        self.mad = mad
        self.samples = samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BaselineStat(median={self.median}, mad={self.mad}, n={self.samples})"


# ---------------------------------------------------------------------------
_DDL = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL,
    ts TEXT NOT NULL,
    kind TEXT NOT NULL,
    command TEXT NOT NULL,
    tech TEXT,
    git_sha TEXT,
    status INTEGER NOT NULL DEFAULT 0,
    wall_s REAL,
    cpu_s REAL,
    peak_rss_kb INTEGER,
    json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_command ON runs (command, id);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id),
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS baselines (
    name TEXT NOT NULL,
    command TEXT NOT NULL,
    metric TEXT NOT NULL,
    median REAL NOT NULL,
    mad REAL NOT NULL DEFAULT 0,
    samples INTEGER NOT NULL DEFAULT 1,
    created_ts TEXT NOT NULL,
    PRIMARY KEY (name, command, metric)
);
"""


class Ledger:
    """The append-only run store: ``ledger.jsonl`` + ``ledger.sqlite3``.

    Appends go to both files; reads come from SQLite.  Every write is
    wrapped so a broken ledger (read-only home, corrupt database) degrades
    to a logged warning — recording history must never fail the command
    being recorded.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = resolve_ledger_dir(root)
        self.jsonl_path = self.root / "ledger.jsonl"
        self.db_path = self.root / "ledger.sqlite3"
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    def _db(self) -> sqlite3.Connection:
        if self._conn is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(self.db_path)
            self._conn.executescript(_DDL)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Append *record* to the JSONL log and the SQLite index."""
        db = self._db()
        with open(self.jsonl_path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(record.to_json(), default=str) + "\n")
        with db:
            cursor = db.execute(
                "INSERT INTO runs (run_id, ts, kind, command, tech, git_sha,"
                " status, wall_s, cpu_s, peak_rss_kb, json)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_id, record.ts, record.kind, record.command,
                    record.tech, record.git_sha, record.status,
                    record.wall_s, record.cpu_s, record.peak_rss_kb,
                    json.dumps(record.to_json(), default=str),
                ),
            )
            record.rowid = cursor.lastrowid
            db.executemany(
                "INSERT OR REPLACE INTO metrics (run_id, name, value)"
                " VALUES (?, ?, ?)",
                [
                    (record.rowid, name, value)
                    for name, value in record.all_metrics().items()
                ],
            )
        return record

    def try_append(self, record: RunRecord) -> Optional[RunRecord]:
        """:meth:`append`, but degrade to a warning on any failure."""
        try:
            return self.append(record)
        except Exception as exc:  # noqa: BLE001 - never fail the command
            log.warning("ledger: could not record run %s under %s: %s",
                        record.command, self.root, exc)
            return None

    # ------------------------------------------------------------------
    def _rows_to_records(self, rows: Iterable[Tuple[int, str]]) -> List[RunRecord]:
        return [RunRecord.from_json(json.loads(blob), rowid=rowid)
                for rowid, blob in rows]

    def runs(
        self,
        command: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Records newest-first, optionally filtered by command/kind."""
        if not self.db_path.exists():
            return []
        query = "SELECT id, json FROM runs"
        clauses, params = [], []
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        return self._rows_to_records(self._db().execute(query, params))

    def get(self, rowid: int) -> Optional[RunRecord]:
        if not self.db_path.exists():
            return None
        rows = self._db().execute(
            "SELECT id, json FROM runs WHERE id = ?", (int(rowid),)
        ).fetchall()
        records = self._rows_to_records(rows)
        return records[0] if records else None

    def last(self, command: Optional[str] = None, offset: int = 0) -> Optional[RunRecord]:
        """The newest record (``offset`` steps back), optionally per command."""
        records = self.runs(command=command, limit=offset + 1)
        return records[offset] if len(records) > offset else None

    def commands(self) -> List[str]:
        """Distinct commands recorded, most recently used first."""
        if not self.db_path.exists():
            return []
        rows = self._db().execute(
            "SELECT command, MAX(id) AS latest FROM runs"
            " GROUP BY command ORDER BY latest DESC"
        ).fetchall()
        return [row[0] for row in rows]

    # ------------------------------------------------------------------
    def save_baseline(
        self,
        name: str,
        command: Optional[str] = None,
        k: int = 5,
    ) -> Dict[str, Dict[str, BaselineStat]]:
        """Freeze median/MAD of the last *k* runs' metrics as baseline *name*.

        Stats are kept per command; with *command* ``None`` the window is
        grouped per command, so one named baseline covers every workload
        the ledger has seen.
        """
        commands = [command] if command is not None else self.commands()
        stats: Dict[str, Dict[str, BaselineStat]] = {}
        for cmd in commands:
            window = self.runs(command=cmd, limit=k)
            samples: Dict[str, List[float]] = {}
            for record in window:
                for metric, value in record.all_metrics().items():
                    samples.setdefault(metric, []).append(value)
            if not samples:
                continue
            per_cmd = stats.setdefault(cmd, {})
            for metric, values in samples.items():
                med = statistics.median(values)
                mad = statistics.median([abs(v - med) for v in values])
                per_cmd[metric] = BaselineStat(med, mad, len(values))
        if not stats:
            raise ValueError(f"no runs to baseline (command={command!r})")
        db = self._db()
        created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        with db:
            db.execute("DELETE FROM baselines WHERE name = ?", (name,))
            db.executemany(
                "INSERT INTO baselines (name, command, metric, median, mad,"
                " samples, created_ts) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (name, cmd, metric, stat.median, stat.mad, stat.samples,
                     created)
                    for cmd, metrics in stats.items()
                    for metric, stat in metrics.items()
                ],
            )
        return stats

    def baseline(self, name: str) -> Dict[str, Dict[str, BaselineStat]]:
        """Baseline *name* as ``{command: {metric: stat}}`` (empty if unknown)."""
        if not self.db_path.exists():
            return {}
        rows = self._db().execute(
            "SELECT command, metric, median, mad, samples FROM baselines"
            " WHERE name = ?",
            (name,),
        ).fetchall()
        stats: Dict[str, Dict[str, BaselineStat]] = {}
        for command, metric, median, mad, samples in rows:
            stats.setdefault(command, {})[metric] = BaselineStat(
                median, mad, samples
            )
        return stats

    def baseline_names(self) -> List[str]:
        if not self.db_path.exists():
            return []
        rows = self._db().execute(
            "SELECT DISTINCT name FROM baselines ORDER BY name"
        ).fetchall()
        return [row[0] for row in rows]

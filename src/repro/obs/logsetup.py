"""The ``repro.*`` logger hierarchy and CLI logging configuration.

Library modules log under ``repro.<subsystem>`` (``repro.compact``,
``repro.lang``, ``repro.opt``, ``repro.drc``, ``repro.cli`` ...), obtained
via :func:`get_logger`.  As a library, repro attaches no handlers — logging
stays silent unless the embedding application configures it.  The CLI calls
:func:`configure_logging` with the ``-v``/``-q`` verbosity so diagnostics
("wrote row.gds") flow through logging instead of bare prints and can be
silenced or widened uniformly.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["get_logger", "configure_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

#: Marker attribute identifying the handler owned by configure_logging, so
#: repeated calls (CLI main invoked many times in one process, e.g. tests)
#: reconfigure instead of stacking duplicate handlers.
_HANDLER_MARK = "_repro_cli_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``repro.*`` hierarchy.

    ``get_logger("compact")`` and ``get_logger("repro.compact")`` both
    return the ``repro.compact`` logger; the empty string returns the root
    ``repro`` logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Wire the ``repro`` logger to a stream handler for CLI use.

    *verbosity* maps to a level: negative → WARNING (``--quiet``), zero →
    INFO (default: status diagnostics visible, as the CLI always printed),
    positive → DEBUG (``--verbose``: per-stage internals).  DEBUG output is
    prefixed with the logger name so subsystems are tellable apart; INFO
    stays bare to match the historical print output.  Idempotent: calling
    again replaces the previous configuration.
    """
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO

    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    root.propagate = False

    target = stream if stream is not None else sys.stdout
    handler: Optional[logging.Handler] = None
    for existing in root.handlers:
        if getattr(existing, _HANDLER_MARK, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(target)
        setattr(handler, _HANDLER_MARK, True)
        root.addHandler(handler)
    elif isinstance(handler, logging.StreamHandler):
        # Re-bind on every call: sys.stdout may have been replaced since the
        # last configuration (pytest capture, redirected CLI invocations).
        # Assign directly — setStream() would flush the old stream, which may
        # already be closed.
        handler.acquire()
        try:
            handler.stream = target
        finally:
            handler.release()

    if level == logging.DEBUG:
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    else:
        handler.setFormatter(logging.Formatter("%(message)s"))
    handler.setLevel(level)
    return root

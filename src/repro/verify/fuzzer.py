"""A seeded PLDL fuzzer: random programs over the full language grammar.

Generates programs exercising entities, parameters, assignments, FOR loops,
IF/ELSE conditionals, ALT rollback, geometry builtins and entity calls,
then runs each through *both* execution paths — the tree-walking
interpreter and the translate-to-Python pipeline — asserting:

* neither path ever crashes ungracefully (only :class:`RuleError` /
  :class:`EvalError` are acceptable failures, and both paths must agree);
* when both succeed, the resulting geometry is identical rect-for-rect.

Everything is driven by :class:`random.Random` with an explicit seed, so
any failure is reproducible from its case number alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..lang import Interpreter, translate
from ..lang.errors import EvalError, PldlError
from ..lang.runtime import Runtime
from ..obs import get_tracer
from ..tech import RuleError, Technology

#: Failure classes both execution paths may legitimately raise.
GRACEFUL = (RuleError, EvalError)


# ---------------------------------------------------------------------------
# program generation
# ---------------------------------------------------------------------------
class _ProgramBuilder:
    """One random program; all choices come from the shared ``rng``."""

    LAYERS = ("poly", "metal1", "metal2")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.net_counter = 0

    def fresh_net(self) -> str:
        self.net_counter += 1
        return f"net{self.net_counter}"

    # -- expressions ---------------------------------------------------
    def num_expr(self, scope: List[str], depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth >= 2 or roll < 0.35 or not scope:
            if scope and roll < 0.5:
                return rng.choice(scope)
            return str(rng.randint(1, 5))
        if roll < 0.55:
            op = rng.choice(("+", "-", "*"))
            return (
                f"({self.num_expr(scope, depth + 1)} {op}"
                f" {self.num_expr(scope, depth + 1)})"
            )
        if roll < 0.7:
            fn = rng.choice(("MIN", "MAX"))
            return (
                f"{fn}({self.num_expr(scope, depth + 1)},"
                f" {self.num_expr(scope, depth + 1)})"
            )
        if roll < 0.85:
            return f"ABS({self.num_expr(scope, depth + 1)})"
        return f"MOD({self.num_expr(scope, depth + 1)}, {self.rng.randint(2, 5)})"

    def dim_expr(self, scope: List[str]) -> str:
        """A strictly positive size expression (ABS + 1 keeps it legal)."""
        return f"(1 + ABS({self.num_expr(scope)}))"

    def cond_expr(self, scope: List[str]) -> str:
        op = self.rng.choice(("<", ">", "<=", ">=", "==", "<>"))
        return f"{self.num_expr(scope)} {op} {self.num_expr(scope)}"

    # -- statements ----------------------------------------------------
    def geometry_stmt(self, scope: List[str], pad: str) -> List[str]:
        rng = self.rng
        roll = rng.randrange(3)
        if roll == 0:
            layer = rng.choice(self.LAYERS)
            return [
                f'{pad}INBOX("{layer}", {self.dim_expr(scope)},'
                f' {self.dim_expr(scope)}, "{self.fresh_net()}")'
            ]
        if roll == 1:
            x = rng.randint(-10, 10)
            y = rng.randint(-10, 10)
            length = rng.randint(2, 8)
            if rng.random() < 0.5:
                end = (x + length, y)
            else:
                end = (x, y + length)
            layer = rng.choice(("metal1", "metal2"))
            return [
                f'{pad}WIRE("{layer}", {x}, {y}, {end[0]}, {end[1]},'
                f' {rng.randint(1, 2)}, "{self.fresh_net()}")'
            ]
        x = rng.randint(-8, 8)
        y = rng.randint(-8, 8)
        return [f'{pad}VIA({x}, {y}, "poly", "metal1", "{self.fresh_net()}")']

    def block(
        self, scope: List[str], pad: str, budget: int, depth: int,
        entities: List[str],
    ) -> List[str]:
        rng = self.rng
        lines: List[str] = []
        for _ in range(budget):
            roll = rng.random()
            if roll < 0.3:
                name = f"v{len(scope)}"
                lines.append(f"{pad}{name} = {self.num_expr(scope)}")
                scope.append(name)
            elif roll < 0.55:
                lines.extend(self.geometry_stmt(scope, pad))
            elif roll < 0.7 and depth < 2:
                lines.append(f"{pad}IF {self.cond_expr(scope)}")
                lines.extend(
                    self.block(list(scope), pad + "  ", rng.randint(1, 2),
                               depth + 1, entities)
                )
                if rng.random() < 0.5:
                    lines.append(f"{pad}ELSE")
                    lines.extend(
                        self.block(list(scope), pad + "  ", rng.randint(1, 2),
                                   depth + 1, entities)
                    )
                lines.append(f"{pad}ENDIF")
            elif roll < 0.8 and depth < 2:
                var = f"i{depth}{len(scope)}"
                stop = rng.randint(2, 4)
                lines.append(f"{pad}FOR {var} = 1 TO {stop}")
                inner = scope + [var]
                lines.extend(
                    self.block(inner, pad + "  ", rng.randint(1, 2),
                               depth + 1, entities)
                )
                lines.append(f"{pad}ENDFOR")
            elif roll < 0.92 and depth < 2:
                lines.extend(self.alt(scope, pad, depth, entities))
            elif entities:
                callee = rng.choice(entities)
                name = f"s{len(scope)}"
                lines.append(f"{pad}{name} = {callee}({rng.randint(1, 4)})")
                direction = rng.choice(("WEST", "EAST", "NORTH", "SOUTH"))
                lines.append(f"{pad}compact({name}, {direction})")
            else:
                lines.extend(self.geometry_stmt(scope, pad))
        return lines

    def alt(
        self, scope: List[str], pad: str, depth: int, entities: List[str]
    ) -> List[str]:
        rng = self.rng
        lines = [f"{pad}ALT"]
        branches = rng.randint(2, 3)
        # Usually the last branch succeeds; sometimes all fail, which must
        # surface as the same graceful RuleError on both execution paths.
        all_fail = rng.random() < 0.15
        for index in range(branches):
            if index:
                lines.append(f"{pad}ELSEALT")
            inner = list(scope)
            lines.extend(
                self.block(inner, pad + "  ", rng.randint(1, 2),
                           depth + 1, entities)
            )
            fails = all_fail or index < branches - 1 and rng.random() < 0.7
            if fails:
                lines.append(f'{pad}  ERROR("branch {index} rejected")')
        lines.append(f"{pad}ENDALT")
        return lines

    def entity(self, name: str, entities: List[str]) -> List[str]:
        # The harness calls the entry entity with no arguments; parameter
        # passing is exercised through the helper entities instead.
        lines = [f"ENT {name}()"]
        scope: List[str] = []
        lines.extend(self.block(scope, "  ", self.rng.randint(2, 5), 0, entities))
        lines.append("END")
        return lines

    def program(self) -> Tuple[str, str]:
        """Generate (source, main entity name)."""
        rng = self.rng
        lines: List[str] = []
        helpers: List[str] = []
        for index in range(rng.randint(0, 2)):
            name = f"Sub{index}"
            # Helper entities always take the parameter their callers pass.
            lines.append(f"ENT {name}(p)")
            scope = ["p"]
            lines.extend(self.block(scope, "  ", rng.randint(1, 3), 1, []))
            lines.append(f'  INBOX("poly", (1 + ABS(p)), 2, "{self.fresh_net()}")')
            lines.append("END")
            lines.append("")
            helpers.append(name)
        main_lines = self.entity("Main", helpers)
        lines.extend(main_lines)
        return "\n".join(lines) + "\n", "Main"


def generate_program(rng: random.Random) -> Tuple[str, str]:
    """One random PLDL program; returns (source, entry entity name)."""
    return _ProgramBuilder(rng).program()


# ---------------------------------------------------------------------------
# execution + comparison
# ---------------------------------------------------------------------------
@dataclass
class FuzzResult:
    """Outcome of one fuzz case."""

    case: int
    seed: str
    status: str  # "ok" | "graceful" | "diverged" | "crash"
    detail: str = ""
    source: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("diverged", "crash")


def _geometry(obj: LayoutObject) -> List[Tuple]:
    rows = sorted(
        (r.layer, r.x1, r.y1, r.x2, r.y2, r.net) for r in obj.nonempty_rects
    )
    rows.extend(sorted(
        ("label", l.layer, l.x, l.y, l.text) for l in obj.labels
    ))
    return rows


def _run_interpreter(source: str, entry: str, tech: Technology):
    interp = Interpreter(tech, Compactor())
    interp.load(source)
    return interp.call(entry)


def _run_translated(source: str, entry: str, tech: Technology):
    code = translate(source)
    namespace: dict = {}
    exec(compile(code, "<fuzz>", "exec"), namespace)
    runtime = Runtime(tech, Compactor())
    return namespace[entry](runtime)


def run_fuzz_case(case: int, seed: int, tech: Technology) -> FuzzResult:
    """Generate and differentially execute one case; fully deterministic."""
    case_seed = f"{seed}:{case}"
    rng = random.Random(case_seed)
    source, entry = generate_program(rng)

    outcomes = []
    for runner in (_run_interpreter, _run_translated):
        try:
            outcomes.append(("ok", _geometry(runner(source, entry, tech))))
        except GRACEFUL as error:
            outcomes.append((type(error).__name__, str(error)))
        except PldlError as error:  # parse errors must hit both paths alike
            outcomes.append((type(error).__name__, str(error)))
        except Exception as error:  # noqa: BLE001 — the point of the fuzzer
            return FuzzResult(
                case, case_seed, "crash",
                f"{type(error).__name__}: {error}", source,
            )

    (kind_a, payload_a), (kind_b, payload_b) = outcomes
    if kind_a == "ok" and kind_b == "ok":
        if payload_a == payload_b:
            return FuzzResult(case, case_seed, "ok")
        return FuzzResult(
            case, case_seed, "diverged",
            f"geometry differs: interpreter={payload_a!r}"
            f" translated={payload_b!r}", source,
        )
    if kind_a == kind_b:
        return FuzzResult(case, case_seed, "graceful", f"{kind_a}: {payload_a}")
    return FuzzResult(
        case, case_seed, "diverged",
        f"interpreter={kind_a}({payload_a!r})"
        f" translated={kind_b}({payload_b!r})", source,
    )


def fuzz(
    cases: int, seed: int, tech: Technology
) -> List[FuzzResult]:
    """Run *cases* seeded fuzz cases; returns every result."""
    tracer = get_tracer()
    results: List[FuzzResult] = []
    with tracer.span("verify.fuzz", cases=cases, seed=seed):
        for case in range(cases):
            result = run_fuzz_case(case, seed, tech)
            tracer.count(f"verify.fuzz.{result.status}")
            results.append(result)
    return results

"""Invariant oracles: post-hoc checks of what compaction must preserve.

The environment claims correctness *by construction* — primitives respect
design rules, the compactor keeps required separations, same-potential
edges merge.  These oracles re-verify those claims on finished layouts so
randomised harnesses (``repro.verify.differential``, the fuzzer) and future
performance work can be validated against independent checks rather than
golden files:

* **DRC-clean** — the full checker finds nothing;
* **connectivity** — every net that was electrically connected before
  compaction is still connected afterwards;
* **no-overlap** — parasitic-protection rectangles are overlapped by no
  conducting geometry;
* **bounded bbox** — compaction only ever pulls objects together, so the
  result's bounding box stays inside the pre-compaction one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..compact.separation import overlap_forbidden
from ..db import LayoutObject
from ..db.netindex import ConnectivityIndex
from ..drc import run_drc
from ..geometry import Direction, Rect, bounding_box
from ..obs import get_tracer
from ..tech import Technology


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant, with enough detail to reproduce it."""

    oracle: str
    message: str
    rects: Tuple[Rect, ...] = ()

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass
class LayoutSnapshot:
    """Pre-compaction state the oracles compare a result against."""

    tech: Technology
    rects: List[Rect] = field(default_factory=list)
    bbox: Optional[Rect] = None
    connected_nets: Set[str] = field(default_factory=set)

    @classmethod
    def capture(cls, objects: Sequence[LayoutObject], tech: Technology) -> "LayoutSnapshot":
        """Record geometry, bounding box and per-object net connectivity.

        A net counts as "connected before compaction" when it is connected
        *within the object that carries it* — objects are placed
        independently, so cross-object connections only exist afterwards.
        """
        snapshot = cls(tech=tech)
        for obj in objects:
            rects = obj.nonempty_rects
            snapshot.rects.extend(rect.copy() for rect in rects)
            # One extraction per object answers every per-net query.
            index = ConnectivityIndex(rects, tech)
            for net in sorted({r.net for r in rects if r.net is not None}):
                if index.net_is_connected(net):
                    snapshot.connected_nets.add(net)
        snapshot.bbox = bounding_box(snapshot.rects)
        return snapshot


def oracle_drc_clean(
    obj: LayoutObject, include_latchup: bool = True
) -> List[OracleViolation]:
    """The full design-rule checker must find nothing."""
    return [
        OracleViolation(
            "drc", f"{violation.kind}: {violation.message}", tuple(violation.rects)
        )
        for violation in run_drc(obj, include_latchup=include_latchup)
    ]


def oracle_connectivity(
    snapshot: LayoutSnapshot, obj: LayoutObject
) -> List[OracleViolation]:
    """Nets connected before compaction must stay connected after.

    All nets are checked against one shared extraction of the result.
    """
    index = ConnectivityIndex(obj.nonempty_rects, snapshot.tech)
    return [
        OracleViolation(
            "connectivity",
            f"net {net!r} was connected before compaction but is split"
            " in the result",
        )
        for net in sorted(snapshot.connected_nets)
        if not index.net_is_connected(net)
    ]


def oracle_no_overlap(obj: LayoutObject) -> List[OracleViolation]:
    """Overlap-forbidden (parasitic-protection) rects must stay overlap-free.

    Touching is allowed — the paper's property forbids *overlap* between
    conducting layers that carry no explicit spacing rule.
    """
    violations: List[OracleViolation] = []
    rects = obj.nonempty_rects
    flagged = [r for r in rects if r.no_overlap]
    for a in flagged:
        for b in rects:
            if b is a:
                continue
            if not overlap_forbidden(obj.tech, a, b):
                continue
            cut = a.intersection(b)
            if cut is not None and cut.area > 0:
                violations.append(
                    OracleViolation(
                        "no_overlap",
                        f"{a.layer!r} no_overlap rect overlaps {b.layer!r}"
                        f" by {cut.width}×{cut.height} dbu",
                        (a, b),
                    )
                )
    return violations


def oracle_bbox_bounded(
    snapshot: LayoutSnapshot,
    obj: LayoutObject,
    direction: Optional["Direction"] = None,
) -> List[OracleViolation]:
    """Compaction pulls objects together; it never grows the placement.

    Without a *direction*, the result's bounding box must sit inside the
    pre-compaction one.  With a direction, the guarantee is refined to what
    successive compaction actually promises: motion happens only along the
    compaction axis and only *with* the direction, so

    * the perpendicular span never changes;
    * the trailing (against-direction) edge never retreats;
    * the extent along the axis never grows — the leading edge alone may
      pass the old bbox, when an object slides flush past the pile.
    """
    if snapshot.bbox is None:
        return []
    box = obj.bbox()
    if box is None:
        return []
    pre = snapshot.bbox

    def violation(reason: str) -> OracleViolation:
        return OracleViolation(
            "bbox",
            f"{reason}: result bbox ({box.x1},{box.y1})–({box.x2},{box.y2})"
            f" vs pre-compaction ({pre.x1},{pre.y1})–({pre.x2},{pre.y2})",
            (box,),
        )

    if direction is None:
        if (
            pre.x1 <= box.x1 and pre.y1 <= box.y1
            and box.x2 <= pre.x2 and box.y2 <= pre.y2
        ):
            return []
        return [violation("placement grew")]

    problems: List[OracleViolation] = []
    perp = direction.axis.other
    if box.span(perp)[0] < pre.span(perp)[0] or box.span(perp)[1] > pre.span(perp)[1]:
        problems.append(violation("perpendicular span grew"))
    sign = 1 if direction.is_positive else -1
    trailing = direction.opposite
    if (pre.edge_coord(trailing) - box.edge_coord(trailing)) * sign > 0:
        problems.append(violation("trailing edge retreated against the direction"))
    axis = direction.axis
    pre_extent = pre.span(axis)[1] - pre.span(axis)[0]
    post_extent = box.span(axis)[1] - box.span(axis)[0]
    if post_extent > pre_extent:
        problems.append(violation("extent along the compaction axis grew"))
    return problems


def check_layout(
    snapshot: LayoutSnapshot,
    obj: LayoutObject,
    include_latchup: bool = True,
    direction: Optional[Direction] = None,
) -> List[OracleViolation]:
    """Run every oracle; returns the combined violation list."""
    tracer = get_tracer()
    violations: List[OracleViolation] = []
    with tracer.span("verify.oracles", obj=obj.name):
        for name, found in (
            ("drc", oracle_drc_clean(obj, include_latchup=include_latchup)),
            ("connectivity", oracle_connectivity(snapshot, obj)),
            ("no_overlap", oracle_no_overlap(obj)),
            ("bbox", oracle_bbox_bounded(snapshot, obj, direction)),
        ):
            tracer.count("verify.oracle.checks")
            tracer.count(f"verify.oracle.violations.{name}", len(found))
            violations.extend(found)
    tracer.count("verify.oracle.violations.total", len(violations))
    return violations

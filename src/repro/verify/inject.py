"""Violation injection: plant one known DRC violation in a clean layout.

The equivalence tests prove the indexed checker agrees with the brute
oracle; neither proves the checker *catches* anything (both could agree on
an empty list).  This module pins recall: each injector takes a DRC-clean
layout, perturbs it to manufacture exactly one violation of a known rule
class, and validates the plant against the brute reference path before
handing it back:

* ``width`` — narrow a wire below its WIDTH rule;
* ``spacing`` — plant a min-width/area-satisfying probe component one
  dbu inside a same-layer SPACE rule;
* ``enclosure`` — nudge a cut so a conductor's ENCLOSE margin fails;
* ``extension`` — pull a gate endcap one dbu short of its EXTEND rule.

A perturbation is accepted only when a full DRC run reports *new*
violations that are all of the expected class and all involve the target
rect — otherwise it is reverted and the next candidate tried (a nudge can
legitimately break a neighbouring rule instead; the search skips those).
Every accepted :class:`Injection` carries an ``undo`` callback restoring
the layout byte-for-byte.

``tests/test_drc_injection.py`` drives these over the golden cells and
asserts both checker paths report exactly the planted violation; the
fuzzer can reuse the same perturbation vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..db import LayoutObject
from ..drc import Violation, run_drc
from ..drc.index import DrcIndex
from ..geometry import Rect, bounding_box
from ..tech.layer import LayerKind

__all__ = ["Injection", "INJECTORS", "inject_violation"]

#: Net label given to planted probe rects — never collides with real nets.
PROBE_NET = "__injected__"


@dataclass
class Injection:
    """One validated planted violation."""

    #: The violation class every new violation belongs to.
    kind: str
    #: What was done, for failure messages and fuzzer logs.
    description: str
    #: The rect that was mutated or added.
    target: Rect
    #: The new violations the checker reported after the plant.
    violations: Tuple[Violation, ...]
    #: Restores the layout exactly as it was.
    undo: Callable[[], None]


def _keys(violations: Sequence[Violation]) -> List[Tuple]:
    return [(v.kind, v.message, v.where) for v in violations]


def _baseline(obj: LayoutObject) -> List[Tuple]:
    return _keys(run_drc(obj, include_latchup=False))


def _attempt(
    obj: LayoutObject,
    baseline: List[Tuple],
    kind: str,
    description: str,
    target: Rect,
    undo: Callable[[], None],
) -> Optional[Injection]:
    """Accept the pending perturbation or revert it.

    Accepts iff the full checker reports new violations, all of *kind*,
    all involving *target* — the contract that makes the plant usable as a
    recall probe (one known defect, nothing else disturbed).  The search
    runs the fast indexed path; the injection tests independently confirm
    every accepted plant against the brute oracle, so a (hypothetical)
    indexed-path miss would surface there, not hide here.
    """
    after = run_drc(obj, include_latchup=False)
    known = list(baseline)
    new = []
    for violation in after:
        key = (violation.kind, violation.message, violation.where)
        if key in known:
            known.remove(key)  # multiset: keep duplicates honest
        else:
            new.append(violation)
    if (
        new
        and not known  # nothing from the baseline disappeared
        and all(v.kind == kind for v in new)
        and all(any(r is target for r in v.rects) for v in new)
    ):
        return Injection(kind, description, target, tuple(new), undo)
    undo()
    return None


def _restore_coords(rect: Rect) -> Callable[[], None]:
    saved = (rect.x1, rect.y1, rect.x2, rect.y2)

    def undo() -> None:
        rect.x1, rect.y1, rect.x2, rect.y2 = saved

    return undo


# ----------------------------------------------------------------------
# width
# ----------------------------------------------------------------------
def inject_narrow_width(obj: LayoutObject) -> Optional[Injection]:
    """Narrow some wire one dbu below its layer's WIDTH rule."""
    baseline = _baseline(obj)
    rules = obj.tech.rules
    for rect in list(obj.nonempty_rects):
        if rules.cut_size(rect.layer) is not None:
            continue
        rule = rules.width(rect.layer)
        if rule is None or rule < 2 or rect.short_side() < rule:
            continue
        undo = _restore_coords(rect)
        if rect.width <= rect.height:
            rect.x2 = rect.x1 + rule - 1
        else:
            rect.y2 = rect.y1 + rule - 1
        injection = _attempt(
            obj,
            baseline,
            "width",
            f"narrowed {rect.layer!r} rect to {rule - 1} dbu (rule {rule})",
            rect,
            undo,
        )
        if injection is not None:
            return injection
    return None


# ----------------------------------------------------------------------
# spacing
# ----------------------------------------------------------------------
def _probe_side(tech, layer: str) -> int:
    """Smallest probe square satisfying the layer's WIDTH and AREA rules."""
    side = tech.rules.width(layer) or 1
    area = tech.rules.area(layer)
    if area is not None:
        side = max(side, math.isqrt(area - 1) + 1)
    return side


def inject_spacing_probe(obj: LayoutObject) -> Optional[Injection]:
    """Plant a probe component one dbu inside a same-layer SPACE rule.

    The probe is a fresh-net square sized to satisfy the layer's own WIDTH
    and AREA rules, so the only new defect is the spacing gap.
    """
    baseline = _baseline(obj)
    tech = obj.tech
    attempts = 0
    for layer_a, layer_b, rule in tech.space_rules():
        if layer_a != layer_b or rule < 2:
            continue
        layer = layer_a
        if tech.rules.cut_size(layer) is not None:
            continue  # cuts carry exact-size + enclosure rules of their own
        side = _probe_side(tech, layer)
        for anchor in list(obj.rects_on(layer)):
            if anchor.is_empty:
                continue
            for x1, y1 in (
                (anchor.x2 + rule - 1, anchor.y1),  # right
                (anchor.x1 - rule + 1 - side, anchor.y1),  # left
                (anchor.x1, anchor.y2 + rule - 1),  # above
                (anchor.x1, anchor.y1 - rule + 1 - side),  # below
            ):
                if attempts >= 60:
                    return None
                attempts += 1
                probe = Rect(x1, y1, x1 + side, y1 + side, layer, PROBE_NET)
                obj.add_rect(probe)

                def undo(probe=probe) -> None:
                    obj.rects.remove(probe)
                    obj.invalidate_index()

                injection = _attempt(
                    obj,
                    baseline,
                    "spacing",
                    f"probe on {layer!r} at gap {rule - 1} dbu (rule {rule})",
                    probe,
                    undo,
                )
                if injection is not None:
                    return injection
    return None


# ----------------------------------------------------------------------
# enclosure
# ----------------------------------------------------------------------
def inject_enclosure_shrink(obj: LayoutObject) -> Optional[Injection]:
    """Nudge a cut until a conductor's ENCLOSE margin fails."""
    baseline = _baseline(obj)
    tech = obj.tech
    for cut in list(obj.nonempty_rects):
        if tech.rules.cut_size(cut.layer) is None:
            continue
        pairs = tech.connected_layers(cut.layer)
        if not pairs:
            continue
        margins = {
            tech.enclosure_or_zero(layer, cut.layer)
            for bottom, top in pairs
            for layer in (bottom, top)
        }
        shifts = sorted({1, 2, *(m for m in margins if m > 0)})
        for distance in shifts:
            for dx, dy in ((distance, 0), (-distance, 0), (0, distance), (0, -distance)):
                undo = _restore_coords(cut)
                cut.x1 += dx
                cut.x2 += dx
                cut.y1 += dy
                cut.y2 += dy
                injection = _attempt(
                    obj,
                    baseline,
                    "enclosure",
                    f"nudged {cut.layer!r} cut by ({dx}, {dy}) dbu",
                    cut,
                    undo,
                )
                if injection is not None:
                    return injection
    return None


# ----------------------------------------------------------------------
# extension
# ----------------------------------------------------------------------
def inject_extension_short(obj: LayoutObject) -> Optional[Injection]:
    """Pull a gate endcap one dbu short of its EXTEND rule.

    The gate still crosses its diffusion component (so the pair stays a
    transistor, not a partial gate) but the endcap margin fails.
    """
    baseline = _baseline(obj)
    tech = obj.tech
    rules = tech.rules
    index = DrcIndex(obj)
    index.sync()
    groups = index.diffusion_groups()
    for gate_index, gate in enumerate(index.rects):
        if tech.layer(gate.layer).kind is not LayerKind.POLY:
            continue
        for (body_layer, comp), members in groups.items():
            endcap = rules.extend(gate.layer, body_layer)
            sd_ext = rules.extend(body_layer, gate.layer)
            if endcap is None or sd_ext is None or endcap < 1:
                continue
            if not index.gate_overlaps(gate_index, comp):
                continue
            box = bounding_box(members)
            assert box is not None
            if gate.y1 <= box.y1 and gate.y2 >= box.y2:  # vertical crossing
                trims = (
                    ("y2", box.y2 + endcap - 1),
                    ("y1", box.y1 - endcap + 1),
                )
            elif gate.x1 <= box.x1 and gate.x2 >= box.x2:  # horizontal
                trims = (
                    ("x2", box.x2 + endcap - 1),
                    ("x1", box.x1 - endcap + 1),
                )
            else:
                continue
            for attr, value in trims:
                if getattr(gate, attr) == value:
                    continue  # already there: no mutation to make
                undo = _restore_coords(gate)
                setattr(gate, attr, value)
                injection = _attempt(
                    obj,
                    baseline,
                    "extension",
                    f"trimmed {gate.layer!r} gate {attr} to {endcap - 1} dbu"
                    f" endcap (rule {endcap})",
                    gate,
                    undo,
                )
                if injection is not None:
                    return injection
    return None


#: One injector per covered rule class, in checker order.
INJECTORS = {
    "width": inject_narrow_width,
    "spacing": inject_spacing_probe,
    "enclosure": inject_enclosure_shrink,
    "extension": inject_extension_short,
}


def inject_violation(obj: LayoutObject, kind: str) -> Optional[Injection]:
    """Plant one validated violation of *kind*, or None when the layout
    offers no viable site (e.g. no transistor for ``extension``)."""
    try:
        injector = INJECTORS[kind]
    except KeyError:
        raise ValueError(
            f"no injector for kind {kind!r}; have {sorted(INJECTORS)}"
        ) from None
    return injector(obj)

"""Differential testing: successive compaction vs. the constraint graph.

The paper argues successive compaction reaches the same packing quality as
the classical full-graph method while being much faster.  This harness
turns that claim into a machine-checkable property: seeded random object
sets run through both :class:`repro.compact.Compactor` and
:class:`repro.baselines.GraphCompactor`, and every trial must satisfy

* both results pass all invariant oracles (DRC-clean, connectivity kept,
  no_overlap respected, bbox bounded);
* both merge the same nets (identical net partitions);
* the bounding-box areas agree within a stated bound.

Each trial additionally races the successive compactor against itself with
the frontier index switched off: the indexed and unindexed modes must
produce *byte-identical* geometry (same rects, same order, same flags) with
every feature enabled — variable edges, auto-connect, frontier pruning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..baselines import GraphCompactor
from ..compact import Compactor
from ..db import LayoutObject
from ..db.netindex import ConnectivityIndex
from ..geometry import Direction, Rect
from ..library import contact_row, mos_transistor
from ..obs import get_tracer
from ..route import path
from ..tech import Technology
from .oracles import LayoutSnapshot, OracleViolation, check_layout


@dataclass
class TrialReport:
    """Outcome of one differential trial."""

    trial: int
    seed: str
    direction: str
    objects: int
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def random_object_set(
    tech: Technology, rng: random.Random, count: int, direction: Direction
) -> List[LayoutObject]:
    """Build *count* random DRC-clean objects spread against *direction*.

    Each object carries unique net labels, so a correct compaction merges no
    nets at all — any merge the partition check finds is a short both
    compactors must agree on.  Placement leaves a generous pitch along the
    compaction axis so every object approaches the pile from outside it.
    """
    dbu = tech.dbu_per_micron
    objects: List[LayoutObject] = []
    pitch = 80 * dbu
    for index in range(count):
        kind = rng.randrange(4)
        if kind == 0:
            obj = contact_row(
                tech, "poly",
                w=float(rng.randint(1, 3)),
                length=float(rng.randint(8, 16)),
                net=f"n{index}", name=f"row{index}",
            )
        elif kind == 1 and tech.has_layer("pdiff"):
            obj = contact_row(
                tech, "pdiff",
                w=float(rng.randint(4, 8)),
                net=f"n{index}", name=f"diff{index}",
            )
        elif kind == 2 and tech.has_layer("pdiff"):
            obj = mos_transistor(
                tech,
                w=float(rng.randint(4, 10)),
                length=1.0,
                gate_net=f"g{index}",
                source_net=f"s{index}",
                drain_net=f"d{index}",
                name=f"mos{index}",
            )
        else:
            obj = LayoutObject(f"wire{index}", tech)
            leg = rng.randint(6, 14) * dbu
            path(
                obj, "metal1",
                [(0, 0), (leg, 0), (leg, leg)],
                net=f"m{index}",
            )
            if rng.random() < 0.3:
                # A parasitic-protection plate: forbids overlap with any
                # conducting layer that has no explicit SPACE rule to metal1.
                for rect in obj.rects_on("metal1"):
                    rect.no_overlap = True
        jitter = rng.randint(-4, 4) * dbu
        dx = -direction.dx * index * pitch + abs(direction.dy) * jitter
        dy = -direction.dy * index * pitch + abs(direction.dx) * jitter
        obj.translate(dx, dy)
        objects.append(obj)
    return objects


def _net_partition(obj: LayoutObject) -> Set[Tuple[str, ...]]:
    """Partition of labelled nets into electrically connected groups."""
    parent: Dict[str, str] = {}

    def find(net: str) -> str:
        parent.setdefault(net, net)
        while parent[net] != net:
            parent[net] = parent[parent[net]]
            net = parent[net]
        return net

    rects = obj.nonempty_rects
    for rect in rects:
        if rect.net is not None:
            find(rect.net)
    for component in ConnectivityIndex(rects, obj.tech).components():
        nets = sorted({r.net for r in component if r.net is not None})
        for other in nets[1:]:
            parent[find(other)] = find(nets[0])
    groups: Dict[str, List[str]] = {}
    for net in parent:
        groups.setdefault(find(net), []).append(net)
    return {tuple(sorted(members)) for members in groups.values()}


def run_trial(
    tech: Technology,
    trial: int,
    seed: int,
    include_latchup: bool = False,
    area_bound: float = 1.5,
) -> TrialReport:
    """One seeded differential trial; deterministic for a (seed, trial) pair."""
    trial_seed = f"{seed}:{trial}"
    rng = random.Random(trial_seed)
    direction = rng.choice(list(Direction))
    count = rng.randint(2, 4)
    objects = random_object_set(tech, rng, count, direction)
    report = TrialReport(trial, trial_seed, direction.name, count)

    snapshot = LayoutSnapshot.capture(objects, tech)

    successive = LayoutObject("successive", tech)
    compactor = Compactor(variable_edges=False, auto_connect=False)
    for obj in objects:
        compactor.compact(successive, obj.copy(), direction)

    graph = GraphCompactor(tech).compact(
        [obj.copy() for obj in objects], direction
    )

    for label, result in (("successive", successive), ("graph", graph)):
        for violation in check_layout(
            snapshot, result, include_latchup=include_latchup,
            direction=direction,
        ):
            report.problems.append(f"{label}: {violation}")

    parts = (_net_partition(successive), _net_partition(graph))
    if parts[0] != parts[1]:
        report.problems.append(
            f"net partitions differ: successive={sorted(parts[0])}"
            f" graph={sorted(parts[1])}"
        )

    areas = (successive.area(), graph.area())
    if min(areas) > 0 and max(areas) > area_bound * min(areas):
        report.problems.append(
            f"bbox areas diverge beyond {area_bound}×:"
            f" successive={areas[0]} graph={areas[1]}"
        )

    report.problems.extend(_race_index_modes(tech, objects, direction))
    return report


def _rect_signature(obj: LayoutObject) -> List[Tuple]:
    """Order-sensitive content signature: any divergence shows up here."""
    return [
        (r.x1, r.y1, r.x2, r.y2, r.layer, r.net, r.no_overlap)
        for r in obj.rects
    ]


def _race_index_modes(
    tech: Technology, objects: Sequence[LayoutObject], direction: Direction
) -> List[str]:
    """Indexed vs unindexed successive compaction must match byte for byte.

    Runs with every feature on (variable edges, auto-connect, frontier
    pruning) so the incremental index is exercised through merges, stretches
    and shrinks — the exact mutations it tracks incrementally.
    """
    results = []
    for use_index in (False, True):
        main = LayoutObject("main", tech)
        compactor = Compactor(use_index=use_index)
        for obj in objects:
            compactor.compact(main, obj.copy(), direction)
        results.append(_rect_signature(main))
    if results[0] != results[1]:
        diverging = sum(1 for a, b in zip(*results) if a != b) + abs(
            len(results[0]) - len(results[1])
        )
        return [
            "indexed compactor diverges from unindexed"
            f" ({diverging} rect(s) differ)"
        ]
    return []


def run_differential(
    tech: Technology,
    trials: int = 50,
    seed: int = 0,
    include_latchup: bool = False,
    area_bound: float = 1.5,
) -> List[TrialReport]:
    """Run *trials* seeded trials; returns every report (failed or not)."""
    tracer = get_tracer()
    reports: List[TrialReport] = []
    with tracer.span("verify.differential", trials=trials, seed=seed):
        for trial in range(trials):
            report = run_trial(
                tech, trial, seed,
                include_latchup=include_latchup,
                area_bound=area_bound,
            )
            tracer.count("verify.differential.trials")
            if not report.ok:
                tracer.count("verify.differential.failures")
            reports.append(report)
    return reports

"""Layout verification harness (``repro verify``).

Four layers of defence for the environment's correctness-by-construction
promise (see ``docs/verification.md``):

* :mod:`~repro.verify.oracles` — post-build invariant checks;
* :mod:`~repro.verify.differential` — successive vs. graph compaction;
* :mod:`~repro.verify.fuzzer` — random PLDL programs through both the
  interpreter and the translate-to-Python pipeline;
* :mod:`~repro.verify.golden` — content-hash regression over every
  library cell × builtin technology.
"""

from .differential import TrialReport, random_object_set, run_differential, run_trial
from .fuzzer import FuzzResult, fuzz, generate_program, run_fuzz_case
from .inject import INJECTORS, Injection, inject_violation
from .golden import (
    GOLDEN_PATH,
    GoldenMismatch,
    cell_fingerprint,
    compute_fingerprints,
    load_golden,
    update_golden,
    verify_golden,
)
from .oracles import (
    LayoutSnapshot,
    OracleViolation,
    check_layout,
    oracle_bbox_bounded,
    oracle_connectivity,
    oracle_drc_clean,
    oracle_no_overlap,
)

__all__ = [
    "TrialReport",
    "random_object_set",
    "run_differential",
    "run_trial",
    "FuzzResult",
    "fuzz",
    "generate_program",
    "run_fuzz_case",
    "INJECTORS",
    "Injection",
    "inject_violation",
    "GOLDEN_PATH",
    "GoldenMismatch",
    "cell_fingerprint",
    "compute_fingerprints",
    "load_golden",
    "update_golden",
    "verify_golden",
    "LayoutSnapshot",
    "OracleViolation",
    "check_layout",
    "oracle_bbox_bounded",
    "oracle_connectivity",
    "oracle_drc_clean",
    "oracle_no_overlap",
]

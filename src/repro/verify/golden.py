"""Golden-cell regression: content hashes of every library cell's output.

Each cell in :data:`repro.library.GOLDEN_CELLS` is built for every builtin
technology that supports it, serialised to CIF and GDS (both byte-stable:
CIF sorts its rects, GDS carries a fixed timestamp), and fingerprinted with
SHA-256.  The expected hashes live next to this module in
``golden_hashes.json`` and are regenerated with ``repro verify
--update-golden`` — a reviewed diff of that file is the audit trail for any
intentional geometry change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..io import dumps_cif, dumps_gds
from ..library import GOLDEN_CELLS
from ..obs import get_tracer
from ..tech import BUILTIN_TECHNOLOGIES, get_technology

#: Where the expected fingerprints live (inside the package, shipped).
GOLDEN_PATH = Path(__file__).with_name("golden_hashes.json")


@dataclass
class GoldenMismatch:
    """One cell whose output hash differs from the recorded golden value."""

    tech: str
    cell: str
    kind: str  # "changed" | "missing" | "stale"
    expected: Optional[str] = None
    actual: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "missing":
            return (
                f"{self.tech}/{self.cell}: no recorded golden hash"
                " (run `repro verify --update-golden`)"
            )
        if self.kind == "stale":
            return (
                f"{self.tech}/{self.cell}: recorded but no longer built"
                " (cell removed or unsupported; update goldens)"
            )
        return (
            f"{self.tech}/{self.cell}: output changed"
            f" (expected {self.expected}, got {self.actual})"
        )


def cell_fingerprint(cell, tech) -> str:
    """SHA-256 over the cell's CIF text and GDS bytes."""
    obj = cell.build(tech)
    digest = hashlib.sha256()
    digest.update(dumps_cif(obj).encode("utf-8"))
    digest.update(dumps_gds(obj))
    return digest.hexdigest()


def compute_fingerprints(
    tech_names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, str]]:
    """``{technology: {cell: sha256}}`` for every supported combination."""
    if tech_names is None:
        tech_names = sorted(BUILTIN_TECHNOLOGIES)
    tracer = get_tracer()
    fingerprints: Dict[str, Dict[str, str]] = {}
    for tech_name in tech_names:
        tech = get_technology(tech_name)
        cells: Dict[str, str] = {}
        for cell in GOLDEN_CELLS:
            if not cell.supported(tech):
                tracer.count("verify.golden.skipped")
                continue
            with tracer.span("verify.golden.cell", tech=tech_name, cell=cell.name):
                cells[cell.name] = cell_fingerprint(cell, tech)
            tracer.count("verify.golden.cells")
        fingerprints[tech_name] = cells
    return fingerprints


def load_golden(path: Path = GOLDEN_PATH) -> Dict[str, Dict[str, str]]:
    """The recorded fingerprints, or an empty mapping when none exist."""
    if not path.exists():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


def update_golden(
    path: Path = GOLDEN_PATH,
    tech_names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, str]]:
    """Recompute and store the fingerprints; returns what was written."""
    fingerprints = compute_fingerprints(tech_names)
    path.write_text(
        json.dumps(fingerprints, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return fingerprints


def verify_golden(
    path: Path = GOLDEN_PATH,
    tech_names: Optional[Sequence[str]] = None,
) -> List[GoldenMismatch]:
    """Compare current output against the recorded hashes."""
    recorded = load_golden(path)
    current = compute_fingerprints(tech_names)
    mismatches: List[GoldenMismatch] = []
    for tech_name, cells in current.items():
        known = recorded.get(tech_name, {})
        for cell_name, digest in cells.items():
            expected = known.get(cell_name)
            if expected is None:
                mismatches.append(
                    GoldenMismatch(tech_name, cell_name, "missing", None, digest)
                )
            elif expected != digest:
                mismatches.append(
                    GoldenMismatch(
                        tech_name, cell_name, "changed", expected, digest
                    )
                )
        for cell_name in sorted(set(known) - set(cells)):
            mismatches.append(
                GoldenMismatch(tech_name, cell_name, "stale", known[cell_name])
            )
    get_tracer().count("verify.golden.mismatches", len(mismatches))
    return mismatches

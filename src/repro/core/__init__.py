"""Environment façade and two-window design session."""

from .environment import Environment
from .session import DesignSession, Snapshot

__all__ = ["Environment", "DesignSession", "Snapshot"]

"""The two-window programming session (Sec. 2.1).

"During programming the environment supports two windows, a text window for
the source code and a corresponding graphical view of the module."

:class:`DesignSession` reproduces this as files: it traces the interpreter,
snapshots the structure after every statement, and can emit a single HTML
page showing the source next to the per-step renderings.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..compact import Compactor
from ..db import LayoutObject
from ..io.svg import render_svg
from ..lang import Interpreter
from ..tech import Technology, get_technology


@dataclass
class Snapshot:
    """State of a structure right after one source statement executed."""

    line: int
    entity: str
    svg: str
    rect_count: int


class DesignSession:
    """Interactive-style session that records the graphical view per step."""

    def __init__(
        self,
        tech: Union[str, Technology] = "generic_bicmos_1u",
        scale: float = 0.02,
    ) -> None:
        self.tech = get_technology(tech) if isinstance(tech, str) else tech
        self.scale = scale
        self.snapshots: List[Snapshot] = []
        self.source = ""
        self.interpreter = Interpreter(self.tech, Compactor(), trace=self._trace)

    # ------------------------------------------------------------------
    def run(self, source: str) -> Dict[str, Any]:
        """Execute PLDL source, recording a snapshot per statement."""
        self.source = source
        self.snapshots.clear()
        return self.interpreter.run(source)

    def _trace(self, line: int, obj: Optional[LayoutObject]) -> None:
        if obj is None or obj.is_empty():
            return
        self.snapshots.append(
            Snapshot(
                line=line,
                entity=obj.name,
                svg=render_svg(obj, scale=self.scale),
                rect_count=len(obj.nonempty_rects),
            )
        )

    # ------------------------------------------------------------------
    def save_html(self, path: Union[str, Path], title: str = "Design session") -> None:
        """Write the two-window view: source left, step renderings right."""
        source_html = "\n".join(
            f'<span class="ln">{number:4d}</span> {html.escape(text)}'
            for number, text in enumerate(self.source.splitlines(), start=1)
        )
        steps = "\n".join(
            f'<div class="step"><h3>step {index + 1}: {html.escape(snap.entity)}'
            f" (line {snap.line}, {snap.rect_count} rects)</h3>{snap.svg}</div>"
            for index, snap in enumerate(self.snapshots)
        )
        page = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font-family: monospace; display: flex; gap: 2em; }}
pre {{ background: #f4f4f4; padding: 1em; }}
.ln {{ color: #999; }}
.step {{ margin-bottom: 1.5em; }}
.panel {{ overflow: auto; max-height: 95vh; }}
</style></head>
<body>
<div class="panel"><h2>source</h2><pre>{source_html}</pre></div>
<div class="panel"><h2>graphical view</h2>{steps}</div>
</body></html>
"""
        Path(path).write_text(page, encoding="utf-8")

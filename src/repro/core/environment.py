"""The module generator environment façade.

One object wires together everything the paper's environment offers:
technology, language interpreter, successive compactor, optimizer, DRC and
output generation.  Typical use::

    env = Environment()                 # generic 1 µm BiCMOS
    env.load(CONTACT_ROW_SOURCE)        # register PLDL entities
    row = env.build("ContactRow", layer="poly", W=1.0)
    assert not env.drc(row)
    env.write_gds(row, "row.gds")
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..compact import Compactor
from ..db import LayoutObject, capacitance_report
from ..drc import Violation, run_drc
from ..io import write_gds, write_svg
from ..lang import Interpreter, translate
from ..opt import OrderOptimizer, OrderResult, Rating, Step
from ..tech import Technology, get_technology


class Environment:
    """Front door of the module generator environment."""

    def __init__(
        self,
        tech: Union[str, Technology] = "generic_bicmos_1u",
        variable_edges: bool = True,
        auto_connect: bool = True,
        rating: Optional[Rating] = None,
    ) -> None:
        self.tech = get_technology(tech) if isinstance(tech, str) else tech
        self.compactor = Compactor(
            variable_edges=variable_edges, auto_connect=auto_connect
        )
        self.rating = rating if rating is not None else Rating()
        self.interpreter = Interpreter(self.tech, self.compactor)

    # ------------------------------------------------------------------
    # language
    # ------------------------------------------------------------------
    def load(self, source: str) -> None:
        """Register the entities of a PLDL source file."""
        self.interpreter.load(source)

    def run(self, source: str) -> Dict[str, Any]:
        """Load and execute PLDL source; returns the global bindings."""
        return self.interpreter.run(source)

    def build(self, entity: str, **params: Any) -> LayoutObject:
        """Invoke a loaded entity (dimensions in microns)."""
        return self.interpreter.call(entity, **params)

    def translate(self, source: str) -> str:
        """Translate PLDL source to Python (the paper's to-C step)."""
        return translate(source)

    # ------------------------------------------------------------------
    # verification / reporting
    # ------------------------------------------------------------------
    def drc(
        self,
        obj: LayoutObject,
        include_latchup: bool = True,
        use_index: bool = True,
    ) -> List[Violation]:
        """Run the full design-rule check.

        ``use_index=False`` selects the all-pairs reference checker instead
        of the sweep-indexed one; both report identical violations.
        """
        return run_drc(obj, include_latchup=include_latchup, use_index=use_index)

    def rate(self, obj: LayoutObject) -> float:
        """Score a module with the environment's rating function."""
        return self.rating.evaluate(obj)

    def parasitics(self, obj: LayoutObject) -> Dict[str, float]:
        """Per-net parasitic capacitance (aF) — the paper's quality metric."""
        return capacitance_report(obj.rects, self.tech)

    def area_um2(self, obj: LayoutObject) -> float:
        """Bounding-box area in µm²."""
        return obj.area() / self.tech.dbu_per_micron ** 2

    # ------------------------------------------------------------------
    # optimization
    # ------------------------------------------------------------------
    def optimize_order(
        self, name: str, steps: Sequence[Step], **kwargs: Any
    ) -> OrderResult:
        """Search compaction orders for the best-rated result (Sec. 2.4)."""
        optimizer = OrderOptimizer(self.compactor, self.rating, **kwargs)
        return optimizer.optimize(name, self.tech, steps)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def write_gds(
        self, obj: Union[LayoutObject, Sequence[LayoutObject]], path: Union[str, Path]
    ) -> None:
        """Write GDSII output."""
        write_gds(obj, path)

    def write_svg(self, obj: LayoutObject, path: Union[str, Path], **kwargs: Any) -> None:
        """Write an SVG rendering."""
        write_svg(obj, path, **kwargs)

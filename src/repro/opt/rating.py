"""The rating function (Sec. 2.4).

"Each solution is evaluated by a rating function which considers the area and
electrical conditions."  The electrical term has two parts:

* weighted parasitic capacitance of designer-marked sensitive nets (signal
  path nodes whose capacitance the paper minimises);
* cross-net coupling: overlap area between conducting geometry on different
  nets (the parasitic the *no_overlap* rect property guards against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..db import LayoutObject, estimate_net_capacitance


@dataclass
class Rating:
    """Configurable layout cost: lower is better.

    ``area_weight`` scales the bounding-box area (in µm² after dbu
    conversion, so weights stay technology independent).  Entries in
    ``capacitance_weights`` mark sensitive nets; ``coupling_weight`` scales
    the different-net overlap area; ``pair_mismatch_weights`` penalise the
    relative capacitance mismatch of matched net pairs (the paper's
    "matching requirements" as a rating term).
    """

    area_weight: float = 1.0
    capacitance_weights: Dict[str, float] = field(default_factory=dict)
    coupling_weight: float = 0.0
    pair_mismatch_weights: Dict[Tuple[str, str], float] = field(
        default_factory=dict
    )

    def evaluate(self, obj: LayoutObject) -> float:
        """Score a finished module; lower is better."""
        dbu2 = obj.tech.dbu_per_micron ** 2
        score = self.area_weight * (obj.area() / dbu2)
        for net, weight in self.capacitance_weights.items():
            score += weight * estimate_net_capacitance(obj.rects, obj.tech, net)
        if self.coupling_weight:
            score += self.coupling_weight * (self.coupling_area(obj) / dbu2)
        for (net_a, net_b), weight in self.pair_mismatch_weights.items():
            score += weight * self.pair_mismatch(obj, net_a, net_b)
        return score

    def bounded(self) -> bool:
        """Whether :meth:`lower_bound` can give a finite bound.

        True iff every weight is non-negative — a negative weight would let a
        completion *reduce* the score below the partial area term, so the
        bound degenerates to ``-inf`` and branch-and-bound disables itself.
        """
        return not (
            self.area_weight < 0
            or self.coupling_weight < 0
            or any(w < 0 for w in self.capacitance_weights.values())
            or any(w < 0 for w in self.pair_mismatch_weights.values())
        )

    def lower_bound(
        self, obj: LayoutObject, min_width: int = 0, min_height: int = 0
    ) -> float:
        """A lower bound on the score of any layout extending *obj*.

        Used by branch-and-bound order search: merging further objects into a
        partial layout can only grow its bounding box, so the area term alone
        already bounds every completion from below; the electrical terms are
        all non-negative and are simply dropped.  ``min_width`` /
        ``min_height`` tighten the bound with dimensions the final bounding
        box must reach anyway (each yet-unplaced fixed-edge object fits
        inside it whole).  When any weight is negative (:meth:`bounded` is
        false) the bound degenerates to ``-inf`` (pruning silently disables
        itself rather than cutting optimal subtrees).
        """
        if not self.bounded():
            return float("-inf")
        box = obj.bbox()
        width = max(box.width if box else 0, min_width)
        height = max(box.height if box else 0, min_height)
        dbu2 = obj.tech.dbu_per_micron ** 2
        return self.area_weight * (width * height / dbu2)

    @staticmethod
    def pair_mismatch(obj: LayoutObject, net_a: str, net_b: str) -> float:
        """Relative capacitance mismatch of a matched pair, in [0, 1]."""
        cap_a = estimate_net_capacitance(obj.rects, obj.tech, net_a)
        cap_b = estimate_net_capacitance(obj.rects, obj.tech, net_b)
        top = max(cap_a, cap_b)
        if top == 0:
            return 0.0
        return abs(cap_a - cap_b) / top

    @staticmethod
    def coupling_area(obj: LayoutObject) -> int:
        """Total overlap area between conducting rects on different nets."""
        rects = [
            r
            for r in obj.nonempty_rects
            if r.net is not None and obj.tech.layer(r.layer).conducting
        ]
        total = 0
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                if a.net == b.net or a.layer == b.layer:
                    continue
                overlap = a.intersection(b)
                if overlap is not None:
                    total += overlap.area
        return total

"""Optimization: rating, compaction-order search, variant backtracking."""

from .anneal import AnnealingOrderOptimizer, AnnealSchedule
from .backtrack import BacktrackError, VariantResult, select_variant
from .order import OrderOptimizer, OrderResult, Step
from .rating import Rating

__all__ = [
    "AnnealingOrderOptimizer",
    "AnnealSchedule",
    "BacktrackError",
    "VariantResult",
    "select_variant",
    "OrderOptimizer",
    "OrderResult",
    "Step",
    "Rating",
]

"""Optimization: rating, compaction-order search, variant backtracking."""

from .anneal import AnnealingOrderOptimizer, AnnealSchedule
from .backtrack import (
    BacktrackError,
    VariantResult,
    select_order_variants,
    select_variant,
)
from .order import OrderOptimizer, OrderResult, Step, TreeOrderOptimizer
from .prefix_tree import PrefixTree
from .rating import Rating

__all__ = [
    "AnnealingOrderOptimizer",
    "AnnealSchedule",
    "BacktrackError",
    "VariantResult",
    "select_order_variants",
    "select_variant",
    "OrderOptimizer",
    "OrderResult",
    "PrefixTree",
    "Step",
    "TreeOrderOptimizer",
    "Rating",
]

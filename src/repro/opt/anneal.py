"""Simulated-annealing compaction-order search.

The paper contrasts its exhaustive order enumeration with the simulated-
annealing placement style of KOAN/ANAGRAM [4].  For large step counts, where
enumeration explodes and the beam's greediness can mislead, annealing over
order permutations is the classic middle ground — included here as the
third search strategy and as an ablation subject.

The random source is injected (a seeded ``random.Random``) so results are
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..tech import Technology
from .order import OrderResult, Step
from .prefix_tree import PrefixTree
from .rating import Rating


@dataclass
class AnnealSchedule:
    """Cooling schedule for :class:`AnnealingOrderOptimizer`."""

    initial_temperature: float = 0.30  # relative to the initial score
    cooling: float = 0.90
    moves_per_temperature: int = 8
    minimum_temperature: float = 1e-3

    def __post_init__(self) -> None:
        if not 0 < self.cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")


class AnnealingOrderOptimizer:
    """Anneal over compaction-order permutations (swap moves)."""

    def __init__(
        self,
        compactor: Optional[Compactor] = None,
        rating: Optional[Rating] = None,
        schedule: Optional[AnnealSchedule] = None,
        seed: int = 1996,
        prefix_cache_depth: Optional[int] = None,
    ) -> None:
        self.compactor = compactor if compactor is not None else Compactor()
        self.rating = rating if rating is not None else Rating()
        self.schedule = schedule if schedule is not None else AnnealSchedule()
        self.seed = seed
        #: When set, trials run through a shared :class:`PrefixTree` whose
        #: prefixes up to this depth stay cached across moves — a swap of
        #: positions (i, j) preserves the prefix before min(i, j), so those
        #: compaction steps are reused instead of replayed.  ``None`` keeps
        #: the classic replay evaluation.  Scores are identical either way.
        self.prefix_cache_depth = prefix_cache_depth
        self._tree: Optional[PrefixTree] = None

    def optimize(
        self, name: str, tech: Technology, steps: Sequence[Step]
    ) -> OrderResult:
        """Anneal from the identity order; returns the best order found."""
        steps = list(steps)
        if not steps:
            raise ValueError("no compaction steps to optimize")
        rng = random.Random(self.seed)
        self._tree = (
            PrefixTree(name, tech, steps, self.compactor)
            if self.prefix_cache_depth is not None
            else None
        )

        order = tuple(range(len(steps)))
        current = self._evaluate(name, tech, steps, order)
        best_order, best_score = order, current
        evaluated = 1
        scores = {order: current}

        temperature = self.schedule.initial_temperature * max(current, 1e-9)
        floor = self.schedule.minimum_temperature * max(current, 1e-9)
        while temperature > floor and len(steps) > 1:
            for _ in range(self.schedule.moves_per_temperature):
                i, j = rng.sample(range(len(steps)), 2)
                candidate = list(order)
                candidate[i], candidate[j] = candidate[j], candidate[i]
                candidate_order = tuple(candidate)
                score = scores.get(candidate_order)
                if score is None:
                    score = self._evaluate(name, tech, steps, candidate_order)
                    scores[candidate_order] = score
                    evaluated += 1
                delta = score - current
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    order, current = candidate_order, score
                    if current < best_score:
                        best_order, best_score = order, current
            temperature *= self.schedule.cooling

        best = self._run(name, tech, steps, best_order)
        return OrderResult(best, best_order, best_score, evaluated, scores)

    # ------------------------------------------------------------------
    def _run(
        self,
        name: str,
        tech: Technology,
        steps: Sequence[Step],
        order: Tuple[int, ...],
    ) -> LayoutObject:
        main = LayoutObject(name, tech)
        for index in order:
            step = steps[index].fresh()
            self.compactor.compact(main, step.obj, step.direction, step.ignore)
        return main

    def _evaluate(
        self,
        name: str,
        tech: Technology,
        steps: Sequence[Step],
        order: Tuple[int, ...],
    ) -> float:
        if self._tree is not None:
            score = self.rating.evaluate(self._tree.layout(order))
            # Keep shallow prefixes shared across moves, bound the memory.
            self._tree.prune_depth(self.prefix_cache_depth)
            return score
        return self.rating.evaluate(self._run(name, tech, steps, order))

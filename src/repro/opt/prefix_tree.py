"""Shared-prefix search tree over compaction orders.

The exhaustive order search of Sec. 2.4 replays every permutation from an
empty layout, doing O(n!·n) compaction steps even though permutations share
long common prefixes.  A :class:`PrefixTree` memoizes the compacted partial
layout of each order prefix (cheap :meth:`~repro.db.LayoutObject.snapshot`
copies), so extending a prefix by one step costs exactly one
:meth:`~repro.compact.Compactor.compact` call — one step per *distinct*
prefix instead of one per (permutation × step).  Badaoui & Vemuri's
multi-placement structures use the same idea for enumerative analog
placement.

The tree serves three clients:

* :class:`~repro.opt.order.TreeOrderOptimizer` walks it depth-first,
  evicting finished subtrees so memory stays O(n);
* :func:`~repro.opt.backtrack.select_order_variants` keeps the cache alive
  across topology variants so variants sharing a step prefix share the
  compaction work;
* :class:`~repro.opt.anneal.AnnealingOrderOptimizer` (opt-in) keeps shallow
  prefixes cached across annealing moves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..obs import get_tracer
from ..tech import Technology

Prefix = Tuple[int, ...]


class PrefixTree:
    """Caches compacted partial layouts keyed by order prefix.

    *steps* is the shared step pool; a prefix is a tuple of indices into it.
    :attr:`compact_calls` counts the compaction steps actually performed —
    by construction at most one per distinct non-empty prefix ever queried.
    """

    def __init__(
        self,
        name: str,
        tech: Technology,
        steps: Sequence["Step"],  # noqa: F821 - import cycle with .order
        compactor: Optional[Compactor] = None,
    ) -> None:
        self.name = name
        self.tech = tech
        self.steps = list(steps)
        self.compactor = compactor if compactor is not None else Compactor()
        self.compact_calls = 0
        self._cache: Dict[Prefix, LayoutObject] = {}

    # ------------------------------------------------------------------
    def layout(self, prefix: Sequence[int]) -> LayoutObject:
        """The compacted partial layout of *prefix* (cached).

        Returns the tree's internal state object — callers must NOT mutate
        it; use :meth:`realize` for an independent copy.  Missing ancestors
        are computed on demand, one compaction step each.
        """
        prefix = tuple(prefix)
        cached = self._cache.get(prefix)
        tracer = get_tracer()
        if cached is not None:
            tracer.count("opt.tree.cache_hits")
            return cached
        if not prefix:
            state = LayoutObject(self.name, self.tech)
        else:
            index = prefix[-1]
            if not 0 <= index < len(self.steps):
                raise IndexError(f"step index {index} out of range")
            parent = self.layout(prefix[:-1])
            with tracer.span("opt.tree.snapshot", depth=len(prefix)):
                state = parent.snapshot()
            tracer.count("opt.tree.snapshots")
            step = self.steps[index].fresh()
            self.compactor.compact(state, step.obj, step.direction, step.ignore)
            self.compact_calls += 1
            tracer.count("opt.tree.compacts")
        self._cache[prefix] = state
        return state

    def realize(self, prefix: Sequence[int]) -> LayoutObject:
        """An independent copy of the prefix's layout (safe to mutate)."""
        return self.layout(prefix).snapshot()

    def advance(self, prefix: Sequence[int], index: int) -> LayoutObject:
        """``layout(prefix + (index,))``, donating the parent state.

        The parent's cache entry is consumed and compacted into *in place* —
        one compaction step and **no snapshot**.  Only valid when the caller
        is done querying the parent prefix (the depth-first optimizer uses it
        for the last child expanded from each node, which saves the deepest —
        most expensive — snapshots).  Falls back to :meth:`layout` when the
        parent is not resident.
        """
        prefix = tuple(prefix)
        child = prefix + (index,)
        cached = self._cache.get(child)
        if cached is not None:
            get_tracer().count("opt.tree.cache_hits")
            return cached
        parent = self._cache.pop(prefix, None)
        if parent is None:
            return self.layout(child)
        if not 0 <= index < len(self.steps):
            self._cache[prefix] = parent  # restore before failing
            raise IndexError(f"step index {index} out of range")
        step = self.steps[index].fresh()
        self.compactor.compact(parent, step.obj, step.direction, step.ignore)
        self.compact_calls += 1
        get_tracer().count("opt.tree.compacts")
        self._cache[child] = parent
        return parent

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def evict(self, prefix: Sequence[int]) -> int:
        """Drop *prefix* and every cached extension; returns entries dropped.

        The depth-first optimizer calls this when a subtree is exhausted, so
        only the current search path (plus the root) stays resident.
        """
        prefix = tuple(prefix)
        depth = len(prefix)
        doomed = [
            key
            for key in self._cache
            if len(key) >= depth and key[:depth] == prefix
        ]
        for key in doomed:
            del self._cache[key]
        get_tracer().count("opt.tree.evictions", len(doomed))
        return len(doomed)

    def prune_depth(self, max_depth: int) -> int:
        """Drop every cached prefix longer than *max_depth* entries.

        Bounds memory for long-running clients (annealing) that want shallow
        prefixes to stay shared across many evaluations.
        """
        doomed = [key for key in self._cache if len(key) > max_depth]
        for key in doomed:
            del self._cache[key]
        return len(doomed)

    def cached_prefixes(self) -> int:
        """Number of partial layouts currently resident."""
        return len(self._cache)

    def __repr__(self) -> str:
        return (
            f"PrefixTree(steps={len(self.steps)}, cached={len(self._cache)},"
            f" compact_calls={self.compact_calls})"
        )

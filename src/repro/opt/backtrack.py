"""Backtracking over topology variants (Secs. 2.1 and 2.4).

"Due to design-rule constraints, the designer has to specify different
topology alternatives for parameterizable modules.  For this purpose
backtracking is supported ..." and "If different topology variants exist for
a module the rating function is also applied to select the best variant."

A variant is any zero-argument callable producing a :class:`LayoutObject`.
Builders signal an infeasible variant by raising :class:`~repro.tech.rules.
RuleError` (the interpreter raises it automatically when a design rule cannot
be fulfilled); the engine then backtracks to the next alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..tech import RuleError, Technology
from .prefix_tree import PrefixTree
from .rating import Rating

VariantBuilder = Callable[[], LayoutObject]


class BacktrackError(Exception):
    """Every topology variant failed its design rules."""


@dataclass
class VariantResult:
    """Outcome of a variant selection."""

    best: LayoutObject
    best_index: int
    best_score: float
    #: (index, score or None-if-failed, error message or None) per variant.
    trials: List[Tuple[int, Optional[float], Optional[str]]] = field(
        default_factory=list
    )


def select_variant(
    variants: Sequence[VariantBuilder],
    rating: Optional[Rating] = None,
    first_feasible: bool = False,
) -> VariantResult:
    """Build the variants and pick the winner.

    With ``first_feasible=True`` the engine stops at the first variant whose
    rules hold (pure backtracking, the PLDL ``ALT`` semantics); otherwise all
    feasible variants are built and the rating function selects the best
    (Sec. 2.4 variant selection).
    """
    if not variants:
        raise ValueError("no variants supplied")
    rating = rating if rating is not None else Rating()

    trials: List[Tuple[int, Optional[float], Optional[str]]] = []
    best: Optional[LayoutObject] = None
    best_index = -1
    best_score = float("inf")

    for index, builder in enumerate(variants):
        try:
            candidate = builder()
        except RuleError as error:
            trials.append((index, None, str(error)))
            continue
        score = rating.evaluate(candidate)
        trials.append((index, score, None))
        if score < best_score:
            best, best_index, best_score = candidate, index, score
        if first_feasible:
            break

    if best is None:
        messages = "; ".join(f"variant {i}: {msg}" for i, _, msg in trials)
        raise BacktrackError(f"all topology variants failed: {messages}")
    return VariantResult(best, best_index, best_score, trials)


def select_order_variants(
    name: str,
    tech: Technology,
    steps: Sequence["Step"],  # noqa: F821 - repro.opt.order.Step
    orders: Sequence[Sequence[int]],
    rating: Optional[Rating] = None,
    compactor: Optional[Compactor] = None,
) -> VariantResult:
    """Rate topology variants expressed as compaction orders, sharing prefixes.

    Each variant is a sequence of indices into the shared *steps* pool (a
    subset or reordering — different topology alternatives of one module are
    usually the same parts compacted differently).  All variants are built
    through one :class:`PrefixTree`, so variants sharing an order prefix
    compact that prefix only once; a variant whose compaction violates a
    design rule (``RuleError``) backtracks to the next, exactly like
    :func:`select_variant`.
    """
    if not orders:
        raise ValueError("no variant orders supplied")
    rating = rating if rating is not None else Rating()
    tree = PrefixTree(name, tech, steps, compactor)

    trials: List[Tuple[int, Optional[float], Optional[str]]] = []
    best: Optional[LayoutObject] = None
    best_index = -1
    best_score = float("inf")

    for index, order in enumerate(orders):
        try:
            candidate = tree.realize(order)
        except RuleError as error:
            trials.append((index, None, str(error)))
            continue
        score = rating.evaluate(candidate)
        trials.append((index, score, None))
        if score < best_score:
            best, best_index, best_score = candidate, index, score

    if best is None:
        messages = "; ".join(f"variant {i}: {msg}" for i, _, msg in trials)
        raise BacktrackError(f"all order variants failed: {messages}")
    return VariantResult(best, best_index, best_score, trials)

"""Elementary wiring: straight wires, L-shaped wires, via stacks.

These are the building blocks of the module-internal wiring the paper's
environment performs; corners between orthogonal segments use the
angle-adaptor primitive so layer changes get their cut arrays automatically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..db import LayoutObject
from ..geometry import Point, Rect
from ..obs.provenance import builtin_call
from ..primitives import angle_adaptor
from ..tech import RuleError

Coordinate = Tuple[int, int]


@builtin_call("WIRE")
def wire(
    obj: LayoutObject,
    layer: str,
    start: Coordinate,
    end: Coordinate,
    width: Optional[int] = None,
    net: Optional[str] = None,
) -> Rect:
    """Draw one straight wire segment centred on the start→end line.

    The segment must be horizontal or vertical; *width* defaults to the
    layer's minimum width.  Returns the created rect.
    """
    if width is None:
        width = obj.tech.min_width(layer)
    (x1, y1), (x2, y2) = start, end
    if x1 != x2 and y1 != y2:
        raise RuleError("wire segments must be horizontal or vertical")
    half = width // 2
    if y1 == y2:  # horizontal
        rect = Rect(min(x1, x2), y1 - half, max(x1, x2), y1 - half + width, layer, net)
    else:  # vertical
        rect = Rect(x1 - half, min(y1, y2), x1 - half + width, max(y1, y2), layer, net)
    if rect.is_empty:
        raise RuleError("wire segment has zero length")
    return obj.add_rect(rect)


def path(
    obj: LayoutObject,
    layer: str,
    points: Sequence[Coordinate],
    width: Optional[int] = None,
    net: Optional[str] = None,
) -> List[Rect]:
    """Draw a rectilinear polyline wire through *points* on one layer.

    Corners get an angle adaptor (a same-layer corner patch) so the joint is
    always a full-width square.  Returns all created rects.
    """
    if len(points) < 2:
        raise RuleError("a path needs at least two points")
    if width is None:
        width = obj.tech.min_width(layer)
    rects: List[Rect] = []
    for a, b in zip(points, points[1:]):
        if a == b:
            continue
        rects.append(wire(obj, layer, a, b, width, net))
    for corner in points[1:-1]:
        rects.extend(
            angle_adaptor(obj, layer, layer, corner[0], corner[1], width, width, net)
        )
    return rects


@builtin_call("VIA")
def via_stack(
    obj: LayoutObject,
    x: int,
    y: int,
    bottom_layer: str,
    top_layer: str,
    net: Optional[str] = None,
) -> List[Rect]:
    """Create a layer-change stack at (x, y): both plates plus the cut.

    The plates are sized to the cut's enclosure rules on each layer.
    Returns [bottom plate, top plate, cut].
    """
    cut_layer = obj.tech.cut_between(bottom_layer, top_layer)
    if cut_layer is None:
        raise RuleError(
            f"no cut layer connects {bottom_layer!r} and {top_layer!r}"
        )
    cut_size = obj.tech.cut_size(cut_layer)
    rects: List[Rect] = []
    for plate_layer in (bottom_layer, top_layer):
        enc = obj.tech.enclosure_or_zero(plate_layer, cut_layer)
        side = cut_size + 2 * enc
        half = side // 2
        rects.append(
            obj.add_rect(
                Rect(x - half, y - half, x - half + side, y - half + side,
                     plate_layer, net)
            )
        )
    half = cut_size // 2
    rects.append(
        obj.add_rect(
            Rect(x - half, y - half, x - half + cut_size, y - half + cut_size,
                 cut_layer, net)
        )
    )
    return rects

"""River routing: planar single-layer routing between two pin rows.

Connects an ordered row of source pins to an equally ordered row of target
pins without crossings — the standard situation inside a module where a
device row must reach a contact row.  Each connection is a vertical-
horizontal-vertical Z; horizontal jogs are staggered onto separate tracks at
rule spacing so the wires never conflict.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..db import LayoutObject
from ..geometry import Rect
from ..tech import RuleError
from .wire import path

Coordinate = Tuple[int, int]


def river_route(
    obj: LayoutObject,
    layer: str,
    sources: Sequence[Coordinate],
    targets: Sequence[Coordinate],
    nets: Optional[Sequence[Optional[str]]] = None,
    width: Optional[int] = None,
    spacing: Optional[int] = None,
) -> List[List[Rect]]:
    """Route sources[i] → targets[i] planar on one layer.

    Sources and targets must be in the same left-to-right order (the planarity
    condition of river routing); a violation raises ``RuleError``.  Returns
    one rect list per connection.
    """
    if len(sources) != len(targets):
        raise RuleError("river routing needs equally many sources and targets")
    if not sources:
        return []
    if nets is None:
        nets = [None] * len(sources)
    if len(nets) != len(sources):
        raise RuleError("nets must match the pin count")
    if width is None:
        width = obj.tech.min_width(layer)
    if spacing is None:
        rule = obj.tech.min_space(layer, layer)
        spacing = rule if rule is not None else width

    order_s = [x for x, _ in sources]
    order_t = [x for x, _ in targets]
    if sorted(order_s) != order_s or sorted(order_t) != order_t:
        raise RuleError("river routing requires monotonically ordered pins")

    # Tracks live between the two rows; going upward (sources below).
    upward = targets[0][1] >= sources[0][1]
    y_lo = max(y for _, y in sources) if upward else max(y for _, y in targets)
    y_hi = min(y for _, y in targets) if upward else min(y for _, y in sources)
    gap = y_hi - y_lo
    pitch = width + spacing
    needed = pitch * len(sources)
    if gap < needed:
        raise RuleError(
            f"river routing channel too small: gap {gap} dbu, need {needed} dbu"
        )

    # Stagger tracks so neighbouring jogs keep rule spacing.  Left-going
    # jogs take low tracks in pin order, right-going jogs take the tracks
    # above them in *reverse* pin order — the classic river discipline.  A
    # right-going wire's source-side vertical then only ever climbs past
    # tracks of later (lower-jogging) wires, whose jogs start further
    # right, so no vertical segment can cross a foreign jog.
    lefts = [i for i in range(len(sources)) if targets[i][0] < sources[i][0]]
    rights = [i for i in range(len(sources)) if targets[i][0] > sources[i][0]]
    slot: dict = {}
    for position, index in enumerate(lefts):
        slot[index] = position
    for position, index in enumerate(reversed(rights)):
        slot[index] = len(lefts) + position

    routes: List[List[Rect]] = []
    for index, ((sx, sy), (tx, ty)) in enumerate(zip(sources, targets)):
        points: List[Coordinate] = [(sx, sy)]
        if sx != tx:
            track = y_lo + pitch * (slot[index] + 1) - spacing // 2
            if not upward:
                track = y_hi - (track - y_lo)
            points.append((sx, track))
            points.append((tx, track))
        points.append((tx, ty))
        routes.append(path(obj, layer, points, width, nets[index]))
    return routes

"""Symmetric pair wiring — module E's "fully symmetrical" nets (Fig. 10).

"As can be seen from the figure the wiring is fully symmetrical and every net
has identical crossings."  The guarantee is by construction: one half of the
wiring is drawn, then mirrored about the symmetry axis with the paired net
names swapped, so both nets see geometrically identical wires and identical
layer crossings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..db import LayoutObject
from ..geometry import Rect, Transform
from ..tech import RuleError
from .wire import path, via_stack

Coordinate = Tuple[int, int]


def mirror_point(point: Coordinate, axis_x: int) -> Coordinate:
    """Reflect a point about the vertical line x = axis_x."""
    return (2 * axis_x - point[0], point[1])


def route_symmetric_pair(
    obj: LayoutObject,
    layer: str,
    axis_x: int,
    points: Sequence[Coordinate],
    net_left: str,
    net_right: str,
    width: Optional[int] = None,
) -> Tuple[List[Rect], List[Rect]]:
    """Draw one wire for *net_left* and its mirror image for *net_right*.

    *points* describe the left wire; the right wire is its exact reflection
    about ``axis_x``.  Returns (left rects, right rects).
    """
    left = path(obj, layer, points, width, net_left)
    mirrored = [mirror_point(p, axis_x) for p in points]
    right = path(obj, layer, mirrored, width, net_right)
    return left, right


def symmetric_via_pair(
    obj: LayoutObject,
    axis_x: int,
    point: Coordinate,
    bottom_layer: str,
    top_layer: str,
    net_left: str,
    net_right: str,
) -> Tuple[List[Rect], List[Rect]]:
    """Create a via stack and its mirror twin (identical crossings)."""
    left = via_stack(obj, point[0], point[1], bottom_layer, top_layer, net_left)
    mx, my = mirror_point(point, axis_x)
    right = via_stack(obj, mx, my, bottom_layer, top_layer, net_right)
    return left, right


def count_crossings(obj: LayoutObject, net: str, cut_layers: Sequence[str]) -> int:
    """Number of layer crossings (cuts) on a net.

    The paper's symmetry claim — "every net has identical crossings" — is
    checkable: both nets of a matched pair must return the same count.
    """
    return sum(
        1
        for rect in obj.nonempty_rects
        if rect.net == net and rect.layer in cut_layers
    )


def verify_mirror_symmetry(
    obj: LayoutObject,
    axis_x: int,
    net_pairs: Sequence[Tuple[str, str]],
    layers: Optional[Sequence[str]] = None,
) -> List[str]:
    """Check that paired nets are exact mirror images about ``axis_x``.

    Returns a list of human-readable asymmetry findings (empty = symmetric).
    """
    findings: List[str] = []
    for net_a, net_b in net_pairs:
        shapes_a = _net_shapes(obj, net_a, layers)
        shapes_b = _net_shapes(obj, net_b, layers)
        mirrored_a = {
            (layer, 2 * axis_x - x2, y1, 2 * axis_x - x1, y2)
            for (layer, x1, y1, x2, y2) in shapes_a
        }
        if mirrored_a != shapes_b:
            missing = sorted(mirrored_a - shapes_b)[:3]
            extra = sorted(shapes_b - mirrored_a)[:3]
            findings.append(
                f"nets {net_a!r}/{net_b!r} are not mirror images:"
                f" missing={missing} extra={extra}"
            )
    return findings


def _net_shapes(
    obj: LayoutObject, net: str, layers: Optional[Sequence[str]]
) -> set:
    return {
        (r.layer, r.x1, r.y1, r.x2, r.y2)
        for r in obj.nonempty_rects
        if r.net == net and (layers is None or r.layer in layers)
    }

"""Routing routines for module-internal wiring."""

from .river import river_route
from .symmetric import (
    count_crossings,
    mirror_point,
    route_symmetric_pair,
    symmetric_via_pair,
    verify_mirror_symmetry,
)
from .wire import path, via_stack, wire

__all__ = [
    "river_route",
    "count_crossings",
    "mirror_point",
    "route_symmetric_pair",
    "symmetric_via_pair",
    "verify_mirror_symmetry",
    "path",
    "via_stack",
    "wire",
]

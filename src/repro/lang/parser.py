"""Recursive-descent parser for the PLDL.

Grammar sketch (NL = newline)::

    program    := (entity | statement NL)*
    entity     := 'ENT' IDENT '(' params? ')' NL statement* ('END' NL)?
    params     := param (',' param)*
    param      := IDENT | '<' IDENT '>'
    statement  := assign | if | for | alt | expr
    assign     := IDENT '=' expr
    if         := 'IF' expr NL body ('ELSE' NL body)? 'ENDIF'
    for        := 'FOR' IDENT '=' expr 'TO' expr ('STEP' expr)? NL body 'ENDFOR'
    alt        := 'ALT' NL body ('ELSEALT' NL body)* 'ENDALT'
    expr       := or-expr with the usual precedence; postfix '.' and calls

Entity bodies end at ``END`` or at the next ``ENT`` / end of file, so the
paper's END-less listings (Figs. 2 and 7) parse verbatim.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .errors import ParseError
from .tokens import KEYWORDS, Token, TokenKind, tokenize

#: Statement keywords that terminate an open body without consuming.
_BODY_TERMINATORS = frozenset({"END", "ENT", "ELSE", "ENDIF", "ENDFOR", "ELSEALT", "ENDALT"})


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._current
        if token.kind is not kind:
            raise ParseError(f"expected {what}, found {token.value!r}", token.line)
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._current.kind is kind:
            return self._advance()
        return None

    def _accept_keyword(self, word: str) -> Optional[Token]:
        if self._current.is_keyword(word):
            return self._advance()
        return None

    def _skip_newlines(self) -> None:
        while self._current.kind is TokenKind.NEWLINE:
            self._advance()

    def _end_statement(self) -> None:
        if self._current.kind is TokenKind.EOF:
            return
        self._expect(TokenKind.NEWLINE, "end of statement")

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        """Parse a whole source file."""
        program = ast.Program(line=1)
        self._skip_newlines()
        while self._current.kind is not TokenKind.EOF:
            if self._current.is_keyword("ENT"):
                program.entities.append(self._parse_entity())
            else:
                program.statements.append(self._parse_statement())
                self._end_statement()
            self._skip_newlines()
        return program

    def _parse_entity(self) -> ast.Entity:
        header = self._advance()  # ENT
        name = self._expect(TokenKind.IDENT, "entity name")
        if name.value in KEYWORDS:
            raise ParseError(f"{name.value!r} is a reserved word", name.line)
        entity = ast.Entity(line=header.line, name=name.value)
        self._expect(TokenKind.LPAREN, "'('")
        if self._current.kind is not TokenKind.RPAREN:
            entity.params.append(self._parse_param())
            while self._accept(TokenKind.COMMA):
                entity.params.append(self._parse_param())
        self._expect(TokenKind.RPAREN, "')'")
        self._end_statement()
        entity.body = self._parse_body()
        self._accept_keyword("END")
        return entity

    def _parse_param(self) -> ast.Param:
        if self._accept(TokenKind.LT):
            name = self._expect(TokenKind.IDENT, "parameter name")
            self._expect(TokenKind.GT, "'>'")
            return ast.Param(line=name.line, name=name.value, optional=True)
        name = self._expect(TokenKind.IDENT, "parameter name")
        return ast.Param(line=name.line, name=name.value, optional=False)

    def _parse_body(self) -> List[ast.Statement]:
        """Statements until a body terminator keyword (not consumed)."""
        body: List[ast.Statement] = []
        self._skip_newlines()
        while True:
            token = self._current
            if token.kind is TokenKind.EOF:
                return body
            if token.kind is TokenKind.IDENT and token.value in _BODY_TERMINATORS:
                return body
            body.append(self._parse_statement())
            self._end_statement()
            self._skip_newlines()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_statement(self) -> ast.Statement:
        token = self._current
        if token.is_keyword("IF"):
            return self._parse_if()
        if token.is_keyword("FOR"):
            return self._parse_for()
        if token.is_keyword("ALT"):
            return self._parse_alt()
        if (
            token.kind is TokenKind.IDENT
            and token.value not in KEYWORDS
            and self._tokens[self._pos + 1].kind is TokenKind.ASSIGN
        ):
            self._advance()
            self._advance()
            value = self._parse_expr()
            return ast.Assign(line=token.line, target=token.value, value=value)
        value = self._parse_expr()
        return ast.ExprStatement(line=token.line, value=value)

    def _parse_if(self) -> ast.If:
        header = self._advance()  # IF
        condition = self._parse_expr()
        self._end_statement()
        node = ast.If(line=header.line, condition=condition)
        node.then_body = self._parse_body()
        if self._accept_keyword("ELSE"):
            self._end_statement()
            node.else_body = self._parse_body()
        closing = self._current
        if not self._accept_keyword("ENDIF"):
            raise ParseError("expected ENDIF", closing.line)
        return node

    def _parse_for(self) -> ast.For:
        header = self._advance()  # FOR
        var = self._expect(TokenKind.IDENT, "loop variable")
        self._expect(TokenKind.ASSIGN, "'='")
        start = self._parse_expr()
        if not self._accept_keyword("TO"):
            raise ParseError("expected TO", self._current.line)
        stop = self._parse_expr()
        step: Optional[ast.Expr] = None
        if self._accept_keyword("STEP"):
            step = self._parse_expr()
        self._end_statement()
        node = ast.For(line=header.line, var=var.value, start=start, stop=stop, step=step)
        node.body = self._parse_body()
        if not self._accept_keyword("ENDFOR"):
            raise ParseError("expected ENDFOR", self._current.line)
        return node

    def _parse_alt(self) -> ast.Alt:
        header = self._advance()  # ALT
        self._end_statement()
        node = ast.Alt(line=header.line)
        node.branches.append(self._parse_body())
        while self._accept_keyword("ELSEALT"):
            self._end_statement()
            node.branches.append(self._parse_body())
        if not self._accept_keyword("ENDALT"):
            raise ParseError("expected ENDALT", self._current.line)
        return node

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._current.is_keyword("OR"):
            op = self._advance()
            right = self._parse_and()
            left = ast.Binary(line=op.line, op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._current.is_keyword("AND"):
            op = self._advance()
            right = self._parse_not()
            left = ast.Binary(line=op.line, op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._current.is_keyword("NOT"):
            op = self._advance()
            operand = self._parse_not()
            return ast.Unary(line=op.line, op="NOT", operand=operand)
        return self._parse_comparison()

    _COMPARISONS = {
        TokenKind.EQ: "==",
        TokenKind.NE: "!=",
        TokenKind.LT: "<",
        TokenKind.GT: ">",
        TokenKind.LE: "<=",
        TokenKind.GE: ">=",
    }

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        kind = self._current.kind
        if kind in self._COMPARISONS:
            op = self._advance()
            right = self._parse_additive()
            return ast.Binary(
                line=op.line, op=self._COMPARISONS[kind], left=left, right=right
            )
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binary(line=op.line, op=op.value, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._current.kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self._advance()
            right = self._parse_unary()
            left = ast.Binary(line=op.line, op=op.value, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._current.kind is TokenKind.MINUS:
            op = self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=op.line, op="-", operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        node = self._parse_atom()
        while self._accept(TokenKind.DOT):
            attr = self._expect(TokenKind.IDENT, "attribute name")
            node = ast.Attribute(line=attr.line, value=node, attr=attr.value)
        return node

    def _parse_atom(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Number(line=token.line, value=float(token.value))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.String(line=token.line, value=token.value)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return inner
        if token.kind is TokenKind.IDENT:
            if token.value == "TRUE":
                self._advance()
                return ast.Boolean(line=token.line, value=True)
            if token.value == "FALSE":
                self._advance()
                return ast.Boolean(line=token.line, value=False)
            if token.value == "NIL":
                self._advance()
                return ast.Nil(line=token.line)
            if token.value in KEYWORDS:
                raise ParseError(f"unexpected keyword {token.value!r}", token.line)
            self._advance()
            if self._current.kind is TokenKind.LPAREN:
                return self._parse_call(token)
            return ast.Name(line=token.line, ident=token.value)
        raise ParseError(f"unexpected token {token.value!r}", token.line)

    def _parse_call(self, name: Token) -> ast.Call:
        self._expect(TokenKind.LPAREN, "'('")
        call = ast.Call(line=name.line, func=name.value)
        if self._current.kind is not TokenKind.RPAREN:
            self._parse_argument(call)
            while self._accept(TokenKind.COMMA):
                self._parse_argument(call)
        self._expect(TokenKind.RPAREN, "')'")
        return call

    def _parse_argument(self, call: ast.Call) -> None:
        token = self._current
        if (
            token.kind is TokenKind.IDENT
            and token.value not in KEYWORDS
            and self._tokens[self._pos + 1].kind is TokenKind.ASSIGN
        ):
            self._advance()
            self._advance()
            value = self._parse_expr()
            if any(key == token.value for key, _ in call.kwargs):
                raise ParseError(f"duplicate keyword argument {token.value!r}", token.line)
            call.kwargs.append((token.value, value))
            return
        if call.kwargs:
            raise ParseError("positional argument after keyword argument", token.line)
        call.args.append(self._parse_expr())


def parse(source: str) -> ast.Program:
    """Parse PLDL source text into a :class:`~repro.lang.ast_nodes.Program`."""
    return Parser(tokenize(source)).parse_program()

"""Errors raised by the PLDL frontend and interpreter."""

from __future__ import annotations

from typing import Optional


class PldlError(Exception):
    """Base class for language errors; carries a source location."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(PldlError):
    """Invalid character or malformed token."""


class ParseError(PldlError):
    """Source does not match the grammar."""


class EvalError(PldlError):
    """Runtime error during interpretation (bad types, unknown names...)."""

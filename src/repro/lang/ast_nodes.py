"""Abstract syntax tree of the procedural layout description language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class Node:
    """Base AST node; every node records its source line."""

    line: int


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass
class Number(Node):
    """Numeric literal; geometry contexts interpret it in microns."""

    value: float


@dataclass
class String(Node):
    """String literal (layer names, net names)."""

    value: str


@dataclass
class Boolean(Node):
    """TRUE / FALSE literal."""

    value: bool


@dataclass
class Nil(Node):
    """The NIL literal — an explicitly omitted optional value."""


@dataclass
class Name(Node):
    """Variable / parameter / entity reference."""

    ident: str


@dataclass
class Attribute(Node):
    """Property access, e.g. ``obj.width`` (micron-valued metrics)."""

    value: "Expr"
    attr: str


@dataclass
class Unary(Node):
    """Unary operation: ``-`` or ``NOT``."""

    op: str
    operand: "Expr"


@dataclass
class Binary(Node):
    """Binary arithmetic / comparison / logic."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class Call(Node):
    """Function or entity call with positional and keyword arguments."""

    func: str
    args: List["Expr"] = field(default_factory=list)
    kwargs: List[Tuple[str, "Expr"]] = field(default_factory=list)


Expr = Union[Number, String, Boolean, Nil, Name, Attribute, Unary, Binary, Call]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass
class Assign(Node):
    """``name = expr``."""

    target: str
    value: Expr


@dataclass
class ExprStatement(Node):
    """Bare call evaluated for its effect (INBOX, compact, ...)."""

    value: Expr


@dataclass
class If(Node):
    """IF / ELSE / ENDIF conditional."""

    condition: Expr
    then_body: List["Statement"] = field(default_factory=list)
    else_body: List["Statement"] = field(default_factory=list)


@dataclass
class For(Node):
    """``FOR i = a TO b [STEP s]`` inclusive counting loop."""

    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr] = None
    body: List["Statement"] = field(default_factory=list)


@dataclass
class Alt(Node):
    """ALT / ELSEALT / ENDALT backtracking alternatives.

    Branches are tried in order; a design-rule failure rolls the structure
    back and moves on to the next branch (Sec. 2.1 backtracking).
    """

    branches: List[List["Statement"]] = field(default_factory=list)


Statement = Union[Assign, ExprStatement, If, For, Alt]


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------
@dataclass
class Param(Node):
    """Entity parameter; ``optional`` marks the angle-bracket form ``<W>``."""

    name: str
    optional: bool


@dataclass
class Entity(Node):
    """An ``ENT`` declaration: header plus body statements."""

    name: str
    params: List[Param] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@dataclass
class Program(Node):
    """A parsed source file: top-level statements plus entity declarations."""

    statements: List[Statement] = field(default_factory=list)
    entities: List[Entity] = field(default_factory=list)

    def entity(self, name: str) -> Entity:
        """Look up a declared entity by name."""
        for entity in self.entities:
            if entity.name == name:
                return entity
        raise KeyError(name)

"""Runtime support for translated PLDL code.

The paper's environment translates module source into C; :mod:`repro.lang.
translate` does the same with Python as the target.  Generated functions call
the methods of this :class:`Runtime`, which mirror the interpreter builtins
(dimensions in microns) but take the target object explicitly.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction
from ..obs.provenance import get_recorder
from ..primitives import angle_adaptor, around, array, inbox, ring, tworects
from ..route import via_stack, wire
from ..tech import RuleError, Technology


class Runtime:
    """Execution context shared by all translated entities."""

    def __init__(self, tech: Technology, compactor: Optional[Compactor] = None) -> None:
        self.tech = tech
        self.compactor = compactor if compactor is not None else Compactor()
        self._counter = 0
        #: Provenance frame depth per live entity object (see begin/end).
        self._prov_frames: dict = {}

    # ------------------------------------------------------------------
    def begin(self, entity_name: str, **params: Any) -> LayoutObject:
        """Create the structure a translated entity builds into.

        When the provenance recorder is live, an entity frame is pushed with
        the caller's parameter bindings; :meth:`end` pops it.  Older
        generated modules call ``begin`` without parameters and never call
        ``end`` — the depth-token pop keeps those tolerable (their frames
        are truncated by the next outer ``end``).
        """
        obj = LayoutObject(f"{entity_name}_{self._counter}", self.tech)
        self._counter += 1
        recorder = get_recorder()
        if recorder.enabled:
            self._prov_frames[id(obj)] = recorder.push_entity(entity_name, params)
        return obj

    def end(self, obj: LayoutObject) -> None:
        """Close the provenance frame opened by :meth:`begin` for *obj*."""
        depth = self._prov_frames.pop(id(obj), None)
        if depth is not None:
            get_recorder().pop_entity(depth)

    def _dbu(self, value: Optional[float]) -> Optional[int]:
        return None if value is None else self.tech.um(float(value))

    # ------------------------------------------------------------------
    # geometry builtins (micron-valued)
    # ------------------------------------------------------------------
    def INBOX(
        self,
        obj: LayoutObject,
        layer: str,
        W: Optional[float] = None,
        L: Optional[float] = None,
        net: Optional[str] = None,
        variable: bool = False,
    ) -> None:
        """Translated INBOX."""
        inbox(obj, layer, w=self._dbu(W), length=self._dbu(L), net=net, variable=variable)

    def ARRAY(self, obj: LayoutObject, layer: str, net: Optional[str] = None) -> None:
        """Translated ARRAY."""
        array(obj, layer, net=net)

    def TWORECTS(
        self,
        obj: LayoutObject,
        gate: str,
        body: str,
        W: float,
        L: float,
        gatenet: Optional[str] = None,
        bodynet: Optional[str] = None,
    ) -> None:
        """Translated TWORECTS."""
        tworects(
            obj, gate, body, self._dbu(W) or 0, self._dbu(L) or 0,
            gate_net=gatenet, body_net=bodynet,
        )

    def AROUND(
        self,
        obj: LayoutObject,
        layer: str,
        margin: Optional[float] = None,
        net: Optional[str] = None,
    ) -> None:
        """Translated AROUND."""
        around(obj, layer, margin=self._dbu(margin), net=net)

    def RING(
        self,
        obj: LayoutObject,
        layer: str,
        width: Optional[float] = None,
        gap: Optional[float] = None,
        net: Optional[str] = None,
    ) -> None:
        """Translated RING."""
        ring(obj, layer, width=self._dbu(width), gap=self._dbu(gap), net=net)

    def ADAPTOR(
        self,
        obj: LayoutObject,
        hlayer: str,
        vlayer: str,
        x: float,
        y: float,
        hwidth: Optional[float] = None,
        vwidth: Optional[float] = None,
        net: Optional[str] = None,
    ) -> None:
        """Translated ADAPTOR."""
        angle_adaptor(
            obj, hlayer, vlayer, self._dbu(x) or 0, self._dbu(y) or 0,
            h_width=self._dbu(hwidth), v_width=self._dbu(vwidth), net=net,
        )

    def WIRE(
        self,
        obj: LayoutObject,
        layer: str,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        width: Optional[float] = None,
        net: Optional[str] = None,
    ) -> None:
        """Translated WIRE."""
        wire(
            obj, layer,
            (self._dbu(x1) or 0, self._dbu(y1) or 0),
            (self._dbu(x2) or 0, self._dbu(y2) or 0),
            width=self._dbu(width), net=net,
        )

    def VIA(
        self,
        obj: LayoutObject,
        x: float,
        y: float,
        bottom: str,
        top: str,
        net: Optional[str] = None,
    ) -> None:
        """Translated VIA."""
        via_stack(obj, self._dbu(x) or 0, self._dbu(y) or 0, bottom, top, net=net)

    # ------------------------------------------------------------------
    # structural builtins
    # ------------------------------------------------------------------
    def compact(
        self,
        obj: LayoutObject,
        child: LayoutObject,
        direction: Any,
        *ignore: str,
    ) -> None:
        """Translated compact()."""
        if isinstance(direction, str):
            direction = Direction.from_name(direction)
        self.compactor.compact(obj, child, direction, ignore)

    def COPY(self, child: LayoutObject) -> LayoutObject:
        """Translated COPY()."""
        return child.copy()

    def MOVE(self, child: LayoutObject, dx: float, dy: float) -> None:
        """Translated MOVE()."""
        child.translate(self._dbu(dx) or 0, self._dbu(dy) or 0)

    def MIRRORX(self, child: LayoutObject, axis: float = 0.0) -> None:
        """Translated MIRRORX()."""
        child.mirror_x(self._dbu(axis) or 0)

    def MIRRORY(self, child: LayoutObject, axis: float = 0.0) -> None:
        """Translated MIRRORY()."""
        child.mirror_y(self._dbu(axis) or 0)

    def SETNET(self, child: LayoutObject, net: str, layer: Optional[str] = None) -> None:
        """Translated SETNET()."""
        child.set_net(net, layer)

    def VARIABLE(self, target: LayoutObject, *layers: str) -> None:
        """Translated VARIABLE()."""
        for layer in layers:
            for rect in target.rects_on(layer):
                rect.set_variable()

    def FIXED(self, target: LayoutObject, *layers: str) -> None:
        """Translated FIXED()."""
        for layer in layers:
            for rect in target.rects_on(layer):
                rect.set_fixed()

    def ERROR(self, message: str = "explicit ERROR") -> None:
        """Translated ERROR()."""
        raise RuleError(str(message))

    def LABEL(self, obj: LayoutObject, text: str, x: float, y: float, layer: str) -> None:
        """Translated LABEL()."""
        obj.add_label(text, self._dbu(x) or 0, self._dbu(y) or 0, layer)

    def WIDTHRULE(self, layer: str) -> float:
        """Translated WIDTHRULE()."""
        return self.tech.min_width(layer) / self.tech.dbu_per_micron

    def SPACERULE(self, layer_a: str, layer_b: str) -> float:
        """Translated SPACERULE()."""
        rule = self.tech.min_space(layer_a, layer_b)
        if rule is None:
            raise RuleError(f"no SPACE rule between {layer_a!r} and {layer_b!r}")
        return rule / self.tech.dbu_per_micron

    # ------------------------------------------------------------------
    # control support
    # ------------------------------------------------------------------
    def alt(
        self,
        obj: LayoutObject,
        branches: Sequence[Callable[[], None]],
        save: Optional[Callable[[], dict]] = None,
        restore: Optional[Callable[[dict], None]] = None,
    ) -> None:
        """Translated ALT: try branches with rollback on rule failure.

        The interpreter rolls back the whole variable frame when a branch
        fails, not just the entity structure; translated code passes
        ``save``/``restore`` closures over the names its branches touch so
        both execution paths agree.  Older generated modules omit them and
        keep the structure-only rollback.
        """
        last: Optional[RuleError] = None
        for branch in branches:
            snapshot = obj.copy()
            state = save() if save is not None else None
            try:
                branch()
                return
            except RuleError as error:
                last = error
                obj.rects = snapshot.rects
                obj.links = snapshot.links
                obj.labels = snapshot.labels
                if restore is not None:
                    restore(state or {})
        raise RuleError(f"all ALT branches failed (last: {last})")

    @staticmethod
    def alt_state(values: dict) -> dict:
        """Copy an ALT variable snapshot, cloning mutable layout objects."""
        return {
            name: value.copy() if isinstance(value, LayoutObject) else value
            for name, value in values.items()
        }

    @staticmethod
    def MOD(a: float, b: float) -> float:
        """Translated MOD()."""
        return float(a) % float(b)

    @staticmethod
    def FLOOR(x: float) -> float:
        """Translated FLOOR()."""
        import math

        return float(math.floor(x))

    @staticmethod
    def ABS(x: float) -> float:
        """Translated ABS()."""
        return abs(float(x))

    @staticmethod
    def MIN(*values: float) -> float:
        """Translated MIN()."""
        return float(min(values))

    @staticmethod
    def MAX(*values: float) -> float:
        """Translated MAX()."""
        return float(max(values))

    @staticmethod
    def frange(start: float, stop: float, step: float = 1.0) -> List[float]:
        """Translated FOR bounds: inclusive float range."""
        if step == 0:
            raise ValueError("FOR step must not be zero")
        values: List[float] = []
        value = start
        epsilon = abs(step) * 1e-9
        while (step > 0 and value <= stop + epsilon) or (
            step < 0 and value >= stop - epsilon
        ):
            values.append(value)
            value += step
        return values

    def attr(self, obj: LayoutObject, name: str) -> float:
        """Translated attribute access (micron-valued metrics)."""
        dbu = self.tech.dbu_per_micron
        if name == "width":
            return obj.width / dbu
        if name == "height":
            return obj.height / dbu
        if name == "area":
            return obj.area() / dbu ** 2
        raise AttributeError(f"objects have no attribute {name!r}")

"""Tree-walking interpreter for the PLDL.

"The implemented language interpreter evaluates and fulfills the design rules
automatically" (Sec. 2.1): every geometry builtin delegates to the
design-rule-driven primitives, and a rule that cannot be fulfilled surfaces
as :class:`~repro.tech.rules.RuleError` — which the ``ALT`` statement catches
to backtrack between topology variants.

Conventions:

* numeric values are **microns** (the technology converts to database units
  at the primitive boundary);
* an entity call builds and returns a fresh :class:`LayoutObject`;
* geometry builtins implicitly target the innermost entity under
  construction, exactly like the paper's listings.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction
from ..obs import get_logger, get_tracer
from ..obs.provenance import get_recorder
from ..primitives import angle_adaptor, around, array, inbox, ring, tworects
from ..route import via_stack, wire
from ..tech import RuleError, Technology
from . import ast_nodes as ast
from .errors import EvalError
from .parser import parse

log = get_logger("lang")

#: Statement-trace callback: (line number, entity frame object or None).
TraceHook = Callable[[int, Optional[LayoutObject]], None]

#: Maximum entity-call nesting — a recursive module definition would
#: otherwise exhaust the Python stack with an unhelpful error.
MAX_CALL_DEPTH = 64


class Frame:
    """One entity invocation: its variables and structure under construction."""

    def __init__(self, name: str, obj: Optional[LayoutObject]) -> None:
        self.name = name
        self.obj = obj
        self.vars: Dict[str, Any] = {}


class Interpreter:
    """Executes PLDL programs against a technology."""

    def __init__(
        self,
        tech: Technology,
        compactor: Optional[Compactor] = None,
        trace: Optional[TraceHook] = None,
    ) -> None:
        self.tech = tech
        self.compactor = compactor if compactor is not None else Compactor()
        self.trace = trace
        self.entities: Dict[str, ast.Entity] = {}
        self.globals = Frame("<global>", None)
        self._counters: Dict[str, int] = {}
        self._depth = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def load(self, source: str) -> ast.Program:
        """Parse *source* and register its entities (no execution)."""
        program = parse(source)
        for entity in program.entities:
            self.entities[entity.name] = entity
        return program

    def run(self, source: str) -> Dict[str, Any]:
        """Load *source*, execute its top-level statements, return globals."""
        program = self.load(source)
        with get_tracer().span("interp.run", statements=len(program.statements)):
            for statement in program.statements:
                self._exec(statement, self.globals)
        return self.globals.vars

    def call(self, entity_name: str, **kwargs: Any) -> LayoutObject:
        """Invoke a loaded entity from Python (dimensions in microns)."""
        entity = self.entities.get(entity_name)
        if entity is None:
            raise EvalError(f"unknown entity {entity_name!r}")
        return self._call_entity(entity, [], list(kwargs.items()), line=entity.line)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec(self, statement: ast.Statement, frame: Frame) -> None:
        if isinstance(statement, ast.Assign):
            frame.vars[statement.target] = self._eval(statement.value, frame)
        elif isinstance(statement, ast.ExprStatement):
            self._eval(statement.value, frame)
        elif isinstance(statement, ast.If):
            branch = (
                statement.then_body
                if self._truthy(self._eval(statement.condition, frame))
                else statement.else_body
            )
            for inner in branch:
                self._exec(inner, frame)
        elif isinstance(statement, ast.For):
            self._exec_for(statement, frame)
        elif isinstance(statement, ast.Alt):
            self._exec_alt(statement, frame)
        else:  # pragma: no cover - parser produces no other nodes
            raise EvalError(f"unknown statement {statement!r}", statement.line)
        if self.trace is not None:
            self.trace(statement.line, frame.obj)

    def _exec_for(self, statement: ast.For, frame: Frame) -> None:
        start = self._number(self._eval(statement.start, frame), statement.line)
        stop = self._number(self._eval(statement.stop, frame), statement.line)
        step = (
            self._number(self._eval(statement.step, frame), statement.line)
            if statement.step is not None
            else 1.0
        )
        if step == 0:
            raise EvalError("FOR step must not be zero", statement.line)
        value = start
        # Inclusive bounds, tolerant of float accumulation.
        epsilon = abs(step) * 1e-9
        while (step > 0 and value <= stop + epsilon) or (
            step < 0 and value >= stop - epsilon
        ):
            frame.vars[statement.var] = value
            for inner in statement.body:
                self._exec(inner, frame)
            value += step

    def _exec_alt(self, statement: ast.Alt, frame: Frame) -> None:
        """Backtracking: try branches until one satisfies all design rules."""
        tracer = get_tracer()
        last_error: Optional[RuleError] = None
        with tracer.span("interp.alt", line=statement.line) as span:
            for number, branch in enumerate(statement.branches):
                tracer.count("interp.alt_attempts")
                snapshot = self._snapshot(frame)
                try:
                    for inner in branch:
                        self._exec(inner, frame)
                    span.set(taken=number)
                    return
                except RuleError as error:
                    last_error = error
                    tracer.count("interp.alt_rollbacks")
                    log.debug(
                        "ALT line %d: branch %d rolled back (%s)",
                        statement.line, number, error,
                    )
                    self._restore(frame, snapshot)
            tracer.count("interp.alt_exhausted")
            raise RuleError(
                f"line {statement.line}: all ALT branches failed"
                + (f" (last: {last_error})" if last_error else "")
            )

    def _snapshot(self, frame: Frame) -> Tuple[Optional[LayoutObject], Dict[str, Any]]:
        obj_copy = frame.obj.copy() if frame.obj is not None else None
        vars_copy = {
            key: value.copy() if isinstance(value, LayoutObject) else value
            for key, value in frame.vars.items()
        }
        return (obj_copy, vars_copy)

    def _restore(
        self, frame: Frame, snapshot: Tuple[Optional[LayoutObject], Dict[str, Any]]
    ) -> None:
        obj_copy, vars_copy = snapshot
        if frame.obj is not None and obj_copy is not None:
            # Restore in place so outer references stay valid.
            frame.obj.rects = obj_copy.rects
            frame.obj.links = obj_copy.links
            frame.obj.labels = obj_copy.labels
        frame.vars.clear()
        frame.vars.update(vars_copy)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(self, expr: ast.Expr, frame: Frame) -> Any:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.String):
            return expr.value
        if isinstance(expr, ast.Boolean):
            return expr.value
        if isinstance(expr, ast.Nil):
            return None
        if isinstance(expr, ast.Name):
            return self._lookup(expr, frame)
        if isinstance(expr, ast.Attribute):
            return self._attribute(expr, frame)
        if isinstance(expr, ast.Unary):
            return self._unary(expr, frame)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, frame)
        if isinstance(expr, ast.Call):
            return self._call(expr, frame)
        raise EvalError(f"unknown expression {expr!r}", expr.line)

    def _lookup(self, expr: ast.Name, frame: Frame) -> Any:
        if expr.ident in frame.vars:
            return frame.vars[expr.ident]
        if expr.ident in self.globals.vars:
            return self.globals.vars[expr.ident]
        try:
            return Direction.from_name(expr.ident)
        except ValueError:
            pass
        raise EvalError(f"unknown name {expr.ident!r}", expr.line)

    def _attribute(self, expr: ast.Attribute, frame: Frame) -> Any:
        value = self._eval(expr.value, frame)
        if isinstance(value, LayoutObject):
            dbu = self.tech.dbu_per_micron
            if expr.attr == "width":
                return value.width / dbu
            if expr.attr == "height":
                return value.height / dbu
            if expr.attr == "area":
                return value.area() / dbu ** 2
            raise EvalError(
                f"objects have no attribute {expr.attr!r}"
                " (use width, height or area)",
                expr.line,
            )
        raise EvalError(f"cannot read attribute of {type(value).__name__}", expr.line)

    def _unary(self, expr: ast.Unary, frame: Frame) -> Any:
        value = self._eval(expr.operand, frame)
        if expr.op == "-":
            return -self._number(value, expr.line)
        if expr.op == "NOT":
            return not self._truthy(value)
        raise EvalError(f"unknown unary operator {expr.op!r}", expr.line)

    def _binary(self, expr: ast.Binary, frame: Frame) -> Any:
        if expr.op == "AND":
            return self._truthy(self._eval(expr.left, frame)) and self._truthy(
                self._eval(expr.right, frame)
            )
        if expr.op == "OR":
            return self._truthy(self._eval(expr.left, frame)) or self._truthy(
                self._eval(expr.right, frame)
            )
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if expr.op == "==":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op in ("+", "-", "*", "/", "<", ">", "<=", ">="):
            lnum = self._number(left, expr.line)
            rnum = self._number(right, expr.line)
            if expr.op == "+":
                return lnum + rnum
            if expr.op == "-":
                return lnum - rnum
            if expr.op == "*":
                return lnum * rnum
            if expr.op == "/":
                if rnum == 0:
                    raise EvalError("division by zero", expr.line)
                return lnum / rnum
            if expr.op == "<":
                return lnum < rnum
            if expr.op == ">":
                return lnum > rnum
            if expr.op == "<=":
                return lnum <= rnum
            return lnum >= rnum
        raise EvalError(f"unknown operator {expr.op!r}", expr.line)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _call(self, expr: ast.Call, frame: Frame) -> Any:
        args = [self._eval(arg, frame) for arg in expr.args]
        kwargs = [(key, self._eval(value, frame)) for key, value in expr.kwargs]

        entity = self.entities.get(expr.func)
        if entity is not None:
            return self._call_entity(entity, args, kwargs, expr.line)

        builtin = _BUILTINS.get(expr.func)
        if builtin is not None:
            tracer = get_tracer()
            if not tracer.enabled:
                return builtin(self, frame, args, dict(kwargs), expr.line)
            with tracer.span("interp.builtin", builtin=expr.func, line=expr.line):
                result = builtin(self, frame, args, dict(kwargs), expr.line)
            tracer.count("interp.builtin_calls")
            tracer.count(f"interp.builtin.{expr.func}")
            return result

        raise EvalError(f"unknown function or entity {expr.func!r}", expr.line)

    def _call_entity(
        self,
        entity: ast.Entity,
        args: Sequence[Any],
        kwargs: Sequence[Tuple[str, Any]],
        line: int,
    ) -> LayoutObject:
        if len(args) > len(entity.params):
            raise EvalError(
                f"{entity.name}: too many positional arguments", line
            )
        bound: Dict[str, Any] = {}
        for param, value in zip(entity.params, args):
            bound[param.name] = value
        for key, value in kwargs:
            if all(param.name != key for param in entity.params):
                raise EvalError(f"{entity.name}: unknown parameter {key!r}", line)
            if key in bound:
                raise EvalError(f"{entity.name}: parameter {key!r} given twice", line)
            bound[key] = value
        for param in entity.params:
            if param.name not in bound:
                if not param.optional:
                    raise EvalError(
                        f"{entity.name}: missing required parameter {param.name!r}",
                        line,
                    )
                bound[param.name] = None

        if self._depth >= MAX_CALL_DEPTH:
            raise EvalError(
                f"{entity.name}: entity call depth exceeds {MAX_CALL_DEPTH}"
                " (recursive module definition?)",
                line,
            )
        index = self._counters.get(entity.name, 0)
        self._counters[entity.name] = index + 1
        inner = Frame(entity.name, LayoutObject(f"{entity.name}_{index}", self.tech))
        inner.vars.update(bound)
        tracer = get_tracer()
        tracer.count("interp.entity_calls")
        self._depth += 1
        try:
            with tracer.span(
                "interp.entity", entity=entity.name, line=line, depth=self._depth
            ):
                with get_recorder().entity(entity.name, bound):
                    for statement in entity.body:
                        self._exec(statement, inner)
        finally:
            self._depth -= 1
        return inner.obj  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # helpers shared with the builtins
    # ------------------------------------------------------------------
    def _number(self, value: Any, line: int) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvalError(f"expected a number, got {type(value).__name__}", line)
        return float(value)

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)

    def dbu(self, value: Any, line: int) -> Optional[int]:
        """Convert a micron value to database units; None passes through."""
        if value is None:
            return None
        return self.tech.um(self._number(value, line))

    def require_obj(self, frame: Frame, what: str, line: int) -> LayoutObject:
        """The current entity structure; geometry outside ENT is an error."""
        if frame.obj is None:
            raise EvalError(f"{what} is only allowed inside an entity body", line)
        return frame.obj


# ---------------------------------------------------------------------------
# builtin functions
# ---------------------------------------------------------------------------
Builtin = Callable[[Interpreter, Frame, List[Any], Dict[str, Any], int], Any]


def _expect_str(value: Any, what: str, line: int) -> str:
    if not isinstance(value, str):
        raise EvalError(f"{what} must be a string", line)
    return value


def _merge_args(
    name: str,
    positional_names: Tuple[str, ...],
    args: List[Any],
    kwargs: Dict[str, Any],
    line: int,
) -> Dict[str, Any]:
    """Bind positional + keyword arguments strictly (no silent drops)."""
    if len(args) > len(positional_names):
        raise EvalError(
            f"{name} takes at most {len(positional_names)} positional"
            f" arguments ({', '.join(positional_names)})",
            line,
        )
    merged = dict(zip(positional_names, args))
    for key, value in kwargs.items():
        if key in merged:
            raise EvalError(f"{name}: argument {key!r} given twice", line)
        merged[key] = value
    return merged


def _builtin_inbox(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "INBOX", line)
    merged = _merge_args("INBOX", ("layer", "W", "L", "net", "variable"), args, kwargs, line)
    layer = _expect_str(merged.get("layer"), "INBOX layer", line)
    inbox(
        obj,
        layer,
        w=interp.dbu(merged.get("W"), line),
        length=interp.dbu(merged.get("L"), line),
        net=merged.get("net"),
        variable=bool(merged.get("variable", False)),
    )


def _builtin_array(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "ARRAY", line)
    merged = _merge_args("ARRAY", ("layer", "net"), args, kwargs, line)
    layer = _expect_str(merged.get("layer"), "ARRAY layer", line)
    array(obj, layer, net=merged.get("net"))


def _builtin_tworects(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "TWORECTS", line)
    merged = _merge_args("TWORECTS", ("gate", "body", "W", "L", "gatenet", "bodynet"), args, kwargs, line)
    gate = _expect_str(merged.get("gate"), "TWORECTS gate layer", line)
    body = _expect_str(merged.get("body"), "TWORECTS body layer", line)
    w = interp.dbu(merged.get("W"), line)
    length = interp.dbu(merged.get("L"), line)
    if w is None or length is None:
        raise EvalError("TWORECTS requires W and L", line)
    tworects(
        obj,
        gate,
        body,
        w,
        length,
        gate_net=merged.get("gatenet"),
        body_net=merged.get("bodynet"),
    )


def _builtin_around(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "AROUND", line)
    merged = _merge_args("AROUND", ("layer", "margin", "net"), args, kwargs, line)
    layer = _expect_str(merged.get("layer"), "AROUND layer", line)
    around(obj, layer, margin=interp.dbu(merged.get("margin"), line), net=merged.get("net"))


def _builtin_ring(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "RING", line)
    merged = _merge_args("RING", ("layer", "width", "gap", "net"), args, kwargs, line)
    layer = _expect_str(merged.get("layer"), "RING layer", line)
    ring(
        obj,
        layer,
        width=interp.dbu(merged.get("width"), line),
        gap=interp.dbu(merged.get("gap"), line),
        net=merged.get("net"),
    )


def _builtin_adaptor(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "ADAPTOR", line)
    merged = _merge_args("ADAPTOR", ("hlayer", "vlayer", "x", "y", "hwidth", "vwidth", "net"), args, kwargs, line)
    angle_adaptor(
        obj,
        _expect_str(merged.get("hlayer"), "ADAPTOR hlayer", line),
        _expect_str(merged.get("vlayer"), "ADAPTOR vlayer", line),
        interp.dbu(merged.get("x"), line) or 0,
        interp.dbu(merged.get("y"), line) or 0,
        h_width=interp.dbu(merged.get("hwidth"), line),
        v_width=interp.dbu(merged.get("vwidth"), line),
        net=merged.get("net"),
    )


def _builtin_wire(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "WIRE", line)
    merged = _merge_args("WIRE", ("layer", "x1", "y1", "x2", "y2", "width", "net"), args, kwargs, line)
    wire(
        obj,
        _expect_str(merged.get("layer"), "WIRE layer", line),
        (interp.dbu(merged.get("x1"), line) or 0, interp.dbu(merged.get("y1"), line) or 0),
        (interp.dbu(merged.get("x2"), line) or 0, interp.dbu(merged.get("y2"), line) or 0),
        width=interp.dbu(merged.get("width"), line),
        net=merged.get("net"),
    )


def _builtin_via(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "VIA", line)
    merged = _merge_args("VIA", ("x", "y", "bottom", "top", "net"), args, kwargs, line)
    via_stack(
        obj,
        interp.dbu(merged.get("x"), line) or 0,
        interp.dbu(merged.get("y"), line) or 0,
        _expect_str(merged.get("bottom"), "VIA bottom layer", line),
        _expect_str(merged.get("top"), "VIA top layer", line),
        net=merged.get("net"),
    )


def _builtin_compact(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "compact", line)
    if len(args) < 2:
        raise EvalError("compact(obj, DIRECTION, ignored layers...)", line)
    child, direction, *ignored = args
    if not isinstance(child, LayoutObject):
        raise EvalError("compact: first argument must be an object", line)
    if isinstance(direction, str):
        direction = Direction.from_name(direction)
    if not isinstance(direction, Direction):
        raise EvalError("compact: second argument must be a direction", line)
    ignore = tuple(_expect_str(layer, "ignored layer", line) for layer in ignored)
    interp.compactor.compact(obj, child, direction, ignore)


def _builtin_copy(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> LayoutObject:
    if len(args) != 1 or not isinstance(args[0], LayoutObject):
        raise EvalError("COPY(obj) expects one object", line)
    return args[0].copy()


def _builtin_move(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    if len(args) != 3 or not isinstance(args[0], LayoutObject):
        raise EvalError("MOVE(obj, dx, dy) expects an object and two offsets", line)
    args[0].translate(interp.dbu(args[1], line) or 0, interp.dbu(args[2], line) or 0)


def _builtin_mirrorx(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    if not args or not isinstance(args[0], LayoutObject):
        raise EvalError("MIRRORX(obj, [axis]) expects an object", line)
    axis = interp.dbu(args[1], line) if len(args) > 1 else 0
    args[0].mirror_x(axis or 0)


def _builtin_mirrory(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    if not args or not isinstance(args[0], LayoutObject):
        raise EvalError("MIRRORY(obj, [axis]) expects an object", line)
    axis = interp.dbu(args[1], line) if len(args) > 1 else 0
    args[0].mirror_y(axis or 0)


def _builtin_setnet(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    if len(args) < 2 or not isinstance(args[0], LayoutObject):
        raise EvalError("SETNET(obj, net, [layer])", line)
    net = _expect_str(args[1], "net name", line)
    layer = _expect_str(args[2], "layer", line) if len(args) > 2 else None
    args[0].set_net(net, layer)


def _builtin_variable(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    """VARIABLE(layer) / VARIABLE(obj, layer): mark layer edges variable."""
    if args and isinstance(args[0], LayoutObject):
        target, layers = args[0], args[1:]
    else:
        target = interp.require_obj(frame, "VARIABLE", line)
        layers = args
    if not layers:
        raise EvalError("VARIABLE needs at least one layer name", line)
    for layer in layers:
        name = _expect_str(layer, "layer", line)
        for rect in target.rects_on(name):
            rect.set_variable()


def _builtin_fixed(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    """FIXED(layer) / FIXED(obj, layer): mark layer edges fixed."""
    if args and isinstance(args[0], LayoutObject):
        target, layers = args[0], args[1:]
    else:
        target = interp.require_obj(frame, "FIXED", line)
        layers = args
    for layer in layers:
        name = _expect_str(layer, "layer", line)
        for rect in target.rects_on(name):
            rect.set_fixed()


def _builtin_error(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    message = args[0] if args else "explicit ERROR"
    raise RuleError(f"line {line}: {message}")


def _builtin_label(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> None:
    obj = interp.require_obj(frame, "LABEL", line)
    if len(args) != 4:
        raise EvalError("LABEL(text, x, y, layer)", line)
    obj.add_label(
        _expect_str(args[0], "label text", line),
        interp.dbu(args[1], line) or 0,
        interp.dbu(args[2], line) or 0,
        _expect_str(args[3], "layer", line),
    )


def _builtin_widthrule(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> float:
    layer = _expect_str(args[0] if args else None, "layer", line)
    return interp.tech.min_width(layer) / interp.tech.dbu_per_micron


def _builtin_spacerule(
    interp: Interpreter, frame: Frame, args: List[Any], kwargs: Dict[str, Any], line: int
) -> float:
    if len(args) != 2:
        raise EvalError("SPACERULE(layerA, layerB)", line)
    a = _expect_str(args[0], "layer", line)
    b = _expect_str(args[1], "layer", line)
    rule = interp.tech.min_space(a, b)
    if rule is None:
        raise RuleError(f"no SPACE rule between {a!r} and {b!r}")
    return rule / interp.tech.dbu_per_micron


def _builtin_numeric(name, func):
    def implementation(
        interp: Interpreter, frame: Frame, args: List[Any],
        kwargs: Dict[str, Any], line: int,
    ) -> float:
        if kwargs:
            raise EvalError(f"{name} takes no keyword arguments", line)
        values = [interp._number(value, line) for value in args]
        try:
            return float(func(values))
        except (ValueError, ZeroDivisionError, TypeError) as error:
            raise EvalError(f"{name}: {error}", line) from error

    return implementation


def _mod(values):
    if len(values) != 2:
        raise ValueError("MOD(a, b) takes two arguments")
    return values[0] % values[1]


def _floor(values):
    if len(values) != 1:
        raise ValueError("FLOOR(x) takes one argument")
    import math

    return math.floor(values[0])


def _abs(values):
    if len(values) != 1:
        raise ValueError("ABS(x) takes one argument")
    return abs(values[0])


def _min(values):
    if not values:
        raise ValueError("MIN needs at least one argument")
    return min(values)


def _max(values):
    if not values:
        raise ValueError("MAX needs at least one argument")
    return max(values)


_BUILTINS: Dict[str, Builtin] = {
    "INBOX": _builtin_inbox,
    "ARRAY": _builtin_array,
    "TWORECTS": _builtin_tworects,
    "AROUND": _builtin_around,
    "RING": _builtin_ring,
    "ADAPTOR": _builtin_adaptor,
    "WIRE": _builtin_wire,
    "VIA": _builtin_via,
    "compact": _builtin_compact,
    "COMPACT": _builtin_compact,
    "COPY": _builtin_copy,
    "MOVE": _builtin_move,
    "MIRRORX": _builtin_mirrorx,
    "MIRRORY": _builtin_mirrory,
    "SETNET": _builtin_setnet,
    "VARIABLE": _builtin_variable,
    "FIXED": _builtin_fixed,
    "ERROR": _builtin_error,
    "LABEL": _builtin_label,
    "WIDTHRULE": _builtin_widthrule,
    "SPACERULE": _builtin_spacerule,
    "MOD": _builtin_numeric("MOD", _mod),
    "FLOOR": _builtin_numeric("FLOOR", _floor),
    "ABS": _builtin_numeric("ABS", _abs),
    "MIN": _builtin_numeric("MIN", _min),
    "MAX": _builtin_numeric("MAX", _max),
}

#: Public list of builtin names (used by the translator and docs).
BUILTIN_NAMES = tuple(sorted(_BUILTINS))

"""The procedural layout description language (Sec. 2.1)."""

from .ast_nodes import Alt, Assign, Call, Entity, ExprStatement, For, If, Program
from .errors import EvalError, LexError, ParseError, PldlError
from .interpreter import BUILTIN_NAMES, Frame, Interpreter
from .parser import parse
from .runtime import Runtime
from .tokens import Token, TokenKind, tokenize
from .translate import translate, translate_program

__all__ = [
    "Alt",
    "Assign",
    "Call",
    "Entity",
    "ExprStatement",
    "For",
    "If",
    "Program",
    "EvalError",
    "LexError",
    "ParseError",
    "PldlError",
    "BUILTIN_NAMES",
    "Frame",
    "Interpreter",
    "parse",
    "Runtime",
    "Token",
    "TokenKind",
    "tokenize",
    "translate",
    "translate_program",
]

"""PLDL → Python source translation.

"The source code is automatically translated into C" (Sec. 2.1); here the
target language is Python.  Each entity becomes a function taking the shared
:class:`~repro.lang.runtime.Runtime` plus its (keyword-defaulted) parameters;
builtins become runtime-method calls with the structure object threaded as
the first argument.  The emitted module is self-contained apart from the
runtime import and is meant to be ``exec``-uted or written to disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from . import ast_nodes as ast
from .errors import EvalError
from .interpreter import BUILTIN_NAMES
from .parser import parse

_DIRECTIONS = frozenset({"NORTH", "SOUTH", "EAST", "WEST"})
_INDENT = "    "


def translate(source: str) -> str:
    """Translate PLDL source into a runnable Python module string."""
    return translate_program(parse(source))


def translate_program(program: ast.Program) -> str:
    """Translate a parsed program into Python source."""
    translator = _Translator({entity.name for entity in program.entities})
    lines: List[str] = [
        '"""Generated from PLDL by repro.lang.translate — do not edit."""',
        "",
        "from repro.geometry import Direction",
        "from repro.lang.runtime import Runtime",
        "",
        "NORTH = Direction.NORTH",
        "SOUTH = Direction.SOUTH",
        "EAST = Direction.EAST",
        "WEST = Direction.WEST",
        "",
    ]
    for entity in program.entities:
        lines.extend(translator.entity(entity))
        lines.append("")
    if program.statements:
        lines.append("def main(rt):")
        lines.append(f'{_INDENT}"""Top-level calling sequence of the source file."""')
        body = translator.block(program.statements, depth=1, obj_var=None)
        lines.extend(body if body else [f"{_INDENT}pass"])
        lines.append("")
    return "\n".join(lines)


class _Translator:
    """Stateful expression/statement emitter."""

    def __init__(self, entity_names: Set[str]) -> None:
        self.entity_names = entity_names
        self._alt_counter = 0
        #: Names bound somewhere in the current entity (params + assigns);
        #: ``nonlocal`` in an ALT save/restore closure is only legal for these.
        self._scope: Set[str] = set()

    # ------------------------------------------------------------------
    def entity(self, entity: ast.Entity) -> List[str]:
        params = ["rt"]
        for param in entity.params:
            params.append(f"{param.name}=None" if param.optional else param.name)
        self._scope = {param.name for param in entity.params}
        self._scope |= self._bound_names(entity.body)
        lines = [f"def {entity.name}({', '.join(params)}):"]
        lines.append(f'{_INDENT}"""Generated from entity {entity.name}."""')
        # Forward the parameter bindings so provenance frames record them.
        begin_args = [f'"{entity.name}"']
        begin_args += [f"{p.name}={p.name}" for p in entity.params]
        lines.append(f"{_INDENT}obj = rt.begin({', '.join(begin_args)})")
        lines.append(f"{_INDENT}try:")
        body = self.block(entity.body, depth=2, obj_var="obj")
        lines.extend(body if body else [f"{_INDENT * 2}pass"])
        lines.append(f"{_INDENT}finally:")
        lines.append(f"{_INDENT * 2}rt.end(obj)")
        lines.append(f"{_INDENT}return obj")
        return lines

    def block(
        self, statements: List[ast.Statement], depth: int, obj_var: Optional[str]
    ) -> List[str]:
        lines: List[str] = []
        for statement in statements:
            lines.extend(self.statement(statement, depth, obj_var))
        return lines

    # ------------------------------------------------------------------
    def statement(
        self, statement: ast.Statement, depth: int, obj_var: Optional[str]
    ) -> List[str]:
        pad = _INDENT * depth
        if isinstance(statement, ast.Assign):
            return [f"{pad}{statement.target} = {self.expr(statement.value, obj_var)}"]
        if isinstance(statement, ast.ExprStatement):
            return [f"{pad}{self.expr(statement.value, obj_var)}"]
        if isinstance(statement, ast.If):
            lines = [f"{pad}if {self.expr(statement.condition, obj_var)}:"]
            body = self.block(statement.then_body, depth + 1, obj_var)
            lines.extend(body if body else [f"{pad}{_INDENT}pass"])
            if statement.else_body:
                lines.append(f"{pad}else:")
                lines.extend(self.block(statement.else_body, depth + 1, obj_var))
            return lines
        if isinstance(statement, ast.For):
            start = self.expr(statement.start, obj_var)
            stop = self.expr(statement.stop, obj_var)
            step = self.expr(statement.step, obj_var) if statement.step else "1.0"
            lines = [
                f"{pad}for {statement.var} in rt.frange({start}, {stop}, {step}):"
            ]
            body = self.block(statement.body, depth + 1, obj_var)
            lines.extend(body if body else [f"{pad}{_INDENT}pass"])
            return lines
        if isinstance(statement, ast.Alt):
            return self._alt(statement, depth, obj_var)
        raise EvalError(f"cannot translate statement {statement!r}", statement.line)

    def _alt(self, statement: ast.Alt, depth: int, obj_var: Optional[str]) -> List[str]:
        if obj_var is None:
            raise EvalError("ALT is only allowed inside an entity body", statement.line)
        pad = _INDENT * depth
        self._alt_counter += 1
        tag = self._alt_counter

        assigned = sorted(self._assigned_names(statement))
        lines: List[str] = []
        # Pre-bind names assigned inside branches so nonlocal is legal —
        # guarded, so a binding made before the ALT survives (the interpreter
        # keeps it; an unconditional ``name = None`` would clobber it).
        for name in assigned:
            lines.append(f"{pad}try:")
            lines.append(f"{pad}{_INDENT}{name}")
            lines.append(f"{pad}except NameError:")
            lines.append(f"{pad}{_INDENT}{name} = None")

        branch_names: List[str] = []
        for index, branch in enumerate(statement.branches):
            func = f"_alt{tag}_branch{index}"
            branch_names.append(func)
            lines.append(f"{pad}def {func}():")
            if assigned:
                lines.append(f"{pad}{_INDENT}nonlocal {', '.join(assigned)}")
            body = self.block(branch, depth + 1, obj_var)
            lines.extend(body if body else [f"{pad}{_INDENT}pass"])

        # The interpreter snapshots the whole variable frame before trying a
        # branch and restores it on rollback; translated code must do the
        # same or a failed branch leaks its assignments and object mutations
        # into the next branch.  Snapshot every name a branch touches that
        # exists in the entity's scope (nonlocal is only legal for those).
        snapshot = sorted(
            (set(assigned) | self._branch_names(statement)) & self._scope
        )
        save, restore = f"_alt{tag}_save", f"_alt{tag}_restore"
        lines.append(f"{pad}def {save}():")
        lines.append(f"{pad}{_INDENT}_state = {{}}")
        for name in snapshot:
            lines.append(f"{pad}{_INDENT}try:")
            lines.append(f"{pad}{_INDENT * 2}_state[{name!r}] = {name}")
            lines.append(f"{pad}{_INDENT}except NameError:")
            lines.append(f"{pad}{_INDENT * 2}pass")
        lines.append(f"{pad}{_INDENT}return rt.alt_state(_state)")
        lines.append(f"{pad}def {restore}(_state):")
        if snapshot:
            lines.append(f"{pad}{_INDENT}nonlocal {', '.join(snapshot)}")
        for name in snapshot:
            lines.append(f"{pad}{_INDENT}{name} = _state.get({name!r})")
        if not snapshot:
            lines.append(f"{pad}{_INDENT}pass")
        lines.append(
            f"{pad}rt.alt({obj_var}, [{', '.join(branch_names)}],"
            f" save={save}, restore={restore})"
        )
        return lines

    def _assigned_names(self, statement: ast.Alt) -> Set[str]:
        names: Set[str] = set()

        def visit(stmts: List[ast.Statement]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    names.add(stmt.target)
                elif isinstance(stmt, ast.If):
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, ast.For):
                    names.add(stmt.var)
                    visit(stmt.body)
                elif isinstance(stmt, ast.Alt):
                    for branch in stmt.branches:
                        visit(branch)

        for branch in statement.branches:
            visit(branch)
        return names

    @staticmethod
    def _bound_names(statements: List[ast.Statement]) -> Set[str]:
        """Every name assigned anywhere in a statement list (recursively)."""
        names: Set[str] = set()

        def visit(stmts: List[ast.Statement]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    names.add(stmt.target)
                elif isinstance(stmt, ast.If):
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, ast.For):
                    names.add(stmt.var)
                    visit(stmt.body)
                elif isinstance(stmt, ast.Alt):
                    for branch in stmt.branches:
                        visit(branch)

        visit(statements)
        return names

    def _branch_names(self, statement: ast.Alt) -> Set[str]:
        """Every variable an ALT branch reads or writes (for the snapshot)."""
        names: Set[str] = set()

        def visit_expr(expr: ast.Expr) -> None:
            if isinstance(expr, ast.Name):
                if expr.ident not in _DIRECTIONS:
                    names.add(expr.ident)
            elif isinstance(expr, ast.Attribute):
                visit_expr(expr.value)
            elif isinstance(expr, ast.Unary):
                visit_expr(expr.operand)
            elif isinstance(expr, ast.Binary):
                visit_expr(expr.left)
                visit_expr(expr.right)
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    visit_expr(arg)
                for _, value in expr.kwargs:
                    visit_expr(value)

        def visit(stmts: List[ast.Statement]) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    names.add(stmt.target)
                    visit_expr(stmt.value)
                elif isinstance(stmt, ast.ExprStatement):
                    visit_expr(stmt.value)
                elif isinstance(stmt, ast.If):
                    visit_expr(stmt.condition)
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, ast.For):
                    names.add(stmt.var)
                    visit_expr(stmt.start)
                    visit_expr(stmt.stop)
                    if stmt.step is not None:
                        visit_expr(stmt.step)
                    visit(stmt.body)
                elif isinstance(stmt, ast.Alt):
                    for branch in stmt.branches:
                        visit(branch)

        for branch in statement.branches:
            visit(branch)
        return names

    # ------------------------------------------------------------------
    def expr(self, expr: ast.Expr, obj_var: Optional[str]) -> str:
        if isinstance(expr, ast.Number):
            return repr(expr.value)
        if isinstance(expr, ast.String):
            return repr(expr.value)
        if isinstance(expr, ast.Boolean):
            return "True" if expr.value else "False"
        if isinstance(expr, ast.Nil):
            return "None"
        if isinstance(expr, ast.Name):
            return expr.ident
        if isinstance(expr, ast.Attribute):
            return f"rt.attr({self.expr(expr.value, obj_var)}, {expr.attr!r})"
        if isinstance(expr, ast.Unary):
            if expr.op == "NOT":
                return f"(not {self.expr(expr.operand, obj_var)})"
            return f"(-{self.expr(expr.operand, obj_var)})"
        if isinstance(expr, ast.Binary):
            op = {"AND": "and", "OR": "or"}.get(expr.op, expr.op)
            return (
                f"({self.expr(expr.left, obj_var)} {op} "
                f"{self.expr(expr.right, obj_var)})"
            )
        if isinstance(expr, ast.Call):
            return self._call(expr, obj_var)
        raise EvalError(f"cannot translate expression {expr!r}", expr.line)

    def _call(self, expr: ast.Call, obj_var: Optional[str]) -> str:
        args = [self.expr(arg, obj_var) for arg in expr.args]
        kwargs = [f"{key}={self.expr(value, obj_var)}" for key, value in expr.kwargs]

        if expr.func in self.entity_names:
            return f"{expr.func}({', '.join(['rt'] + args + kwargs)})"

        if expr.func in ("VARIABLE", "FIXED"):
            # Implicit-target form VARIABLE("layer") targets the entity
            # structure; the explicit form VARIABLE(obj, "layer") passes
            # through.  A leading string literal marks the implicit form.
            implicit = bool(expr.args) and isinstance(expr.args[0], ast.String)
            call_args = args + kwargs
            if implicit:
                if obj_var is None:
                    raise EvalError(
                        f"{expr.func} is only allowed inside an entity body",
                        expr.line,
                    )
                call_args = [obj_var] + call_args
            return f"rt.{expr.func}({', '.join(call_args)})"

        if expr.func in BUILTIN_NAMES:
            method = "compact" if expr.func in ("compact", "COMPACT") else expr.func
            needs_obj = expr.func not in (
                "COPY",
                "MOVE",
                "MIRRORX",
                "MIRRORY",
                "SETNET",
                "VARIABLE",
                "FIXED",
                "ERROR",
                "WIDTHRULE",
                "SPACERULE",
                "MOD",
                "FLOOR",
                "ABS",
                "MIN",
                "MAX",
            )
            call_args = args + kwargs
            if needs_obj:
                if obj_var is None:
                    raise EvalError(
                        f"{expr.func} is only allowed inside an entity body",
                        expr.line,
                    )
                call_args = [obj_var] + call_args
            return f"rt.{method}({', '.join(call_args)})"

        raise EvalError(f"unknown function or entity {expr.func!r}", expr.line)

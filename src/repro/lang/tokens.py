"""Lexer for the procedural layout description language.

The language is line oriented ("a simple procedural language that yields
natural and short code", Sec. 2.1): newlines terminate statements, except
inside parentheses, where continuation is implicit.  Comments run from
``//`` or ``#`` to end of line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from .errors import LexError


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    NEWLINE = "newline"
    EOF = "eof"
    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="


#: Reserved words (case sensitive, upper case — matching the paper's style).
KEYWORDS = frozenset(
    {
        "ENT",
        "END",
        "IF",
        "ELSE",
        "ENDIF",
        "FOR",
        "TO",
        "STEP",
        "ENDFOR",
        "ALT",
        "ELSEALT",
        "ENDALT",
        "AND",
        "OR",
        "NOT",
        "TRUE",
        "FALSE",
        "NIL",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line."""

    kind: TokenKind
    value: str
    line: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given reserved word."""
        return self.kind is TokenKind.IDENT and self.value == word


_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
}


def tokenize(source: str) -> List[Token]:
    """Convert PLDL source text into a token list (ending with EOF)."""
    tokens: List[Token] = []
    line = 1
    index = 0
    depth = 0  # parenthesis depth: newlines inside parens are ignored
    length = len(source)

    def push(kind: TokenKind, value: str) -> None:
        tokens.append(Token(kind, value, line))

    while index < length:
        char = source[index]

        if char == "\n":
            if depth == 0 and tokens and tokens[-1].kind is not TokenKind.NEWLINE:
                push(TokenKind.NEWLINE, "\n")
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if char == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == '"':
            end = source.find('"', index + 1)
            if end == -1 or "\n" in source[index:end]:
                raise LexError("unterminated string literal", line)
            push(TokenKind.STRING, source[index + 1:end])
            index = end + 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and source[index + 1].isdigit()
        ):
            start = index
            seen_dot = False
            while index < length and (source[index].isdigit() or source[index] == "."):
                if source[index] == ".":
                    if seen_dot:
                        break
                    seen_dot = True
                index += 1
            push(TokenKind.NUMBER, source[start:index])
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            push(TokenKind.IDENT, source[start:index])
            continue
        if source.startswith("==", index):
            push(TokenKind.EQ, "==")
            index += 2
            continue
        if source.startswith("!=", index):
            push(TokenKind.NE, "!=")
            index += 2
            continue
        if source.startswith("<=", index):
            push(TokenKind.LE, "<=")
            index += 2
            continue
        if source.startswith(">=", index):
            push(TokenKind.GE, ">=")
            index += 2
            continue
        if char == "<":
            push(TokenKind.LT, "<")
            index += 1
            continue
        if char == ">":
            push(TokenKind.GT, ">")
            index += 1
            continue
        if char == "=":
            push(TokenKind.ASSIGN, "=")
            index += 1
            continue
        if char in _SINGLE:
            if char == "(":
                depth += 1
            elif char == ")":
                depth = max(0, depth - 1)
            push(_SINGLE[char], char)
            index += 1
            continue
        raise LexError(f"unexpected character {char!r}", line)

    if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
        push(TokenKind.NEWLINE, "\n")
    push(TokenKind.EOF, "")
    return tokens

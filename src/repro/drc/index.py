"""Sweep-indexed spatial acceleration for the design-rule checker.

:mod:`repro.drc.checker` verifies constructively-fulfilled rules
independently, so its reference implementations are deliberately naive:
``check_spacing_brute`` tests every rect pair and ``_Components`` unions
every same-layer pair — on the profiled amplifier build the checker was
~60% of sampled time once connectivity extraction was indexed.  The
:class:`DrcIndex` gives the checker the same sweep treatment as
:class:`repro.db.netindex.ConnectivityIndex`:

* **seq-ordered layer buckets** — every non-empty rect is bucketed by
  layer in source order; ``rects_on`` queries and the enclosure scans are
  served per bucket instead of filtering the whole rect list;
* **sweep-fed connected components** — per-layer closed-interval x-sweeps
  union touching rects into a union-by-size :class:`~repro.db.nets.
  DisjointSet`, replacing ``_Components``' quadratic same-layer loop while
  producing the *identical partition*; the same sweep records the
  same-layer touching adjacency that serves ``check_widths``'
  absorbed-stub scan;
* **rule-radius dilated candidate generation** — for every registered
  SPACE rule (:meth:`repro.tech.Technology.space_rules`) an interval sweep
  dilated by that rule's value emits exactly the pairs whose per-axis gaps
  are inside the rule, instead of all O(n²) pairs; the cross-layer sweeps
  double as the source of the component-touch sets that answer the
  gate-attachment exemption queries;
* **gate/body overlap sweeps** — for every (POLY layer, DIFFUSION layer)
  pair with EXTEND rules, a strict-interval sweep finds which gates
  overlap which diffusion components, replacing ``check_extensions``'
  gate × component member loops.

Exactness contract: every indexed check in :mod:`repro.drc.checker`
returns *the identical violation list* (kind, message, location, rect
identity, order) as its brute counterpart — candidates are evaluated in
ascending (i, j) rect order with the same predicates, and the component
partition matches ``_Components`` exactly.  ``tests/test_drc_index.py``
pins this with Hypothesis properties over random rect soups across all
builtin technologies and with the golden-cell matrix.

Staleness: the index captures ``obj.nonempty_rects`` at build time.
Appending or removing rects is caught by :meth:`sync` (full rebuild — the
checker is one-shot per layout, unlike the connectivity index there is no
append fast path to preserve); code that mutates coordinates, layers,
nets or emptiness of already-indexed rects must call :meth:`invalidate`.

Deterministic counters (gated exactly by ``repro perf check``):

* ``drc.pairs_scanned`` — geometric pair tests performed (the brute
  checks count here too, so indexed-vs-brute ratios are comparable);
* ``drc.candidates`` — spacing candidate pairs the dilated sweeps emitted;
* ``drc.index_builds`` — full index builds (one per ``run_drc``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..db.nets import DisjointSet
from ..geometry import Rect
from ..obs import get_tracer
from ..tech.layer import LayerKind

__all__ = ["DrcIndex"]


class DrcIndex:
    """Per-layout sweep index shared by every check of one DRC run."""

    __slots__ = (
        "obj", "tech", "rects", "_tracked", "_built", "_buckets",
        "_sorted_buckets", "_dsu", "_roots", "_members", "_touchers",
        "_spacing_candidates", "_cross_touch", "_gate_overlaps", "builds",
    )

    def __init__(self, obj) -> None:
        self.obj = obj
        self.tech = obj.tech
        self.rects: List[Rect] = []
        self._tracked = -1
        self._built = False
        #: layer -> rect indices in source order.
        self._buckets: Dict[str, List[int]] = {}
        #: layer -> rect indices stably sorted by x1 (shared by all sweeps).
        self._sorted_buckets: Dict[str, List[int]] = {}
        self._dsu: Optional[DisjointSet] = None
        #: rect index -> component root (post-union find of every index).
        self._roots: List[int] = []
        #: component root -> member rect indices in source order.
        self._members: Dict[int, List[int]] = {}
        #: rect index -> same-layer indices it touches/overlaps (adjacency
        #: recorded by the component sweeps; serves the absorbed-stub scan).
        self._touchers: Dict[int, List[int]] = {}
        self._spacing_candidates: Optional[List[Tuple[int, int]]] = None
        #: rect index -> roots of other-layer components it touches
        #: (complete for every layer pair with a positive SPACE rule).
        self._cross_touch: Dict[int, Set[int]] = {}
        self._gate_overlaps: Optional[Set[Tuple[int, int]]] = None
        self.builds = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Force a full rebuild on the next query.

        Required after mutating coordinates, nets, layers or emptiness of
        rects that were already indexed; rect-list growth or truncation is
        detected automatically.
        """
        self._built = False

    def sync(self) -> None:
        """Rebuild when the source object's rect list changed shape."""
        if not self._built or self._tracked != len(self.obj.rects):
            self._build()

    # ------------------------------------------------------------------
    # queries (component layer)
    # ------------------------------------------------------------------
    def component(self, index: int) -> int:
        """Component id of rect *index* (same partition as ``_Components``)."""
        self.sync()
        return self._roots[index]

    def same_component(self, i: int, j: int) -> bool:
        """True when the two rects belong to one merged shape."""
        self.sync()
        return self._roots[i] == self._roots[j]

    def members(self, comp: int) -> List[Rect]:
        """All rects of a component, in source order."""
        self.sync()
        return [self.rects[i] for i in self._members[comp]]

    def component_nets(self, comp: int) -> Set[Optional[str]]:
        """Nets present in a component."""
        return {member.net for member in self.members(comp)}

    def rects_on(self, layer: str) -> List[Rect]:
        """Non-empty rects on *layer* in source order (bucket-served)."""
        self.sync()
        rects = self.rects
        return [rects[i] for i in self._buckets.get(layer, ())]

    def same_layer_touchers(self, index: int) -> Sequence[int]:
        """Indices of same-layer rects touching/overlapping rect *index*.

        Intersecting neighbours are a subset of touching neighbours, so the
        absorbed-thin-stub scan of ``check_widths`` only re-tests these.
        """
        self.sync()
        return self._touchers.get(index, ())

    # ------------------------------------------------------------------
    # queries (spacing layer)
    # ------------------------------------------------------------------
    def spacing_candidates(self) -> List[Tuple[int, int]]:
        """All (i, j) pairs (i < j) that can violate a spacing rule.

        Sorted ascending so evaluation emits violations in the exact order
        of the brute all-pairs loop.  Complete: a pair whose per-axis gaps
        are both inside its layer pair's SPACE rule is always generated.
        """
        self.sync()
        if self._spacing_candidates is None:
            self._build_spacing()
        return self._spacing_candidates

    def touches_component(self, index: int, comp: int) -> bool:
        """True when rect *index* touches any member of cross-layer *comp*.

        Answers from the touch sets the spacing sweeps recorded; valid for
        the (rect, component) combinations spacing evaluation asks about —
        i.e. layer pairs carrying a positive SPACE rule.
        """
        self.sync()
        if self._spacing_candidates is None:
            self._build_spacing()
        return comp in self._cross_touch.get(index, ())

    # ------------------------------------------------------------------
    # queries (extension layer)
    # ------------------------------------------------------------------
    def gate_overlaps(self, gate: int, comp: int) -> bool:
        """True when gate rect *gate* overlaps diffusion component *comp*.

        Valid for (POLY-kind layer, DIFFUSION-kind layer) pairs that carry
        both EXTEND rules — exactly the pairs ``check_extensions`` tests.
        """
        self.sync()
        if self._gate_overlaps is None:
            self._build_gate_overlaps()
        return (gate, comp) in self._gate_overlaps

    def diffusion_groups(self) -> Dict[Tuple[str, int], List[Rect]]:
        """(diffusion layer, component) -> member rects, in first-member
        order — the grouping ``check_extensions`` iterates."""
        self.sync()
        groups: Dict[Tuple[str, int], List[Rect]] = {}
        diffusion = {
            layer.name
            for layer in self.tech.layers
            if layer.kind is LayerKind.DIFFUSION
        }
        for index, rect in enumerate(self.rects):
            if rect.layer in diffusion:
                groups.setdefault((rect.layer, self._roots[index]), []).append(rect)
        return groups

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        tracer = get_tracer()
        self._tracked = len(self.obj.rects)
        self.rects = self.obj.nonempty_rects
        rects = self.rects
        self._buckets = {}
        self._sorted_buckets = {}
        self._touchers = {}
        self._spacing_candidates = None
        self._cross_touch = {}
        self._gate_overlaps = None

        buckets = self._buckets
        for index, rect in enumerate(rects):
            buckets.setdefault(rect.layer, []).append(index)
        for layer, indices in buckets.items():
            self._sorted_buckets[layer] = sorted(
                indices, key=lambda index: rects[index].x1
            )

        # Connected components: one closed-interval sweep per layer bucket,
        # recording the touching adjacency as a side effect.
        dsu = DisjointSet(len(rects))
        self._dsu = dsu
        scanned = 0
        for layer in buckets:
            scanned += self._sweep_components(layer)
        self._roots = [dsu.find(index) for index in range(len(rects))]
        members: Dict[int, List[int]] = {}
        for index, root in enumerate(self._roots):
            members.setdefault(root, []).append(index)
        self._members = members

        self._built = True
        self.builds += 1
        tracer.count("drc.index_builds")
        tracer.count("drc.pairs_scanned", scanned)

    def _sweep_components(self, layer: str) -> int:
        """Closed-interval x-sweep over one layer bucket; unions touching
        pairs and records their adjacency.  Returns pairs tested."""
        rects = self.rects
        union = self._dsu.union
        touchers = self._touchers
        active: List[int] = []
        scanned = 0
        for i in self._sorted_buckets[layer]:
            rect = rects[i]
            x1 = rect.x1
            y1 = rect.y1
            y2 = rect.y2
            keep: List[int] = []
            for j in active:
                other = rects[j]
                if other.x2 < x1:
                    continue
                keep.append(j)
                scanned += 1
                if other.y1 <= y2 and y1 <= other.y2:
                    union(i, j)
                    touchers.setdefault(i, []).append(j)
                    touchers.setdefault(j, []).append(i)
            keep.append(i)
            active = keep
        return scanned

    # ------------------------------------------------------------------
    # spacing candidates + cross-layer touch sets (lazy)
    # ------------------------------------------------------------------
    def _build_spacing(self) -> None:
        tracer = get_tracer()
        candidates: List[Tuple[int, int]] = []
        scanned = 0
        if self.tech.max_space_radius() > 0:
            buckets = self._sorted_buckets
            for layer_a, layer_b, rule in self.tech.space_rules():
                if rule <= 0:
                    # 0 < gap < 0 is unsatisfiable: the pair can never
                    # violate, and the brute path's touch exemptions only
                    # matter for pairs that could.
                    continue
                if layer_a == layer_b:
                    bucket = buckets.get(layer_a)
                    if bucket and len(bucket) > 1:
                        scanned += self._sweep_same_layer(bucket, rule, candidates)
                else:
                    a_bucket = buckets.get(layer_a)
                    b_bucket = buckets.get(layer_b)
                    if a_bucket and b_bucket:
                        scanned += self._sweep_cross_layer(
                            a_bucket, b_bucket, rule, candidates
                        )
        candidates.sort()
        self._spacing_candidates = candidates
        tracer.count("drc.pairs_scanned", scanned)
        tracer.count("drc.candidates", len(candidates))

    def _sweep_same_layer(
        self, bucket: List[int], rule: int, out: List[Tuple[int, int]]
    ) -> int:
        """Dilated closed sweep: emits pairs with both axis gaps < rule."""
        rects = self.rects
        active: List[int] = []
        scanned = 0
        for i in bucket:
            rect = rects[i]
            window = rect.x1 - rule
            y_lo = rect.y1 - rule
            y_hi = rect.y2 + rule
            keep: List[int] = []
            for j in active:
                other = rects[j]
                if other.x2 <= window:
                    continue
                keep.append(j)
                scanned += 1
                if other.y1 < y_hi and y_lo < other.y2:
                    out.append((i, j) if i < j else (j, i))
            keep.append(i)
            active = keep
        return scanned

    def _sweep_cross_layer(
        self,
        a_bucket: List[int],
        b_bucket: List[int],
        rule: int,
        out: List[Tuple[int, int]],
    ) -> int:
        """Dilated two-bucket sweep; also records component touch sets.

        Touching pairs have zero gaps, so they are always candidates of a
        positive rule — which is what makes the recorded touch sets
        complete for the gate-attachment exemption queries.
        """
        rects = self.rects
        roots = self._roots
        cross_touch = self._cross_touch
        events = sorted(
            [(rects[i].x1, 0, i) for i in a_bucket]
            + [(rects[i].x1, 1, i) for i in b_bucket]
        )
        actives: List[List[int]] = [[], []]
        scanned = 0
        for x1, side, i in events:
            rect = rects[i]
            window = x1 - rule
            y_lo = rect.y1 - rule
            y_hi = rect.y2 + rule
            keep: List[int] = []
            for j in actives[1 - side]:
                other = rects[j]
                if other.x2 <= window:
                    continue
                keep.append(j)
                scanned += 1
                if other.y1 < y_hi and y_lo < other.y2:
                    out.append((i, j) if i < j else (j, i))
                    if (
                        other.x1 <= rect.x2
                        and rect.x1 <= other.x2
                        and other.y1 <= rect.y2
                        and rect.y1 <= other.y2
                    ):
                        cross_touch.setdefault(i, set()).add(roots[j])
                        cross_touch.setdefault(j, set()).add(roots[i])
            actives[1 - side] = keep
            actives[side].append(i)
        return scanned

    # ------------------------------------------------------------------
    # gate/body overlaps (lazy)
    # ------------------------------------------------------------------
    def _build_gate_overlaps(self) -> None:
        tracer = get_tracer()
        rules = self.tech.rules
        overlaps: Set[Tuple[int, int]] = set()
        scanned = 0
        poly_layers = [
            layer.name for layer in self.tech.layers
            if layer.kind is LayerKind.POLY
        ]
        diffusion_layers = [
            layer.name for layer in self.tech.layers
            if layer.kind is LayerKind.DIFFUSION
        ]
        for gate_layer in poly_layers:
            gate_bucket = self._sorted_buckets.get(gate_layer)
            if not gate_bucket:
                continue
            for body_layer in diffusion_layers:
                if (
                    rules.extend(gate_layer, body_layer) is None
                    or rules.extend(body_layer, gate_layer) is None
                ):
                    continue
                body_bucket = self._sorted_buckets.get(body_layer)
                if body_bucket:
                    scanned += self._sweep_overlaps(
                        gate_bucket, body_bucket, overlaps
                    )
        self._gate_overlaps = overlaps
        tracer.count("drc.pairs_scanned", scanned)

    def _sweep_overlaps(
        self,
        gate_bucket: List[int],
        body_bucket: List[int],
        out: Set[Tuple[int, int]],
    ) -> int:
        """Strict-interval sweep: (gate, body component) interior overlaps."""
        rects = self.rects
        roots = self._roots
        events = sorted(
            [(rects[i].x1, 0, i) for i in gate_bucket]
            + [(rects[i].x1, 1, i) for i in body_bucket]
        )
        actives: List[List[int]] = [[], []]
        scanned = 0
        for x1, side, i in events:
            rect = rects[i]
            y1 = rect.y1
            y2 = rect.y2
            keep: List[int] = []
            for j in actives[1 - side]:
                other = rects[j]
                if other.x2 <= x1:
                    continue
                keep.append(j)
                scanned += 1
                if other.y1 < y2 and y1 < other.y2:
                    gate, body = (i, j) if side == 0 else (j, i)
                    out.add((gate, roots[body]))
            actives[1 - side] = keep
            actives[side].append(i)
        return scanned

"""The latch-up rule check (Fig. 1).

"This rule determines if temporary rectangles which are placed around the
substrate contacts enclose all locos areas of MOS-transistors. ... If these
rectangles do not enclose completely the other rectangles only the
overlapping part is cut while the remaining part of the rectangle is still
stored in the database.  If after examining all enclosing rectangles no parts
of the solid rectangles are remaining, the latch-up rule is fulfilled."

The subtraction kernel handling all 16 overlap cases lives in
:mod:`repro.geometry.region`; this module drives it over a layout object.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..db import LayoutObject
from ..geometry import Rect, overlap_classification, subtract_many
from ..obs import get_tracer
from ..tech import Technology
from ..tech.layer import LayerKind
from .violations import Violation

#: Diffusion layers whose areas must be protected (active MOS regions).
_DEFAULT_ACTIVE = ("locos", "pdiff", "ndiff")


def temporary_rectangles(
    obj: LayoutObject, contact_layer: str = "subcontact"
) -> List[Rect]:
    """The dashed temporary rectangles of Fig. 1.

    One per substrate-contact rect, grown by the LATCHUP half-size stored in
    the technology file ("The size of these temporary rectangles is specified
    in the design rules").
    """
    half = obj.tech.latchup_half_size(contact_layer)
    return [rect.grown(half) for rect in obj.rects_on(contact_layer)]


def uncovered_active_area(
    obj: LayoutObject,
    contact_layer: str = "subcontact",
    active_layers: Optional[Sequence[str]] = None,
) -> List[Rect]:
    """Active-area pieces not protected by any substrate contact.

    Returns the remaining solid rectangles after cutting every temporary
    rectangle; an empty list means the latch-up rule is fulfilled.
    """
    if active_layers is None:
        active_layers = [
            name for name in _DEFAULT_ACTIVE
            if obj.tech.has_layer(name) and name != contact_layer
        ]
    solids = [
        rect
        for layer in active_layers
        for rect in obj.rects_on(layer)
    ]
    temps = temporary_rectangles(obj, contact_layer)
    tracer = get_tracer()
    if tracer.enabled:
        # Which of Fig. 1's 4×4 overlap cases the subtraction kernel hits:
        # one (horizontal, vertical) classification per intersecting
        # solid/temporary pair.  Observation only — the actual subtraction
        # below re-derives the geometry.
        tracer.count("drc.latchup.solids", len(solids))
        tracer.count("drc.latchup.temps", len(temps))
        for solid in solids:
            for temp in temps:
                if solid.intersects(temp):
                    h_case, v_case = overlap_classification(solid, temp)
                    tracer.count(f"drc.latchup.case_h{h_case}_v{v_case}")
        remainders = subtract_many(solids, temps)
        tracer.count("drc.latchup.remainders", len(remainders))
        return remainders
    return subtract_many(solids, temps)


def check_latchup(
    obj: LayoutObject,
    contact_layer: str = "subcontact",
    active_layers: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Latch-up violations: one per unprotected active-area remainder."""
    if (
        not obj.tech.has_layer(contact_layer)
        or obj.tech.rules.latchup(contact_layer) is None
    ):
        return []
    remainders = uncovered_active_area(obj, contact_layer, active_layers)
    return [
        Violation(
            "latchup",
            f"active area on {piece.layer!r} not enclosed by any"
            f" {contact_layer!r} protection rectangle",
            piece.center,
            (piece,),
        )
        for piece in remainders
    ]


def insert_protection_contacts(
    obj: LayoutObject,
    contact_layer: str = "subcontact",
    active_layers: Optional[Sequence[str]] = None,
    net: str = "sub",
) -> List[Rect]:
    """Add substrate contacts until the latch-up rule is fulfilled.

    "If not all active areas are enclosed additional substrate contacts have
    to be inserted."  Contacts are placed at minimum size next to the centre
    of each unprotected remainder, then the check is re-run; the loop is
    bounded by the remainder count, which strictly decreases.
    """
    added: List[Rect] = []
    width = obj.tech.min_width(contact_layer)
    for _ in range(1000):
        remainders = uncovered_active_area(obj, contact_layer, active_layers)
        if not remainders:
            break
        worst = max(remainders, key=lambda piece: piece.area)
        cx, cy = worst.center
        half = width // 2
        added.append(
            obj.add_rect(
                Rect(cx - half, cy - half, cx - half + width, cy - half + width,
                     contact_layer, net)
            )
        )
    return added

"""Geometric design-rule checks: width, spacing, enclosure, extension, area.

The environment fulfils rules constructively (primitives + compactor); this
checker verifies results independently.  Checks are *component-based*:
same-layer rects that touch or overlap form one merged shape (that is how
the rectangle database represents polygons), so spacing applies between
components, and transistor-extension rules apply between a gate and the
whole diffusion component it crosses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..db import DisjointSet, LayoutObject
from ..geometry import Rect, bounding_box
from ..obs import get_logger, get_tracer
from ..tech import Technology
from .latchup import check_latchup
from .violations import Violation

log = get_logger("drc")


class _Components:
    """Per-layer connected components of touching rects."""

    def __init__(self, rects: Sequence[Rect]) -> None:
        self.rects = list(rects)
        self._comp_of: Dict[int, int] = {}
        by_layer: Dict[str, List[int]] = {}
        for index, rect in enumerate(self.rects):
            by_layer.setdefault(rect.layer, []).append(index)
        dsu = DisjointSet(len(self.rects))
        for indices in by_layer.values():
            for pos, i in enumerate(indices):
                for j in indices[pos + 1:]:
                    if self.rects[i].touches_or_intersects(self.rects[j]):
                        dsu.union(i, j)
        for index in range(len(self.rects)):
            self._comp_of[index] = dsu.find(index)
        self._members: Dict[int, List[int]] = {}
        for index, comp in self._comp_of.items():
            self._members.setdefault(comp, []).append(index)

    def component(self, index: int) -> int:
        """Component id of rect *index*."""
        return self._comp_of[index]

    def members(self, comp: int) -> List[Rect]:
        """All rects of a component."""
        return [self.rects[i] for i in self._members[comp]]

    def touches_component(self, rect: Rect, comp: int) -> bool:
        """True when *rect* touches/overlaps any member of *comp*."""
        return any(rect.touches_or_intersects(member) for member in self.members(comp))

    def component_nets(self, comp: int) -> Set[Optional[str]]:
        """Nets present in a component."""
        return {member.net for member in self.members(comp)}


def check_widths(obj: LayoutObject) -> List[Violation]:
    """Minimum width (and exact cut size) per rect."""
    violations: List[Violation] = []
    for rect in obj.nonempty_rects:
        cut = obj.tech.rules.cut_size(rect.layer)
        if cut is not None:
            if rect.width != cut or rect.height != cut:
                violations.append(
                    Violation(
                        "width",
                        f"cut on {rect.layer!r} must be exactly {cut} dbu square,"
                        f" found {rect.width}×{rect.height}",
                        rect.center,
                        (rect,),
                    )
                )
            continue
        rule = obj.tech.rules.width(rect.layer)
        if rule is not None and rect.short_side() < rule:
            # A short rect overlapping a rule-sized same-layer neighbour is
            # part of a wider merged shape (e.g. a stub ending on a via
            # pad); only isolated thin shapes violate the rule.
            absorbed = any(
                other is not rect
                and other.layer == rect.layer
                and other.short_side() >= rule
                and other.intersects(rect)
                for other in obj.nonempty_rects
            )
            if absorbed:
                continue
            violations.append(
                Violation(
                    "width",
                    f"{rect.layer!r} shape is {rect.short_side()} dbu wide,"
                    f" rule requires {rule}",
                    rect.center,
                    (rect,),
                )
            )
    return violations


def check_spacing(obj: LayoutObject) -> List[Violation]:
    """Pairwise spacing between merged shapes.

    Same-component pairs are one shape; same-net components may merge; a
    gate-layer rect crossing a diffusion component is functionally attached
    to it, so the cross-layer spacing rule does not apply to that pair.
    """
    violations: List[Violation] = []
    rects = obj.nonempty_rects
    comps = _Components(rects)
    for i, a in enumerate(rects):
        for j in range(i + 1, len(rects)):
            b = rects[j]
            rule = obj.tech.min_space(a.layer, b.layer)
            if rule is None:
                continue
            if a.layer == b.layer:
                if comps.component(i) == comps.component(j):
                    continue
                if a.net is not None and a.net == b.net:
                    continue
                gap = a.distance(b)
                if 0 < gap < rule:
                    violations.append(
                        Violation(
                            "spacing",
                            f"{a.layer!r} gap {gap} dbu < rule {rule}",
                            a.center,
                            (a, b),
                        )
                    )
                continue
            # Cross-layer: intentional stacking touches; a rect functionally
            # attached to the other's component is exempt.
            if a.touches_or_intersects(b):
                continue
            if comps.touches_component(a, comps.component(j)):
                continue
            if comps.touches_component(b, comps.component(i)):
                continue
            gap = a.distance(b)
            if 0 < gap < rule:
                violations.append(
                    Violation(
                        "spacing",
                        f"{a.layer!r}/{b.layer!r} gap {gap} dbu < rule {rule}",
                        a.center,
                        (a, b),
                    )
                )
    return violations


def check_enclosures(obj: LayoutObject) -> List[Violation]:
    """Every cut must sit inside a bottom and a top conductor with margin.

    Enclosure is evaluated against merged shapes: the margin-grown cut must
    be covered by the union of one component's rects, not necessarily by a
    single rect.
    """
    violations: List[Violation] = []
    rects = obj.nonempty_rects
    comps = _Components(rects)
    for cut in rects:
        if obj.tech.rules.cut_size(cut.layer) is None:
            continue
        pairs = obj.tech.connected_layers(cut.layer)
        if not pairs:
            continue
        bottoms = {bottom for bottom, _ in pairs}
        tops = {top for _, top in pairs}
        for role, candidates in (("bottom", bottoms), ("top", tops)):
            if not _enclosed_by_any(obj, comps, cut, candidates):
                violations.append(
                    Violation(
                        "enclosure",
                        f"cut on {cut.layer!r} lacks a {role} conductor"
                        f" ({'/'.join(sorted(candidates))}) with rule enclosure",
                        cut.center,
                        (cut,),
                    )
                )
    return violations


def _enclosed_by_any(
    obj: LayoutObject, comps: _Components, cut: Rect, layers: Sequence[str]
) -> bool:
    from ..geometry import covered_by

    for layer in layers:
        margin = obj.tech.enclosure_or_zero(layer, cut.layer)
        grown = cut.grown(margin)
        candidates = [r for r in obj.rects_on(layer) if r.intersects(grown)]
        if candidates and covered_by([grown], candidates):
            return True
    return False


def check_extensions(obj: LayoutObject) -> List[Violation]:
    """Transistor formation rules against merged diffusion shapes.

    For every (gate-layer, body-layer) pair with EXTEND rules: a gate rect
    overlapping a diffusion component must fully cross the *local* body rect
    along one axis with its endcap, and the component must provide the
    source/drain extension on the other axis (evaluated on the component's
    bounding box — sound for the convex diffusion regions the primitives
    build).
    """
    from ..tech.layer import LayerKind

    violations: List[Violation] = []
    rules = obj.tech.rules
    rects = obj.nonempty_rects
    comps = _Components(rects)

    # Group diffusion rects by (layer, component).
    body_components: Dict[Tuple[str, int], List[Rect]] = {}
    for index, rect in enumerate(rects):
        if obj.tech.layer(rect.layer).kind is LayerKind.DIFFUSION:
            body_components.setdefault(
                (rect.layer, comps.component(index)), []
            ).append(rect)

    for gate in rects:
        if obj.tech.layer(gate.layer).kind is not LayerKind.POLY:
            continue
        for (body_layer, comp), members in body_components.items():
            endcap = rules.extend(gate.layer, body_layer)
            sd_ext = rules.extend(body_layer, gate.layer)
            if endcap is None or sd_ext is None:
                continue
            if not any(gate.intersects(member) for member in members):
                continue
            box = bounding_box(members)
            assert box is not None
            violations.extend(_check_crossing(gate, box, endcap, sd_ext))
    return violations


def _check_crossing(
    gate: Rect, body: Rect, endcap: int, sd_ext: int
) -> List[Violation]:
    crosses_vertically = gate.y1 <= body.y1 and gate.y2 >= body.y2
    crosses_horizontally = gate.x1 <= body.x1 and gate.x2 >= body.x2
    problems: List[str] = []
    if crosses_vertically:
        if gate.y1 > body.y1 - endcap or gate.y2 < body.y2 + endcap:
            problems.append(f"gate endcap < {endcap} dbu")
        if body.x1 > gate.x1 - sd_ext or body.x2 < gate.x2 + sd_ext:
            problems.append(f"source/drain extension < {sd_ext} dbu")
    elif crosses_horizontally:
        if gate.x1 > body.x1 - endcap or gate.x2 < body.x2 + endcap:
            problems.append(f"gate endcap < {endcap} dbu")
        if body.y1 > gate.y1 - sd_ext or body.y2 < gate.y2 + sd_ext:
            problems.append(f"source/drain extension < {sd_ext} dbu")
    else:
        problems.append(
            f"{gate.layer!r} overlaps {body.layer!r} without crossing it"
            " (partial gate)"
        )
    return [
        Violation("extension", problem, gate.center, (gate, body))
        for problem in problems
    ]


def check_areas(obj: LayoutObject) -> List[Violation]:
    """Minimum area per merged shape (union area of each component)."""
    from ..geometry import union_area

    violations: List[Violation] = []
    rects = obj.nonempty_rects
    comps = _Components(rects)
    seen: Set[int] = set()
    for index, rect in enumerate(rects):
        rule = obj.tech.rules.area(rect.layer)
        if rule is None:
            continue
        comp = comps.component(index)
        if comp in seen:
            continue
        seen.add(comp)
        members = [m for m in comps.members(comp) if m.layer == rect.layer]
        if union_area(members) < rule:
            violations.append(
                Violation(
                    "area",
                    f"{rect.layer!r} shape area {union_area(members)} dbu²"
                    f" < rule {rule}",
                    rect.center,
                    tuple(members),
                )
            )
    return violations


def check_shorts(obj: LayoutObject) -> List[Violation]:
    """Two different nets inside one merged shape are a short.

    Applies to unambiguous conductor layers (metal, poly, cuts); diffusion
    components legitimately carry several nets (the source and drain of one
    device share an active region through the channel).
    """
    from ..tech.layer import LayerKind

    violations: List[Violation] = []
    rects = obj.nonempty_rects
    comps = _Components(rects)
    reported: Set[int] = set()
    for index, rect in enumerate(rects):
        kind = obj.tech.layer(rect.layer).kind
        if kind not in (LayerKind.METAL, LayerKind.POLY, LayerKind.CUT):
            continue
        comp = comps.component(index)
        if comp in reported:
            continue
        nets = comps.component_nets(comp) - {None}
        if len(nets) > 1:
            reported.add(comp)
            violations.append(
                Violation(
                    "short",
                    f"merged {rect.layer!r} shape carries nets"
                    f" {sorted(nets)}",
                    rect.center,
                    tuple(comps.members(comp)),
                )
            )
    return violations


#: The checks run_drc executes, in order: (rule class, check function).
CHECKS = (
    ("width", check_widths),
    ("spacing", check_spacing),
    ("enclosure", check_enclosures),
    ("extension", check_extensions),
    ("area", check_areas),
    ("short", check_shorts),
)


def run_drc(obj: LayoutObject, include_latchup: bool = True) -> List[Violation]:
    """Run every check; returns the combined violation list."""
    tracer = get_tracer()
    violations: List[Violation] = []
    with tracer.span("drc.run", obj=obj.name, rects=len(obj.nonempty_rects)):
        checks = CHECKS + ((("latchup", check_latchup),) if include_latchup else ())
        for rule_class, check in checks:
            with tracer.span(f"drc.{rule_class}"):
                found = check(obj)
            tracer.count("drc.rules_checked")
            tracer.count(f"drc.violations.{rule_class}", len(found))
            violations.extend(found)
    tracer.count("drc.violations.total", len(violations))
    log.debug(
        "DRC of %s: %d rects, %d violations", obj.name,
        len(obj.nonempty_rects), len(violations),
    )
    return violations

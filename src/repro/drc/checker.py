"""Geometric design-rule checks: width, spacing, enclosure, extension, area.

The environment fulfils rules constructively (primitives + compactor); this
checker verifies results independently.  Checks are *component-based*:
same-layer rects that touch or overlap form one merged shape (that is how
the rectangle database represents polygons), so spacing applies between
components, and transistor-extension rules apply between a gate and the
whole diffusion component it crosses.

Every check exists twice:

* ``check_*_brute`` — the original all-pairs reference implementation.
  Deliberately naive and obviously correct; it is the oracle the indexed
  path is tested against (``tests/test_drc_index.py``) and stays reachable
  through ``run_drc(obj, use_index=False)``.
* ``check_*`` — the production path, served by the sweep-indexed
  :class:`repro.drc.index.DrcIndex` (candidate generation within the
  applicable spacing rules instead of O(n²), sweep-fed union-find
  components).  Each accepts an optional prebuilt index so one ``run_drc``
  shares a single build across all checks; called bare, it builds its own.

The contract between the two paths is *byte identity*: same violations,
same messages, same rect objects, same order.  Both paths count the
geometric pair tests they perform into the deterministic
``drc.pairs_scanned`` counter, so indexed-vs-brute ratios are directly
comparable (mirroring ``nets.pairs_scanned``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..db import DisjointSet, LayoutObject
from ..geometry import Rect, bounding_box
from ..obs import get_logger, get_tracer
from ..tech import Technology
from .index import DrcIndex
from .latchup import check_latchup
from .violations import Violation

log = get_logger("drc")


class _Components:
    """Per-layer connected components of touching rects (reference path).

    The quadratic same-layer loop is intentional: this is the oracle the
    sweep-fed :class:`DrcIndex` components are checked against.
    """

    def __init__(self, rects: Sequence[Rect]) -> None:
        self.rects = list(rects)
        self._comp_of: Dict[int, int] = {}
        by_layer: Dict[str, List[int]] = {}
        for index, rect in enumerate(self.rects):
            by_layer.setdefault(rect.layer, []).append(index)
        dsu = DisjointSet(len(self.rects))
        scanned = 0
        for indices in by_layer.values():
            for pos, i in enumerate(indices):
                for j in indices[pos + 1:]:
                    scanned += 1
                    if self.rects[i].touches_or_intersects(self.rects[j]):
                        dsu.union(i, j)
        get_tracer().count("drc.pairs_scanned", scanned)
        for index in range(len(self.rects)):
            self._comp_of[index] = dsu.find(index)
        self._members: Dict[int, List[int]] = {}
        for index, comp in self._comp_of.items():
            self._members.setdefault(comp, []).append(index)

    def component(self, index: int) -> int:
        """Component id of rect *index*."""
        return self._comp_of[index]

    def members(self, comp: int) -> List[Rect]:
        """All rects of a component."""
        return [self.rects[i] for i in self._members[comp]]

    def touches_component(self, rect: Rect, comp: int) -> bool:
        """True when *rect* touches/overlaps any member of *comp*."""
        tested = 0
        hit = False
        for member in self.members(comp):
            tested += 1
            if rect.touches_or_intersects(member):
                hit = True
                break
        get_tracer().count("drc.pairs_scanned", tested)
        return hit

    def component_nets(self, comp: int) -> Set[Optional[str]]:
        """Nets present in a component."""
        return {member.net for member in self.members(comp)}


def _ensure_index(obj: LayoutObject, index: Optional[DrcIndex]) -> DrcIndex:
    if index is None:
        index = DrcIndex(obj)
    index.sync()
    return index


# ======================================================================
# width / cut size
# ======================================================================
def check_widths_brute(obj: LayoutObject) -> List[Violation]:
    """Minimum width (and exact cut size) per rect — all-pairs reference."""
    violations: List[Violation] = []
    scanned = 0
    for rect in obj.nonempty_rects:
        cut = obj.tech.rules.cut_size(rect.layer)
        if cut is not None:
            if rect.width != cut or rect.height != cut:
                violations.append(_cut_size_violation(rect, cut))
            continue
        rule = obj.tech.rules.width(rect.layer)
        if rule is not None and rect.short_side() < rule:
            # A short rect overlapping a rule-sized same-layer neighbour is
            # part of a wider merged shape (e.g. a stub ending on a via
            # pad); only isolated thin shapes violate the rule.
            absorbed = False
            for other in obj.nonempty_rects:
                scanned += 1
                if (
                    other is not rect
                    and other.layer == rect.layer
                    and other.short_side() >= rule
                    and other.intersects(rect)
                ):
                    absorbed = True
                    break
            if absorbed:
                continue
            violations.append(_width_violation(rect, rule))
    get_tracer().count("drc.pairs_scanned", scanned)
    return violations


def check_widths(
    obj: LayoutObject, index: Optional[DrcIndex] = None
) -> List[Violation]:
    """Minimum width (and exact cut size) per rect.

    The absorbed-thin-stub scan is served from the index's same-layer
    touching adjacency (overlap implies touch), instead of a full rect-list
    pass per thin rect.
    """
    index = _ensure_index(obj, index)
    violations: List[Violation] = []
    rects = index.rects
    scanned = 0
    for i, rect in enumerate(rects):
        cut = obj.tech.rules.cut_size(rect.layer)
        if cut is not None:
            if rect.width != cut or rect.height != cut:
                violations.append(_cut_size_violation(rect, cut))
            continue
        rule = obj.tech.rules.width(rect.layer)
        if rule is not None and rect.short_side() < rule:
            absorbed = False
            for j in index.same_layer_touchers(i):
                other = rects[j]
                scanned += 1
                if other.short_side() >= rule and other.intersects(rect):
                    absorbed = True
                    break
            if absorbed:
                continue
            violations.append(_width_violation(rect, rule))
    get_tracer().count("drc.pairs_scanned", scanned)
    return violations


def _cut_size_violation(rect: Rect, cut: int) -> Violation:
    return Violation(
        "width",
        f"cut on {rect.layer!r} must be exactly {cut} dbu square,"
        f" found {rect.width}×{rect.height}",
        rect.center,
        (rect,),
    )


def _width_violation(rect: Rect, rule: int) -> Violation:
    return Violation(
        "width",
        f"{rect.layer!r} shape is {rect.short_side()} dbu wide,"
        f" rule requires {rule}",
        rect.center,
        (rect,),
    )


# ======================================================================
# spacing
# ======================================================================
def check_spacing_brute(obj: LayoutObject) -> List[Violation]:
    """Pairwise spacing between merged shapes — all-pairs reference.

    Same-component pairs are one shape; same-net components may merge; a
    gate-layer rect crossing a diffusion component is functionally attached
    to it, so the cross-layer spacing rule does not apply to that pair.
    """
    violations: List[Violation] = []
    rects = obj.nonempty_rects
    comps = _Components(rects)
    tracer = get_tracer()
    scanned = 0
    for i, a in enumerate(rects):
        for j in range(i + 1, len(rects)):
            b = rects[j]
            scanned += 1
            rule = obj.tech.min_space(a.layer, b.layer)
            if rule is None:
                continue
            if a.layer == b.layer:
                if comps.component(i) == comps.component(j):
                    continue
                if a.net is not None and a.net == b.net:
                    continue
                gap = a.distance(b)
                if 0 < gap < rule:
                    violations.append(_same_layer_spacing_violation(a, b, gap, rule))
                continue
            # Cross-layer: intentional stacking touches; a rect functionally
            # attached to the other's component is exempt.
            if a.touches_or_intersects(b):
                continue
            if comps.touches_component(a, comps.component(j)):
                continue
            if comps.touches_component(b, comps.component(i)):
                continue
            gap = a.distance(b)
            if 0 < gap < rule:
                violations.append(_cross_layer_spacing_violation(a, b, gap, rule))
    tracer.count("drc.pairs_scanned", scanned)
    return violations


def check_spacing(
    obj: LayoutObject, index: Optional[DrcIndex] = None
) -> List[Violation]:
    """Pairwise spacing between merged shapes, sweep-indexed.

    Evaluates only the candidate pairs the rule-radius dilated sweeps
    generated (pairs whose per-axis gaps are inside their layer pair's
    SPACE rule), in ascending (i, j) order — the same order and predicates
    as the brute all-pairs loop, hence the identical violation list.
    """
    index = _ensure_index(obj, index)
    violations: List[Violation] = []
    rects = index.rects
    candidates = index.spacing_candidates()
    get_tracer().count("drc.pairs_scanned", len(candidates))
    for i, j in candidates:
        a = rects[i]
        b = rects[j]
        rule = obj.tech.min_space(a.layer, b.layer)
        if a.layer == b.layer:
            if index.same_component(i, j):
                continue
            if a.net is not None and a.net == b.net:
                continue
            gap = a.distance(b)
            if 0 < gap < rule:
                violations.append(_same_layer_spacing_violation(a, b, gap, rule))
            continue
        if a.touches_or_intersects(b):
            continue
        if index.touches_component(i, index.component(j)):
            continue
        if index.touches_component(j, index.component(i)):
            continue
        gap = a.distance(b)
        if 0 < gap < rule:
            violations.append(_cross_layer_spacing_violation(a, b, gap, rule))
    return violations


def _same_layer_spacing_violation(a: Rect, b: Rect, gap: int, rule: int) -> Violation:
    return Violation(
        "spacing",
        f"{a.layer!r} gap {gap} dbu < rule {rule}",
        a.center,
        (a, b),
    )


def _cross_layer_spacing_violation(a: Rect, b: Rect, gap: int, rule: int) -> Violation:
    return Violation(
        "spacing",
        f"{a.layer!r}/{b.layer!r} gap {gap} dbu < rule {rule}",
        a.center,
        (a, b),
    )


# ======================================================================
# enclosure
# ======================================================================
def check_enclosures_brute(obj: LayoutObject) -> List[Violation]:
    """Cut-enclosure check — reference path (scans the full rect list)."""
    rects = obj.nonempty_rects
    _Components(rects)  # kept: the reference path pays the component build
    return _check_enclosures(obj, rects, obj.rects_on)


def check_enclosures(
    obj: LayoutObject, index: Optional[DrcIndex] = None
) -> List[Violation]:
    """Every cut must sit inside a bottom and a top conductor with margin.

    Enclosure is evaluated against merged shapes: the margin-grown cut must
    be covered by the union of one component's rects, not necessarily by a
    single rect.  Conductor rects are served from the index's layer
    buckets.
    """
    index = _ensure_index(obj, index)
    return _check_enclosures(obj, index.rects, index.rects_on)


def _check_enclosures(obj: LayoutObject, rects, rects_on) -> List[Violation]:
    violations: List[Violation] = []
    scanned = 0
    for cut in rects:
        if obj.tech.rules.cut_size(cut.layer) is None:
            continue
        pairs = obj.tech.connected_layers(cut.layer)
        if not pairs:
            continue
        bottoms = {bottom for bottom, _ in pairs}
        tops = {top for _, top in pairs}
        for role, candidates in (("bottom", bottoms), ("top", tops)):
            enclosed, tested = _enclosed_by_any(obj, rects_on, cut, candidates)
            scanned += tested
            if not enclosed:
                violations.append(
                    Violation(
                        "enclosure",
                        f"cut on {cut.layer!r} lacks a {role} conductor"
                        f" ({'/'.join(sorted(candidates))}) with rule enclosure",
                        cut.center,
                        (cut,),
                    )
                )
    get_tracer().count("drc.pairs_scanned", scanned)
    return violations


def _enclosed_by_any(
    obj: LayoutObject, rects_on, cut: Rect, layers: Sequence[str]
) -> Tuple[bool, int]:
    """``(enclosed, pairs tested)`` — the caller batches the counter."""
    from ..geometry import covered_by

    scanned = 0
    # Sorted: *layers* arrives as a set, and the early return makes the
    # pairs_scanned counter order-sensitive — CI diffs it exactly.
    for layer in sorted(layers):
        margin = obj.tech.enclosure_or_zero(layer, cut.layer)
        grown = cut.grown(margin)
        on_layer = rects_on(layer)
        scanned += len(on_layer)
        candidates = [r for r in on_layer if r.intersects(grown)]
        if candidates and covered_by([grown], candidates):
            return True, scanned
    return False, scanned


# ======================================================================
# extension (transistor formation)
# ======================================================================
def check_extensions_brute(obj: LayoutObject) -> List[Violation]:
    """Transistor-formation check — all-pairs reference.

    For every (gate-layer, body-layer) pair with EXTEND rules: a gate rect
    overlapping a diffusion component must fully cross the *local* body rect
    along one axis with its endcap, and the component must provide the
    source/drain extension on the other axis (evaluated on the component's
    bounding box — sound for the convex diffusion regions the primitives
    build).
    """
    from ..tech.layer import LayerKind

    violations: List[Violation] = []
    rules = obj.tech.rules
    rects = obj.nonempty_rects
    comps = _Components(rects)
    tracer = get_tracer()

    # Group diffusion rects by (layer, component).
    body_components: Dict[Tuple[str, int], List[Rect]] = {}
    for index, rect in enumerate(rects):
        if obj.tech.layer(rect.layer).kind is LayerKind.DIFFUSION:
            body_components.setdefault(
                (rect.layer, comps.component(index)), []
            ).append(rect)

    scanned = 0
    for gate in rects:
        if obj.tech.layer(gate.layer).kind is not LayerKind.POLY:
            continue
        for (body_layer, comp), members in body_components.items():
            endcap = rules.extend(gate.layer, body_layer)
            sd_ext = rules.extend(body_layer, gate.layer)
            if endcap is None or sd_ext is None:
                continue
            overlapping = False
            for member in members:
                scanned += 1
                if gate.intersects(member):
                    overlapping = True
                    break
            if not overlapping:
                continue
            box = bounding_box(members)
            assert box is not None
            violations.extend(_check_crossing(gate, box, endcap, sd_ext))
    tracer.count("drc.pairs_scanned", scanned)
    return violations


def check_extensions(
    obj: LayoutObject, index: Optional[DrcIndex] = None
) -> List[Violation]:
    """Transistor formation rules against merged diffusion shapes.

    Gate/body overlap membership comes from the index's strict-interval
    gate-over-diffusion sweeps instead of gate × component-member loops.
    """
    from ..tech.layer import LayerKind

    index = _ensure_index(obj, index)
    violations: List[Violation] = []
    rules = obj.tech.rules
    rects = index.rects
    body_components = index.diffusion_groups()

    for gate_index, gate in enumerate(rects):
        if obj.tech.layer(gate.layer).kind is not LayerKind.POLY:
            continue
        for (body_layer, comp), members in body_components.items():
            endcap = rules.extend(gate.layer, body_layer)
            sd_ext = rules.extend(body_layer, gate.layer)
            if endcap is None or sd_ext is None:
                continue
            if not index.gate_overlaps(gate_index, comp):
                continue
            box = bounding_box(members)
            assert box is not None
            violations.extend(_check_crossing(gate, box, endcap, sd_ext))
    return violations


def _check_crossing(
    gate: Rect, body: Rect, endcap: int, sd_ext: int
) -> List[Violation]:
    crosses_vertically = gate.y1 <= body.y1 and gate.y2 >= body.y2
    crosses_horizontally = gate.x1 <= body.x1 and gate.x2 >= body.x2
    problems: List[str] = []
    if crosses_vertically:
        if gate.y1 > body.y1 - endcap or gate.y2 < body.y2 + endcap:
            problems.append(f"gate endcap < {endcap} dbu")
        if body.x1 > gate.x1 - sd_ext or body.x2 < gate.x2 + sd_ext:
            problems.append(f"source/drain extension < {sd_ext} dbu")
    elif crosses_horizontally:
        if gate.x1 > body.x1 - endcap or gate.x2 < body.x2 + endcap:
            problems.append(f"gate endcap < {endcap} dbu")
        if body.y1 > gate.y1 - sd_ext or body.y2 < gate.y2 + sd_ext:
            problems.append(f"source/drain extension < {sd_ext} dbu")
    else:
        problems.append(
            f"{gate.layer!r} overlaps {body.layer!r} without crossing it"
            " (partial gate)"
        )
    return [
        Violation("extension", problem, gate.center, (gate, body))
        for problem in problems
    ]


# ======================================================================
# area
# ======================================================================
def check_areas_brute(obj: LayoutObject) -> List[Violation]:
    """Minimum area per merged shape — reference path."""
    rects = obj.nonempty_rects
    comps = _Components(rects)
    return _check_areas(obj, rects, comps.component, comps.members)


def check_areas(
    obj: LayoutObject, index: Optional[DrcIndex] = None
) -> List[Violation]:
    """Minimum area per merged shape (union area of each component)."""
    index = _ensure_index(obj, index)
    return _check_areas(obj, index.rects, index.component, index.members)


def _check_areas(obj: LayoutObject, rects, component, members_of) -> List[Violation]:
    from ..geometry import union_area

    violations: List[Violation] = []
    seen: Set[int] = set()
    for index, rect in enumerate(rects):
        rule = obj.tech.rules.area(rect.layer)
        if rule is None:
            continue
        comp = component(index)
        if comp in seen:
            continue
        seen.add(comp)
        members = [m for m in members_of(comp) if m.layer == rect.layer]
        if union_area(members) < rule:
            violations.append(
                Violation(
                    "area",
                    f"{rect.layer!r} shape area {union_area(members)} dbu²"
                    f" < rule {rule}",
                    rect.center,
                    tuple(members),
                )
            )
    return violations


# ======================================================================
# shorts
# ======================================================================
def check_shorts_brute(obj: LayoutObject) -> List[Violation]:
    """Net-short check — reference path."""
    rects = obj.nonempty_rects
    comps = _Components(rects)
    return _check_shorts(obj, rects, comps.component, comps.component_nets, comps.members)


def check_shorts(
    obj: LayoutObject, index: Optional[DrcIndex] = None
) -> List[Violation]:
    """Two different nets inside one merged shape are a short.

    Applies to unambiguous conductor layers (metal, poly, cuts); diffusion
    components legitimately carry several nets (the source and drain of one
    device share an active region through the channel).
    """
    index = _ensure_index(obj, index)
    return _check_shorts(
        obj, index.rects, index.component, index.component_nets, index.members
    )


def _check_shorts(
    obj: LayoutObject, rects, component, nets_of, members_of
) -> List[Violation]:
    from ..tech.layer import LayerKind

    violations: List[Violation] = []
    reported: Set[int] = set()
    for index, rect in enumerate(rects):
        kind = obj.tech.layer(rect.layer).kind
        if kind not in (LayerKind.METAL, LayerKind.POLY, LayerKind.CUT):
            continue
        comp = component(index)
        if comp in reported:
            continue
        nets = nets_of(comp) - {None}
        if len(nets) > 1:
            reported.add(comp)
            violations.append(
                Violation(
                    "short",
                    f"merged {rect.layer!r} shape carries nets"
                    f" {sorted(nets)}",
                    rect.center,
                    tuple(members_of(comp)),
                )
            )
    return violations


#: The indexed checks run_drc executes, in order: (rule class, check
#: function).  Each accepts (obj, index=None).
CHECKS = (
    ("width", check_widths),
    ("spacing", check_spacing),
    ("enclosure", check_enclosures),
    ("extension", check_extensions),
    ("area", check_areas),
    ("short", check_shorts),
)

#: The brute reference checks, same order; each accepts (obj,).
CHECKS_BRUTE = (
    ("width", check_widths_brute),
    ("spacing", check_spacing_brute),
    ("enclosure", check_enclosures_brute),
    ("extension", check_extensions_brute),
    ("area", check_areas_brute),
    ("short", check_shorts_brute),
)


def run_drc(
    obj: LayoutObject,
    include_latchup: bool = True,
    use_index: bool = True,
) -> List[Violation]:
    """Run every check; returns the combined violation list.

    ``use_index=True`` (the default) builds one :class:`DrcIndex` shared by
    every check; ``use_index=False`` runs the all-pairs reference path.
    Both return the identical violation list.
    """
    tracer = get_tracer()
    violations: List[Violation] = []
    with tracer.span(
        "drc.run",
        obj=obj.name,
        rects=len(obj.nonempty_rects),
        indexed=use_index,
    ):
        index = DrcIndex(obj) if use_index else None
        checks = CHECKS if use_index else CHECKS_BRUTE
        for rule_class, check in checks:
            with tracer.span(f"drc.{rule_class}"):
                found = check(obj, index) if use_index else check(obj)
            tracer.count("drc.rules_checked")
            tracer.count(f"drc.violations.{rule_class}", len(found))
            violations.extend(found)
        if include_latchup:
            with tracer.span("drc.latchup"):
                found = check_latchup(obj)
            tracer.count("drc.rules_checked")
            tracer.count("drc.violations.latchup", len(found))
            violations.extend(found)
    tracer.count("drc.violations.total", len(violations))
    log.debug(
        "DRC of %s: %d rects, %d violations", obj.name,
        len(obj.nonempty_rects), len(violations),
    )
    return violations

"""Violation records produced by the design-rule checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..geometry import Rect


@dataclass
class Violation:
    """One design-rule violation.

    ``kind`` is the rule family (width / spacing / enclosure / extension /
    area / latchup); ``where`` is a representative location in dbu.
    """

    kind: str
    message: str
    where: Tuple[int, int]
    rects: Tuple[Rect, ...] = ()

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message} @ {self.where}"


def format_report(violations: List[Violation]) -> str:
    """Human-readable multi-line report ("an error message occurs")."""
    if not violations:
        return "DRC clean: no violations."
    lines = [f"DRC: {len(violations)} violation(s)"]
    lines.extend(f"  {violation}" for violation in violations)
    return "\n".join(lines)

"""Design-rule checking, including the Fig. 1 latch-up examination."""

from .checker import (
    check_areas,
    check_enclosures,
    check_extensions,
    check_shorts,
    check_spacing,
    check_widths,
    run_drc,
)
from .latchup import (
    check_latchup,
    insert_protection_contacts,
    temporary_rectangles,
    uncovered_active_area,
)
from .violations import Violation, format_report

__all__ = [
    "check_areas",
    "check_enclosures",
    "check_extensions",
    "check_shorts",
    "check_spacing",
    "check_widths",
    "run_drc",
    "check_latchup",
    "insert_protection_contacts",
    "temporary_rectangles",
    "uncovered_active_area",
    "Violation",
    "format_report",
]

"""Design-rule checking, including the Fig. 1 latch-up examination."""

from .checker import (
    CHECKS,
    CHECKS_BRUTE,
    check_areas,
    check_areas_brute,
    check_enclosures,
    check_enclosures_brute,
    check_extensions,
    check_extensions_brute,
    check_shorts,
    check_shorts_brute,
    check_spacing,
    check_spacing_brute,
    check_widths,
    check_widths_brute,
    run_drc,
)
from .index import DrcIndex
from .latchup import (
    check_latchup,
    insert_protection_contacts,
    temporary_rectangles,
    uncovered_active_area,
)
from .violations import Violation, format_report

__all__ = [
    "CHECKS",
    "CHECKS_BRUTE",
    "DrcIndex",
    "check_areas",
    "check_areas_brute",
    "check_enclosures",
    "check_enclosures_brute",
    "check_extensions",
    "check_extensions_brute",
    "check_shorts",
    "check_shorts_brute",
    "check_spacing",
    "check_spacing_brute",
    "check_widths",
    "check_widths_brute",
    "run_drc",
    "check_latchup",
    "insert_protection_contacts",
    "temporary_rectangles",
    "uncovered_active_area",
    "Violation",
    "format_report",
]

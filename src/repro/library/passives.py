"""Passive analog modules: poly resistors and MOS capacitors.

Analog circuits need matched passives as much as matched devices; the
environment generates them with the same rule-driven machinery.  The
resistor generator also demonstrates why the technology file carries SHEET
rules — the paper's partitioning explicitly weighs "poly-wire resistance".
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..compact import Compactor
from ..db import LayoutObject, estimate_net_capacitance, estimate_net_resistance
from ..geometry import Direction, Rect
from ..primitives import angle_adaptor
from ..route import wire
from ..tech import RuleError, Technology
from .contact_row import contact_row
from ..obs.provenance import provenance_entity


@provenance_entity("PolyResistor")
def poly_resistor(
    tech: Technology,
    width: float = 2.0,
    segment_length: float = 20.0,
    segments: int = 4,
    net_a: str = "ra",
    net_b: str = "rb",
    layer: str = "poly",
    name: str = "PolyResistor",
) -> LayoutObject:
    """A serpentine resistor with contacted terminals.

    ``segments`` horizontal runs of ``segment_length`` × ``width`` µm joined
    by end bends; terminals land on metal1 through contact patches.  The
    body carries an internal net so the terminal nets stay distinct for
    extraction (the serpentine is one resistor, not a short).
    """
    if segments < 1:
        raise RuleError("a resistor needs at least one segment")
    obj = LayoutObject(name, tech)
    w = tech.um(width)
    seg = tech.um(segment_length)
    space = tech.min_space(layer, layer)
    if space is None:
        raise RuleError(f"no SPACE rule for resistor layer {layer!r}")
    pitch = w + space
    body_net = f"{name}_body"

    for index in range(segments):
        y = index * pitch
        wire(obj, layer, (0, y), (seg, y), width=w, net=body_net)
        if index < segments - 1:
            bend_x = seg if index % 2 == 0 else 0
            wire(obj, layer, (bend_x, y), (bend_x, y + pitch), width=w, net=body_net)

    # Terminals: layer→metal1 adaptor patches on short leads beyond the free
    # ends.  The last segment's free end alternates with the bend parity:
    # odd segment counts end on the far side, even counts back on the near
    # side — in the even case both terminals share a side, so the leads get
    # different lengths to stagger the metal patches apart.
    lead_a = w
    if segments % 2 == 1:
        b_x, b_dir, lead_b = seg, 1, w
    else:
        b_x, b_dir, lead_b = 0, -1, 3 * w + tech.min_space("metal1", "metal1")
    b_y = (segments - 1) * pitch
    wire(obj, layer, (0, 0), (-lead_a, 0), width=w, net=body_net)
    wire(obj, layer, (b_x, b_y), (b_x + b_dir * lead_b, b_y), width=w,
         net=body_net)
    a_patches = angle_adaptor(obj, layer, "metal1", -lead_a, 0, w, w, net=net_a)
    b_patches = angle_adaptor(
        obj, layer, "metal1", b_x + b_dir * lead_b, b_y, w, w, net=net_b,
    )
    # The patches overlap the body ends; relabel their base-layer rects so
    # connectivity sees terminal → body → terminal as one chain.
    for patch in a_patches + b_patches:
        if patch.layer == layer:
            patch.net = body_net
    return obj


def resistor_value(
    obj: LayoutObject, tech: Technology, body_net: Optional[str] = None
) -> float:
    """Estimated resistance of a generated resistor (Ω)."""
    if body_net is None:
        candidates = [n for n in obj.nets() if n.endswith("_body")]
        if not candidates:
            raise RuleError("no resistor body net found")
        body_net = candidates[0]
    return estimate_net_resistance(obj.rects, tech, body_net)


@provenance_entity("MosCapacitor")
def mos_capacitor(
    tech: Technology,
    width: float = 20.0,
    length: float = 20.0,
    top_net: str = "ctop",
    bottom_net: str = "cbot",
    compactor: Optional[Compactor] = None,
    name: str = "MosCap",
) -> LayoutObject:
    """A MOS (gate-oxide) capacitor: a large gate with contacted plates.

    The poly gate is the top plate; the diffusion under it, contacted on
    both sides, is the bottom plate.  Geometrically a wide, long transistor
    with source and drain strapped together.
    """
    if compactor is None:
        compactor = Compactor()
    obj = LayoutObject(name, tech)

    from ..primitives import tworects

    core = LayoutObject(f"{name}_core", tech)
    tworects(core, "poly", "pdiff", tech.um(width), tech.um(length),
             gate_net=top_net)
    compactor.compact(obj, core, Direction.SOUTH)

    top_row = contact_row(tech, "poly", length=length, net=top_net,
                          name=f"{name}_top")
    compactor.compact(obj, top_row, Direction.SOUTH)

    for side, direction in (("east", Direction.WEST), ("west", Direction.EAST)):
        plate = contact_row(tech, "pdiff", w=width, net=bottom_net,
                            name=f"{name}_{side}")
        compactor.compact(obj, plate, direction, ignore_layers=("pdiff",))
    return obj


def capacitor_value(obj: LayoutObject, tech: Technology, top_net: str = "ctop") -> float:
    """Estimated capacitance of a generated MOS capacitor (aF).

    Uses the technology's area/perimeter model on the top-plate poly — a
    proxy for the gate-oxide capacitance that scales correctly with W×L.
    """
    return estimate_net_capacitance(
        [r for r in obj.rects if r.layer == "poly"], tech, top_net
    )
"""The simple MOS differential pair (Figs. 6/7).

:data:`DIFF_PAIR_SOURCE` is the paper's Fig. 7 listing adapted to this
reproduction's conventions (see DESIGN.md: with a vertical-gate transistor
the diffusion contact lands beside the gate, so the ``Trans``-internal
diffusion contact compacts EAST instead of the OCR text's SOUTH; nets are
made explicit so the same-potential machinery engages).  The result is the
paper's structure: two transistors, three diffusion contact columns, two
poly contact rows — five compaction steps.
"""

from __future__ import annotations

from typing import Optional

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction
from ..tech import Technology
from .contact_row import contact_row
from .transistor import mos_transistor
from ..obs.provenance import provenance_entity

#: Fig. 7, adapted (structure and step count preserved: 2 within Trans,
#: 3 within DiffPair).
DIFF_PAIR_SOURCE = """\
// Source code of the simple MOS differential pair (paper Fig. 7)
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1", variable = TRUE)
  ARRAY("contact")
END

ENT Trans(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L, gatenet = "g")
  polycon = ContactRow(layer = "poly", L = L)
  SETNET(polycon, "g")
  diffcon = ContactRow(layer = "pdiff", W = W)
  SETNET(diffcon, "d")
  compact(polycon, SOUTH, "poly")   // step 1
  compact(diffcon, EAST, "pdiff")   // step 2
END

ENT DiffPair(<W>, <L>)
  trans1 = Trans(W = W, L = L)
  trans2 = COPY(trans1)
  diffcon = ContactRow(layer = "pdiff", W = W)
  SETNET(diffcon, "d2")
  compact(trans1, WEST, "pdiff")    // step 3
  compact(trans2, WEST, "pdiff")    // step 4
  compact(diffcon, WEST, "pdiff")   // step 5
END
"""


@provenance_entity("DiffPair")
def diff_pair(
    tech: Technology,
    w: float,
    length: float,
    gate_nets: tuple = ("g1", "g2"),
    drain_nets: tuple = ("d1", "d2"),
    tail_net: str = "tail",
    compactor: Optional[Compactor] = None,
    name: str = "DiffPair",
) -> LayoutObject:
    """Python builder: differential pair with a shared tail column.

    Layout: [drain1 | gate1 | tail | gate2 | drain2] — the shared middle
    column is the tail (common source); each side transistor carries its own
    gate row and outer drain column.
    """
    if compactor is None:
        compactor = Compactor()
    pair = LayoutObject(name, tech)

    left = mos_transistor(
        tech, w, length,
        gate_net=gate_nets[0], source_net=tail_net, drain_net=drain_nets[0],
        source_contact=False, compactor=compactor, name=f"{name}_m1",
    )
    right = mos_transistor(
        tech, w, length,
        gate_net=gate_nets[1], source_net=tail_net, drain_net=drain_nets[1],
        drain_contact=False, compactor=compactor, name=f"{name}_m2",
    )
    # m1 carries drain on its east side; flip it so the drain faces west and
    # the bare source side faces the shared tail column.
    left.mirror_y()

    tail = contact_row(tech, "pdiff", w=w, net=tail_net, name=f"{name}_tail")
    right_drain = contact_row(
        tech, "pdiff", w=w, net=drain_nets[1], name=f"{name}_d2"
    )

    compactor.compact(pair, left, Direction.WEST, ignore_layers=("pdiff",))
    compactor.compact(pair, tail, Direction.WEST, ignore_layers=("pdiff",))
    compactor.compact(pair, right, Direction.WEST, ignore_layers=("pdiff",))
    compactor.compact(pair, right_drain, Direction.WEST, ignore_layers=("pdiff",))
    return pair

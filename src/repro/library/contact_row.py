"""The contact row module (Fig. 2/3) — the paper's introductory example.

Ships both as canonical PLDL source (:data:`CONTACT_ROW_SOURCE`, three
primitive calls exactly as printed in the paper) and as a Python builder for
composition inside other generators.
"""

from __future__ import annotations

from typing import Optional

from ..db import LayoutObject
from ..geometry import Direction
from ..primitives import array, inbox
from ..tech import Technology
from ..obs.provenance import provenance_entity

#: Fig. 2 verbatim (modulo the ENT terminator): a complete parameterizable
#: contact row in three primitive calls, no coordinates, no rule values.
CONTACT_ROW_SOURCE = """\
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
END
"""


@provenance_entity("ContactRow")
def contact_row(
    tech: Technology,
    layer: str,
    w: Optional[float] = None,
    length: Optional[float] = None,
    net: Optional[str] = None,
    variable_metal: bool = True,
    metal_min_width: Optional[float] = None,
    metal_min_height: Optional[float] = None,
    name: str = "ContactRow",
) -> LayoutObject:
    """Build a contact row (dimensions in microns).

    ``variable_metal`` marks the metal1 edges movable, enabling the Fig. 5b
    shrink optimization when the row is later compacted against neighbours;
    ``metal_min_width`` / ``metal_min_height`` bound that movement so the
    metal never narrows below the given extent (e.g. a via landing for later
    module wiring).  Omitted dimensions default per design rules, with
    automatic expansion so at least one contact always fits (Fig. 3, left
    example).
    """
    obj = LayoutObject(name, tech)
    inbox(
        obj,
        layer,
        w=None if w is None else tech.um(w),
        length=None if length is None else tech.um(length),
        net=net,
    )
    metal = inbox(obj, "metal1", net=net, variable=variable_metal)
    array(obj, "contact", net=net)
    cx, cy = metal.center
    if metal_min_width is not None:
        keep = tech.um(metal_min_width)
        metal.edge(Direction.WEST).max_coord = cx - keep // 2
        metal.edge(Direction.EAST).min_coord = cx - keep // 2 + keep
    if metal_min_height is not None:
        keep = tech.um(metal_min_height)
        metal.edge(Direction.SOUTH).max_coord = cy - keep // 2
        metal.edge(Direction.NORTH).min_coord = cy - keep // 2 + keep
    return obj

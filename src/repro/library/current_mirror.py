"""Current mirrors — simple and the symmetric block-B arrangement.

The amplifier's block B uses "a symmetrical layout module ... with the diode
transistor in the middle" (Sec. 3): output devices flank the diode-connected
reference device so first-order process gradients cancel.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..compact import Compactor
from ..db import LayoutObject
from ..geometry import Direction, Rect
from ..route import wire
from ..tech import Technology
from .contact_row import contact_row
from .interdigitated import DeviceNets, patterned_row, strap_net, via_landing_um
from .transistor import mos_transistor
from ..obs.provenance import provenance_entity


@provenance_entity("SimpleCurrentMirror")
def simple_current_mirror(
    tech: Technology,
    w: float,
    length: float,
    ref_net: str = "iref",
    out_net: str = "iout",
    source_net: str = "vss",
    compactor: Optional[Compactor] = None,
    name: str = "Mirror",
) -> LayoutObject:
    """Two-device mirror: diode-connected reference beside the output device.

    Gates share the reference net; the gate rows auto-connect when the
    second device is compacted against the first.
    """
    if compactor is None:
        compactor = Compactor()
    mirror = LayoutObject(name, tech)
    landing = via_landing_um(tech)
    reference = mos_transistor(
        tech, w, length,
        gate_net=ref_net, source_net=source_net, drain_net=ref_net,
        col_metal_min=landing, compactor=compactor, name=f"{name}_ref",
    )
    output = mos_transistor(
        tech, w, length,
        gate_net=ref_net, source_net=source_net, drain_net=out_net,
        source_contact=False, col_metal_min=landing,
        compactor=compactor, name=f"{name}_out",
    )
    compactor.compact(mirror, reference, Direction.WEST, ignore_layers=("pdiff",))
    compactor.compact(mirror, output, Direction.WEST, ignore_layers=("pdiff",))
    _tie_gate_rows(mirror, tech, ref_net)
    _diode_strap(mirror, tech, ref_net)
    return mirror


@provenance_entity("SymmetricCurrentMirror")
def symmetric_current_mirror(
    tech: Technology,
    w: float,
    length: float,
    ref_net: str = "iref",
    out_nets: Sequence[str] = ("iout1", "iout2"),
    source_net: str = "vss",
    compactor: Optional[Compactor] = None,
    name: str = "SymMirror",
) -> LayoutObject:
    """Block B: outputs flank the diode device in the middle (out1|ref|out2).

    Built as one patterned finger row ``ABC`` where B is the centre diode;
    all gates share the reference net, so the row's gate contact rows
    auto-connect, and the drain of B is strapped to its gate (the diode
    connection).
    """
    if compactor is None:
        compactor = Compactor()
    devices = {
        "A": DeviceNets(gate=ref_net, drain=out_nets[0]),
        "B": DeviceNets(gate=ref_net, drain=ref_net),
        "C": DeviceNets(gate=ref_net, drain=out_nets[1]),
    }
    mirror = patterned_row(
        tech, w, length, "ABC", devices,
        source_net=source_net, col_metal_min=via_landing_um(tech),
        compactor=compactor, name=name,
    )
    _tie_gate_rows(mirror, tech, ref_net)
    _diode_strap(mirror, tech, ref_net)
    return mirror


def _tie_gate_rows(obj: LayoutObject, tech: Technology, gate_net: str) -> None:
    """Join all gate-row metals of *gate_net* with one horizontal wire."""
    rows = [
        rect
        for rect in obj.rects_on("metal1")
        if rect.net == gate_net and rect.y1 > 0
    ]
    if len(rows) < 2:
        return
    y = max((r.y1 + r.y2) // 2 for r in rows)
    x1 = min(r.x1 for r in rows)
    x2 = max(r.x2 for r in rows)
    wire(obj, "metal1", (x1, y), (x2, y), net=gate_net)


def _diode_strap(obj: LayoutObject, tech: Technology, net: str) -> None:
    """Strap the centre diode's drain column up to its gate row."""
    columns = [
        rect
        for rect in obj.rects_on("metal1")
        if rect.net == net and rect.height > rect.width
    ]
    rows = [
        rect
        for rect in obj.rects_on("metal1")
        if rect.net == net and rect.width >= rect.height
    ]
    if not columns or not rows:
        return
    column = max(columns, key=lambda r: r.area)
    row = max(rows, key=lambda r: r.y1)
    x = (column.x1 + column.x2) // 2
    row_cy = (row.y1 + row.y2) // 2
    if column.y2 < row.y1:
        # Up beside the gate, then jog across to the gate row — every gate
        # in a mirror shares the reference net, so the jog is safe.  The
        # stub starts a wire-width inside the column so the shapes merge.
        start = column.y2 - tech.min_width("metal1")
        wire(obj, "metal1", (x, start), (x, row_cy), net=net)
        if x != (row.x1 + row.x2) // 2:
            wire(obj, "metal1", (x, row_cy), ((row.x1 + row.x2) // 2, row_cy), net=net)


@provenance_entity("CascodePair")
def cascode_pair(
    tech: Technology,
    w: float,
    length: float,
    in_net: str = "in",
    mid_net: str = "mid",
    out_net: str = "out",
    bias_net: str = "vbias",
    compactor: Optional[Compactor] = None,
    name: str = "Cascode",
) -> LayoutObject:
    """Block A style: two stacked devices sharing the middle column.

    The input device's drain column is the cascode device's source; both are
    inter-digital transistors in the amplifier, realised here as a two-finger
    row [in-device | cascode-device] sharing the mid column.
    """
    if compactor is None:
        compactor = Compactor()
    stack = LayoutObject(name, tech)
    landing = via_landing_um(tech)
    bottom = mos_transistor(
        tech, w, length,
        gate_net=in_net, source_net="vss", drain_net=mid_net,
        col_metal_min=landing, compactor=compactor, name=f"{name}_in",
    )
    top = mos_transistor(
        tech, w, length,
        gate_net=bias_net, source_net=mid_net, drain_net=out_net,
        source_contact=False, col_metal_min=landing,
        compactor=compactor, name=f"{name}_casc",
    )
    compactor.compact(stack, bottom, Direction.WEST, ignore_layers=("pdiff",))
    compactor.compact(stack, top, Direction.WEST, ignore_layers=("pdiff",))
    return stack
